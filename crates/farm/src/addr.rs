//! FaRM addresses: 64-bit ⟨region, offset⟩ pairs, plus sized pointers.

/// Identifies a replicated 2 GB-style memory region (§2.1). Region ids are
/// allocated by the configuration manager and double as fabric segment ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A 64-bit FaRM object address: the region id in the high 32 bits and the
/// byte offset of the object header in the low 32 bits (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(u64);

impl Addr {
    /// The null address (no object). Offset `u32::MAX` is never a valid
    /// header offset because headers are 8-byte aligned.
    pub const NULL: Addr = Addr(u64::MAX);

    pub fn new(region: RegionId, offset: u32) -> Addr {
        Addr(((region.0 as u64) << 32) | offset as u64)
    }

    pub fn from_raw(raw: u64) -> Addr {
        Addr(raw)
    }

    pub fn raw(self) -> u64 {
        self.0
    }

    pub fn region(self) -> RegionId {
        RegionId((self.0 >> 32) as u32)
    }

    pub fn offset(self) -> u32 {
        self.0 as u32
    }

    pub fn is_null(self) -> bool {
        self == Addr::NULL
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            write!(f, "null")
        } else {
            write!(f, "{}+{:#x}", self.region(), self.offset())
        }
    }
}

/// A sized pointer ⟨address, size⟩ (§2.2): carrying the payload size lets a
/// reader fetch the whole object with one one-sided read, without first
/// reading a length field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ptr {
    pub addr: Addr,
    /// Payload size in bytes at allocation time.
    pub size: u32,
}

impl Ptr {
    pub const NULL: Ptr = Ptr {
        addr: Addr::NULL,
        size: 0,
    };

    pub fn new(addr: Addr, size: u32) -> Ptr {
        Ptr { addr, size }
    }

    pub fn is_null(self) -> bool {
        self.addr.is_null()
    }

    /// Wire encoding: 12 bytes (u64 addr LE, u32 size LE).
    pub const ENCODED_LEN: usize = 12;

    pub fn encode_to(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.addr.raw().to_le_bytes());
        out.extend_from_slice(&self.size.to_le_bytes());
    }

    pub fn decode(buf: &[u8]) -> Option<Ptr> {
        if buf.len() < Self::ENCODED_LEN {
            return None;
        }
        let addr = u64::from_le_bytes(buf[0..8].try_into().ok()?);
        let size = u32::from_le_bytes(buf[8..12].try_into().ok()?);
        Some(Ptr {
            addr: Addr::from_raw(addr),
            size,
        })
    }
}

impl std::fmt::Display for Ptr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨{},{}⟩", self.addr, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_packing() {
        let a = Addr::new(RegionId(7), 0x1234);
        assert_eq!(a.region(), RegionId(7));
        assert_eq!(a.offset(), 0x1234);
        assert_eq!(Addr::from_raw(a.raw()), a);
        assert!(!a.is_null());
        assert!(Addr::NULL.is_null());
    }

    #[test]
    fn addr_ordering_groups_regions() {
        // Sorting addresses groups them by region — used for deterministic
        // lock ordering in the commit protocol.
        let a = Addr::new(RegionId(1), 999);
        let b = Addr::new(RegionId(2), 0);
        assert!(a < b);
    }

    #[test]
    fn ptr_encode_decode() {
        let p = Ptr::new(Addr::new(RegionId(3), 64), 200);
        let mut buf = Vec::new();
        p.encode_to(&mut buf);
        assert_eq!(buf.len(), Ptr::ENCODED_LEN);
        assert_eq!(Ptr::decode(&buf), Some(p));
        assert_eq!(Ptr::decode(&buf[..5]), None);
    }

    #[test]
    fn display() {
        let p = Ptr::new(Addr::new(RegionId(3), 0x40), 200);
        assert_eq!(format!("{p}"), "⟨r3+0x40,200⟩");
        assert_eq!(format!("{}", Addr::NULL), "null");
    }
}
