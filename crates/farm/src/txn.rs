//! FaRMv2-style transactions: strictly serializable optimistic concurrency
//! with opacity via multi-versioning (paper §2.1, §5.2).
//!
//! * Every transaction takes a **read timestamp** from the global clock and
//!   reads a consistent snapshot at that time. This is the opacity property:
//!   even a transaction that will later abort never observes a torn or
//!   inconsistent state (the linked-list example of §5.2 cannot happen).
//! * **Read-only transactions** never lock, never validate, never abort
//!   (in `V2Mvcc` mode): old versions at primaries serve their snapshot.
//! * **Read-write transactions** buffer writes locally (`OpenForWrite`
//!   semantics); commit locks the write set with one-sided CAS, takes a
//!   commit timestamp, validates the read set, applies + replicates to
//!   backups, and unlocks.
//! * **`V1Occ` mode** (the ablation) disables multi-versioning: reads return
//!   the latest committed version and *every* transaction — including
//!   read-only queries — must validate at commit, reproducing the
//!   high-abort-rate pathology §5.2 describes.

use crate::addr::{Addr, Ptr};
use crate::clock::TsGuard;
use crate::cluster::FarmCluster;
use crate::error::{FarmError, FarmResult};
use crate::layout::{ObjHeader, HEADER, STATE_LIVE, STATE_TOMBSTONE};
use a1_rdma::MachineId;
use bytes::Bytes;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Concurrency-control mode (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnMode {
    /// FaRMv1: latest-version reads, commit-time validation for everyone.
    V1Occ,
    /// FaRMv2: snapshot reads with MVCC; read-only transactions never abort.
    V2Mvcc,
}

/// Allocation placement hint (paper §2.1): `Near` co-locates an object with
/// an existing one in the same region — the mechanism behind vertex/edge-list
/// locality (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hint {
    /// Allocate on the transaction's origin machine.
    Local,
    /// Allocate in the same region as this address if space permits.
    Near(Addr),
    /// Allocate on a specific machine.
    Machine(MachineId),
}

/// An immutable local copy of an object, as returned by reads (the paper's
/// `ObjBuf`).
#[derive(Debug, Clone)]
pub struct ObjBuf {
    pub ptr: Ptr,
    /// Version (commit timestamp) of the copy. 0 for objects allocated by
    /// this transaction and not yet committed.
    pub version: u64,
    /// Payload capacity of the underlying block.
    pub capacity: u32,
    pub(crate) data: Bytes,
}

impl ObjBuf {
    /// A pointer-only placeholder for cache-served routing steps (never
    /// passed to `update`).
    pub(crate) fn routing_placeholder(ptr: Ptr) -> ObjBuf {
        ObjBuf {
            ptr,
            version: 0,
            capacity: 0,
            data: Bytes::new(),
        }
    }

    pub fn data(&self) -> &[u8] {
        &self.data
    }

    pub fn addr(&self) -> Addr {
        self.ptr.addr
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[derive(Debug)]
pub(crate) enum WriteOp {
    Update {
        read_version: u64,
        capacity: u32,
        data: Vec<u8>,
    },
    Alloc {
        capacity: u32,
        data: Vec<u8>,
    },
    Free {
        read_version: u64,
        capacity: u32,
    },
}

/// One request in a batched fetch ([`Txn::fetch_many`]): either a full
/// snapshot read of an object or a header-only version probe. Mixing both in
/// one call lets a morsel's cache revalidation probes share a doorbell with
/// its cold header reads.
#[derive(Debug, Clone, Copy)]
pub enum FetchReq {
    /// Snapshot read, same semantics as [`Txn::read`].
    Read(Ptr),
    /// Header-only version probe, same semantics as [`Txn::probe_version`].
    Probe(Addr),
}

/// The in-slot answer to one [`FetchReq`].
#[derive(Debug, Clone)]
pub enum FetchResp {
    /// Answer to a [`FetchReq::Read`].
    Obj(ObjBuf),
    /// Answer to a [`FetchReq::Probe`].
    Hdr(ObjHeader),
}

/// A FaRM transaction. Obtain via [`FarmCluster::begin`],
/// [`FarmCluster::begin_read_only`], or [`FarmCluster::run`].
pub struct Txn {
    cluster: Arc<FarmCluster>,
    origin: MachineId,
    read_ts: u64,
    tx_id: u64,
    mode: TxnMode,
    read_only: bool,
    _guard: Option<TsGuard>,
    read_set: HashMap<Addr, u64>,
    pub(crate) writes: BTreeMap<Addr, WriteOp>,
    finished: bool,
    /// One-sided read posts this transaction has issued: +1 per scalar
    /// read/probe, +actual doorbells (including scalar fallbacks) per
    /// batched fetch. The query engine reports this per hop as
    /// `fetch_verbs`.
    fetch_verbs: u64,
}

impl Txn {
    pub(crate) fn new(
        cluster: Arc<FarmCluster>,
        origin: MachineId,
        read_ts: u64,
        tx_id: u64,
        mode: TxnMode,
        read_only: bool,
        guard: Option<TsGuard>,
    ) -> Txn {
        Txn {
            cluster,
            origin,
            read_ts,
            tx_id,
            mode,
            read_only,
            _guard: guard,
            read_set: HashMap::new(),
            writes: BTreeMap::new(),
            finished: false,
            fetch_verbs: 0,
        }
    }

    /// One-sided read posts issued so far (scalar reads/probes count one
    /// each; a batched fetch counts its actual doorbells). The coalescing
    /// win is `requests / fetch_verbs`.
    pub fn fetch_verbs(&self) -> u64 {
        self.fetch_verbs
    }

    pub fn read_ts(&self) -> u64 {
        self.read_ts
    }

    pub fn origin(&self) -> MachineId {
        self.origin
    }

    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Cluster-clock reading for cache TTLs — virtual under simulation.
    pub(crate) fn clock_ns(&self) -> u64 {
        self.cluster.fabric().clock().now_ns()
    }

    /// Read an object. In `V2Mvcc`, the result is the object's state at this
    /// transaction's snapshot; read-write transactions whose snapshot is
    /// already stale abort immediately with `Conflict` (they could never
    /// commit).
    pub fn read(&mut self, ptr: Ptr) -> FarmResult<ObjBuf> {
        self.check_open()?;
        // Read-your-writes.
        if let Some(op) = self.writes.get(&ptr.addr) {
            return match op {
                WriteOp::Update {
                    read_version,
                    capacity,
                    data,
                } => Ok(ObjBuf {
                    ptr,
                    version: *read_version,
                    capacity: *capacity,
                    data: Bytes::from(data.clone()),
                }),
                WriteOp::Alloc { capacity, data } => Ok(ObjBuf {
                    ptr,
                    version: 0,
                    capacity: *capacity,
                    data: Bytes::from(data.clone()),
                }),
                WriteOp::Free { .. } => Err(FarmError::NotFound(ptr.addr)),
            };
        }
        let buf = self.read_versioned(ptr)?;
        if !self.read_only || self.mode == TxnMode::V1Occ {
            self.read_set.insert(ptr.addr, buf.version);
        }
        Ok(buf)
    }

    /// Read by raw address and size.
    pub fn read_addr(&mut self, addr: Addr, size: u32) -> FarmResult<ObjBuf> {
        self.read(Ptr::new(addr, size))
    }

    /// Unvalidated latest-version read for *routing* data (B-tree internal
    /// nodes, §3.1): never recorded in the read set and never snapshotted.
    /// Correctness comes from fence-key checks plus validated leaf reads.
    pub fn read_for_routing(&mut self, ptr: Ptr) -> FarmResult<ObjBuf> {
        self.check_open()?;
        if self.writes.contains_key(&ptr.addr) {
            return self.read(ptr);
        }
        self.fetch_verbs += 1;
        let (h, payload) = self.cluster.read_raw(self.origin, ptr)?;
        if !h.is_committed() || h.state != STATE_LIVE {
            return Err(FarmError::NotFound(ptr.addr));
        }
        Ok(ObjBuf {
            ptr,
            version: h.version,
            capacity: h.capacity,
            data: payload,
        })
    }

    /// HEADER-only probe of an object's *current* version word, for cache
    /// revalidation: a header-sized transfer instead of header + payload.
    /// Like [`read_for_routing`](Self::read_for_routing), the probe is never
    /// recorded in the read set and never snapshotted — the caller owns the
    /// consistency argument (the a1-core read cache compares the probed
    /// version against the version its entry was filled at, and only serves
    /// the entry on an exact match). Tombstoned and freed objects return
    /// `NotFound`, so a cached entry for a deleted or reused block can never
    /// revalidate.
    pub fn probe_version(&mut self, addr: Addr) -> FarmResult<ObjHeader> {
        self.check_open()?;
        if self.writes.contains_key(&addr) {
            // A pending write in this transaction supersedes any cached
            // copy; report a conflict so the caller falls back to `read`
            // (which serves read-your-writes).
            return Err(FarmError::Conflict);
        }
        self.fetch_verbs += 1;
        let h = self.cluster.probe_header(self.origin, addr)?;
        if h.state != STATE_LIVE {
            return Err(FarmError::NotFound(addr));
        }
        Ok(h)
    }

    /// Batched fetch: every [`FetchReq::Read`] behaves exactly like
    /// [`read`](Self::read) and every [`FetchReq::Probe`] exactly like
    /// [`probe_version`](Self::probe_version), but requests against the same
    /// primary share one doorbell ([`FarmCluster`]'s `read_raw_many`), and
    /// read-only snapshot reads that need the old-version store are folded
    /// into one batched round trip per primary instead of one each. Results
    /// come back in request order; answers are byte-identical to issuing
    /// the scalar calls one at a time.
    pub fn fetch_many(&mut self, reqs: &[FetchReq]) -> Vec<FarmResult<FetchResp>> {
        if let Err(e) = self.check_open() {
            return reqs.iter().map(|_| Err(e.clone())).collect();
        }
        let mut out: Vec<Option<FarmResult<FetchResp>>> = vec![None; reqs.len()];
        // Requests answerable without the network (read-your-writes,
        // pending-write probes) are served in place; the rest form the
        // batch.
        let mut specs: Vec<(Addr, u32)> = Vec::with_capacity(reqs.len());
        let mut spec_idx: Vec<usize> = Vec::with_capacity(reqs.len());
        for (i, req) in reqs.iter().enumerate() {
            match *req {
                FetchReq::Read(ptr) => {
                    if self.writes.contains_key(&ptr.addr) {
                        out[i] = Some(self.read(ptr).map(FetchResp::Obj));
                    } else {
                        specs.push((ptr.addr, ptr.size));
                        spec_idx.push(i);
                    }
                }
                FetchReq::Probe(addr) => {
                    if self.writes.contains_key(&addr) {
                        // Pending write supersedes any cached copy — same
                        // ruling as scalar `probe_version`.
                        out[i] = Some(Err(FarmError::Conflict));
                    } else {
                        specs.push((addr, 0));
                        spec_idx.push(i);
                    }
                }
            }
        }
        let (results, verbs) = self.cluster.read_raw_many(self.origin, &specs);
        self.fetch_verbs += verbs;
        // Reads whose committed version is newer than our snapshot collect
        // into a second (old-version) batch instead of a round trip each.
        let mut old_idx: Vec<usize> = Vec::new();
        let mut old_ptrs: Vec<Ptr> = Vec::new();
        for (&i, res) in spec_idx.iter().zip(results) {
            out[i] = Some(match (&reqs[i], res) {
                (FetchReq::Probe(addr), Ok((h, _))) => {
                    if h.state != STATE_LIVE {
                        Err(FarmError::NotFound(*addr))
                    } else {
                        Ok(FetchResp::Hdr(h))
                    }
                }
                (FetchReq::Read(ptr), Ok((h, payload))) => {
                    if !h.is_committed() {
                        Err(FarmError::NotFound(ptr.addr))
                    } else if h.version <= self.read_ts || self.mode == TxnMode::V1Occ {
                        if self.mode == TxnMode::V1Occ && h.version > self.read_ts {
                            self.cluster.note_opacity_risk();
                        }
                        if h.state == STATE_TOMBSTONE {
                            Err(FarmError::NotFound(ptr.addr))
                        } else {
                            Ok(FetchResp::Obj(ObjBuf {
                                ptr: *ptr,
                                version: h.version,
                                capacity: h.capacity,
                                data: payload,
                            }))
                        }
                    } else if !self.read_only {
                        Err(FarmError::Conflict)
                    } else {
                        old_idx.push(i);
                        old_ptrs.push(*ptr);
                        continue;
                    }
                }
                (_, Err(e)) => Err(e),
            });
        }
        if !old_ptrs.is_empty() {
            let (olds, verbs) =
                self.cluster
                    .read_old_versions(self.origin, &old_ptrs, self.read_ts);
            self.fetch_verbs += verbs;
            for (i, r) in old_idx.into_iter().zip(olds) {
                out[i] = Some(r.map(FetchResp::Obj));
            }
        }
        if !self.read_only || self.mode == TxnMode::V1Occ {
            for (req, slot) in reqs.iter().zip(out.iter()) {
                if let (FetchReq::Read(ptr), Some(Ok(FetchResp::Obj(buf)))) = (req, slot) {
                    self.read_set.insert(ptr.addr, buf.version);
                }
            }
        }
        out.into_iter()
            .map(|r| r.expect("every request slot filled"))
            .collect()
    }

    /// Batched [`read`](Self::read): snapshot reads coalesced per primary.
    pub fn read_many(&mut self, ptrs: &[Ptr]) -> Vec<FarmResult<ObjBuf>> {
        let reqs: Vec<FetchReq> = ptrs.iter().map(|&p| FetchReq::Read(p)).collect();
        self.fetch_many(&reqs)
            .into_iter()
            .map(|r| {
                r.map(|resp| match resp {
                    FetchResp::Obj(buf) => buf,
                    FetchResp::Hdr(_) => unreachable!("read requests return objects"),
                })
            })
            .collect()
    }

    /// Batched [`probe_version`](Self::probe_version): version probes
    /// coalesced per primary.
    pub fn probe_version_many(&mut self, addrs: &[Addr]) -> Vec<FarmResult<ObjHeader>> {
        let reqs: Vec<FetchReq> = addrs.iter().map(|&a| FetchReq::Probe(a)).collect();
        self.fetch_many(&reqs)
            .into_iter()
            .map(|r| {
                r.map(|resp| match resp {
                    FetchResp::Hdr(h) => h,
                    FetchResp::Obj(_) => unreachable!("probe requests return headers"),
                })
            })
            .collect()
    }

    fn read_versioned(&mut self, ptr: Ptr) -> FarmResult<ObjBuf> {
        self.fetch_verbs += 1;
        let (h, payload) = self.cluster.read_raw(self.origin, ptr)?;
        if !h.is_committed() {
            return Err(FarmError::NotFound(ptr.addr));
        }
        if h.version <= self.read_ts || self.mode == TxnMode::V1Occ {
            if self.mode == TxnMode::V1Occ && h.version > self.read_ts {
                // Non-opaque read: the snapshot this txn started from no
                // longer holds. Counted for the §5.2 ablation.
                self.cluster.note_opacity_risk();
            }
            if h.state == STATE_TOMBSTONE {
                return Err(FarmError::NotFound(ptr.addr));
            }
            return Ok(ObjBuf {
                ptr,
                version: h.version,
                capacity: h.capacity,
                data: payload,
            });
        }
        // Version is newer than our snapshot.
        if !self.read_only {
            // A read-write transaction reading a stale object is doomed;
            // abort early (opacity-preserving clean failure).
            return Err(FarmError::Conflict);
        }
        // Read-only: serve from the old-version store at the primary.
        self.fetch_verbs += 1;
        self.cluster
            .read_old_version(self.origin, ptr, self.read_ts)
    }

    /// Allocate a new object of `size` payload bytes initialized to `data`
    /// (`data.len() <= size`). The object becomes visible at commit.
    pub fn alloc(&mut self, size: usize, hint: Hint, data: &[u8]) -> FarmResult<Ptr> {
        self.check_open()?;
        if self.read_only {
            return Err(FarmError::Usage("alloc in read-only transaction"));
        }
        if data.len() > size {
            return Err(FarmError::Usage("init data longer than object size"));
        }
        if size == 0 || size > crate::alloc::MAX_PAYLOAD {
            return Err(FarmError::InvalidSize(size));
        }
        let (ptr, capacity) = self.cluster.alloc_object(self.origin, size, hint)?;
        self.writes.insert(
            ptr.addr,
            WriteOp::Alloc {
                capacity,
                data: data.to_vec(),
            },
        );
        Ok(ptr)
    }

    /// Replace an object's payload. Requires a prior read of the object in
    /// this transaction (the paper's `OpenForWrite(buf)`), and the new data
    /// must fit in the block's capacity — growing requires realloc
    /// (alloc + free), which is what A1 does for vertex data (§3.2).
    pub fn update(&mut self, buf: &ObjBuf, data: Vec<u8>) -> FarmResult<()> {
        self.check_open()?;
        if self.read_only {
            return Err(FarmError::Usage("update in read-only transaction"));
        }
        if data.len() > buf.capacity as usize {
            return Err(FarmError::Usage(
                "update larger than block capacity; realloc instead",
            ));
        }
        match self.writes.get_mut(&buf.addr()) {
            Some(WriteOp::Alloc { data: d, .. }) => {
                *d = data;
                Ok(())
            }
            Some(WriteOp::Update { data: d, .. }) => {
                *d = data;
                Ok(())
            }
            Some(WriteOp::Free { .. }) => Err(FarmError::Usage("update after free")),
            None => {
                self.writes.insert(
                    buf.addr(),
                    WriteOp::Update {
                        read_version: buf.version,
                        capacity: buf.capacity,
                        data,
                    },
                );
                Ok(())
            }
        }
    }

    /// Free an object (visible at commit; the block is reused only after all
    /// snapshots that might read it have finished).
    pub fn free(&mut self, buf: &ObjBuf) -> FarmResult<()> {
        self.check_open()?;
        if self.read_only {
            return Err(FarmError::Usage("free in read-only transaction"));
        }
        match self.writes.get(&buf.addr()) {
            Some(WriteOp::Alloc { .. }) => {
                // Never visible: roll the eager reservation back right away.
                self.writes.remove(&buf.addr());
                self.cluster.rollback_alloc(buf.ptr, buf.capacity);
                Ok(())
            }
            Some(WriteOp::Free { .. }) => Err(FarmError::Usage("double free")),
            Some(WriteOp::Update { .. }) | None => {
                self.writes.insert(
                    buf.addr(),
                    WriteOp::Free {
                        read_version: buf.version,
                        capacity: buf.capacity,
                    },
                );
                Ok(())
            }
        }
    }

    /// Commit. Returns the commit timestamp (or the read timestamp for
    /// read-only/empty transactions).
    pub fn commit(mut self) -> FarmResult<u64> {
        self.check_open()?;
        self.finished = true;

        if self.writes.is_empty() {
            // V1 read-only validation: latest-version reads must still hold.
            if self.mode == TxnMode::V1Occ && !self.read_set.is_empty() {
                let reads: Vec<(Addr, u64)> = self.read_set.iter().map(|(a, v)| (*a, *v)).collect();
                if let Err(e) = self.cluster.validate_reads(self.origin, &reads) {
                    self.cluster.note_abort();
                    return Err(e);
                }
            }
            self.cluster.note_commit();
            return Ok(self.read_ts);
        }

        debug_assert!(!self.read_only);
        let result =
            self.cluster
                .commit_writes(self.origin, self.tx_id, &self.read_set, &mut self.writes);
        match result {
            Ok(ts) => {
                self.cluster.note_commit();
                self.writes.clear();
                Ok(ts)
            }
            Err(e) => {
                self.cluster.note_abort();
                self.rollback_allocs();
                Err(e)
            }
        }
    }

    /// Abort, rolling back eager allocations.
    pub fn abort(mut self) {
        if !self.finished {
            self.finished = true;
            self.rollback_allocs();
            self.cluster.note_abort();
        }
    }

    fn rollback_allocs(&mut self) {
        let allocs: Vec<(Addr, u32)> = self
            .writes
            .iter()
            .filter_map(|(addr, op)| match op {
                WriteOp::Alloc { capacity, .. } => Some((*addr, *capacity)),
                _ => None,
            })
            .collect();
        for (addr, cap) in allocs {
            self.writes.remove(&addr);
            self.cluster.rollback_alloc(Ptr::new(addr, cap), cap);
        }
    }

    fn check_open(&self) -> FarmResult<()> {
        if self.finished {
            Err(FarmError::TxnClosed)
        } else {
            Ok(())
        }
    }

    /// Number of buffered writes (diagnostics).
    pub fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    /// Number of recorded reads (diagnostics).
    pub fn read_set_len(&self) -> usize {
        self.read_set.len()
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.finished {
            self.finished = true;
            self.rollback_allocs();
            self.cluster.note_abort();
        }
    }
}

/// Compose the on-wire bytes for an object: header + payload.
pub(crate) fn compose_object(version: u64, capacity: u32, state: u32, data: &[u8]) -> Vec<u8> {
    let h = ObjHeader {
        lock: 0,
        version,
        capacity,
        state,
        len: data.len() as u32,
    };
    let mut bytes = Vec::with_capacity(HEADER + data.len());
    bytes.extend_from_slice(&h.encode());
    bytes.extend_from_slice(data);
    bytes
}
