//! PyCo: the fast-restart memory driver (paper §5.3).
//!
//! In production FaRM, region memory is owned by a kernel driver ("PyCo")
//! that grabs physical memory at boot; the FaRM process maps it in. If the
//! *process* crashes, the memory survives and the restarted process
//! re-attaches, avoiding data loss and hours of re-replication. A *machine*
//! reboot or power cycle loses the memory.
//!
//! Here the driver is a registry of segment handles keyed by (machine,
//! region). [`crate::FarmCluster::crash_process`] drops the process-side
//! state but leaves this registry intact; `reboot_machine` clears it.

use crate::addr::RegionId;
use a1_rdma::{MachineId, Segment};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The simulated kernel driver holding region memory per machine.
#[derive(Default)]
pub struct PycoDriver {
    segments: Mutex<HashMap<(u32, u32), Arc<Segment>>>,
}

impl PycoDriver {
    pub fn new() -> PycoDriver {
        PycoDriver::default()
    }

    /// Record a region's memory as owned by the driver on `machine`.
    pub fn save(&self, machine: MachineId, region: RegionId, seg: Arc<Segment>) {
        self.segments.lock().insert((machine.0, region.0), seg);
    }

    /// Segments the driver still holds for `machine` (after a process crash).
    pub fn segments_for(&self, machine: MachineId) -> Vec<(RegionId, Arc<Segment>)> {
        self.segments
            .lock()
            .iter()
            .filter(|((m, _), _)| *m == machine.0)
            .map(|((_, r), seg)| (RegionId(*r), seg.clone()))
            .collect()
    }

    /// A machine reboot or power cycle wipes the driver's memory.
    pub fn clear_machine(&self, machine: MachineId) {
        self.segments.lock().retain(|(m, _), _| *m != machine.0);
    }

    /// Remove one region's memory (region deleted or migrated away).
    pub fn forget(&self, machine: MachineId, region: RegionId) {
        self.segments.lock().remove(&(machine.0, region.0));
    }

    pub fn holds(&self, machine: MachineId, region: RegionId) -> bool {
        self.segments.lock().contains_key(&(machine.0, region.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_and_recover() {
        let pyco = PycoDriver::new();
        let seg = Segment::new(64);
        seg.write(0, &[42]).unwrap();
        pyco.save(MachineId(1), RegionId(3), seg);
        assert!(pyco.holds(MachineId(1), RegionId(3)));

        let recovered = pyco.segments_for(MachineId(1));
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].0, RegionId(3));
        // Memory content survived the "process crash".
        assert_eq!(&recovered[0].1.read(0, 1).unwrap()[..], &[42]);
        assert!(pyco.segments_for(MachineId(2)).is_empty());
    }

    #[test]
    fn reboot_wipes() {
        let pyco = PycoDriver::new();
        pyco.save(MachineId(1), RegionId(3), Segment::new(64));
        pyco.save(MachineId(2), RegionId(4), Segment::new(64));
        pyco.clear_machine(MachineId(1));
        assert!(!pyco.holds(MachineId(1), RegionId(3)));
        assert!(
            pyco.holds(MachineId(2), RegionId(4)),
            "other machines unaffected"
        );
    }

    #[test]
    fn forget_single_region() {
        let pyco = PycoDriver::new();
        pyco.save(MachineId(1), RegionId(3), Segment::new(64));
        pyco.save(MachineId(1), RegionId(4), Segment::new(64));
        pyco.forget(MachineId(1), RegionId(3));
        assert!(!pyco.holds(MachineId(1), RegionId(3)));
        assert!(pyco.holds(MachineId(1), RegionId(4)));
    }
}
