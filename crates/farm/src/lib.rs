//! FaRM-style transactional distributed in-memory storage (paper §2, §5.2–5.3).
//!
//! This crate reproduces the storage substrate A1 is built on:
//!
//! * **Regions** — each machine's memory is split into fixed-size regions
//!   ([`region`]), replicated 3-ways across fault domains with a
//!   primary–backup scheme. Objects (64 B–1 MB) are allocated inside regions
//!   by a size-class allocator ([`alloc`]) and addressed by a 64-bit
//!   [`Addr`] = ⟨region id, offset⟩. Upper layers pass ⟨addr, size⟩
//!   [`Ptr`]s so a single one-sided read fetches an object (§2.2).
//! * **Configuration manager** ([`cm`]) — membership, region placement
//!   across fault domains, failure handling with backup promotion and
//!   re-replication.
//! * **Transactions** ([`txn`]) — FaRMv2-style strictly-serializable
//!   optimistic transactions with **opacity** via a global clock and
//!   multi-version concurrency control (§5.2). Read-only transactions read a
//!   consistent snapshot and never abort or block updates. A `V1` mode
//!   without multi-versioning reproduces the abort-rate pathology the paper
//!   describes, for the ablation benchmark.
//! * **Distributed B+-trees** ([`btree`]) — high-fanout trees over FaRM
//!   objects with internal-node caching and fence-key verification (§3.1).
//! * **Fast restart** ([`pyco`]) — region memory is owned by a simulated
//!   kernel driver so a process crash (not a reboot) preserves data (§5.3).

pub mod addr;
pub mod alloc;
pub mod btree;
pub mod clock;
pub mod cluster;
pub mod cm;
pub mod error;
pub mod layout;
pub mod pyco;
pub mod region;
pub mod store;
pub mod txn;

pub use addr::{Addr, Ptr, RegionId};
pub use btree::{BTree, BTreeConfig};
pub use clock::{
    marzullo, ClockSample, GlobalClock, Lease, LeaseManager, MachineClock, SyncOutcome, TsGuard,
    TsRegistry,
};
pub use cluster::{FarmCluster, FarmConfig};
pub use error::{FarmError, FarmResult};
pub use layout::ObjHeader;
pub use txn::{FetchReq, FetchResp, Hint, ObjBuf, Txn, TxnMode};

pub use a1_rdma::{
    ClockSource, ClusterRng, FabricConfig, FaultDecision, FaultInjector, JobClass, LatencyModel,
    MachineId, NetOp, RealClock, ScopedJob, VirtualClock, WorkerPool,
};
