//! Regions: replicated memory plus primary-side metadata.
//!
//! A region's *data* lives in a fabric [`Segment`] (registered memory, the
//! target of one-sided verbs) and is byte-identical across primary and
//! backups. The primary additionally keeps process-local metadata: the
//! allocator, the MVCC old-version store (FaRMv2 keeps old versions outside
//! region memory at primaries), and the deferred-free queue used to delay
//! block reuse until no active snapshot can still read the freed object.

use crate::addr::RegionId;
use crate::alloc::RegionAllocator;
use crate::layout::{ObjHeader, HEADER, STATE_FREE};
use a1_rdma::Segment;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One old version of an object, kept for snapshot readers.
#[derive(Debug, Clone)]
pub struct OldVersion {
    /// Commit timestamp at which this version was written.
    pub version: u64,
    /// STATE_LIVE or STATE_TOMBSTONE at that version.
    pub state: u32,
    /// Payload bytes (length = `len`).
    pub payload: Box<[u8]>,
    pub len: u32,
}

/// Primary-side metadata for a region.
#[derive(Debug)]
pub struct RegionMeta {
    pub alloc: RegionAllocator,
    /// offset → old versions, newest first.
    versions: HashMap<u32, Vec<OldVersion>>,
    /// (free commit ts, offset, capacity): blocks freed but not yet reusable.
    deferred_free: Vec<(u64, u32, u32)>,
    /// Snapshots older than this cannot be served from this replica: a
    /// promoted backup has no version history (FaRMv2 keeps old versions at
    /// primaries only), so reads at `ts < history_floor` get
    /// `SnapshotTooOld` instead of a wrong `NotFound`.
    pub history_floor: u64,
}

impl RegionMeta {
    fn new(alloc: RegionAllocator, history_floor: u64) -> RegionMeta {
        RegionMeta {
            alloc,
            versions: HashMap::new(),
            deferred_free: Vec::new(),
            history_floor,
        }
    }

    /// Record `old` as the previous version of the object at `off`, where the
    /// object's new current version is `new_version`. Prunes entries no
    /// active snapshot (≥ `watermark`) can read.
    pub fn push_old_version(
        &mut self,
        off: u32,
        old: OldVersion,
        new_version: u64,
        watermark: u64,
    ) {
        let chain = self.versions.entry(off).or_default();
        chain.insert(0, old);
        Self::prune_chain(chain, new_version, watermark);
        if chain.is_empty() {
            self.versions.remove(&off);
        }
    }

    /// Keep an old version `v` only while some snapshot `r ≥ watermark` could
    /// read it — i.e. while the next-newer version is still > watermark.
    fn prune_chain(chain: &mut Vec<OldVersion>, current_version: u64, watermark: u64) {
        let mut newer = current_version;
        let mut keep = chain.len();
        for (i, v) in chain.iter().enumerate() {
            if newer <= watermark {
                keep = i;
                break;
            }
            newer = v.version;
        }
        chain.truncate(keep);
    }

    /// Find the newest old version with `version <= ts`.
    pub fn snapshot_lookup(&self, off: u32, ts: u64) -> Option<&OldVersion> {
        self.versions.get(&off)?.iter().find(|v| v.version <= ts)
    }

    pub fn defer_free(&mut self, commit_ts: u64, off: u32, capacity: u32) {
        self.deferred_free.push((commit_ts, off, capacity));
    }

    /// Blocks whose free committed before `watermark` — safe to reuse.
    /// Returns the reclaimed (offset, capacity) pairs; the caller rewrites
    /// their headers to FREE in region memory.
    pub fn take_reclaimable(&mut self, watermark: u64) -> Vec<(u32, u32)> {
        let mut reclaimed = Vec::new();
        self.deferred_free.retain(|&(ts, off, cap)| {
            // Safe once every active snapshot is at or past the free: they
            // all observe the tombstone, never the reclaimed payload.
            if ts <= watermark {
                reclaimed.push((off, cap));
                false
            } else {
                true
            }
        });
        for &(off, cap) in &reclaimed {
            self.versions.remove(&off);
            self.alloc.free(off, cap);
        }
        reclaimed
    }

    pub fn version_chains(&self) -> usize {
        self.versions.len()
    }

    pub fn deferred_free_len(&self) -> usize {
        self.deferred_free.len()
    }
}

/// A hosted region replica. `meta` is `Some` at the primary.
pub struct Region {
    pub id: RegionId,
    pub seg: Arc<Segment>,
    meta: Mutex<Option<RegionMeta>>,
    len: usize,
}

impl Region {
    /// Create a fresh region (zeroed memory). Primary replicas get metadata.
    pub fn create(id: RegionId, len: usize, primary: bool) -> Arc<Region> {
        let seg = Segment::new(len);
        let meta = primary.then(|| RegionMeta::new(RegionAllocator::new(len), 0));
        Arc::new(Region {
            id,
            seg,
            meta: Mutex::new(meta),
            len,
        })
    }

    /// Attach to existing memory (fast restart from PyCo, or promotion after
    /// a copy). `rebuild_meta` scans headers to reconstruct the allocator.
    pub fn attach(id: RegionId, seg: Arc<Segment>, len: usize) -> Arc<Region> {
        Arc::new(Region {
            id,
            seg,
            meta: Mutex::new(None),
            len,
        })
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn is_primary(&self) -> bool {
        self.meta.lock().is_some()
    }

    /// Run `f` with the primary metadata. Returns `None` on a backup.
    pub fn with_meta<T>(&self, f: impl FnOnce(&mut RegionMeta) -> T) -> Option<T> {
        self.meta.lock().as_mut().map(f)
    }

    /// Rebuild primary metadata by scanning block headers (promotion after a
    /// failure, or fast restart §5.3). Also clears stale lock words left by
    /// transactions that died with the previous primary/process, and returns
    /// tombstoned blocks to the deferred-free queue (reclaimable once the
    /// watermark passes; ts 0 means "immediately").
    pub fn rebuild_meta(&self, history_floor: u64) {
        let data = self.seg.clone_bytes();
        let (alloc, tombstones) = RegionAllocator::rebuild(&data, self.len);
        let mut meta = RegionMeta::new(alloc, history_floor);
        for (off, cap) in tombstones {
            meta.defer_free(0, off, cap);
        }
        // Clear stale locks: any nonzero lock word belongs to a dead txn.
        let mut pos = crate::alloc::FIRST_OFFSET as usize;
        while pos + HEADER <= self.len {
            let Some(h) = ObjHeader::parse(&data[pos..pos + HEADER]) else {
                break;
            };
            if h.capacity == 0 {
                break;
            }
            if h.lock != 0 {
                self.seg.write(pos, &0u64.to_le_bytes());
            }
            let Some(class) = crate::alloc::class_for_capacity(h.capacity) else {
                break;
            };
            pos += crate::alloc::block_size(class);
        }
        *self.meta.lock() = Some(meta);
    }

    /// Drop primary metadata (demotion to backup — not used in normal
    /// operation, but exercised by tests).
    pub fn demote(&self) {
        *self.meta.lock() = None;
    }

    /// Rewrite reclaimed block headers to FREE state in region memory.
    pub fn clear_reclaimed_headers(&self, reclaimed: &[(u32, u32)]) {
        for &(off, cap) in reclaimed {
            let h = ObjHeader {
                lock: 0,
                version: 0,
                capacity: cap,
                state: STATE_FREE,
                len: 0,
            };
            self.seg.write(off as usize, &h.encode());
        }
    }
}

impl std::fmt::Debug for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Region")
            .field("id", &self.id)
            .field("len", &self.len)
            .field("primary", &self.is_primary())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{STATE_LIVE, STATE_TOMBSTONE};

    fn old(v: u64) -> OldVersion {
        OldVersion {
            version: v,
            state: STATE_LIVE,
            payload: vec![v as u8].into(),
            len: 1,
        }
    }

    fn meta_for_test() -> RegionMeta {
        RegionMeta::new(RegionAllocator::new(4096), 0)
    }

    #[test]
    fn version_chain_lookup() {
        let mut meta = meta_for_test();
        // History: v10, then v20, then current v30. Watermark far back.
        meta.push_old_version(100, old(10), 20, 1);
        meta.push_old_version(100, old(20), 30, 1);
        assert_eq!(meta.snapshot_lookup(100, 25).unwrap().version, 20);
        assert_eq!(meta.snapshot_lookup(100, 15).unwrap().version, 10);
        assert_eq!(meta.snapshot_lookup(100, 10).unwrap().version, 10);
        assert!(meta.snapshot_lookup(100, 5).is_none());
        assert!(meta.snapshot_lookup(999, 25).is_none());
    }

    #[test]
    fn version_chain_pruning() {
        let mut meta = meta_for_test();
        meta.push_old_version(100, old(10), 20, 1);
        // Watermark 25 ≥ 20(newer of v10) → v10 is dead once v20 arrives:
        meta.push_old_version(100, old(20), 30, 25);
        assert!(meta.snapshot_lookup(100, 15).is_none(), "v10 pruned");
        assert_eq!(meta.snapshot_lookup(100, 29).unwrap().version, 20);
        // Watermark past current → everything prunable on next push.
        meta.push_old_version(100, old(30), 40, 50);
        assert_eq!(meta.version_chains(), 0);
    }

    #[test]
    fn deferred_free_respects_watermark() {
        let mut meta = meta_for_test();
        let (off, cap) = meta.alloc.alloc(40).unwrap();
        meta.defer_free(100, off, cap);
        assert_eq!(meta.take_reclaimable(50), vec![]);
        assert_eq!(meta.deferred_free_len(), 1);
        let got = meta.take_reclaimable(101);
        assert_eq!(got, vec![(off, cap)]);
        assert_eq!(meta.deferred_free_len(), 0);
        // The block is reusable now.
        let (off2, _) = meta.alloc.alloc(40).unwrap();
        assert_eq!(off2, off);
    }

    #[test]
    fn rebuild_clears_stale_locks() {
        let region = Region::create(RegionId(1), 4096, true);
        let (off, cap) = region.with_meta(|m| m.alloc.alloc(40).unwrap()).unwrap();
        let h = ObjHeader {
            lock: 77,
            version: 5,
            capacity: cap,
            state: STATE_LIVE,
            len: 4,
        };
        region.seg.write(off as usize, &h.encode());
        region.rebuild_meta(9);
        let raw = region.seg.read(off as usize, HEADER).unwrap();
        let h2 = ObjHeader::parse(&raw).unwrap();
        assert_eq!(h2.lock, 0, "stale lock cleared");
        assert_eq!(h2.version, 5, "data preserved");
        assert_eq!(region.with_meta(|m| m.alloc.live_blocks()).unwrap(), 1);
    }

    #[test]
    fn rebuild_requeues_tombstones() {
        let region = Region::create(RegionId(1), 4096, true);
        let (off, cap) = region.with_meta(|m| m.alloc.alloc(40).unwrap()).unwrap();
        let h = ObjHeader {
            lock: 0,
            version: 5,
            capacity: cap,
            state: STATE_TOMBSTONE,
            len: 4,
        };
        region.seg.write(off as usize, &h.encode());
        region.rebuild_meta(9);
        let reclaimed = region.with_meta(|m| m.take_reclaimable(1)).unwrap();
        assert_eq!(reclaimed, vec![(off, cap)]);
    }

    #[test]
    fn backup_has_no_meta() {
        let region = Region::attach(RegionId(2), Segment::new(1024), 1024);
        assert!(!region.is_primary());
        assert!(region.with_meta(|_| ()).is_none());
        region.rebuild_meta(9);
        assert!(region.is_primary());
    }
}
