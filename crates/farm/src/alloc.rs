//! Size-class object allocator within a region.
//!
//! FaRM objects range from 64 B to 1 MB (§2.1). Blocks are powers of two from
//! 64 B to 1 MiB; a block's payload capacity is the block size minus the
//! 32-byte header. Allocation bumps a frontier; freed blocks go to per-class
//! free lists and are reused exactly (no coalescing — classes make external
//! fragmentation bounded, a deliberate simplification documented in
//! DESIGN.md).
//!
//! The allocator state is process-local. After a fast restart (§5.3) it is
//! rebuilt by scanning block headers: `capacity` is written once at first
//! allocation and never cleared, so the scan can walk the block chain.

use crate::layout::{ObjHeader, HEADER, STATE_FREE, STATE_LIVE, STATE_TOMBSTONE};

/// Smallest block (64 B) and largest block (1 MiB), as in the paper.
pub const MIN_BLOCK: usize = 64;
pub const MAX_BLOCK: usize = 1 << 20;

/// Number of size classes: 64, 128, ..., 1 MiB.
pub const NUM_CLASSES: usize = 15;

/// First allocatable offset. Offset 0 is reserved so that bootstrap objects
/// have stable, non-zero offsets.
pub const FIRST_OFFSET: u32 = 64;

/// Largest payload an object can carry.
pub const MAX_PAYLOAD: usize = MAX_BLOCK - HEADER;

/// Map a payload size to its size class, or `None` if too large.
pub fn class_for_payload(payload: usize) -> Option<usize> {
    let block = (payload + HEADER).max(MIN_BLOCK).next_power_of_two();
    if block > MAX_BLOCK {
        return None;
    }
    Some(block.trailing_zeros() as usize - MIN_BLOCK.trailing_zeros() as usize)
}

/// Block size of a class.
pub fn block_size(class: usize) -> usize {
    MIN_BLOCK << class
}

/// Payload capacity of a class.
pub fn class_capacity(class: usize) -> u32 {
    (block_size(class) - HEADER) as u32
}

/// Map a block's capacity field back to its class (inverse of
/// [`class_capacity`]); used by the rebuild scan and by `free`.
pub fn class_for_capacity(capacity: u32) -> Option<usize> {
    let block = capacity as usize + HEADER;
    if !block.is_power_of_two() || !(MIN_BLOCK..=MAX_BLOCK).contains(&block) {
        return None;
    }
    Some(block.trailing_zeros() as usize - MIN_BLOCK.trailing_zeros() as usize)
}

/// Per-region allocator state.
#[derive(Debug)]
pub struct RegionAllocator {
    region_len: usize,
    /// Next never-allocated byte.
    bump: usize,
    free_lists: Vec<Vec<u32>>,
    live_blocks: usize,
}

impl RegionAllocator {
    pub fn new(region_len: usize) -> RegionAllocator {
        RegionAllocator {
            region_len,
            bump: FIRST_OFFSET as usize,
            free_lists: vec![Vec::new(); NUM_CLASSES],
            live_blocks: 0,
        }
    }

    /// Allocate a block for `payload` bytes. Returns (offset, capacity).
    pub fn alloc(&mut self, payload: usize) -> Option<(u32, u32)> {
        let class = class_for_payload(payload)?;
        if let Some(off) = self.free_lists[class].pop() {
            self.live_blocks += 1;
            return Some((off, class_capacity(class)));
        }
        let block = block_size(class);
        if self.bump + block > self.region_len {
            return None;
        }
        let off = self.bump as u32;
        self.bump += block;
        self.live_blocks += 1;
        Some((off, class_capacity(class)))
    }

    /// Return a block to its class free list.
    pub fn free(&mut self, off: u32, capacity: u32) {
        let class = class_for_capacity(capacity)
            .expect("free() called with a capacity the allocator never produced");
        self.live_blocks = self.live_blocks.saturating_sub(1);
        self.free_lists[class].push(off);
    }

    pub fn live_blocks(&self) -> usize {
        self.live_blocks
    }

    /// Bytes never allocated (excludes free-listed blocks).
    pub fn bytes_left(&self) -> usize {
        self.region_len - self.bump
    }

    /// Rebuild allocator state by scanning block headers in region memory
    /// (fast restart, §5.3). LIVE blocks stay live; FREE blocks return to
    /// their free lists; TOMBSTONE blocks are reported so the caller can
    /// re-enqueue deferred reclamation. Uncommitted blocks (version 0, LIVE)
    /// belong to transactions that died with the old process; they are freed.
    pub fn rebuild(data: &[u8], region_len: usize) -> (RegionAllocator, Vec<(u32, u32)>) {
        let mut a = RegionAllocator::new(region_len);
        let mut tombstones = Vec::new();
        let mut pos = FIRST_OFFSET as usize;
        while pos + HEADER <= region_len {
            let Some(h) = ObjHeader::parse(&data[pos..pos + HEADER]) else {
                break;
            };
            if h.capacity == 0 {
                break; // never-allocated frontier
            }
            let Some(class) = class_for_capacity(h.capacity) else {
                break;
            };
            let off = pos as u32;
            match h.state {
                STATE_LIVE if h.version > 0 => a.live_blocks += 1,
                STATE_LIVE => a.free_lists[class].push(off), // uncommitted alloc
                STATE_TOMBSTONE => tombstones.push((off, h.capacity)),
                STATE_FREE => a.free_lists[class].push(off),
                _ => a.free_lists[class].push(off),
            }
            pos += block_size(class);
        }
        a.bump = pos;
        (a, tombstones)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        assert_eq!(class_for_payload(1), Some(0));
        assert_eq!(class_for_payload(32), Some(0)); // 32+32=64
        assert_eq!(class_for_payload(33), Some(1)); // 65 → 128
        assert_eq!(class_for_payload(MAX_PAYLOAD), Some(NUM_CLASSES - 1));
        assert_eq!(class_for_payload(MAX_PAYLOAD + 1), None);
        assert_eq!(block_size(0), 64);
        assert_eq!(block_size(NUM_CLASSES - 1), MAX_BLOCK);
        for c in 0..NUM_CLASSES {
            assert_eq!(class_for_capacity(class_capacity(c)), Some(c));
        }
        assert_eq!(class_for_capacity(0), None);
        assert_eq!(class_for_capacity(77), None);
    }

    #[test]
    fn alloc_free_reuse() {
        let mut a = RegionAllocator::new(4096);
        let (off1, cap1) = a.alloc(32).unwrap();
        assert_eq!(off1, FIRST_OFFSET);
        assert_eq!(cap1, 32);
        let (off2, _) = a.alloc(32).unwrap();
        assert_eq!(off2, FIRST_OFFSET + 64);
        assert_eq!(a.live_blocks(), 2);
        a.free(off1, cap1);
        assert_eq!(a.live_blocks(), 1);
        // Exact reuse of the freed block.
        let (off3, _) = a.alloc(20).unwrap();
        assert_eq!(off3, off1);
    }

    #[test]
    fn no_overlap_until_exhaustion() {
        let mut a = RegionAllocator::new(2048);
        let mut spans: Vec<(u32, usize)> = Vec::new();
        while let Some((off, cap)) = a.alloc(100) {
            let block = cap as usize + HEADER;
            for &(o, b) in &spans {
                let disjoint = off as usize + block <= o as usize || o as usize + b <= off as usize;
                assert!(disjoint, "blocks overlap");
            }
            spans.push((off, block));
        }
        assert!(!spans.is_empty());
        assert!(a.bytes_left() < 256);
    }

    #[test]
    fn rebuild_from_scan() {
        // Simulate a region: allocate three blocks, free one, tombstone one.
        let len = 4096;
        let mut data = vec![0u8; len];
        let mut a = RegionAllocator::new(len);
        let write_header = |data: &mut Vec<u8>, off: u32, cap: u32, state: u32, ver: u64| {
            let h = ObjHeader {
                lock: 0,
                version: ver,
                capacity: cap,
                state,
                len: 8,
            };
            data[off as usize..off as usize + HEADER].copy_from_slice(&h.encode());
        };
        let (o1, c1) = a.alloc(40).unwrap();
        write_header(&mut data, o1, c1, STATE_LIVE, 10);
        let (o2, c2) = a.alloc(40).unwrap();
        write_header(&mut data, o2, c2, STATE_FREE, 0);
        let (o3, c3) = a.alloc(200).unwrap();
        write_header(&mut data, o3, c3, STATE_TOMBSTONE, 12);
        let (o4, c4) = a.alloc(40).unwrap();
        write_header(&mut data, o4, c4, STATE_LIVE, 0); // uncommitted

        let (rebuilt, tombstones) = RegionAllocator::rebuild(&data, len);
        assert_eq!(rebuilt.live_blocks(), 1);
        assert_eq!(tombstones, vec![(o3, c3)]);
        assert_eq!(rebuilt.bump, a.bump);
        // Free lists hold the freed + uncommitted blocks.
        let mut r = rebuilt;
        let (re_off, _) = r.alloc(40).unwrap();
        assert!(re_off == o2 || re_off == o4);
    }

    #[test]
    fn region_exhaustion_returns_none() {
        let mut a = RegionAllocator::new(256);
        assert!(a.alloc(32).is_some());
        assert!(a.alloc(32).is_some());
        assert!(a.alloc(32).is_some());
        assert!(a.alloc(32).is_none()); // 64 (reserved) + 3*64 = 256
    }
}
