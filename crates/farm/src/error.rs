//! FaRM error and status types.

use crate::addr::Addr;
use a1_rdma::NetError;

pub type FarmResult<T> = Result<T, FarmError>;

/// Everything that can go wrong in the storage layer. `Conflict` is the
/// normal optimistic-concurrency outcome and callers are expected to retry
/// (paper Fig. 3 shows the canonical retry loop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FarmError {
    /// Optimistic concurrency conflict — retry the transaction.
    Conflict,
    /// Object does not exist (never created, or deleted at this snapshot).
    NotFound(Addr),
    /// The snapshot's old versions were garbage collected (can happen after
    /// a failover, where the promoted backup has no version history).
    SnapshotTooOld,
    /// Allocation failed: no space and no machine can host a new region.
    OutOfMemory,
    /// Object size outside the 64 B..1 MB envelope.
    InvalidSize(usize),
    /// The cluster is paused waiting for a fast restart (§5.3).
    Paused,
    /// Unrecoverable replica loss — disaster recovery territory (§4).
    DataLoss(crate::addr::RegionId),
    /// Network-level failure that reconfiguration did not resolve.
    Unavailable(String),
    /// The transaction was already committed or aborted.
    TxnClosed,
    /// Misuse of the API (e.g. update without a prior read).
    Usage(&'static str),
}

impl std::fmt::Display for FarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FarmError::Conflict => write!(f, "transaction conflict (retry)"),
            FarmError::NotFound(a) => write!(f, "object not found at {a}"),
            FarmError::SnapshotTooOld => write!(f, "snapshot versions unavailable"),
            FarmError::OutOfMemory => write!(f, "out of memory"),
            FarmError::InvalidSize(s) => write!(f, "invalid object size {s}"),
            FarmError::Paused => write!(f, "cluster paused for fast restart"),
            FarmError::DataLoss(r) => write!(f, "all replicas of {r} lost"),
            FarmError::Unavailable(m) => write!(f, "unavailable: {m}"),
            FarmError::TxnClosed => write!(f, "transaction already finished"),
            FarmError::Usage(m) => write!(f, "api misuse: {m}"),
        }
    }
}

impl std::error::Error for FarmError {}

impl From<NetError> for FarmError {
    fn from(e: NetError) -> FarmError {
        FarmError::Unavailable(e.to_string())
    }
}

impl FarmError {
    /// Whether retrying the whole transaction may succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, FarmError::Conflict | FarmError::SnapshotTooOld)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::RegionId;

    #[test]
    fn display_and_retryability() {
        assert!(FarmError::Conflict.is_retryable());
        assert!(FarmError::SnapshotTooOld.is_retryable());
        assert!(!FarmError::OutOfMemory.is_retryable());
        assert!(!FarmError::DataLoss(RegionId(1)).is_retryable());
        let e = FarmError::NotFound(Addr::new(RegionId(1), 64));
        assert!(e.to_string().contains("r1"));
        let e: FarmError = NetError::OutOfBounds.into();
        assert!(matches!(e, FarmError::Unavailable(_)));
    }
}
