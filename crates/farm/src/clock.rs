//! The global transaction clock and the active-snapshot registry.
//!
//! FaRMv2 introduces a global clock that issues read and write timestamps,
//! giving every transaction a position in a single serialization order
//! (§5.2). Here the clock is a single atomic counter — the simulation's
//! stand-in for FaRMv2's synchronized clocks with uncertainty windows.
//!
//! The [`TsRegistry`] tracks the read timestamps of in-flight transactions.
//! Its watermark (the minimum active read timestamp) bounds old-version
//! garbage collection: the paper notes that snapshot versions used by a
//! running distributed query "are not garbage collected until the query runs
//! to completion" (§2.2).

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Strictly monotonic timestamp oracle.
#[derive(Debug)]
pub struct GlobalClock {
    now: AtomicU64,
}

impl GlobalClock {
    pub fn new() -> GlobalClock {
        GlobalClock {
            now: AtomicU64::new(1),
        }
    }

    /// Current time; used as a transaction's read timestamp.
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    /// Advance and return a fresh, globally unique timestamp; used for
    /// commit timestamps and transaction ids.
    pub fn tick(&self) -> u64 {
        self.now.fetch_add(1, Ordering::SeqCst) + 1
    }
}

impl Default for GlobalClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Registry of active read snapshots, keyed by timestamp with a refcount.
#[derive(Debug, Default)]
pub struct TsRegistry {
    active: Mutex<BTreeMap<u64, usize>>,
}

impl TsRegistry {
    pub fn new() -> Arc<TsRegistry> {
        Arc::new(TsRegistry::default())
    }

    /// Register an active snapshot; the guard deregisters on drop.
    pub fn register(self: &Arc<Self>, ts: u64) -> TsGuard {
        *self.active.lock().entry(ts).or_insert(0) += 1;
        TsGuard {
            reg: self.clone(),
            ts,
        }
    }

    /// The oldest timestamp any active transaction may still read. Versions
    /// strictly older than the newest committed version at or below the
    /// watermark can be reclaimed.
    pub fn watermark(&self, clock_now: u64) -> u64 {
        self.active
            .lock()
            .keys()
            .next()
            .copied()
            .unwrap_or(clock_now)
    }

    pub fn active_count(&self) -> usize {
        self.active.lock().values().sum()
    }
}

/// RAII guard for an active snapshot registration.
#[derive(Debug)]
pub struct TsGuard {
    reg: Arc<TsRegistry>,
    ts: u64,
}

impl TsGuard {
    pub fn ts(&self) -> u64 {
        self.ts
    }
}

impl Drop for TsGuard {
    fn drop(&mut self) {
        let mut active = self.reg.active.lock();
        if let Some(count) = active.get_mut(&self.ts) {
            *count -= 1;
            if *count == 0 {
                active.remove(&self.ts);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_monotonic_unique() {
        let c = GlobalClock::new();
        let a = c.now();
        let b = c.tick();
        let d = c.tick();
        assert!(b > a);
        assert!(d > b);
        assert_eq!(c.now(), d);
    }

    #[test]
    fn clock_concurrent_ticks_unique() {
        let c = Arc::new(GlobalClock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.tick()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "timestamps must be unique");
    }

    #[test]
    fn registry_watermark() {
        let reg = TsRegistry::new();
        assert_eq!(reg.watermark(42), 42); // empty → clock time
        let g5 = reg.register(5);
        let g9 = reg.register(9);
        let g5b = reg.register(5);
        assert_eq!(reg.watermark(42), 5);
        assert_eq!(reg.active_count(), 3);
        drop(g5);
        assert_eq!(reg.watermark(42), 5, "refcounted");
        drop(g5b);
        assert_eq!(reg.watermark(42), 9);
        drop(g9);
        assert_eq!(reg.watermark(42), 42);
    }
}
