//! Clocks: the global transaction clock, the active-snapshot registry, and
//! physical per-machine clocks with skew, uncertainty, and leases.
//!
//! FaRMv2 introduces a global clock that issues read and write timestamps,
//! giving every transaction a position in a single serialization order
//! (§5.2). Here the clock is a single atomic counter — the simulation's
//! stand-in for FaRMv2's synchronized clocks with uncertainty windows.
//!
//! The [`TsRegistry`] tracks the read timestamps of in-flight transactions.
//! Its watermark (the minimum active read timestamp) bounds old-version
//! garbage collection: the paper notes that snapshot versions used by a
//! running distributed query "are not garbage collected until the query runs
//! to completion" (§2.2).
//!
//! The rest of the module models the *physical* clocks that FaRM's
//! lease-based membership actually rests on (§2.1, §5.1): each machine has a
//! [`MachineClock`] — an injectable [`ClockSource`] reading plus a skew
//! offset and an uncertainty bound — that can drift, jump, and be
//! re-synchronized with [`MachineClock::sync`], a Marzullo-style
//! interval-intersection step ([`marzullo`]). [`Lease`] encodes the
//! fail-safe validity rules: a holder only trusts its lease when its clock
//! is not suspect and `now + uncertainty` is still inside the lease; a
//! grantor only reclaims once `now - uncertainty` is past it. The `a1-sim`
//! harness drives these through seeded skew/jump scenarios and checks the
//! lease-safety oracle over them.

use a1_rdma::{ClockSource, MachineId};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Strictly monotonic timestamp oracle.
#[derive(Debug)]
pub struct GlobalClock {
    now: AtomicU64,
}

impl GlobalClock {
    pub fn new() -> GlobalClock {
        GlobalClock {
            now: AtomicU64::new(1),
        }
    }

    /// Current time; used as a transaction's read timestamp.
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    /// Advance and return a fresh, globally unique timestamp; used for
    /// commit timestamps and transaction ids.
    pub fn tick(&self) -> u64 {
        self.now.fetch_add(1, Ordering::SeqCst) + 1
    }
}

impl Default for GlobalClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Registry of active read snapshots, keyed by timestamp with a refcount.
#[derive(Debug, Default)]
pub struct TsRegistry {
    active: Mutex<BTreeMap<u64, usize>>,
}

impl TsRegistry {
    pub fn new() -> Arc<TsRegistry> {
        Arc::new(TsRegistry::default())
    }

    /// Register an active snapshot; the guard deregisters on drop.
    pub fn register(self: &Arc<Self>, ts: u64) -> TsGuard {
        *self.active.lock().entry(ts).or_insert(0) += 1;
        TsGuard {
            reg: self.clone(),
            ts,
        }
    }

    /// The oldest timestamp any active transaction may still read. Versions
    /// strictly older than the newest committed version at or below the
    /// watermark can be reclaimed.
    pub fn watermark(&self, clock_now: u64) -> u64 {
        self.active
            .lock()
            .keys()
            .next()
            .copied()
            .unwrap_or(clock_now)
    }

    pub fn active_count(&self) -> usize {
        self.active.lock().values().sum()
    }
}

/// RAII guard for an active snapshot registration.
#[derive(Debug)]
pub struct TsGuard {
    reg: Arc<TsRegistry>,
    ts: u64,
}

impl TsGuard {
    pub fn ts(&self) -> u64 {
        self.ts
    }
}

impl Drop for TsGuard {
    fn drop(&mut self) {
        let mut active = self.reg.active.lock();
        if let Some(count) = active.get_mut(&self.ts) {
            *count -= 1;
            if *count == 0 {
                active.remove(&self.ts);
            }
        }
    }
}

// ---------------------------------------------------------------- physical

/// One clock sample exchanged during synchronization: the estimated offset
/// of a peer's clock relative to ours, as an interval `[low, high]` in ns
/// (the width comes from the measurement's round-trip uncertainty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockSample {
    pub peer: MachineId,
    pub offset_low_ns: i64,
    pub offset_high_ns: i64,
}

/// Marzullo's interval-intersection: the smallest interval contained in the
/// largest number of sample intervals, provided that number reaches
/// `quorum`. Tolerates faulty clocks — a sample that disagrees with the
/// quorum simply doesn't contain the returned interval.
///
/// Returns `None` when fewer than `quorum` intervals mutually overlap
/// anywhere (no agreement), or when `samples`/`quorum` is degenerate.
pub fn marzullo(samples: &[(i64, i64)], quorum: usize) -> Option<(i64, i64)> {
    if quorum == 0 || samples.len() < quorum {
        return None;
    }
    // Edge tuples: (value, type). Starts sort before ends at the same value
    // so touching intervals count as overlapping.
    let mut edges: Vec<(i64, i8)> = Vec::with_capacity(samples.len() * 2);
    for &(lo, hi) in samples {
        if lo > hi {
            continue; // malformed sample: ignore rather than poison the sweep
        }
        edges.push((lo, 0)); // start
        edges.push((hi, 1)); // end
    }
    edges.sort_unstable();
    let mut depth = 0usize;
    let mut best: Option<(i64, i64)> = None;
    let mut best_depth = 0usize;
    let mut open_at = 0i64;
    for &(v, kind) in &edges {
        if kind == 0 {
            depth += 1;
            if depth > best_depth {
                // A strictly deeper overlap invalidates any shallower pick.
                best_depth = depth;
                open_at = v;
                best = None;
            }
        } else {
            if depth == best_depth && best.is_none() {
                // First end edge at maximal depth closes the smallest
                // deepest interval (ties at equal depth: earliest wins —
                // deterministic).
                best = Some((open_at, v));
            }
            depth -= 1;
        }
    }
    if best_depth >= quorum {
        best
    } else {
        None
    }
}

/// Outcome of a [`MachineClock::sync`] step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncOutcome {
    /// Correction applied to the skew offset, in ns (signed).
    pub correction_ns: i64,
    /// New uncertainty bound after the sync.
    pub uncertainty_ns: u64,
    /// True when the correction exceeded the drift bound the caller passed —
    /// the clock had jumped or drifted beyond spec and was clamped back.
    pub was_out_of_bounds: bool,
}

/// A machine's physical clock: an injectable base [`ClockSource`] plus a
/// skew offset (drift/jump injection), an uncertainty bound, and a
/// backward-jump detector. Readings are clamped monotonic; observing a raw
/// regression marks the clock *suspect*, which fail-safes every lease
/// validity check until the next successful [`MachineClock::sync`].
#[derive(Debug)]
pub struct MachineClock {
    source: Arc<dyn ClockSource>,
    skew_ns: AtomicI64,
    uncertainty_ns: AtomicU64,
    last_read_ns: AtomicU64,
    suspect: AtomicBool,
}

impl MachineClock {
    pub fn new(source: Arc<dyn ClockSource>, uncertainty_ns: u64) -> Arc<MachineClock> {
        Arc::new(MachineClock {
            source,
            skew_ns: AtomicI64::new(0),
            uncertainty_ns: AtomicU64::new(uncertainty_ns),
            last_read_ns: AtomicU64::new(0),
            suspect: AtomicBool::new(false),
        })
    }

    /// The raw skewed reading (no monotonic clamp). Sim oracles use this to
    /// compare against true time.
    pub fn raw_ns(&self) -> u64 {
        self.source
            .now_ns()
            .saturating_add_signed(self.skew_ns.load(Ordering::SeqCst))
    }

    /// Monotonic local time. A raw reading behind the previous one (a
    /// backward jump) returns the previous reading and marks the clock
    /// suspect instead of going backward.
    pub fn now_ns(&self) -> u64 {
        let raw = self.raw_ns();
        let mut prev = self.last_read_ns.load(Ordering::SeqCst);
        loop {
            if raw < prev {
                self.suspect.store(true, Ordering::SeqCst);
                return prev;
            }
            match self.last_read_ns.compare_exchange_weak(
                prev,
                raw,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return raw,
                Err(now) => prev = now,
            }
        }
    }

    /// Inject a skew jump (sim fault): positive = clock runs ahead of true
    /// time. A backward jump is detected at the next read.
    pub fn jump_ns(&self, delta: i64) {
        self.skew_ns.fetch_add(delta, Ordering::SeqCst);
    }

    pub fn skew_ns(&self) -> i64 {
        self.skew_ns.load(Ordering::SeqCst)
    }

    pub fn uncertainty_ns(&self) -> u64 {
        self.uncertainty_ns.load(Ordering::SeqCst)
    }

    pub fn is_suspect(&self) -> bool {
        self.suspect.load(Ordering::SeqCst)
    }

    /// Synchronize against peer clock samples (offset intervals relative to
    /// this clock) with a Marzullo intersection over `quorum` sources.
    /// Applies the midpoint of the agreement interval as a correction,
    /// shrinks uncertainty to the interval's half-width plus `floor_ns`, and
    /// clears the suspect flag. Corrections larger than `drift_bound_ns`
    /// report `was_out_of_bounds` — this clock had wandered outside spec and
    /// the quorum pulled it back.
    ///
    /// Returns `None` (clock unchanged, still suspect if it was) when no
    /// quorum agreement exists.
    pub fn sync(
        &self,
        samples: &[ClockSample],
        quorum: usize,
        drift_bound_ns: u64,
        floor_ns: u64,
    ) -> Option<SyncOutcome> {
        let intervals: Vec<(i64, i64)> = samples
            .iter()
            .map(|s| (s.offset_low_ns, s.offset_high_ns))
            .collect();
        let (lo, hi) = marzullo(&intervals, quorum)?;
        let correction = lo.midpoint(hi);
        let half_width = ((hi - lo) / 2).unsigned_abs();
        self.skew_ns.fetch_add(correction, Ordering::SeqCst);
        self.uncertainty_ns
            .store(half_width + floor_ns, Ordering::SeqCst);
        // A correction can move raw time backward; the monotonic clamp in
        // `now_ns` absorbs it, and the fresh sync clears the suspicion.
        self.suspect.store(false, Ordering::SeqCst);
        self.last_read_ns.fetch_max(self.raw_ns(), Ordering::SeqCst);
        Some(SyncOutcome {
            correction_ns: correction,
            uncertainty_ns: half_width + floor_ns,
            was_out_of_bounds: correction.unsigned_abs() > drift_bound_ns,
        })
    }
}

/// A membership/object lease (§2.1): `holder` may act as owner until
/// `expires_at_ns` on the granting clock. Both sides check with their own
/// skewed clocks, so validity is asymmetric by design — the uncertainty
/// margins make the overlap fail-safe as long as skews stay within bounds,
/// and the suspect flag fail-safes the holder when they don't.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    pub holder: MachineId,
    pub expires_at_ns: u64,
}

impl Lease {
    /// Holder side: conservatively valid only while the holder's clock is
    /// trustworthy and even a maximally-fast local clock is inside the
    /// lease.
    pub fn holder_valid(&self, clock: &MachineClock) -> bool {
        // Read first: a backward jump is only *detected* by a read, so the
        // suspect check must come after it or the first check after a jump
        // would trust a clock that just went backward.
        let now = clock.now_ns();
        !clock.is_suspect() && now.saturating_add(clock.uncertainty_ns()) < self.expires_at_ns
    }

    /// Grantor side: conservatively expired only once even a maximally-slow
    /// grantor clock is past the lease.
    pub fn grantor_expired(&self, clock: &MachineClock) -> bool {
        clock.now_ns().saturating_sub(clock.uncertainty_ns()) > self.expires_at_ns
    }
}

/// Grants and renews leases against a grantor clock.
#[derive(Debug)]
pub struct LeaseManager {
    clock: Arc<MachineClock>,
    duration_ns: u64,
}

impl LeaseManager {
    pub fn new(clock: Arc<MachineClock>, duration_ns: u64) -> LeaseManager {
        LeaseManager { clock, duration_ns }
    }

    pub fn duration_ns(&self) -> u64 {
        self.duration_ns
    }

    pub fn grant(&self, holder: MachineId) -> Lease {
        Lease {
            holder,
            expires_at_ns: self.clock.now_ns() + self.duration_ns,
        }
    }

    /// Renew iff the lease is still valid from the grantor's view (a holder
    /// whose lease already expired must re-acquire, not renew).
    pub fn renew(&self, lease: &Lease) -> Option<Lease> {
        if lease.grantor_expired(&self.clock) {
            None
        } else {
            Some(Lease {
                holder: lease.holder,
                expires_at_ns: self.clock.now_ns() + self.duration_ns,
            })
        }
    }

    /// The grantor may reclaim (re-grant to someone else) only when its
    /// conservative expiry check passes.
    pub fn reclaimable(&self, lease: &Lease) -> bool {
        lease.grantor_expired(&self.clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_monotonic_unique() {
        let c = GlobalClock::new();
        let a = c.now();
        let b = c.tick();
        let d = c.tick();
        assert!(b > a);
        assert!(d > b);
        assert_eq!(c.now(), d);
    }

    #[test]
    fn clock_concurrent_ticks_unique() {
        let c = Arc::new(GlobalClock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.tick()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "timestamps must be unique");
    }

    #[test]
    fn marzullo_basic_intersection() {
        // Three agreeing sources: intersection is [8, 10].
        let got = marzullo(&[(0, 10), (8, 20), (5, 12)], 3);
        assert_eq!(got, Some((8, 10)));
        // Quorum 2 of the same set: deepest overlap still wins.
        assert_eq!(marzullo(&[(0, 10), (8, 20), (5, 12)], 2), Some((8, 10)));
    }

    #[test]
    fn marzullo_tolerates_outlier() {
        // One liar far away; quorum of 2 honest sources agree on [4, 6].
        let got = marzullo(&[(4, 8), (2, 6), (1000, 1010)], 2);
        assert_eq!(got, Some((4, 6)));
    }

    #[test]
    fn marzullo_no_quorum() {
        assert_eq!(marzullo(&[(0, 1), (10, 11), (20, 21)], 2), None);
        assert_eq!(marzullo(&[(0, 1)], 2), None);
        assert_eq!(marzullo(&[], 1), None);
        assert_eq!(marzullo(&[(0, 1)], 0), None);
    }

    #[test]
    fn marzullo_touching_intervals_count() {
        assert_eq!(marzullo(&[(0, 5), (5, 10)], 2), Some((5, 5)));
    }

    #[test]
    fn machine_clock_skew_and_backward_jump() {
        let base = a1_rdma::VirtualClock::new();
        base.advance(1_000);
        let mc = MachineClock::new(base.clone(), 10);
        assert_eq!(mc.now_ns(), 1_000);
        mc.jump_ns(500);
        assert_eq!(mc.now_ns(), 1_500);
        assert!(!mc.is_suspect());
        // Backward jump: reading clamps to the previous value and the clock
        // turns suspect.
        mc.jump_ns(-900);
        assert_eq!(mc.now_ns(), 1_500, "monotonic clamp");
        assert!(mc.is_suspect());
        // Sync against honest peers (offset ≈ -(-400) relative error)
        // clears suspicion and corrects skew.
        let skew = mc.skew_ns(); // -400
        let samples = [
            ClockSample {
                peer: MachineId(1),
                offset_low_ns: -skew - 5,
                offset_high_ns: -skew + 5,
            },
            ClockSample {
                peer: MachineId(2),
                offset_low_ns: -skew - 7,
                offset_high_ns: -skew + 7,
            },
        ];
        let out = mc.sync(&samples, 2, 100, 2).expect("quorum");
        assert!(out.was_out_of_bounds, "400ns correction > 100ns bound");
        assert!(!mc.is_suspect());
        assert_eq!(mc.skew_ns(), 0, "skew corrected to the agreement midpoint");
    }

    #[test]
    fn lease_margins_are_fail_safe() {
        let base = a1_rdma::VirtualClock::new();
        base.advance(1_000_000);
        let grantor = MachineClock::new(base.clone(), 1_000);
        let holder = MachineClock::new(base.clone(), 1_000);
        let mgr = LeaseManager::new(grantor.clone(), 100_000);
        let lease = mgr.grant(MachineId(1));
        assert!(lease.holder_valid(&holder));
        assert!(!mgr.reclaimable(&lease));
        // Just before expiry the holder's uncertainty margin already
        // invalidates it, while the grantor does not yet reclaim.
        base.advance(99_500);
        assert!(!lease.holder_valid(&holder), "holder margin kicked in");
        assert!(!mgr.reclaimable(&lease), "grantor margin still holding");
        // Well past expiry both sides agree.
        base.advance(2_000);
        assert!(!lease.holder_valid(&holder));
        assert!(mgr.reclaimable(&lease));
        assert!(mgr.renew(&lease).is_none(), "expired leases re-acquire");
    }

    #[test]
    fn suspect_clock_invalidates_lease() {
        let base = a1_rdma::VirtualClock::new();
        base.advance(1_000_000);
        let holder = MachineClock::new(base.clone(), 100);
        let lease = Lease {
            holder: MachineId(1),
            expires_at_ns: u64::MAX,
        };
        assert!(lease.holder_valid(&holder));
        holder.jump_ns(-5_000);
        let _ = holder.now_ns(); // observe the regression
        assert!(holder.is_suspect());
        assert!(!lease.holder_valid(&holder), "suspect clock fail-safes");
    }

    #[test]
    fn registry_watermark() {
        let reg = TsRegistry::new();
        assert_eq!(reg.watermark(42), 42); // empty → clock time
        let g5 = reg.register(5);
        let g9 = reg.register(9);
        let g5b = reg.register(5);
        assert_eq!(reg.watermark(42), 5);
        assert_eq!(reg.active_count(), 3);
        drop(g5);
        assert_eq!(reg.watermark(42), 5, "refcounted");
        drop(g5b);
        assert_eq!(reg.watermark(42), 9);
        drop(g9);
        assert_eq!(reg.watermark(42), 42);
    }
}
