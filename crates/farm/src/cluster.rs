//! The FaRM cluster: machines + CM + clock + commit protocol execution.

use crate::addr::{Addr, Ptr, RegionId};
use crate::clock::{GlobalClock, MachineClock, TsRegistry};
use crate::cm::{ConfigManager, Placement, ReconfigAction};
use crate::error::{FarmError, FarmResult};
use crate::layout::{ObjHeader, HEADER, STATE_FREE, STATE_LIVE, STATE_TOMBSTONE};
use crate::pyco::PycoDriver;
use crate::region::{OldVersion, Region};
use crate::store::FarmMachine;
use crate::txn::{compose_object, Hint, ObjBuf, Txn, TxnMode, WriteOp};
use a1_rdma::{Fabric, FabricConfig, MachineId, NetError};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    pub fabric: FabricConfig,
    /// Region size in bytes (2 GB in the paper; smaller here so tests can
    /// exercise multi-region behaviour).
    pub region_size: usize,
    /// Desired replica count (3 in production, §2.1).
    pub replicas: usize,
    /// Concurrency-control mode; `V2Mvcc` unless running the §5.2 ablation.
    pub mode: TxnMode,
    /// Retry budget for [`FarmCluster::run`].
    pub max_txn_retries: usize,
    /// How many times a reader re-polls a locked object before giving up.
    pub lock_wait_spins: u32,
    /// Automatically run failure detection when a kill is injected.
    pub auto_detect_failures: bool,
    /// Initial per-machine clock uncertainty bound (lease margins, §5.1).
    pub clock_uncertainty_ns: u64,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            fabric: FabricConfig::default(),
            region_size: 4 << 20,
            replicas: 3,
            mode: TxnMode::V2Mvcc,
            max_txn_retries: 256,
            lock_wait_spins: 1_000_000,
            auto_detect_failures: true,
            clock_uncertainty_ns: 10_000,
        }
    }
}

impl FarmConfig {
    /// Convenience: an `n`-machine cluster for tests and examples.
    pub fn small(n: u32) -> FarmConfig {
        FarmConfig {
            fabric: FabricConfig {
                machines: n,
                ..FabricConfig::default()
            },
            region_size: 1 << 20,
            ..FarmConfig::default()
        }
    }
}

/// Operation counters (commits, aborts, etc.).
#[derive(Debug, Default)]
pub struct ClusterStats {
    pub commits: AtomicU64,
    pub aborts: AtomicU64,
    pub allocated_objects: AtomicU64,
    pub freed_objects: AtomicU64,
    pub regions_created: AtomicU64,
    /// V1-mode reads that observed a version newer than the reader's
    /// snapshot — each one is a potential opacity violation (§5.2).
    pub opacity_risks: AtomicU64,
}

/// A running FaRM cluster (the paper's "set of machines each running a FaRM
/// process", §2.1). All state is in-process; machines are simulated.
pub struct FarmCluster {
    cfg: FarmConfig,
    fabric: Arc<Fabric>,
    clock: GlobalClock,
    /// Per-machine physical clocks over the fabric's injectable time source
    /// (skew/uncertainty live here; lease checks read them).
    machine_clocks: Vec<Arc<MachineClock>>,
    registry: Arc<TsRegistry>,
    machines: Vec<Arc<FarmMachine>>,
    cm: ConfigManager,
    pyco: PycoDriver,
    paused: AtomicBool,
    /// Regions irrecoverably lost (disaster-recovery territory, §4).
    lost_regions: Mutex<HashSet<u32>>,
    /// Regions whose replicas are all in crashed-but-restartable processes.
    pending_restart: Mutex<HashSet<u32>>,
    root: Mutex<Ptr>,
    stats: ClusterStats,
}

impl FarmCluster {
    /// Boot a cluster: create machines, elect the CM, create the first
    /// region, and allocate the well-known root object.
    pub fn start(cfg: FarmConfig) -> Arc<FarmCluster> {
        let fabric = Fabric::new(cfg.fabric.clone());
        let machines: Vec<Arc<FarmMachine>> = (0..cfg.fabric.machines)
            .map(|i| FarmMachine::new(MachineId(i), fabric.clone()))
            .collect();
        let racks: Vec<u32> = (0..cfg.fabric.machines)
            .map(|i| fabric.rack_of(MachineId(i)))
            .collect();
        let cm = ConfigManager::new(racks, cfg.replicas);
        let machine_clocks = (0..cfg.fabric.machines)
            .map(|_| MachineClock::new(fabric.clock().clone(), cfg.clock_uncertainty_ns))
            .collect();
        let cluster = Arc::new(FarmCluster {
            fabric,
            clock: GlobalClock::new(),
            machine_clocks,
            registry: TsRegistry::new(),
            machines,
            cm,
            pyco: PycoDriver::new(),
            paused: AtomicBool::new(false),
            lost_regions: Mutex::new(HashSet::new()),
            pending_restart: Mutex::new(HashSet::new()),
            root: Mutex::new(Ptr::NULL),
            stats: ClusterStats::default(),
            cfg,
        });
        // Bootstrap: region 0 on machine 0 and the root object in it.
        cluster
            .create_region(Some(MachineId(0)))
            .expect("bootstrap region");
        let root = cluster
            .clone()
            .run(MachineId(0), |tx| {
                tx.alloc(
                    ROOT_PAYLOAD,
                    Hint::Machine(MachineId(0)),
                    &[0; ROOT_PAYLOAD],
                )
            })
            .expect("bootstrap root object");
        *cluster.root.lock() = root;
        cluster
    }

    /// The well-known root object: a fixed-size scratch block whose payload
    /// upper layers use to anchor their catalogs (A1 stores the catalog
    /// B-tree pointer here, §3.1).
    pub fn root_ptr(&self) -> Ptr {
        *self.root.lock()
    }

    pub fn config(&self) -> &FarmConfig {
        &self.cfg
    }

    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Machine `m`'s physical clock (skew injection, lease margins). Panics
    /// on an unknown machine id.
    pub fn machine_clock(&self, m: MachineId) -> &Arc<MachineClock> {
        &self.machine_clocks[m.0 as usize]
    }

    pub fn clock(&self) -> &GlobalClock {
        &self.clock
    }

    pub fn registry(&self) -> &Arc<TsRegistry> {
        &self.registry
    }

    pub fn cm(&self) -> &ConfigManager {
        &self.cm
    }

    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    pub fn num_machines(&self) -> u32 {
        self.cfg.fabric.machines
    }

    pub fn machine(&self, id: MachineId) -> Option<&Arc<FarmMachine>> {
        self.machines.get(id.0 as usize)
    }

    /// Primary host of an address — the query engine's "map pointers to
    /// physical hosts" metadata operation (§3.4, purely local).
    pub fn primary_of(&self, addr: Addr) -> Option<MachineId> {
        self.cm.primary_of(addr.region())
    }

    // ---------------------------------------------------------------- txns

    /// Begin a read-write transaction coordinated by `origin`.
    pub fn begin(self: &Arc<Self>, origin: MachineId) -> Txn {
        let read_ts = self.clock.now();
        let guard = self.registry.register(read_ts);
        let tx_id = self.clock.tick();
        Txn::new(
            self.clone(),
            origin,
            read_ts,
            tx_id,
            self.cfg.mode,
            false,
            Some(guard),
        )
    }

    /// Begin a read-only snapshot transaction.
    pub fn begin_read_only(self: &Arc<Self>, origin: MachineId) -> Txn {
        let read_ts = self.clock.now();
        self.begin_read_only_at(origin, read_ts)
    }

    /// Begin a read-only transaction at a specific snapshot — used by query
    /// workers to join the coordinator's snapshot so a distributed query
    /// reads one consistent version across the whole cluster (§3.4).
    pub fn begin_read_only_at(self: &Arc<Self>, origin: MachineId, ts: u64) -> Txn {
        let guard = self.registry.register(ts);
        Txn::new(
            self.clone(),
            origin,
            ts,
            0,
            self.cfg.mode,
            true,
            Some(guard),
        )
    }

    /// Run a read-write transaction with the canonical retry loop
    /// (paper Fig. 3): retry on conflicts with exponential backoff.
    pub fn run<T>(
        self: &Arc<Self>,
        origin: MachineId,
        mut f: impl FnMut(&mut Txn) -> FarmResult<T>,
    ) -> FarmResult<T> {
        // The canonical Fig. 3 loop retries until commit; the (large) retry
        // budget only bounds pathological livelock. Backoff is jittered from
        // the cluster RNG so contending retriers desynchronize — and so a
        // seeded simulation run replays the same jitter sequence.
        let mut backoff_us = 2u64;
        for attempt in 0..=self.cfg.max_txn_retries {
            self.check_paused()?;
            let mut tx = self.begin(origin);
            match f(&mut tx) {
                Ok(v) => match tx.commit() {
                    Ok(_) => return Ok(v),
                    Err(e) if e.is_retryable() && attempt < self.cfg.max_txn_retries => {}
                    Err(e) => return Err(e),
                },
                Err(e) if e.is_retryable() && attempt < self.cfg.max_txn_retries => {
                    tx.abort();
                }
                Err(e) => {
                    tx.abort();
                    return Err(e);
                }
            }
            let jitter = 1 + self.fabric.rng().gen_range(7);
            self.fabric.clock().sleep(std::time::Duration::from_micros(
                (backoff_us + jitter).min(300),
            ));
            backoff_us = backoff_us.saturating_mul(2);
        }
        Err(FarmError::Conflict)
    }

    fn check_paused(&self) -> FarmResult<()> {
        if self.paused.load(Ordering::Acquire) {
            Err(FarmError::Paused)
        } else {
            Ok(())
        }
    }

    // ------------------------------------------------------------- regions

    /// Create and host a new region (primary on `preferred` if possible).
    pub fn create_region(&self, preferred: Option<MachineId>) -> FarmResult<Arc<Region>> {
        let (id, placement) = self
            .cm
            .place_new_region(preferred)
            .ok_or(FarmError::OutOfMemory)?;
        let mut primary_region = None;
        for m in placement.replicas() {
            let machine = &self.machines[m.0 as usize];
            let is_primary = m == placement.primary;
            let region = machine.host_new_region(id, self.cfg.region_size, is_primary, &self.pyco);
            if is_primary {
                primary_region = Some(region);
            }
        }
        self.stats.regions_created.fetch_add(1, Ordering::Relaxed);
        primary_region.ok_or(FarmError::OutOfMemory)
    }

    /// Resolve a region to its primary replica, retrying once through
    /// failure detection if the primary looks dead.
    pub(crate) fn resolve(&self, rid: RegionId) -> FarmResult<(Arc<Region>, MachineId)> {
        self.check_paused()?;
        for _ in 0..2 {
            if self.lost_regions.lock().contains(&rid.0) {
                return Err(FarmError::DataLoss(rid));
            }
            let Some(primary) = self.cm.primary_of(rid) else {
                return Err(FarmError::Unavailable(format!("region {rid} unknown")));
            };
            if !self.fabric.is_alive(primary) {
                self.detect_failures();
                continue;
            }
            match self.machines[primary.0 as usize].region(rid) {
                Some(region) => return Ok((region, primary)),
                None => {
                    // Process crashed but machine "up"? Treat as failure.
                    self.detect_failures();
                }
            }
        }
        self.check_paused()?;
        Err(FarmError::Unavailable(format!(
            "region {rid} has no reachable primary"
        )))
    }

    // ---------------------------------------------------------- object ops

    /// One-sided read of header + payload; spins while the object is locked
    /// by an in-flight commit. Returns the parsed header and payload bytes
    /// (`len` bytes, re-reading if the size hint was stale).
    pub(crate) fn read_raw(&self, origin: MachineId, ptr: Ptr) -> FarmResult<(ObjHeader, Bytes)> {
        let rid = ptr.addr.region();
        let off = ptr.addr.offset() as usize;
        let mut want = ptr.size as usize;
        let mut spins = 0u32;
        // Resolve once up front: a CM lookup + pause check + liveness probe
        // per lock-wait iteration would dominate the spin (hot objects are
        // spun on by many readers at once). Re-resolve only when the fabric
        // reports the primary unreachable, or every 64th spin so a
        // reconfiguration during a long wait is still picked up.
        let (_, mut primary) = self.resolve(rid)?;
        loop {
            let raw = match self
                .fabric
                .read(origin, primary, rid.0 as u64, off, HEADER + want)
            {
                Ok(raw) => raw,
                Err(NetError::MachineUnreachable(_)) => {
                    self.detect_failures();
                    primary = self.resolve(rid)?.1;
                    self.fabric
                        .read(origin, primary, rid.0 as u64, off, HEADER + want)?
                }
                Err(e) => return Err(e.into()),
            };
            let h = ObjHeader::parse(&raw).ok_or(FarmError::Unavailable("short read".into()))?;
            if h.is_locked() || (h.capacity != 0 && h.state != STATE_FREE && !h.is_committed()) {
                // Locked by an in-flight commit, or reserved but not yet
                // committed: either an in-flight commit whose apply phase
                // hasn't stamped this object yet (a pointer to it can
                // already be visible through an earlier-applied write of the
                // same commit), or an allocation that is about to be rolled
                // back (then the state flips to FREE). Both resolve promptly
                // — spin-wait.
                spins += 1;
                if spins > self.cfg.lock_wait_spins {
                    return Err(FarmError::Conflict);
                }
                std::hint::spin_loop();
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                    primary = self.resolve(rid)?.1;
                }
                continue;
            }
            if h.capacity == 0 || h.state == STATE_FREE {
                return Err(FarmError::NotFound(ptr.addr));
            }
            let len = h.len as usize;
            if len > want {
                want = len;
                continue; // stale size hint: re-read with the real length
            }
            let payload = raw.slice(HEADER..HEADER + len);
            return Ok((h, payload));
        }
    }

    /// One-sided read of an object's **header only** — the version-probe
    /// primitive behind the a1-core read cache. Follows the same
    /// resolve/lock-spin/re-resolve protocol as [`read_raw`](Self::read_raw)
    /// but fetches `HEADER` bytes instead of header + payload, so a
    /// revalidation probe of a cached multi-KB record costs a header-sized
    /// transfer. Freed or never-allocated blocks return `NotFound` — a
    /// cached entry whose block was freed (or whose region migrated and was
    /// reused) can therefore never revalidate successfully.
    pub(crate) fn probe_header(&self, origin: MachineId, addr: Addr) -> FarmResult<ObjHeader> {
        let rid = addr.region();
        let off = addr.offset() as usize;
        let mut spins = 0u32;
        let (_, mut primary) = self.resolve(rid)?;
        loop {
            let raw = match self.fabric.read(origin, primary, rid.0 as u64, off, HEADER) {
                Ok(raw) => raw,
                Err(NetError::MachineUnreachable(_)) => {
                    self.detect_failures();
                    primary = self.resolve(rid)?.1;
                    self.fabric
                        .read(origin, primary, rid.0 as u64, off, HEADER)?
                }
                Err(e) => return Err(e.into()),
            };
            let h = ObjHeader::parse(&raw).ok_or(FarmError::Unavailable("short read".into()))?;
            if h.is_locked() || (h.capacity != 0 && h.state != STATE_FREE && !h.is_committed()) {
                // Same transient states as `read_raw`: an in-flight commit
                // holds the lock (or hasn't stamped the version yet) — wait
                // it out rather than reporting a spurious mismatch.
                spins += 1;
                if spins > self.cfg.lock_wait_spins {
                    return Err(FarmError::Conflict);
                }
                std::hint::spin_loop();
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                    primary = self.resolve(rid)?.1;
                }
                continue;
            }
            if h.capacity == 0 || h.state == STATE_FREE {
                return Err(FarmError::NotFound(addr));
            }
            return Ok(h);
        }
    }

    /// Doorbell-batched combination of [`read_raw`](Self::read_raw) and
    /// [`probe_header`](Self::probe_header): every spec `(addr, want)` with
    /// `want > 0` is a header+payload read of a `want`-byte object, and
    /// `want == 0` is a header-only version probe — so a morsel's cache
    /// revalidation probes ride in the **same** post as its header reads.
    ///
    /// Specs are grouped by resolved primary (one region resolve per
    /// distinct region, per the PR 5 resolve-once convention) and each group
    /// is posted with a single [`Fabric::read_many`] doorbell. Entries that
    /// come back locked, uncommitted, or with a stale size hint fall back to
    /// the scalar path, which owns the lock-wait spin protocol; a batch-level
    /// network failure falls back to the scalar path for the whole group so
    /// per-entry errors and re-resolution behave exactly as scalar reads do.
    ///
    /// Returns per-entry results in input order plus the number of one-sided
    /// read posts issued (doorbells + scalar fallback reads) for the
    /// caller's verb accounting.
    ///
    /// [`Fabric::read_many`]: a1_rdma::Fabric::read_many
    pub(crate) fn read_raw_many(
        &self,
        origin: MachineId,
        specs: &[(Addr, u32)],
    ) -> (Vec<FarmResult<(ObjHeader, Bytes)>>, u64) {
        let mut out: Vec<Option<FarmResult<(ObjHeader, Bytes)>>> = vec![None; specs.len()];
        let mut verbs = 0u64;
        // Resolve each distinct region once, then group spec indices by
        // primary so same-destination reads share a doorbell.
        let mut resolved: HashMap<RegionId, FarmResult<MachineId>> = HashMap::new();
        let mut groups: HashMap<MachineId, Vec<usize>> = HashMap::new();
        for (i, &(addr, _)) in specs.iter().enumerate() {
            let rid = addr.region();
            let primary = resolved
                .entry(rid)
                .or_insert_with(|| self.resolve(rid).map(|(_, p)| p));
            match primary {
                Ok(p) => groups.entry(*p).or_default().push(i),
                Err(e) => out[i] = Some(Err(e.clone())),
            }
        }
        let scalar = |i: usize, verbs: &mut u64| {
            let (addr, want) = specs[i];
            *verbs += 1;
            if want == 0 {
                self.probe_header(origin, addr).map(|h| (h, Bytes::new()))
            } else {
                self.read_raw(origin, Ptr::new(addr, want))
            }
        };
        for (primary, idxs) in groups {
            let batch: Vec<(u64, usize, usize)> = idxs
                .iter()
                .map(|&i| {
                    let (addr, want) = specs[i];
                    (
                        addr.region().0 as u64,
                        addr.offset() as usize,
                        HEADER + want as usize,
                    )
                })
                .collect();
            match self.fabric.read_many(origin, primary, &batch) {
                Ok(results) => {
                    verbs += 1;
                    for (&i, res) in idxs.iter().zip(results) {
                        let (addr, want) = specs[i];
                        out[i] = Some(match res {
                            Ok(raw) => {
                                match ObjHeader::parse(&raw) {
                                    None => Err(FarmError::Unavailable("short read".into())),
                                    Some(h)
                                        if h.is_locked()
                                            || (h.capacity != 0
                                                && h.state != STATE_FREE
                                                && !h.is_committed()) =>
                                    {
                                        // Locked by an in-flight commit: the
                                        // scalar path owns the spin protocol.
                                        scalar(i, &mut verbs)
                                    }
                                    Some(h) if h.capacity == 0 || h.state == STATE_FREE => {
                                        Err(FarmError::NotFound(addr))
                                    }
                                    Some(h) if want > 0 && h.len > want => {
                                        // Stale size hint: re-read scalar
                                        // with the real length.
                                        scalar(i, &mut verbs)
                                    }
                                    Some(h) => {
                                        let len = if want == 0 { 0 } else { h.len as usize };
                                        Ok((h, raw.slice(HEADER..HEADER + len)))
                                    }
                                }
                            }
                            // Per-entry segment errors surface like scalar
                            // reads of a bad address.
                            Err(e) => Err(e.into()),
                        });
                    }
                }
                Err(NetError::MachineUnreachable(_)) => {
                    // The whole post failed (dead primary or partition):
                    // the scalar path re-detects and re-resolves per entry.
                    self.detect_failures();
                    for &i in &idxs {
                        out[i] = Some(scalar(i, &mut verbs));
                    }
                }
                Err(e) => {
                    for &i in &idxs {
                        out[i] = Some(Err(e.clone().into()));
                    }
                }
            }
        }
        (
            out.into_iter()
                .map(|r| r.expect("every spec slot filled"))
                .collect(),
            verbs,
        )
    }

    /// Serve a read-only snapshot read from the primary's old-version store.
    pub(crate) fn read_old_version(
        &self,
        origin: MachineId,
        ptr: Ptr,
        read_ts: u64,
    ) -> FarmResult<ObjBuf> {
        let (region, primary) = self.resolve(ptr.addr.region())?;
        // FaRMv2 takes an extra round trip to fetch an old version.
        if primary != origin {
            self.fabric.charge_ns(self.cfg.fabric.latency.one_sided_ns(
                false,
                self.fabric.rack_of(origin) == self.fabric.rack_of(primary),
                ptr.size as usize,
            ));
        }
        let off = ptr.addr.offset();
        let found = region
            .with_meta(|meta| {
                match meta.snapshot_lookup(off, read_ts) {
                    Some(old) => {
                        Some((old.version, old.state, Bytes::copy_from_slice(&old.payload)))
                    }
                    None if read_ts < meta.history_floor => None, // too old
                    None => Some((0, STATE_FREE, Bytes::new())),  // didn't exist yet
                }
            })
            .ok_or_else(|| FarmError::Unavailable("old-version read hit a backup".into()))?;
        match found {
            None => Err(FarmError::SnapshotTooOld),
            Some((0, _, _)) => Err(FarmError::NotFound(ptr.addr)),
            Some((_, STATE_TOMBSTONE, _)) => Err(FarmError::NotFound(ptr.addr)),
            Some((version, _, payload)) => Ok(ObjBuf {
                ptr,
                version,
                capacity: payload.len().max(ptr.size as usize) as u32,
                data: payload,
            }),
        }
    }

    /// Batched [`read_old_version`](Self::read_old_version): old-version
    /// fetches grouped per destination primary, each group charged **one**
    /// batched round trip instead of one per object — so a work op that
    /// trips over several concurrently-updated objects pays a single extra
    /// doorbell per machine for its snapshot reads, not one per vertex.
    /// Returns per-entry results in input order plus the number of posts
    /// charged (remote groups only; local lookups are memory reads).
    pub(crate) fn read_old_versions(
        &self,
        origin: MachineId,
        ptrs: &[Ptr],
        read_ts: u64,
    ) -> (Vec<FarmResult<ObjBuf>>, u64) {
        let mut out: Vec<Option<FarmResult<ObjBuf>>> = vec![None; ptrs.len()];
        let mut verbs = 0u64;
        let mut groups: HashMap<MachineId, Vec<usize>> = HashMap::new();
        let mut regions: HashMap<RegionId, FarmResult<(Arc<Region>, MachineId)>> = HashMap::new();
        for (i, ptr) in ptrs.iter().enumerate() {
            let rid = ptr.addr.region();
            match regions
                .entry(rid)
                .or_insert_with(|| self.resolve(rid))
                .as_ref()
            {
                Ok((_, p)) => groups.entry(*p).or_default().push(i),
                Err(e) => out[i] = Some(Err(e.clone())),
            }
        }
        for (primary, idxs) in groups {
            if primary != origin {
                verbs += 1;
                let total: usize = idxs.iter().map(|&i| ptrs[i].size as usize).sum();
                self.fabric
                    .charge_ns(self.cfg.fabric.latency.one_sided_batch_ns(
                        false,
                        self.fabric.rack_of(origin) == self.fabric.rack_of(primary),
                        idxs.len(),
                        total,
                    ));
            }
            for &i in &idxs {
                out[i] = Some(self.lookup_old_version(&regions, ptrs[i], read_ts));
            }
        }
        (
            out.into_iter()
                .map(|r| r.expect("every ptr slot filled"))
                .collect(),
            verbs,
        )
    }

    /// The store-side half of an old-version read: meta lookup only, no
    /// latency charge (shared by the scalar and batched paths).
    fn lookup_old_version(
        &self,
        regions: &HashMap<RegionId, FarmResult<(Arc<Region>, MachineId)>>,
        ptr: Ptr,
        read_ts: u64,
    ) -> FarmResult<ObjBuf> {
        let region = match regions.get(&ptr.addr.region()) {
            Some(Ok((region, _))) => region,
            Some(Err(e)) => return Err(e.clone()),
            None => return Err(FarmError::Unavailable("unresolved region".into())),
        };
        let off = ptr.addr.offset();
        let found = region
            .with_meta(|meta| match meta.snapshot_lookup(off, read_ts) {
                Some(old) => Some((old.version, old.state, Bytes::copy_from_slice(&old.payload))),
                None if read_ts < meta.history_floor => None,
                None => Some((0, STATE_FREE, Bytes::new())),
            })
            .ok_or_else(|| FarmError::Unavailable("old-version read hit a backup".into()))?;
        match found {
            None => Err(FarmError::SnapshotTooOld),
            Some((0, _, _)) => Err(FarmError::NotFound(ptr.addr)),
            Some((_, STATE_TOMBSTONE, _)) => Err(FarmError::NotFound(ptr.addr)),
            Some((version, _, payload)) => Ok(ObjBuf {
                ptr,
                version,
                capacity: payload.len().max(ptr.size as usize) as u32,
                data: payload,
            }),
        }
    }

    /// Eagerly reserve a block for a new object (invisible until commit).
    pub(crate) fn alloc_object(
        &self,
        origin: MachineId,
        size: usize,
        hint: Hint,
    ) -> FarmResult<(Ptr, u32)> {
        self.check_paused()?;
        // 1. Resolve the hint to a target region or machine.
        if let Hint::Near(addr) = hint {
            if let Ok((region, primary)) = self.resolve(addr.region()) {
                if let Some(got) = self.try_alloc_in(&region, primary, origin, size) {
                    return Ok(got);
                }
                // Hint region full: fall through to its primary machine.
                return self.alloc_on_machine(origin, primary, size);
            }
        }
        let target = match hint {
            Hint::Local => origin,
            Hint::Machine(m) => m,
            Hint::Near(_) => origin, // unreachable hint region: allocate locally
        };
        self.alloc_on_machine(origin, target, size)
    }

    fn alloc_on_machine(
        &self,
        origin: MachineId,
        target: MachineId,
        size: usize,
    ) -> FarmResult<(Ptr, u32)> {
        let target = if self.fabric.is_alive(target) {
            target
        } else {
            origin
        };
        if target != origin {
            // Remote allocation request costs a message.
            self.fabric.charge_ns(self.cfg.fabric.latency.rpc_ns(
                self.fabric.rack_of(origin) == self.fabric.rack_of(target),
                64,
            ));
        }
        let machine = self
            .machines
            .get(target.0 as usize)
            .ok_or_else(|| FarmError::Unavailable(format!("no machine {target}")))?;
        for region in machine.primary_regions() {
            if let Some(got) = self.try_alloc_in(&region, target, origin, size) {
                return Ok(got);
            }
        }
        // Try reclaiming deferred frees, then retry once.
        self.gc();
        for region in machine.primary_regions() {
            if let Some(got) = self.try_alloc_in(&region, target, origin, size) {
                return Ok(got);
            }
        }
        // All local regions full: grow the cluster by one region.
        let region = self.create_region(Some(target))?;
        let primary = self.cm.primary_of(region.id).unwrap_or(target);
        self.try_alloc_in(&region, primary, origin, size)
            .map(Ok)
            .unwrap_or(Err(FarmError::OutOfMemory))
    }

    fn try_alloc_in(
        &self,
        region: &Arc<Region>,
        _primary: MachineId,
        _origin: MachineId,
        size: usize,
    ) -> Option<(Ptr, u32)> {
        let (off, capacity) = region.with_meta(|meta| meta.alloc.alloc(size))??;
        // Reserve: header with version 0 (uncommitted) so scans see the block.
        let h = ObjHeader {
            lock: 0,
            version: 0,
            capacity,
            state: STATE_LIVE,
            len: size as u32,
        };
        region.seg.write(off as usize, &h.encode())?;
        self.stats.allocated_objects.fetch_add(1, Ordering::Relaxed);
        Some((Ptr::new(Addr::new(region.id, off), size as u32), capacity))
    }

    /// Roll back an eager reservation (abort path).
    pub(crate) fn rollback_alloc(&self, ptr: Ptr, capacity: u32) {
        if let Ok((region, _)) = self.resolve(ptr.addr.region()) {
            let off = ptr.addr.offset();
            region.with_meta(|meta| meta.alloc.free(off, capacity));
            let h = ObjHeader {
                lock: 0,
                version: 0,
                capacity,
                state: STATE_FREE,
                len: 0,
            };
            region.seg.write(off as usize, &h.encode());
            self.stats.allocated_objects.fetch_sub(1, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------ commit protocol

    /// Execute the write-phase of the FaRM commit protocol (§2.1, §5.2):
    /// lock write set → commit timestamp → validate read set → apply +
    /// replicate → unlock.
    pub(crate) fn commit_writes(
        &self,
        origin: MachineId,
        tx_id: u64,
        read_set: &HashMap<Addr, u64>,
        writes: &mut BTreeMap<Addr, WriteOp>,
    ) -> FarmResult<u64> {
        self.check_paused()?;
        // Phase 1: LOCK the write set in deterministic (sorted) address order.
        let mut locked: Vec<Addr> = Vec::with_capacity(writes.len());
        for (addr, op) in writes.iter() {
            let read_version = match op {
                WriteOp::Update { read_version, .. } | WriteOp::Free { read_version, .. } => {
                    *read_version
                }
                WriteOp::Alloc { .. } => continue, // private until commit
            };
            let rid = addr.region();
            let off = addr.offset() as usize;
            let primary = match self.resolve(rid) {
                Ok((_, p)) => p,
                Err(e) => {
                    self.unlock_all(origin, tx_id, &locked);
                    return Err(e);
                }
            };
            let prev = match self
                .fabric
                .cas64(origin, primary, rid.0 as u64, off, 0, tx_id)
            {
                Ok(prev) => prev,
                Err(e) => {
                    self.unlock_all(origin, tx_id, &locked);
                    return Err(e.into());
                }
            };
            if prev != 0 {
                self.unlock_all(origin, tx_id, &locked);
                return Err(FarmError::Conflict);
            }
            locked.push(*addr);
            // Version check under lock.
            match self.read_header(origin, *addr) {
                Ok(h) if h.version == read_version && h.state != STATE_FREE => {}
                Ok(_) => {
                    self.unlock_all(origin, tx_id, &locked);
                    return Err(FarmError::Conflict);
                }
                Err(e) => {
                    self.unlock_all(origin, tx_id, &locked);
                    return Err(e);
                }
            }
        }

        // Phase 2: commit timestamp — after all locks, so it exceeds every
        // read timestamp that could have observed the old state.
        let commit_ts = self.clock.tick();

        // Phase 3: VALIDATE reads not in the write set.
        let reads: Vec<(Addr, u64)> = read_set
            .iter()
            .filter(|(a, _)| !writes.contains_key(a))
            .map(|(a, v)| (*a, *v))
            .collect();
        if let Err(e) = self.validate_reads(origin, &reads) {
            self.unlock_all(origin, tx_id, &locked);
            return Err(e);
        }

        // Phase 4: APPLY + replicate, releasing locks via the final header
        // write at each primary.
        let watermark = self.registry.watermark(self.clock.now());
        for (addr, op) in writes.iter() {
            self.apply_op(origin, *addr, op, commit_ts, watermark)?;
        }
        Ok(commit_ts)
    }

    /// Re-check that each read's version is still current and unlocked.
    pub(crate) fn validate_reads(
        &self,
        origin: MachineId,
        reads: &[(Addr, u64)],
    ) -> FarmResult<()> {
        for (addr, seen) in reads {
            let h = self.read_header(origin, *addr)?;
            if h.is_locked() || h.version != *seen {
                return Err(FarmError::Conflict);
            }
        }
        Ok(())
    }

    fn read_header(&self, origin: MachineId, addr: Addr) -> FarmResult<ObjHeader> {
        let rid = addr.region();
        let (_, primary) = self.resolve(rid)?;
        let raw = self.fabric.read(
            origin,
            primary,
            rid.0 as u64,
            addr.offset() as usize,
            HEADER,
        )?;
        ObjHeader::parse(&raw).ok_or(FarmError::Unavailable("short header read".into()))
    }

    fn unlock_all(&self, origin: MachineId, tx_id: u64, locked: &[Addr]) {
        for addr in locked {
            let rid = addr.region();
            if let Ok((_, primary)) = self.resolve(rid) {
                let _ = self.fabric.cas64(
                    origin,
                    primary,
                    rid.0 as u64,
                    addr.offset() as usize,
                    tx_id,
                    0,
                );
            }
        }
    }

    fn apply_op(
        &self,
        origin: MachineId,
        addr: Addr,
        op: &WriteOp,
        commit_ts: u64,
        watermark: u64,
    ) -> FarmResult<()> {
        let rid = addr.region();
        let (region, primary) = self.resolve(rid)?;
        let off = addr.offset();
        let placement = self
            .cm
            .placement(rid)
            .ok_or_else(|| FarmError::Unavailable(format!("region {rid} unplaced")))?;

        let bytes = match op {
            WriteOp::Update { capacity, data, .. } => {
                self.stash_old_version(&region, off, commit_ts, watermark);
                compose_object(commit_ts, *capacity, STATE_LIVE, data)
            }
            WriteOp::Alloc { capacity, data } => {
                compose_object(commit_ts, *capacity, STATE_LIVE, data)
            }
            WriteOp::Free { capacity, .. } => {
                self.stash_old_version(&region, off, commit_ts, watermark);
                region.with_meta(|meta| meta.defer_free(commit_ts, off, *capacity));
                self.stats.freed_objects.fetch_add(1, Ordering::Relaxed);
                compose_object(commit_ts, *capacity, STATE_TOMBSTONE, &[])
            }
        };

        // Primary write last byte wins: includes version bump and lock release.
        self.fabric
            .write(origin, primary, rid.0 as u64, off as usize, &bytes)?;
        // Replicate to backups (one-sided writes, §2.1). Dead backups are
        // skipped; reconfiguration will re-replicate.
        for b in &placement.backups {
            let _ = self
                .fabric
                .write(origin, *b, rid.0 as u64, off as usize, &bytes);
        }
        Ok(())
    }

    /// Save the current committed state of an object as an old version
    /// before overwriting it.
    fn stash_old_version(&self, region: &Arc<Region>, off: u32, new_version: u64, watermark: u64) {
        let Some(raw) = region.seg.read(off as usize, HEADER) else {
            return;
        };
        let Some(h) = ObjHeader::parse(&raw) else {
            return;
        };
        if h.version == 0 {
            return; // object was never committed; nothing to preserve
        }
        let payload = region
            .seg
            .read(off as usize + HEADER, h.len as usize)
            .unwrap_or_default();
        region.with_meta(|meta| {
            meta.push_old_version(
                off,
                OldVersion {
                    version: h.version,
                    state: h.state,
                    payload: payload.to_vec().into(),
                    len: h.len,
                },
                new_version,
                watermark,
            );
        });
    }

    pub(crate) fn note_commit(&self) {
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_abort(&self) {
        self.stats.aborts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_opacity_risk(&self) {
        self.stats.opacity_risks.fetch_add(1, Ordering::Relaxed);
    }

    // ------------------------------------------------------------- failures

    /// Kill a machine (hardware failure: memory content is gone for good).
    pub fn kill_machine(&self, m: MachineId) {
        self.fabric.kill(m);
        self.machines[m.0 as usize].crash();
        self.pyco.clear_machine(m);
        if self.cfg.auto_detect_failures {
            self.detect_failures();
        }
    }

    /// Crash the FaRM *process* on a machine. Region memory survives in the
    /// PyCo driver (§5.3); the CM waits for the process to come back rather
    /// than re-replicating.
    pub fn crash_process(&self, m: MachineId) {
        self.fabric.kill(m);
        self.machines[m.0 as usize].crash();
        // If any region now has no reachable replica at all, pause the whole
        // system until the process restarts (§5.3).
        for (rid, placement) in self.cm.regions() {
            let any_up = placement.replicas().any(|r| self.fabric.is_alive(r));
            if !any_up {
                self.pending_restart.lock().insert(rid.0);
                self.paused.store(true, Ordering::Release);
            }
        }
    }

    /// Fast restart after a process crash: re-attach PyCo memory, rebuild
    /// allocator metadata for primaries, clear stale locks, resume.
    pub fn restart_process(&self, m: MachineId) {
        let machine = &self.machines[m.0 as usize];
        let regions = machine.reattach_from_pyco(&self.pyco);
        let floor = self.clock.now();
        for region in regions {
            if self.cm.primary_of(region.id) == Some(m) {
                region.rebuild_meta(floor);
            }
            self.pending_restart.lock().remove(&region.id.0);
        }
        self.fabric.revive(m);
        self.cm.mark_alive(m);
        if self.pending_restart.lock().is_empty() {
            self.paused.store(false, Ordering::Release);
        }
    }

    /// Reboot a machine: process *and* PyCo memory are gone. Data survives
    /// only through replicas on other machines.
    pub fn reboot_machine(&self, m: MachineId) {
        self.kill_machine(m);
    }

    /// Run failure detection: compare fabric liveness against CM membership
    /// and execute any reconfiguration actions.
    pub fn detect_failures(&self) {
        for i in 0..self.machines.len() {
            let m = MachineId(i as u32);
            if !self.fabric.is_alive(m) && self.cm.is_alive(m) {
                let actions = self.cm.handle_failure(m);
                self.apply_reconfig(actions);
            }
        }
    }

    fn apply_reconfig(&self, actions: Vec<ReconfigAction>) {
        let floor = self.clock.now();
        for action in actions {
            match action {
                ReconfigAction::Promote {
                    region,
                    new_primary,
                } => {
                    if let Some(r) = self.machines[new_primary.0 as usize].region(region) {
                        r.rebuild_meta(floor);
                    }
                }
                ReconfigAction::AddBackup {
                    region,
                    source,
                    target,
                } => {
                    let Some(src) = self.machines[source.0 as usize].region(region) else {
                        continue;
                    };
                    let bytes = src.seg.clone_bytes();
                    // Bulk copy crosses the wire: charge bandwidth.
                    self.fabric.charge_ns(
                        (bytes.len() as u64 / 1024) * self.cfg.fabric.latency.per_kib_ns,
                    );
                    self.machines[target.0 as usize]
                        .host_region_from_bytes(region, bytes, &self.pyco);
                }
                ReconfigAction::TotalLoss { region } => {
                    self.lost_regions.lock().insert(region.0);
                }
            }
        }
    }

    /// Whether any region has been irrecoverably lost (triggers DR, §4).
    pub fn has_data_loss(&self) -> bool {
        !self.lost_regions.lock().is_empty()
    }

    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::Acquire)
    }

    // ------------------------------------------------------------------ gc

    /// Reclaim deferred frees and prune version chains that no active
    /// snapshot can read.
    pub fn gc(&self) {
        let watermark = self.registry.watermark(self.clock.now());
        for machine in &self.machines {
            for region in machine.primary_regions() {
                let reclaimed = region.with_meta(|meta| meta.take_reclaimable(watermark));
                if let Some(reclaimed) = reclaimed {
                    if !reclaimed.is_empty() {
                        region.clear_reclaimed_headers(&reclaimed);
                    }
                }
            }
        }
    }

    /// Placement of a region (diagnostics / benches).
    pub fn placement(&self, rid: RegionId) -> Option<Placement> {
        self.cm.placement(rid)
    }
}

const ROOT_PAYLOAD: usize = 224; // one 256-byte block

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Arc<FarmCluster> {
        FarmCluster::start(FarmConfig::small(4))
    }

    #[test]
    fn bootstrap_creates_root() {
        let c = cluster();
        let root = c.root_ptr();
        assert!(!root.is_null());
        assert_eq!(root.addr.region(), RegionId(0));
        // Root is readable.
        let mut tx = c.begin_read_only(MachineId(1));
        let buf = tx.read(root).unwrap();
        assert_eq!(buf.len(), ROOT_PAYLOAD);
    }

    #[test]
    fn alloc_read_update_roundtrip() {
        let c = cluster();
        let ptr = c
            .run(MachineId(0), |tx| tx.alloc(64, Hint::Local, b"hello"))
            .unwrap();
        assert_eq!(ptr.size, 64);

        let mut tx = c.begin_read_only(MachineId(2));
        let buf = tx.read(ptr).unwrap();
        assert_eq!(&buf.data()[..5], b"hello");

        c.run(MachineId(1), |tx| {
            let buf = tx.read(ptr)?;
            tx.update(&buf, b"world!".to_vec())
        })
        .unwrap();

        let mut tx = c.begin_read_only(MachineId(3));
        let buf = tx.read(ptr).unwrap();
        assert_eq!(&buf.data()[..6], b"world!");
    }

    #[test]
    fn atomic_counter_increment_from_paper_fig3() {
        let c = cluster();
        let ptr = c
            .run(MachineId(0), |tx| {
                tx.alloc(8, Hint::Local, &0u64.to_le_bytes())
            })
            .unwrap();
        // 4 threads × 50 increments, exactly the Fig. 3 retry loop.
        let mut handles = Vec::new();
        for i in 0..4u32 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    c.run(MachineId(i % 4), |tx| {
                        let buf = tx.read(ptr)?;
                        let v = u64::from_le_bytes(buf.data()[..8].try_into().unwrap());
                        tx.update(&buf, (v + 1).to_le_bytes().to_vec())
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut tx = c.begin_read_only(MachineId(0));
        let buf = tx.read(ptr).unwrap();
        assert_eq!(u64::from_le_bytes(buf.data()[..8].try_into().unwrap()), 200);
    }

    #[test]
    fn snapshot_isolation_for_readers() {
        let c = cluster();
        let ptr = c
            .run(MachineId(0), |tx| {
                tx.alloc(8, Hint::Local, &1u64.to_le_bytes())
            })
            .unwrap();
        // Open a snapshot, then write twice.
        let mut ro = c.begin_read_only(MachineId(1));
        for v in [2u64, 3u64] {
            c.run(MachineId(0), |tx| {
                let buf = tx.read(ptr)?;
                tx.update(&buf, v.to_le_bytes().to_vec())
            })
            .unwrap();
        }
        // The old snapshot still sees 1 (MVCC); a fresh one sees 3.
        let buf = ro.read(ptr).unwrap();
        assert_eq!(u64::from_le_bytes(buf.data()[..8].try_into().unwrap()), 1);
        let mut fresh = c.begin_read_only(MachineId(1));
        let buf = fresh.read(ptr).unwrap();
        assert_eq!(u64::from_le_bytes(buf.data()[..8].try_into().unwrap()), 3);
    }

    #[test]
    fn write_conflict_aborts_one() {
        let c = cluster();
        let ptr = c
            .run(MachineId(0), |tx| {
                tx.alloc(8, Hint::Local, &0u64.to_le_bytes())
            })
            .unwrap();
        let mut t1 = c.begin(MachineId(0));
        let mut t2 = c.begin(MachineId(1));
        let b1 = t1.read(ptr).unwrap();
        let b2 = t2.read(ptr).unwrap();
        t1.update(&b1, 10u64.to_le_bytes().to_vec()).unwrap();
        t2.update(&b2, 20u64.to_le_bytes().to_vec()).unwrap();
        assert!(t1.commit().is_ok());
        assert_eq!(t2.commit(), Err(FarmError::Conflict));
    }

    #[test]
    fn read_validation_catches_intervening_write() {
        let c = cluster();
        let a = c
            .run(MachineId(0), |tx| tx.alloc(8, Hint::Local, &[1; 8]))
            .unwrap();
        let b = c
            .run(MachineId(0), |tx| tx.alloc(8, Hint::Local, &[2; 8]))
            .unwrap();
        let mut t1 = c.begin(MachineId(0));
        let ra = t1.read(a).unwrap(); // read-only member of read set
        let rb = t1.read(b).unwrap();
        t1.update(&rb, vec![3; 8]).unwrap();
        // Concurrent write to `a` invalidates t1's read.
        c.run(MachineId(1), |tx| {
            let buf = tx.read(a)?;
            tx.update(&buf, vec![9; 8])
        })
        .unwrap();
        let _ = ra;
        assert_eq!(t1.commit(), Err(FarmError::Conflict));
    }

    #[test]
    fn rw_txn_reading_stale_object_aborts_early_for_opacity() {
        let c = cluster();
        let ptr = c
            .run(MachineId(0), |tx| tx.alloc(8, Hint::Local, &[0; 8]))
            .unwrap();
        let mut t1 = c.begin(MachineId(0));
        // Bump the object after t1's snapshot.
        c.run(MachineId(1), |tx| {
            let buf = tx.read(ptr)?;
            tx.update(&buf, vec![1; 8])
        })
        .unwrap();
        // t1's read observes a version newer than its snapshot → Conflict at
        // the *read*, before any garbage can be consumed (§5.2).
        assert_eq!(t1.read(ptr).unwrap_err(), FarmError::Conflict);
    }

    #[test]
    fn free_and_snapshot_reads_of_freed_object() {
        let c = cluster();
        let ptr = c
            .run(MachineId(0), |tx| tx.alloc(16, Hint::Local, b"data"))
            .unwrap();
        let mut ro = c.begin_read_only(MachineId(1)); // snapshot before free
        c.run(MachineId(0), |tx| {
            let buf = tx.read(ptr)?;
            tx.free(&buf)
        })
        .unwrap();
        // New snapshot: gone.
        let mut fresh = c.begin_read_only(MachineId(2));
        assert!(matches!(fresh.read(ptr), Err(FarmError::NotFound(_))));
        // Old snapshot still reads it.
        let buf = ro.read(ptr).unwrap();
        assert_eq!(&buf.data()[..4], b"data");
        drop(ro);
        drop(fresh);
        // After snapshots retire, gc reclaims the block for reuse.
        c.gc();
        let ptr2 = c
            .run(MachineId(0), |tx| tx.alloc(16, Hint::Local, b"new!"))
            .unwrap();
        assert_eq!(ptr2.addr, ptr.addr, "freed block reused");
    }

    #[test]
    fn locality_hint_co_locates() {
        let c = cluster();
        let a = c
            .run(MachineId(2), |tx| tx.alloc(32, Hint::Local, &[1]))
            .unwrap();
        let b = c
            .run(MachineId(0), |tx| tx.alloc(32, Hint::Near(a.addr), &[2]))
            .unwrap();
        assert_eq!(
            a.addr.region(),
            b.addr.region(),
            "hint keeps objects in one region"
        );
        assert_eq!(c.primary_of(a.addr), c.primary_of(b.addr));
    }

    #[test]
    fn machine_failure_promotes_and_data_survives() {
        let c = cluster();
        let ptr = c
            .run(MachineId(0), |tx| {
                tx.alloc(32, Hint::Machine(MachineId(1)), b"persist")
            })
            .unwrap();
        let primary = c.primary_of(ptr.addr).unwrap();
        c.kill_machine(primary);
        // Reads reroute to the promoted backup.
        let mut tx = c.begin_read_only(MachineId(0));
        let buf = tx.read(ptr).unwrap();
        assert_eq!(&buf.data()[..7], b"persist");
        assert_ne!(c.primary_of(ptr.addr).unwrap(), primary);
        // And writes still work.
        c.run(MachineId(0), |tx| {
            let buf = tx.read(ptr)?;
            tx.update(&buf, b"again!!".to_vec())
        })
        .unwrap();
    }

    #[test]
    fn fast_restart_preserves_data_and_resumes() {
        // Single machine: a process crash makes the only replica unreachable,
        // pausing the cluster until restart (§5.3).
        let mut cfg = FarmConfig::small(1);
        cfg.replicas = 1;
        let c = FarmCluster::start(cfg);
        let ptr = c
            .run(MachineId(0), |tx| tx.alloc(32, Hint::Local, b"pyco"))
            .unwrap();

        c.crash_process(MachineId(0));
        assert!(c.is_paused());
        let mut tx = c.begin_read_only(MachineId(0));
        assert!(matches!(tx.read(ptr), Err(FarmError::Paused)));
        drop(tx);

        c.restart_process(MachineId(0));
        assert!(!c.is_paused());
        let mut tx = c.begin_read_only(MachineId(0));
        let buf = tx.read(ptr).unwrap();
        assert_eq!(&buf.data()[..4], b"pyco");
        // Writes work again too (allocator was rebuilt by scanning).
        c.run(MachineId(0), |tx| {
            tx.alloc(32, Hint::Local, b"more").map(|_| ())
        })
        .unwrap();
    }

    #[test]
    fn v1_mode_read_only_queries_abort_under_churn() {
        let mut cfg = FarmConfig::small(2);
        cfg.mode = TxnMode::V1Occ;
        let c = FarmCluster::start(cfg);
        let ptrs: Vec<Ptr> = (0..8)
            .map(|i| {
                c.run(MachineId(0), |tx| tx.alloc(8, Hint::Local, &[i as u8; 8]))
                    .unwrap()
            })
            .collect();

        let mut ro = c.begin_read_only(MachineId(1));
        // Read half the objects...
        for p in &ptrs[..4] {
            ro.read(*p).unwrap();
        }
        // ... a writer sneaks in ...
        c.run(MachineId(0), |tx| {
            let buf = tx.read(ptrs[0])?;
            tx.update(&buf, vec![99; 8])
        })
        .unwrap();
        for p in &ptrs[4..] {
            ro.read(*p).unwrap();
        }
        // ... and the read-only txn aborts at commit (V1 pathology, §5.2).
        assert_eq!(ro.commit(), Err(FarmError::Conflict));

        // Same dance in V2 never aborts (see snapshot_isolation test).
    }

    #[test]
    fn paused_cluster_rejects_new_txns() {
        let mut cfg = FarmConfig::small(1);
        cfg.replicas = 1;
        let c = FarmCluster::start(cfg);
        c.crash_process(MachineId(0));
        assert!(matches!(
            c.run(MachineId(0), |tx| tx.alloc(8, Hint::Local, &[0; 8])),
            Err(FarmError::Paused)
        ));
        c.restart_process(MachineId(0));
    }
}
