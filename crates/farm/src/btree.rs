//! Distributed B+-trees over FaRM objects (paper §2.2, §3.1, §3.2).
//!
//! Trees are pointer-linked structures of FaRM objects: every node is one
//! object, referenced by ⟨addr, size⟩ pointers so a single one-sided read
//! fetches it. Design choices follow the paper:
//!
//! * **High branching ratio** — configurable `max_keys` per node (default
//!   32), so trees stay shallow.
//! * **Internal-node caching** — "we cache internal BTree nodes heavily and
//!   in most cases this lookup requires one RDMA read rather than O(log n)"
//!   (§3.2). Cached routing is *unvalidated*; correctness comes from fence
//!   keys on every node: if a descent lands on a leaf whose fence range does
//!   not contain the key, the cache is stale — purge and retry, and if a
//!   fresh descent still disagrees, surface `Conflict` for a transaction
//!   retry.
//! * **Leaf links** — leaves form a singly-linked list for range scans
//!   (primary-index scans, prefix scans over composite keys).
//! * **Lazy deletion** — removals never merge nodes; A1 deletes whole trees
//!   through the asynchronous task framework (§3.3), so structural shrink is
//!   not on the hot path.

use crate::addr::{Addr, Ptr};
use crate::error::{FarmError, FarmResult};
use crate::txn::{Hint, ObjBuf, Txn};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Tree shape parameters, fixed at creation and stored in the header object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTreeConfig {
    /// Maximum keys per node before a split (fanout - 1).
    pub max_keys: usize,
    pub max_key_len: usize,
    pub max_val_len: usize,
}

impl Default for BTreeConfig {
    fn default() -> Self {
        BTreeConfig {
            max_keys: 32,
            max_key_len: 128,
            max_val_len: 64,
        }
    }
}

impl BTreeConfig {
    /// Payload bytes a node object needs in the worst case.
    fn node_capacity(&self) -> usize {
        let fences = 2 * (2 + self.max_key_len);
        let leaf = 3
            + fences
            + self.max_keys * (4 + self.max_key_len + self.max_val_len)
            + Ptr::ENCODED_LEN;
        let internal = 3
            + fences
            + self.max_keys * (2 + self.max_key_len)
            + (self.max_keys + 1) * Ptr::ENCODED_LEN;
        leaf.max(internal)
    }
}

const KIND_LEAF: u8 = 1;
const KIND_INTERNAL: u8 = 2;
const HEADER_MAGIC: u32 = 0xB7EE_0001;
const HEADER_PAYLOAD: usize = 26;
const CACHE_TTL: Duration = Duration::from_secs(10);

/// In-memory form of a node.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        fence_lo: Vec<u8>,
        fence_hi: Vec<u8>, // empty = +inf
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        next: Ptr,
    },
    Internal {
        fence_lo: Vec<u8>,
        fence_hi: Vec<u8>,
        keys: Vec<Vec<u8>>,
        children: Vec<Ptr>,
    },
}

impl Node {
    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        match self {
            Node::Leaf {
                fence_lo,
                fence_hi,
                entries,
                next,
            } => {
                out.push(KIND_LEAF);
                out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                put_bytes(&mut out, fence_lo);
                put_bytes(&mut out, fence_hi);
                for (k, v) in entries {
                    put_bytes(&mut out, k);
                    put_bytes(&mut out, v);
                }
                next.encode_to(&mut out);
            }
            Node::Internal {
                fence_lo,
                fence_hi,
                keys,
                children,
            } => {
                out.push(KIND_INTERNAL);
                out.extend_from_slice(&(keys.len() as u16).to_le_bytes());
                put_bytes(&mut out, fence_lo);
                put_bytes(&mut out, fence_hi);
                for k in keys {
                    put_bytes(&mut out, k);
                }
                for c in children {
                    c.encode_to(&mut out);
                }
            }
        }
        out
    }

    fn parse(buf: &[u8]) -> Option<Node> {
        let mut pos = 0usize;
        let kind = *buf.first()?;
        pos += 1;
        let n = u16::from_le_bytes(buf.get(1..3)?.try_into().ok()?) as usize;
        pos += 2;
        let fence_lo = get_bytes(buf, &mut pos)?;
        let fence_hi = get_bytes(buf, &mut pos)?;
        match kind {
            KIND_LEAF => {
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = get_bytes(buf, &mut pos)?;
                    let v = get_bytes(buf, &mut pos)?;
                    entries.push((k, v));
                }
                let next = Ptr::decode(buf.get(pos..)?)?;
                Some(Node::Leaf {
                    fence_lo,
                    fence_hi,
                    entries,
                    next,
                })
            }
            KIND_INTERNAL => {
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(get_bytes(buf, &mut pos)?);
                }
                let mut children = Vec::with_capacity(n + 1);
                for _ in 0..=n {
                    children.push(Ptr::decode(buf.get(pos..)?)?);
                    pos += Ptr::ENCODED_LEN;
                }
                Some(Node::Internal {
                    fence_lo,
                    fence_hi,
                    keys,
                    children,
                })
            }
            _ => None,
        }
    }

    fn fences(&self) -> (&[u8], &[u8]) {
        match self {
            Node::Leaf {
                fence_lo, fence_hi, ..
            } => (fence_lo, fence_hi),
            Node::Internal {
                fence_lo, fence_hi, ..
            } => (fence_lo, fence_hi),
        }
    }

    /// Whether `key` falls inside this node's fence range. The empty key
    /// stands for -inf (leftmost descent for unbounded scans): only nodes
    /// with an open lower fence cover it.
    fn covers(&self, key: &[u8]) -> bool {
        let (lo, hi) = self.fences();
        if key.is_empty() {
            return lo.is_empty();
        }
        (lo.is_empty() || key >= lo) && (hi.is_empty() || key < hi)
    }

    /// Child index to follow for `key` (separator semantics: `keys[i]` is
    /// the first key of `children[i+1]`). The empty key descends leftmost.
    fn child_for(&self, key: &[u8]) -> usize {
        match self {
            Node::Internal { keys, .. } => {
                if key.is_empty() {
                    0
                } else {
                    keys.partition_point(|k| k.as_slice() <= key)
                }
            }
            Node::Leaf { .. } => unreachable!("child_for on leaf"),
        }
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u16).to_le_bytes());
    out.extend_from_slice(b);
}

fn get_bytes(buf: &[u8], pos: &mut usize) -> Option<Vec<u8>> {
    let len = u16::from_le_bytes(buf.get(*pos..*pos + 2)?.try_into().ok()?) as usize;
    *pos += 2;
    let out = buf.get(*pos..*pos + len)?.to_vec();
    *pos += len;
    Some(out)
}

/// Tree header object payload: magic, shape, height, root pointer.
#[derive(Debug, Clone, Copy)]
struct TreeHeader {
    cfg: BTreeConfig,
    height: u32,
    root: Ptr,
}

impl TreeHeader {
    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_PAYLOAD);
        out.extend_from_slice(&HEADER_MAGIC.to_le_bytes());
        out.extend_from_slice(&(self.cfg.max_keys as u16).to_le_bytes());
        out.extend_from_slice(&(self.cfg.max_key_len as u16).to_le_bytes());
        out.extend_from_slice(&(self.cfg.max_val_len as u16).to_le_bytes());
        out.extend_from_slice(&self.height.to_le_bytes());
        self.root.encode_to(&mut out);
        out
    }

    fn parse(buf: &[u8]) -> Option<TreeHeader> {
        if buf.len() < HEADER_PAYLOAD {
            return None;
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().ok()?);
        if magic != HEADER_MAGIC {
            return None;
        }
        Some(TreeHeader {
            cfg: BTreeConfig {
                max_keys: u16::from_le_bytes(buf[4..6].try_into().ok()?) as usize,
                max_key_len: u16::from_le_bytes(buf[6..8].try_into().ok()?) as usize,
                max_val_len: u16::from_le_bytes(buf[8..10].try_into().ok()?) as usize,
            },
            height: u32::from_le_bytes(buf[10..14].try_into().ok()?),
            root: Ptr::decode(&buf[14..26])?,
        })
    }
}

/// Per-proxy cache of internal nodes (and the routing header).
///
/// Entry timestamps come from the cluster clock (`Txn::clock_ns`), so TTL
/// expiry is driven by virtual time under the simulation harness.
#[derive(Default)]
struct NodeCache {
    map: Mutex<HashMap<Addr, (u64, Arc<Node>)>>,
}

impl NodeCache {
    fn get(&self, addr: Addr, now_ns: u64) -> Option<Arc<Node>> {
        let map = self.map.lock();
        let (at_ns, node) = map.get(&addr)?;
        if now_ns.saturating_sub(*at_ns) > CACHE_TTL.as_nanos() as u64 {
            return None;
        }
        Some(node.clone())
    }

    fn put(&self, addr: Addr, node: Arc<Node>, now_ns: u64) {
        self.map.lock().insert(addr, (now_ns, node));
    }

    fn purge(&self, addrs: impl IntoIterator<Item = Addr>) {
        let mut map = self.map.lock();
        for a in addrs {
            map.remove(&a);
        }
    }
}

/// Handle to a distributed B+-tree. Cheap to clone; clones share the
/// internal-node cache (A1's catalog proxies cache these handles, §3.1).
#[derive(Clone)]
pub struct BTree {
    pub header: Ptr,
    cfg: BTreeConfig,
    cache: Arc<NodeCache>,
}

struct PathStep {
    buf: ObjBuf,
    node: Node,
    /// Whether the node bytes came from the cache (no `buf` available).
    cached: bool,
}

impl BTree {
    /// Create an empty tree. The header object's pointer identifies the tree
    /// (the catalog maps names to header pointers, §3.1).
    pub fn create(tx: &mut Txn, cfg: BTreeConfig, hint: Hint) -> FarmResult<BTree> {
        let node_cap = cfg.node_capacity();
        let root = Node::Leaf {
            fence_lo: Vec::new(),
            fence_hi: Vec::new(),
            entries: Vec::new(),
            next: Ptr::NULL,
        };
        let header_ptr = tx.alloc(HEADER_PAYLOAD, hint, &[])?;
        let root_ptr = tx.alloc(node_cap, Hint::Near(header_ptr.addr), &root.serialize())?;
        let header = TreeHeader {
            cfg,
            height: 1,
            root: root_ptr,
        };
        let hbuf = tx.read(header_ptr)?;
        tx.update(&hbuf, header.serialize())?;
        Ok(BTree {
            header: header_ptr,
            cfg,
            cache: Arc::new(NodeCache::default()),
        })
    }

    /// Open an existing tree by its header pointer.
    pub fn open(tx: &mut Txn, header: Ptr) -> FarmResult<BTree> {
        let buf = tx.read_for_routing(header)?;
        let th = TreeHeader::parse(buf.data()).ok_or(FarmError::Usage("not a btree header"))?;
        Ok(BTree {
            header,
            cfg: th.cfg,
            cache: Arc::new(NodeCache::default()),
        })
    }

    pub fn config(&self) -> &BTreeConfig {
        &self.cfg
    }

    fn check_key_val(&self, key: &[u8], val: Option<&[u8]>) -> FarmResult<()> {
        if key.is_empty() || key.len() > self.cfg.max_key_len {
            return Err(FarmError::Usage("key empty or too long"));
        }
        if let Some(v) = val {
            if v.len() > self.cfg.max_val_len {
                return Err(FarmError::Usage("value too long"));
            }
        }
        Ok(())
    }

    fn read_header(&self, tx: &mut Txn) -> FarmResult<(ObjBuf, TreeHeader)> {
        let buf = if tx.is_read_only() {
            tx.read(self.header)?
        } else {
            tx.read_for_routing(self.header)?
        };
        let th = TreeHeader::parse(buf.data()).ok_or(FarmError::Usage("not a btree header"))?;
        Ok((buf, th))
    }

    fn read_node(&self, tx: &mut Txn, ptr: Ptr, validated: bool) -> FarmResult<(ObjBuf, Node)> {
        let buf = if validated {
            tx.read(ptr)?
        } else {
            tx.read_for_routing(ptr)?
        };
        let node = Node::parse(buf.data()).ok_or(FarmError::Usage("corrupt btree node"))?;
        Ok((buf, node))
    }

    /// Descend to the leaf covering `key`. Internal hops use the cache when
    /// allowed; the leaf is read through the transaction (validated /
    /// snapshot). Returns the internal path and the leaf step.
    fn descend(
        &self,
        tx: &mut Txn,
        key: &[u8],
        use_cache: bool,
    ) -> FarmResult<(Vec<PathStep>, PathStep)> {
        'retry: for attempt in 0..2 {
            let use_cache = use_cache && attempt == 0 && !tx.is_read_only();
            let (_, th) = self.read_header(tx)?;
            let mut path: Vec<PathStep> = Vec::new();
            let mut ptr = th.root;
            loop {
                // Internal nodes: routing reads (cache / unvalidated).
                let cached = if use_cache {
                    self.cache.get(ptr.addr, tx.clock_ns())
                } else {
                    None
                };
                let (buf, node, was_cached) = match cached {
                    Some(node) if matches!(*node, Node::Internal { .. }) => {
                        (ObjBuf::routing_placeholder(ptr), (*node).clone(), true)
                    }
                    _ => {
                        let validated = tx.is_read_only();
                        let (buf, node) = match self.read_node(tx, ptr, validated) {
                            Ok(x) => x,
                            Err(FarmError::NotFound(_)) if attempt == 0 => {
                                // Stale route to a freed node: purge, retry.
                                self.cache.purge(path.iter().map(|p| p.buf.addr()));
                                continue 'retry;
                            }
                            Err(e) => return Err(e),
                        };
                        if let Node::Internal { .. } = node {
                            if use_cache {
                                self.cache
                                    .put(ptr.addr, Arc::new(node.clone()), tx.clock_ns());
                            }
                        }
                        (buf, node, false)
                    }
                };
                match node {
                    Node::Internal { .. } => {
                        let child = node.child_for(key);
                        let next_ptr = match &node {
                            Node::Internal { children, .. } => children[child],
                            _ => unreachable!(),
                        };
                        path.push(PathStep {
                            buf,
                            node,
                            cached: was_cached,
                        });
                        ptr = next_ptr;
                    }
                    Node::Leaf { .. } => {
                        // Leaf must be a validated (or snapshot) read.
                        let (leaf_buf, leaf_node) = if was_cached || !tx.is_read_only() {
                            match self.read_node(tx, ptr, true) {
                                Ok(x) => x,
                                Err(FarmError::NotFound(_)) if attempt == 0 => {
                                    self.cache.purge(path.iter().map(|p| p.buf.addr()));
                                    continue 'retry;
                                }
                                Err(e) => return Err(e),
                            }
                        } else {
                            (buf, node)
                        };
                        if !leaf_node.covers(key) {
                            // Fence miss: stale cache or concurrent split.
                            self.cache.purge(
                                path.iter()
                                    .map(|p| p.buf.addr())
                                    .chain(std::iter::once(ptr.addr)),
                            );
                            if attempt == 0 {
                                continue 'retry;
                            }
                            return Err(FarmError::Conflict);
                        }
                        return Ok((
                            path,
                            PathStep {
                                buf: leaf_buf,
                                node: leaf_node,
                                cached: false,
                            },
                        ));
                    }
                }
            }
        }
        Err(FarmError::Conflict)
    }

    /// Point lookup.
    pub fn get(&self, tx: &mut Txn, key: &[u8]) -> FarmResult<Option<Vec<u8>>> {
        self.check_key_val(key, None)?;
        let (_, leaf) = self.descend(tx, key, true)?;
        match leaf.node {
            Node::Leaf { entries, .. } => Ok(entries
                .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                .ok()
                .map(|i| entries[i].1.clone())),
            _ => unreachable!(),
        }
    }

    /// Insert or replace. Returns the previous value, if any.
    pub fn insert(&self, tx: &mut Txn, key: &[u8], val: &[u8]) -> FarmResult<Option<Vec<u8>>> {
        self.check_key_val(key, Some(val))?;
        let (path, leaf_step) = self.descend(tx, key, true)?;
        let PathStep {
            buf: leaf_buf,
            node: leaf_node,
            ..
        } = leaf_step;
        let Node::Leaf {
            fence_lo,
            fence_hi,
            mut entries,
            next,
        } = leaf_node
        else {
            unreachable!()
        };
        let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => {
                let old = std::mem::replace(&mut entries[i].1, val.to_vec());
                Some(old)
            }
            Err(i) => {
                entries.insert(i, (key.to_vec(), val.to_vec()));
                None
            }
        };
        if entries.len() <= self.cfg.max_keys {
            let node = Node::Leaf {
                fence_lo,
                fence_hi,
                entries,
                next,
            };
            tx.update(&leaf_buf, node.serialize())?;
            return Ok(old);
        }

        // Split the leaf: left keeps [0, mid), right takes [mid, n).
        let mid = entries.len() / 2;
        let right_entries = entries.split_off(mid);
        let sep = right_entries[0].0.clone();
        let right = Node::Leaf {
            fence_lo: sep.clone(),
            fence_hi: fence_hi.clone(),
            entries: right_entries,
            next,
        };
        let right_ptr = tx.alloc(
            self.cfg.node_capacity(),
            Hint::Near(leaf_buf.addr()),
            &right.serialize(),
        )?;
        let left = Node::Leaf {
            fence_lo,
            fence_hi: sep.clone(),
            entries,
            next: right_ptr,
        };
        tx.update(&leaf_buf, left.serialize())?;
        self.insert_separator(tx, path, leaf_buf.ptr, sep, right_ptr)?;
        Ok(old)
    }

    /// Propagate a split: insert `(sep, right_ptr)` into the parent chain,
    /// splitting internal nodes as needed; grow the root if necessary.
    fn insert_separator(
        &self,
        tx: &mut Txn,
        mut path: Vec<PathStep>,
        left_child: Ptr,
        mut sep: Vec<u8>,
        mut right_ptr: Ptr,
    ) -> FarmResult<()> {
        let mut _child = left_child;
        while let Some(step) = path.pop() {
            // Parents read through cache have no usable buffer: re-read.
            let (buf, node) = if step.cached {
                self.read_node(tx, step.buf.ptr, false)?
            } else {
                (step.buf, step.node)
            };
            // The parent may have split since we routed through it (its key
            // range shrank); inserting the separator into a parent that no
            // longer covers it would corrupt routing. Retry the transaction
            // against the fresh structure. (For uncached steps commit-time
            // version validation also catches this; for cached steps the
            // re-read is latest-version, so the fence check is load-bearing.)
            if !node.covers(&sep) {
                self.cache.purge([buf.addr()]);
                return Err(FarmError::Conflict);
            }
            let Node::Internal {
                fence_lo,
                fence_hi,
                mut keys,
                mut children,
            } = node
            else {
                return Err(FarmError::Usage("corrupt btree: leaf in internal path"));
            };
            let idx = keys.partition_point(|k| k.as_slice() <= sep.as_slice());
            keys.insert(idx, sep.clone());
            children.insert(idx + 1, right_ptr);
            if keys.len() <= self.cfg.max_keys {
                let node = Node::Internal {
                    fence_lo,
                    fence_hi,
                    keys,
                    children,
                };
                tx.update(&buf, node.serialize())?;
                self.cache.purge([buf.addr()]);
                return Ok(());
            }
            // Split internal node; middle key moves up.
            let mid = keys.len() / 2;
            let up = keys[mid].clone();
            let right_keys = keys.split_off(mid + 1);
            keys.pop(); // `up` moves to the parent
            let right_children = children.split_off(mid + 1);
            let right = Node::Internal {
                fence_lo: up.clone(),
                fence_hi: fence_hi.clone(),
                keys: right_keys,
                children: right_children,
            };
            let new_right_ptr = tx.alloc(
                self.cfg.node_capacity(),
                Hint::Near(buf.addr()),
                &right.serialize(),
            )?;
            let left = Node::Internal {
                fence_lo,
                fence_hi: up.clone(),
                keys,
                children,
            };
            tx.update(&buf, left.serialize())?;
            self.cache.purge([buf.addr()]);
            _child = buf.ptr;
            sep = up;
            right_ptr = new_right_ptr;
        }

        // Root split: a new root references the old root and the new right.
        let (hbuf, th) = {
            let buf = tx.read(self.header)?; // validated: root change must be serialized
            let th = TreeHeader::parse(buf.data()).ok_or(FarmError::Usage("not a btree header"))?;
            (buf, th)
        };
        let new_root = Node::Internal {
            fence_lo: Vec::new(),
            fence_hi: Vec::new(),
            keys: vec![sep],
            children: vec![th.root, right_ptr],
        };
        let new_root_ptr = tx.alloc(
            self.cfg.node_capacity(),
            Hint::Near(self.header.addr),
            &new_root.serialize(),
        )?;
        let new_header = TreeHeader {
            cfg: th.cfg,
            height: th.height + 1,
            root: new_root_ptr,
        };
        tx.update(&hbuf, new_header.serialize())?;
        Ok(())
    }

    /// Remove a key. Returns the previous value, if any. Nodes are never
    /// merged (lazy deletion).
    pub fn remove(&self, tx: &mut Txn, key: &[u8]) -> FarmResult<Option<Vec<u8>>> {
        self.check_key_val(key, None)?;
        let (_, leaf_step) = self.descend(tx, key, true)?;
        let PathStep { buf, node, .. } = leaf_step;
        let Node::Leaf {
            fence_lo,
            fence_hi,
            mut entries,
            next,
        } = node
        else {
            unreachable!()
        };
        match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => {
                let (_, old) = entries.remove(i);
                let node = Node::Leaf {
                    fence_lo,
                    fence_hi,
                    entries,
                    next,
                };
                tx.update(&buf, node.serialize())?;
                Ok(Some(old))
            }
            Err(_) => Ok(None),
        }
    }

    /// Range scan over `[lo, hi)` (hi empty = unbounded), up to `limit`
    /// entries. Follows leaf links.
    pub fn scan(
        &self,
        tx: &mut Txn,
        lo: &[u8],
        hi: &[u8],
        limit: usize,
    ) -> FarmResult<Vec<(Vec<u8>, Vec<u8>)>> {
        if limit == 0 {
            return Ok(Vec::new());
        }
        // An empty `lo` descends to the leftmost leaf (empty key = -inf).
        let (_, leaf_step) = self.descend(tx, lo, true)?;
        let mut out = Vec::new();
        let mut current = leaf_step.node;
        loop {
            let Node::Leaf { entries, next, .. } = &current else {
                unreachable!()
            };
            for (k, v) in entries {
                if !lo.is_empty() && k.as_slice() < lo {
                    continue;
                }
                if !hi.is_empty() && k.as_slice() >= hi {
                    return Ok(out);
                }
                out.push((k.clone(), v.clone()));
                if out.len() >= limit {
                    return Ok(out);
                }
            }
            if next.is_null() {
                return Ok(out);
            }
            let (_, node) = self.read_node(tx, *next, true)?;
            current = node;
        }
    }

    /// Scan all keys beginning with `prefix`.
    pub fn scan_prefix(
        &self,
        tx: &mut Txn,
        prefix: &[u8],
        limit: usize,
    ) -> FarmResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut hi = prefix.to_vec();
        hi.push(0xFF);
        self.scan(tx, prefix, &hi, limit)
    }

    /// Total number of entries (full scan; diagnostics and tests).
    pub fn len(&self, tx: &mut Txn) -> FarmResult<usize> {
        Ok(self.scan(tx, &[], &[], usize::MAX)?.len())
    }

    pub fn is_empty(&self, tx: &mut Txn) -> FarmResult<bool> {
        Ok(self.scan(tx, &[], &[], 1)?.is_empty())
    }

    /// Free every node and the header. Used by delete workflows (§3.3); for
    /// very large trees callers should first drain entries in batches.
    pub fn destroy(&self, tx: &mut Txn) -> FarmResult<()> {
        let (hbuf, th) = {
            let buf = tx.read(self.header)?;
            let th = TreeHeader::parse(buf.data()).ok_or(FarmError::Usage("not a btree header"))?;
            (buf, th)
        };
        let mut stack = vec![th.root];
        while let Some(ptr) = stack.pop() {
            let (buf, node) = self.read_node(tx, ptr, true)?;
            if let Node::Internal { children, .. } = &node {
                stack.extend(children.iter().copied());
            }
            tx.free(&buf)?;
        }
        tx.free(&hbuf)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_roundtrip() {
        let leaf = Node::Leaf {
            fence_lo: b"a".to_vec(),
            fence_hi: b"m".to_vec(),
            entries: vec![(b"b".to_vec(), b"1".to_vec()), (b"c".to_vec(), vec![])],
            next: Ptr::new(Addr::new(crate::addr::RegionId(1), 64), 100),
        };
        assert_eq!(Node::parse(&leaf.serialize()), Some(leaf.clone()));

        let internal = Node::Internal {
            fence_lo: Vec::new(),
            fence_hi: Vec::new(),
            keys: vec![b"g".to_vec()],
            children: vec![
                Ptr::NULL,
                Ptr::new(Addr::new(crate::addr::RegionId(2), 128), 50),
            ],
        };
        assert_eq!(Node::parse(&internal.serialize()), Some(internal));
        assert_eq!(Node::parse(&[9, 0, 0]), None);
    }

    #[test]
    fn covers_and_child_for() {
        let n = Node::Internal {
            fence_lo: b"c".to_vec(),
            fence_hi: b"x".to_vec(),
            keys: vec![b"g".to_vec(), b"p".to_vec()],
            children: vec![Ptr::NULL, Ptr::NULL, Ptr::NULL],
        };
        assert!(n.covers(b"c"));
        assert!(n.covers(b"w"));
        assert!(!n.covers(b"x"));
        assert!(!n.covers(b"b"));
        assert_eq!(n.child_for(b"a"), 0);
        assert_eq!(n.child_for(b"g"), 1); // separator belongs to the right
        assert_eq!(n.child_for(b"m"), 1);
        assert_eq!(n.child_for(b"p"), 2);
        assert_eq!(n.child_for(b"z"), 2);
    }

    #[test]
    fn header_roundtrip() {
        let th = TreeHeader {
            cfg: BTreeConfig {
                max_keys: 8,
                max_key_len: 32,
                max_val_len: 16,
            },
            height: 3,
            root: Ptr::new(Addr::new(crate::addr::RegionId(0), 640), 512),
        };
        let bytes = th.serialize();
        let back = TreeHeader::parse(&bytes).unwrap();
        assert_eq!(back.cfg, th.cfg);
        assert_eq!(back.height, 3);
        assert_eq!(back.root, th.root);
        assert!(TreeHeader::parse(&[0; 26]).is_none(), "magic check");
    }

    #[test]
    fn capacity_fits_worst_case() {
        let cfg = BTreeConfig {
            max_keys: 4,
            max_key_len: 8,
            max_val_len: 8,
        };
        let cap = cfg.node_capacity();
        let leaf = Node::Leaf {
            fence_lo: vec![7; 8],
            fence_hi: vec![9; 8],
            entries: (0..4).map(|i| (vec![i; 8], vec![i; 8])).collect(),
            next: Ptr::NULL,
        };
        assert!(leaf.serialize().len() <= cap);
        let internal = Node::Internal {
            fence_lo: vec![7; 8],
            fence_hi: vec![9; 8],
            keys: (0..4).map(|i| vec![i; 8]).collect(),
            children: vec![Ptr::NULL; 5],
        };
        assert!(internal.serialize().len() <= cap);
    }
}
