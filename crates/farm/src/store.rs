//! Per-machine region hosting: the FaRM process state on one machine.

use crate::addr::RegionId;
use crate::pyco::PycoDriver;
use crate::region::Region;
use a1_rdma::{Fabric, MachineId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// The process-local state of a FaRM machine: the regions it hosts (primary
/// or backup). The underlying region *memory* is owned by the PyCo driver;
/// this struct is exactly what a process crash destroys (§5.3).
pub struct FarmMachine {
    id: MachineId,
    fabric: Arc<Fabric>,
    regions: RwLock<HashMap<u32, Arc<Region>>>,
}

impl FarmMachine {
    pub fn new(id: MachineId, fabric: Arc<Fabric>) -> Arc<FarmMachine> {
        Arc::new(FarmMachine {
            id,
            fabric,
            regions: RwLock::new(HashMap::new()),
        })
    }

    pub fn id(&self) -> MachineId {
        self.id
    }

    /// Host a brand-new region replica. Registers the memory with the fabric
    /// (making it the target of one-sided verbs) and with PyCo.
    pub fn host_new_region(
        &self,
        id: RegionId,
        len: usize,
        primary: bool,
        pyco: &PycoDriver,
    ) -> Arc<Region> {
        let region = Region::create(id, len, primary);
        self.install(region.clone(), pyco);
        region
    }

    /// Host a region from existing bytes (re-replication copy target).
    pub fn host_region_from_bytes(
        &self,
        id: RegionId,
        bytes: Vec<u8>,
        pyco: &PycoDriver,
    ) -> Arc<Region> {
        let len = bytes.len();
        let region = Region::attach(id, a1_rdma::Segment::from_bytes(bytes), len);
        self.install(region.clone(), pyco);
        region
    }

    /// Re-attach regions surviving in PyCo after a process crash. The caller
    /// decides (via CM metadata) which are primaries needing metadata rebuild.
    pub fn reattach_from_pyco(&self, pyco: &PycoDriver) -> Vec<Arc<Region>> {
        let mut out = Vec::new();
        for (rid, seg) in pyco.segments_for(self.id) {
            let len = seg.len();
            let region = Region::attach(rid, seg, len);
            // Already in pyco; just register with fabric + process map.
            if let Ok(m) = self.fabric.machine(self.id) {
                m.register_segment(rid.0 as u64, region.seg.clone());
            }
            self.regions.write().insert(rid.0, region.clone());
            out.push(region);
        }
        out
    }

    fn install(&self, region: Arc<Region>, pyco: &PycoDriver) {
        if let Ok(m) = self.fabric.machine(self.id) {
            m.register_segment(region.id.0 as u64, region.seg.clone());
        }
        pyco.save(self.id, region.id, region.seg.clone());
        self.regions.write().insert(region.id.0, region);
    }

    pub fn region(&self, id: RegionId) -> Option<Arc<Region>> {
        self.regions.read().get(&id.0).cloned()
    }

    /// Regions where this machine is primary *and* that have allocator space
    /// candidates — used by local-affinity allocation.
    pub fn primary_regions(&self) -> Vec<Arc<Region>> {
        self.regions
            .read()
            .values()
            .filter(|r| r.is_primary())
            .cloned()
            .collect()
    }

    pub fn hosted_regions(&self) -> Vec<Arc<Region>> {
        self.regions.read().values().cloned().collect()
    }

    /// Drop a single region (deletion/migration).
    pub fn drop_region(&self, id: RegionId, pyco: &PycoDriver) {
        self.regions.write().remove(&id.0);
        if let Ok(m) = self.fabric.machine(self.id) {
            m.unregister_segment(id.0 as u64);
        }
        pyco.forget(self.id, id);
    }

    /// Simulate a process crash: all process state vanishes. PyCo keeps the
    /// memory; fabric segments are unregistered (the NIC mapping dies with
    /// the process).
    pub fn crash(&self) {
        let ids: Vec<u32> = self.regions.read().keys().copied().collect();
        self.regions.write().clear();
        if let Ok(m) = self.fabric.machine(self.id) {
            for id in ids {
                m.unregister_segment(id as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a1_rdma::FabricConfig;

    fn setup() -> (Arc<Fabric>, Arc<FarmMachine>, PycoDriver) {
        let fabric = Fabric::new(FabricConfig::default());
        let m = FarmMachine::new(MachineId(0), fabric.clone());
        (fabric, m, PycoDriver::new())
    }

    #[test]
    fn host_and_read_via_fabric() {
        let (fabric, m, pyco) = setup();
        let region = m.host_new_region(RegionId(5), 1024, true, &pyco);
        region.seg.write(100, &[7, 8]).unwrap();
        // Another machine can one-sided read it.
        let bytes = fabric.read(MachineId(1), MachineId(0), 5, 100, 2).unwrap();
        assert_eq!(&bytes[..], &[7, 8]);
        assert!(m.region(RegionId(5)).unwrap().is_primary());
        assert_eq!(m.primary_regions().len(), 1);
    }

    #[test]
    fn crash_loses_process_state_not_memory() {
        let (fabric, m, pyco) = setup();
        let region = m.host_new_region(RegionId(5), 1024, true, &pyco);
        region.seg.write(64, &[1, 2, 3]).unwrap();
        m.crash();
        assert!(m.region(RegionId(5)).is_none());
        assert!(fabric.read(MachineId(1), MachineId(0), 5, 64, 3).is_err());

        // Fast restart: reattach from pyco; bytes intact.
        let regions = m.reattach_from_pyco(&pyco);
        assert_eq!(regions.len(), 1);
        let bytes = fabric.read(MachineId(1), MachineId(0), 5, 64, 3).unwrap();
        assert_eq!(&bytes[..], &[1, 2, 3]);
    }

    #[test]
    fn host_from_bytes_copies() {
        let (fabric, m, pyco) = setup();
        m.host_region_from_bytes(RegionId(9), vec![9u8; 256], &pyco);
        let bytes = fabric.read(MachineId(0), MachineId(0), 9, 0, 4).unwrap();
        assert_eq!(&bytes[..], &[9, 9, 9, 9]);
        m.drop_region(RegionId(9), &pyco);
        assert!(m.region(RegionId(9)).is_none());
        assert!(!pyco.holds(MachineId(0), RegionId(9)));
    }
}
