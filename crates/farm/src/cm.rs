//! The configuration manager (CM).
//!
//! One machine in a FaRM cluster acts as CM (§2.1): it tracks membership
//! (which machines are alive) and region metadata (which machines hold each
//! region's primary and backups). Placement spreads a region's replicas
//! across three fault domains so no single rack/switch/power failure can
//! take out more than one copy.
//!
//! In this reproduction the CM is a metadata service; the
//! [`crate::FarmCluster`] executes the reconfiguration actions it emits
//! (promotion, re-replication) against actual region memory.

use crate::addr::RegionId;
use a1_rdma::MachineId;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Where a region's replicas live. `primary` serves all reads and writes;
/// `backups` hold byte-identical copies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    pub primary: MachineId,
    pub backups: Vec<MachineId>,
}

impl Placement {
    pub fn replicas(&self) -> impl Iterator<Item = MachineId> + '_ {
        std::iter::once(self.primary).chain(self.backups.iter().copied())
    }

    pub fn contains(&self, m: MachineId) -> bool {
        self.replicas().any(|r| r == m)
    }
}

/// A reconfiguration step the cluster must execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigAction {
    /// `new_primary` (an existing backup, whose bytes are current) becomes
    /// primary for `region`; it must rebuild allocator metadata by scanning.
    Promote {
        region: RegionId,
        new_primary: MachineId,
    },
    /// Host a fresh replica of `region` on `target`, copying bytes from
    /// `source` (the current primary).
    AddBackup {
        region: RegionId,
        source: MachineId,
        target: MachineId,
    },
    /// Every replica is gone. If PyCo memory survives a process crash the
    /// cluster pauses awaiting restart (§5.3); otherwise this is a disaster
    /// (§4).
    TotalLoss { region: RegionId },
}

#[derive(Debug)]
struct CmState {
    epoch: u64,
    alive: Vec<bool>,
    racks: Vec<u32>,
    placements: HashMap<u32, Placement>,
    next_region: u32,
    /// Number of replicas hosted per machine, for load-balanced placement.
    load: Vec<usize>,
}

/// The configuration manager. Thread-safe; all methods take `&self`.
pub struct ConfigManager {
    state: RwLock<CmState>,
    replicas: usize,
}

impl ConfigManager {
    /// `racks[i]` is machine i's fault domain. `replicas` is the desired
    /// copy count (3 in the paper), silently capped by the machine count.
    pub fn new(racks: Vec<u32>, replicas: usize) -> ConfigManager {
        let n = racks.len();
        ConfigManager {
            state: RwLock::new(CmState {
                epoch: 1,
                alive: vec![true; n],
                racks,
                placements: HashMap::new(),
                next_region: 0,
                load: vec![0; n],
            }),
            replicas: replicas.min(n).max(1),
        }
    }

    pub fn epoch(&self) -> u64 {
        self.state.read().epoch
    }

    pub fn replicas(&self) -> usize {
        self.replicas
    }

    pub fn is_alive(&self, m: MachineId) -> bool {
        self.state
            .read()
            .alive
            .get(m.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    pub fn mark_alive(&self, m: MachineId) {
        let mut s = self.state.write();
        if let Some(slot) = s.alive.get_mut(m.0 as usize) {
            if !*slot {
                *slot = true;
                s.epoch += 1;
            }
        }
    }

    pub fn alive_count(&self) -> usize {
        self.state.read().alive.iter().filter(|a| **a).count()
    }

    /// Allocate a region id and choose replica placement. `preferred` pins
    /// the primary (locality: allocate where the caller runs, §2.1).
    /// Returns `None` when no alive machine exists.
    pub fn place_new_region(&self, preferred: Option<MachineId>) -> Option<(RegionId, Placement)> {
        let mut s = self.state.write();
        let primary = match preferred {
            Some(m) if s.alive.get(m.0 as usize).copied().unwrap_or(false) => m,
            _ => least_loaded(&s, &[])?,
        };
        let mut backups = Vec::new();
        for _ in 1..self.replicas {
            let exclude: Vec<MachineId> = std::iter::once(primary)
                .chain(backups.iter().copied())
                .collect();
            match pick_backup(&s, primary, &backups, &exclude) {
                Some(b) => backups.push(b),
                None => break, // fewer replicas than desired; still usable
            }
        }
        let id = RegionId(s.next_region);
        s.next_region += 1;
        let placement = Placement { primary, backups };
        for r in placement.replicas() {
            s.load[r.0 as usize] += 1;
        }
        s.placements.insert(id.0, placement.clone());
        Some((id, placement))
    }

    pub fn placement(&self, r: RegionId) -> Option<Placement> {
        self.state.read().placements.get(&r.0).cloned()
    }

    pub fn primary_of(&self, r: RegionId) -> Option<MachineId> {
        self.state.read().placements.get(&r.0).map(|p| p.primary)
    }

    pub fn regions(&self) -> Vec<(RegionId, Placement)> {
        self.state
            .read()
            .placements
            .iter()
            .map(|(id, p)| (RegionId(*id), p.clone()))
            .collect()
    }

    /// Remove a region entirely (delete workflows).
    pub fn drop_region(&self, r: RegionId) -> Option<Placement> {
        let mut s = self.state.write();
        let p = s.placements.remove(&r.0)?;
        for m in p.replicas() {
            s.load[m.0 as usize] = s.load[m.0 as usize].saturating_sub(1);
        }
        Some(p)
    }

    /// Handle a machine failure: bump the epoch, fix every affected
    /// placement, and emit the actions the cluster must carry out.
    pub fn handle_failure(&self, dead: MachineId) -> Vec<ReconfigAction> {
        let mut s = self.state.write();
        let Some(slot) = s.alive.get_mut(dead.0 as usize) else {
            return Vec::new();
        };
        if !*slot {
            return Vec::new(); // already handled
        }
        *slot = false;
        s.epoch += 1;
        s.load[dead.0 as usize] = 0;

        let mut actions = Vec::new();
        // Sorted iteration: the placements map is a HashMap, and the order
        // reconfiguration actions are emitted in must be a deterministic
        // function of cluster state for seeded simulation replay.
        let mut region_ids: Vec<u32> = s.placements.keys().copied().collect();
        region_ids.sort_unstable();
        for rid in region_ids {
            let placement = s.placements.get(&rid).expect("key just listed").clone();
            if !placement.contains(dead) {
                continue;
            }
            let region = RegionId(rid);
            let mut new_placement = placement.clone();

            if placement.primary == dead {
                // Promote the first alive backup; its bytes are current
                // because commits replicate synchronously.
                let promoted = placement
                    .backups
                    .iter()
                    .copied()
                    .find(|b| s.alive[b.0 as usize]);
                match promoted {
                    Some(b) => {
                        new_placement.primary = b;
                        new_placement.backups.retain(|x| *x != b && *x != dead);
                        actions.push(ReconfigAction::Promote {
                            region,
                            new_primary: b,
                        });
                    }
                    None => {
                        s.placements.remove(&rid);
                        actions.push(ReconfigAction::TotalLoss { region });
                        continue;
                    }
                }
            } else {
                new_placement.backups.retain(|x| *x != dead);
            }

            // Restore the replica count with a fresh backup if possible.
            let want = self.replicas;
            while new_placement.backups.len() + 1 < want {
                let exclude: Vec<MachineId> = new_placement.replicas().collect();
                match pick_backup(&s, new_placement.primary, &new_placement.backups, &exclude) {
                    Some(t) => {
                        new_placement.backups.push(t);
                        s.load[t.0 as usize] += 1;
                        actions.push(ReconfigAction::AddBackup {
                            region,
                            source: new_placement.primary,
                            target: t,
                        });
                    }
                    None => break, // under-replicated until a machine returns
                }
            }
            s.placements.insert(rid, new_placement);
        }
        actions
    }
}

/// Least-loaded alive machine not in `exclude`.
fn least_loaded(s: &CmState, exclude: &[MachineId]) -> Option<MachineId> {
    (0..s.alive.len())
        .filter(|&i| s.alive[i] && !exclude.iter().any(|m| m.0 as usize == i))
        .min_by_key(|&i| s.load[i])
        .map(|i| MachineId(i as u32))
}

/// Pick a backup: prefer fault domains not already used by the placement,
/// then least load.
fn pick_backup(
    s: &CmState,
    primary: MachineId,
    backups: &[MachineId],
    exclude: &[MachineId],
) -> Option<MachineId> {
    let used_racks: Vec<u32> = std::iter::once(primary)
        .chain(backups.iter().copied())
        .map(|m| s.racks[m.0 as usize])
        .collect();
    (0..s.alive.len())
        .filter(|&i| s.alive[i] && !exclude.iter().any(|m| m.0 as usize == i))
        .min_by_key(|&i| {
            let new_rack = !used_racks.contains(&s.racks[i]);
            (if new_rack { 0usize } else { 1 }, s.load[i])
        })
        .map(|i| MachineId(i as u32))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm6() -> ConfigManager {
        // 6 machines over 3 racks: m0,m3 → rack0; m1,m4 → rack1; m2,m5 → rack2.
        ConfigManager::new(vec![0, 1, 2, 0, 1, 2], 3)
    }

    #[test]
    fn placement_spreads_fault_domains() {
        let cm = cm6();
        let (id, p) = cm.place_new_region(Some(MachineId(0))).unwrap();
        assert_eq!(id, RegionId(0));
        assert_eq!(p.primary, MachineId(0));
        assert_eq!(p.backups.len(), 2);
        let racks: Vec<u32> = p.replicas().map(|m| m.0 % 3).collect();
        let mut uniq = racks.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 3, "replicas span 3 fault domains: {racks:?}");
    }

    #[test]
    fn placement_balances_load() {
        let cm = cm6();
        for _ in 0..12 {
            cm.place_new_region(None).unwrap();
        }
        let regions = cm.regions();
        let mut load = vec![0usize; 6];
        for (_, p) in &regions {
            for m in p.replicas() {
                load[m.0 as usize] += 1;
            }
        }
        let (min, max) = (load.iter().min().unwrap(), load.iter().max().unwrap());
        assert!(max - min <= 2, "load spread too wide: {load:?}");
    }

    #[test]
    fn failure_promotes_backup_and_rereplicates() {
        let cm = cm6();
        let (id, p) = cm.place_new_region(Some(MachineId(0))).unwrap();
        let epoch0 = cm.epoch();
        let actions = cm.handle_failure(MachineId(0));
        assert!(cm.epoch() > epoch0);
        assert!(!cm.is_alive(MachineId(0)));

        let promote = actions.iter().find_map(|a| match a {
            ReconfigAction::Promote {
                region,
                new_primary,
            } if *region == id => Some(*new_primary),
            _ => None,
        });
        let promoted = promote.expect("backup promoted");
        assert_eq!(promoted, p.backups[0]);
        assert_eq!(cm.primary_of(id), Some(promoted));

        // A new backup is added to restore 3 replicas.
        assert!(actions.iter().any(|a| matches!(
            a,
            ReconfigAction::AddBackup { region, source, .. }
                if *region == id && *source == promoted
        )));
        let placement = cm.placement(id).unwrap();
        assert_eq!(placement.backups.len(), 2);
        assert!(!placement.contains(MachineId(0)));
    }

    #[test]
    fn backup_failure_only_rereplicates() {
        let cm = cm6();
        let (id, p) = cm.place_new_region(Some(MachineId(0))).unwrap();
        let victim = p.backups[0];
        let actions = cm.handle_failure(victim);
        assert!(actions
            .iter()
            .all(|a| !matches!(a, ReconfigAction::Promote { .. })));
        assert_eq!(cm.primary_of(id), Some(MachineId(0)));
        assert_eq!(cm.placement(id).unwrap().backups.len(), 2);
    }

    #[test]
    fn total_loss_detected() {
        let cm = ConfigManager::new(vec![0, 1, 2], 3);
        let (id, p) = cm.place_new_region(None).unwrap();
        assert_eq!(p.backups.len(), 2);
        let mut all_actions = Vec::new();
        for m in 0..3 {
            all_actions.extend(cm.handle_failure(MachineId(m)));
        }
        assert!(all_actions
            .iter()
            .any(|a| matches!(a, ReconfigAction::TotalLoss { region } if *region == id)));
        assert_eq!(cm.placement(id), None);
    }

    #[test]
    fn double_failure_report_is_idempotent() {
        let cm = cm6();
        cm.place_new_region(None).unwrap();
        let a1 = cm.handle_failure(MachineId(1));
        let a2 = cm.handle_failure(MachineId(1));
        assert!(a2.is_empty());
        let _ = a1;
    }

    #[test]
    fn fewer_machines_than_replicas() {
        let cm = ConfigManager::new(vec![0], 3);
        let (_, p) = cm.place_new_region(None).unwrap();
        assert_eq!(p.backups.len(), 0);
        assert_eq!(cm.replicas(), 1);
    }

    #[test]
    fn mark_alive_bumps_epoch_once() {
        let cm = cm6();
        cm.handle_failure(MachineId(2));
        let e = cm.epoch();
        cm.mark_alive(MachineId(2));
        assert_eq!(cm.epoch(), e + 1);
        cm.mark_alive(MachineId(2));
        assert_eq!(cm.epoch(), e + 1, "no-op if already alive");
        assert!(cm.is_alive(MachineId(2)));
    }
}
