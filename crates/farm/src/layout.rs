//! In-region object layout.
//!
//! Every FaRM object occupies a size-class block inside a region:
//!
//! ```text
//! +0   u64  lock word     (0 = unlocked, else owning transaction id)
//! +8   u64  version       (commit timestamp; 0 = not yet committed)
//! +16  u32  capacity      (payload bytes this block can hold; set once)
//! +20  u32  state         (FREE / LIVE / TOMBSTONE)
//! +24  u32  len           (current payload length)
//! +28  u32  reserved
//! +32  ...  payload
//! ```
//!
//! The lock word is at offset 0 so the commit protocol can acquire it with a
//! single one-sided CAS. Capacity is written at the block's first allocation
//! and never cleared, which lets a restarted process rebuild the allocator by
//! scanning headers (fast restart, §5.3).

/// Header size in bytes.
pub const HEADER: usize = 32;

/// Object state values.
pub const STATE_FREE: u32 = 0;
pub const STATE_LIVE: u32 = 1;
pub const STATE_TOMBSTONE: u32 = 2;

/// Parsed header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjHeader {
    pub lock: u64,
    pub version: u64,
    pub capacity: u32,
    pub state: u32,
    pub len: u32,
}

impl ObjHeader {
    pub fn parse(bytes: &[u8]) -> Option<ObjHeader> {
        if bytes.len() < HEADER {
            return None;
        }
        Some(ObjHeader {
            lock: u64::from_le_bytes(bytes[0..8].try_into().ok()?),
            version: u64::from_le_bytes(bytes[8..16].try_into().ok()?),
            capacity: u32::from_le_bytes(bytes[16..20].try_into().ok()?),
            state: u32::from_le_bytes(bytes[20..24].try_into().ok()?),
            len: u32::from_le_bytes(bytes[24..28].try_into().ok()?),
        })
    }

    pub fn encode(&self) -> [u8; HEADER] {
        let mut out = [0u8; HEADER];
        out[0..8].copy_from_slice(&self.lock.to_le_bytes());
        out[8..16].copy_from_slice(&self.version.to_le_bytes());
        out[16..20].copy_from_slice(&self.capacity.to_le_bytes());
        out[20..24].copy_from_slice(&self.state.to_le_bytes());
        out[24..28].copy_from_slice(&self.len.to_le_bytes());
        out
    }

    pub fn is_locked(&self) -> bool {
        self.lock != 0
    }

    pub fn is_committed(&self) -> bool {
        self.version != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = ObjHeader {
            lock: 7,
            version: 42,
            capacity: 100,
            state: STATE_LIVE,
            len: 64,
        };
        let bytes = h.encode();
        assert_eq!(ObjHeader::parse(&bytes), Some(h));
        assert!(h.is_locked());
        assert!(h.is_committed());
    }

    #[test]
    fn short_buffer() {
        assert_eq!(ObjHeader::parse(&[0; 8]), None);
    }

    #[test]
    fn zeroed_header_is_free_unlocked() {
        let h = ObjHeader::parse(&[0; HEADER]).unwrap();
        assert_eq!(h.state, STATE_FREE);
        assert!(!h.is_locked());
        assert!(!h.is_committed());
    }
}
