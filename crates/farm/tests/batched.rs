//! Doorbell-batched read path: `Txn::read_many` / `probe_version_many` /
//! `fetch_many` must return byte-identical answers to their scalar
//! counterparts while posting far fewer one-sided verbs.

use a1_farm::{FarmCluster, FarmConfig, FarmError, FetchReq, FetchResp, Hint, MachineId, Ptr};
use std::sync::Arc;

/// Allocate `n` objects spread across the cluster's machines, each with a
/// distinct payload, committed in one transaction per object.
fn seed_objects(farm: &Arc<FarmCluster>, n: usize, machines: u32) -> Vec<Ptr> {
    (0..n)
        .map(|i| {
            let m = MachineId(i as u32 % machines);
            farm.run(m, move |tx| {
                tx.alloc(16, Hint::Machine(m), &[(i as u8).wrapping_add(1); 16])
            })
            .unwrap()
        })
        .collect()
}

#[test]
fn read_many_matches_scalar_with_fewer_verbs() {
    let farm = FarmCluster::start(FarmConfig::small(4));
    let ptrs = seed_objects(&farm, 12, 4);

    let mut scalar_tx = farm.begin_read_only(MachineId(0));
    let scalar: Vec<_> = ptrs.iter().map(|&p| scalar_tx.read(p).unwrap()).collect();
    let scalar_verbs = scalar_tx.fetch_verbs();
    drop(scalar_tx);

    let before = farm.fabric().metrics().snapshot();
    let mut tx = farm.begin_read_only(MachineId(0));
    let batched = tx.read_many(&ptrs);
    let batched_verbs = tx.fetch_verbs();
    let d = farm.fabric().metrics().snapshot().delta_since(&before);

    for (s, b) in scalar.iter().zip(&batched) {
        let b = b.as_ref().unwrap();
        assert_eq!(s.data(), b.data(), "payloads must be byte-identical");
        assert_eq!(s.version, b.version);
        assert_eq!(s.capacity, b.capacity);
    }
    assert_eq!(scalar_verbs, 12, "scalar path posts one verb per object");
    assert!(
        batched_verbs <= 4,
        "one doorbell per machine, got {batched_verbs}"
    );
    assert_eq!(d.reads_batched, 12);
    assert!(d.doorbells <= 4, "got {} doorbells", d.doorbells);
}

#[test]
fn probe_version_many_matches_scalar() {
    let farm = FarmCluster::start(FarmConfig::small(3));
    let ptrs = seed_objects(&farm, 9, 3);
    // Free one object so the batch carries a NotFound slot.
    let freed = ptrs[4];
    farm.run(MachineId(0), move |tx| {
        let buf = tx.read(freed)?;
        tx.free(&buf)
    })
    .unwrap();

    let mut scalar_tx = farm.begin_read_only(MachineId(1));
    let scalar: Vec<_> = ptrs
        .iter()
        .map(|&p| scalar_tx.probe_version(p.addr))
        .collect();
    drop(scalar_tx);

    let mut tx = farm.begin_read_only(MachineId(1));
    let batched = tx.probe_version_many(&ptrs.iter().map(|p| p.addr).collect::<Vec<_>>());
    assert!(tx.fetch_verbs() <= 3);

    for (i, (s, b)) in scalar.iter().zip(&batched).enumerate() {
        match (s, b) {
            (Ok(sh), Ok(bh)) => {
                assert_eq!(sh.version, bh.version, "slot {i}");
                assert_eq!(sh.state, bh.state, "slot {i}");
            }
            (Err(FarmError::NotFound(sa)), Err(FarmError::NotFound(ba))) => {
                assert_eq!(sa, ba, "slot {i}")
            }
            other => panic!("slot {i} diverged: {other:?}"),
        }
    }
    assert!(batched[4].is_err(), "freed object must not revalidate");
}

#[test]
fn fetch_many_mixes_reads_and_probes_in_one_doorbell() {
    let farm = FarmCluster::start(FarmConfig::small(2));
    // All objects on machine 1, fetched from machine 0: reads and probes
    // against the same primary must share a single post.
    let ptrs: Vec<Ptr> = (0..8)
        .map(|i| {
            farm.run(MachineId(1), move |tx| {
                tx.alloc(16, Hint::Machine(MachineId(1)), &[i as u8; 16])
            })
            .unwrap()
        })
        .collect();

    let before = farm.fabric().metrics().snapshot();
    let mut tx = farm.begin_read_only(MachineId(0));
    let reqs: Vec<FetchReq> = ptrs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if i % 2 == 0 {
                FetchReq::Read(*p)
            } else {
                FetchReq::Probe(p.addr)
            }
        })
        .collect();
    let got = tx.fetch_many(&reqs);
    let d = farm.fabric().metrics().snapshot().delta_since(&before);

    assert_eq!(d.doorbells, 1, "reads and probes share one doorbell");
    assert_eq!(tx.fetch_verbs(), 1);
    for (i, slot) in got.iter().enumerate() {
        match slot.as_ref().unwrap() {
            FetchResp::Obj(buf) => {
                assert_eq!(i % 2, 0);
                assert_eq!(buf.data(), &[i as u8; 16]);
            }
            FetchResp::Hdr(h) => {
                assert_eq!(i % 2, 1);
                assert!(h.version > 0);
            }
        }
    }
}

/// Satellite: old-version round trips fold into the batch. A read-only
/// snapshot that finds every object too new pays one batched read post plus
/// one batched old-version post — not one of each per object. This test pins
/// the verb count.
#[test]
fn old_version_reads_batch_into_two_posts() {
    let farm = FarmCluster::start(FarmConfig::small(2));
    let ptrs: Vec<Ptr> = (0..8)
        .map(|i| {
            farm.run(MachineId(1), move |tx| {
                tx.alloc(16, Hint::Machine(MachineId(1)), &[i as u8; 16])
            })
            .unwrap()
        })
        .collect();

    // Pin a snapshot, then overwrite every object so the snapshot must be
    // served from the old-version store.
    let mut tx = farm.begin_read_only(MachineId(0));
    for &p in &ptrs {
        let farm = farm.clone();
        farm.run(MachineId(1), move |wtx| {
            let buf = wtx.read(p)?;
            wtx.update(&buf, vec![0xEE; 16])
        })
        .unwrap();
    }

    let batched = tx.read_many(&ptrs);
    for (i, b) in batched.iter().enumerate() {
        assert_eq!(
            b.as_ref().unwrap().data(),
            &[i as u8; 16],
            "snapshot must see pre-update bytes"
        );
    }
    assert_eq!(
        tx.fetch_verbs(),
        2,
        "one batched read post + one batched old-version post"
    );

    // The scalar path answers identically (but pays per-object verbs).
    let mut scalar_tx = farm.begin_read_only_at(MachineId(0), tx.read_ts());
    for (i, &p) in ptrs.iter().enumerate() {
        assert_eq!(scalar_tx.read(p).unwrap().data(), &[i as u8; 16]);
    }
    assert_eq!(scalar_tx.fetch_verbs(), 16);
}

#[test]
fn fetch_many_serves_pending_writes_locally() {
    let farm = FarmCluster::start(FarmConfig::small(2));
    let ptr = farm
        .run(MachineId(0), |tx| tx.alloc(16, Hint::Local, &[1; 16]))
        .unwrap();

    let mut tx = farm.begin(MachineId(0));
    let buf = tx.read(ptr).unwrap();
    tx.update(&buf, vec![9; 16]).unwrap();
    let got = tx.fetch_many(&[FetchReq::Read(ptr), FetchReq::Probe(ptr.addr)]);
    match got[0].as_ref().unwrap() {
        FetchResp::Obj(b) => assert_eq!(b.data(), &[9; 16], "read-your-writes"),
        other => panic!("expected object, got {other:?}"),
    }
    assert!(
        matches!(got[1], Err(FarmError::Conflict)),
        "probe of a pending write must conflict, got {:?}",
        got[1]
    );
    tx.abort();
}

#[test]
fn doomed_read_write_txn_conflicts_in_slot() {
    let farm = FarmCluster::start(FarmConfig::small(2));
    let ptr = farm
        .run(MachineId(0), |tx| tx.alloc(16, Hint::Local, &[1; 16]))
        .unwrap();

    let mut tx = farm.begin(MachineId(0));
    // A competing writer moves the object past our snapshot.
    farm.run(MachineId(1), move |wtx| {
        let buf = wtx.read(ptr)?;
        wtx.update(&buf, vec![2; 16])
    })
    .unwrap();
    let got = tx.read_many(&[ptr]);
    assert!(
        matches!(got[0], Err(FarmError::Conflict)),
        "read-write txn past its snapshot is doomed, got {:?}",
        got[0]
    );
    tx.abort();
}
