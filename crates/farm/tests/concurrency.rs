//! Concurrency and isolation invariants for the transaction engine:
//! strict serializability under contention, snapshot stability, and
//! allocator safety under concurrent churn.

use a1_farm::{FarmCluster, FarmConfig, FarmError, Hint, MachineId, Ptr};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn read_u64(buf: &a1_farm::ObjBuf) -> u64 {
    u64::from_le_bytes(buf.data()[..8].try_into().unwrap())
}

/// Bank-transfer invariant: concurrent transfers between accounts never
/// create or destroy money, and every read-only snapshot observes a
/// constant total — the classic strict-serializability + snapshot test.
#[test]
fn concurrent_transfers_conserve_total() {
    let farm = FarmCluster::start(FarmConfig::small(4));
    const ACCOUNTS: usize = 8;
    const INITIAL: u64 = 1_000;
    let accounts: Arc<Vec<Ptr>> = Arc::new(
        (0..ACCOUNTS)
            .map(|i| {
                farm.run(MachineId((i % 4) as u32), |tx| {
                    tx.alloc(8, Hint::Local, &INITIAL.to_le_bytes())
                })
                .unwrap()
            })
            .collect(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for t in 0..4u32 {
        let farm = farm.clone();
        let accounts = accounts.clone();
        let stop = stop.clone();
        writers.push(std::thread::spawn(move || {
            let mut i = t as usize;
            while !stop.load(Ordering::Relaxed) {
                let from = accounts[i % ACCOUNTS];
                let to = accounts[(i + 1 + t as usize) % ACCOUNTS];
                i += 1;
                if from == to {
                    continue;
                }
                let _ = farm.run(MachineId(t % 4), |tx| {
                    let a = tx.read(from)?;
                    let b = tx.read(to)?;
                    let av = read_u64(&a);
                    let bv = read_u64(&b);
                    if av == 0 {
                        return Ok(()); // nothing to move
                    }
                    let amt = 1 + av % 7;
                    tx.update(&a, (av - amt).to_le_bytes().to_vec())?;
                    tx.update(&b, (bv + amt).to_le_bytes().to_vec())?;
                    Ok(())
                });
            }
        }));
    }

    // Read-only snapshots during the storm: the total must be exact.
    for r in 0..50 {
        let mut tx = farm.begin_read_only(MachineId((r % 4) as u32));
        let mut total = 0u64;
        for ptr in accounts.iter() {
            total += read_u64(&tx.read(*ptr).unwrap());
        }
        assert_eq!(
            total,
            INITIAL * ACCOUNTS as u64,
            "snapshot {r} saw money appear/vanish"
        );
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    // Final state too.
    let mut tx = farm.begin_read_only(MachineId(0));
    let total: u64 = accounts
        .iter()
        .map(|p| read_u64(&tx.read(*p).unwrap()))
        .sum();
    assert_eq!(total, INITIAL * ACCOUNTS as u64);
}

/// Write skew must be impossible: two transactions that each read both
/// objects and write one cannot both commit if they overlap.
#[test]
fn write_skew_prevented() {
    let farm = FarmCluster::start(FarmConfig::small(2));
    // Invariant to attack: a + b >= 1 (both start at 1).
    let a = farm
        .run(MachineId(0), |tx| {
            tx.alloc(8, Hint::Local, &1u64.to_le_bytes())
        })
        .unwrap();
    let b = farm
        .run(MachineId(0), |tx| {
            tx.alloc(8, Hint::Local, &1u64.to_le_bytes())
        })
        .unwrap();

    let mut t1 = farm.begin(MachineId(0));
    let mut t2 = farm.begin(MachineId(1));
    // Each checks the invariant across BOTH objects, then zeroes one.
    let t1_a = t1.read(a).unwrap();
    let t1_b = t1.read(b).unwrap();
    assert!(read_u64(&t1_a) + read_u64(&t1_b) >= 2);
    t1.update(&t1_a, 0u64.to_le_bytes().to_vec()).unwrap();

    let t2_a = t2.read(a).unwrap();
    let t2_b = t2.read(b).unwrap();
    assert!(read_u64(&t2_a) + read_u64(&t2_b) >= 2);
    t2.update(&t2_b, 0u64.to_le_bytes().to_vec()).unwrap();

    let r1 = t1.commit();
    let r2 = t2.commit();
    // Serializable: at most one wins (read-set validation catches the skew).
    assert!(
        r1.is_ok() ^ r2.is_ok(),
        "exactly one of the skewed transactions must abort: {r1:?} {r2:?}"
    );
    let mut tx = farm.begin_read_only(MachineId(0));
    let total = read_u64(&tx.read(a).unwrap()) + read_u64(&tx.read(b).unwrap());
    assert_eq!(total, 1, "invariant a+b >= 1 preserved");
}

/// Long-running snapshots stay stable while writers churn and GC runs.
#[test]
fn snapshot_stability_under_churn_and_gc() {
    let farm = FarmCluster::start(FarmConfig::small(3));
    let ptrs: Vec<Ptr> = (0..16)
        .map(|i| {
            farm.run(MachineId(0), |tx| {
                tx.alloc(8, Hint::Local, &(i as u64).to_le_bytes())
            })
            .unwrap()
        })
        .collect();
    let expected: u64 = (0..16).sum();

    let mut snapshot = farm.begin_read_only(MachineId(1));
    // Touch one object to pin the snapshot semantics, then churn.
    assert_eq!(read_u64(&snapshot.read(ptrs[0]).unwrap()), 0);
    for round in 1..=5u64 {
        for ptr in &ptrs {
            farm.run(MachineId(2), |tx| {
                let buf = tx.read(*ptr)?;
                let v = read_u64(&buf);
                tx.update(&buf, (v + round).to_le_bytes().to_vec())
            })
            .unwrap();
        }
        farm.gc();
    }
    // The old snapshot still sums to the original values.
    let total: u64 = ptrs
        .iter()
        .map(|p| read_u64(&snapshot.read(*p).unwrap()))
        .sum();
    assert_eq!(total, expected, "snapshot drifted under churn + GC");
}

/// Aborted transactions leave no trace — including eager allocations.
#[test]
fn aborts_leak_nothing() {
    let farm = FarmCluster::start(FarmConfig::small(2));
    let live_before = farm.stats().allocated_objects.load(Ordering::Relaxed);
    for _ in 0..50 {
        let mut tx = farm.begin(MachineId(0));
        let _p1 = tx.alloc(64, Hint::Local, &[1; 64]).unwrap();
        let _p2 = tx.alloc(128, Hint::Local, &[2; 128]).unwrap();
        tx.abort();
    }
    // Dropped-without-commit transactions roll back too.
    for _ in 0..10 {
        let mut tx = farm.begin(MachineId(0));
        let _ = tx.alloc(64, Hint::Local, &[3; 64]).unwrap();
        drop(tx);
    }
    let live_after = farm.stats().allocated_objects.load(Ordering::Relaxed);
    assert_eq!(
        live_before, live_after,
        "aborted allocations must be rolled back"
    );
}

// Property: any serial interleaving of counter increments with random
// origins and conflict-retry preserves the exact count (model: u64 sum).
proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]
    #[test]
    fn counter_increments_exact(
        increments in prop::collection::vec(0u32..3, 10..60),
    ) {
        let farm = FarmCluster::start(FarmConfig::small(3));
        let ptr = farm
            .run(MachineId(0), |tx| tx.alloc(8, Hint::Local, &0u64.to_le_bytes()))
            .unwrap();
        for origin in &increments {
            farm.run(MachineId(*origin), |tx| {
                let buf = tx.read(ptr)?;
                let v = read_u64(&buf);
                tx.update(&buf, (v + 1).to_le_bytes().to_vec())
            })
            .unwrap();
        }
        let mut tx = farm.begin_read_only(MachineId(0));
        prop_assert_eq!(read_u64(&tx.read(ptr).unwrap()), increments.len() as u64);
    }

    /// Allocator safety: random alloc/free sequences never hand out
    /// overlapping live blocks, across regions and machines.
    #[test]
    fn allocations_never_overlap(
        ops in prop::collection::vec((1usize..2000, prop::bool::ANY), 5..60),
    ) {
        let farm = FarmCluster::start(FarmConfig::small(2));
        let mut live: Vec<(Ptr, usize)> = Vec::new();
        for (size, free_one) in ops {
            if free_one && !live.is_empty() {
                let (ptr, _) = live.remove(live.len() / 2);
                farm.run(MachineId(0), |tx| {
                    let buf = tx.read(ptr)?;
                    tx.free(&buf)
                })
                .unwrap();
                farm.gc();
                continue;
            }
            let ptr = farm
                .run(MachineId(0), |tx| tx.alloc(size, Hint::Local, &[0xAB][..size.min(1)]))
                .unwrap();
            // Overlap check against every live block in the same region.
            for (other, other_size) in &live {
                if other.addr.region() != ptr.addr.region() {
                    continue;
                }
                let (a0, a1) = (ptr.addr.offset() as usize, ptr.addr.offset() as usize + size);
                let (b0, b1) = (other.addr.offset() as usize, other.addr.offset() as usize + other_size);
                prop_assert!(a1 <= b0 || b1 <= a0, "overlap: {ptr:?} vs {other:?}");
            }
            live.push((ptr, size));
        }
        // All live blocks still readable with their size.
        let mut tx = farm.begin_read_only(MachineId(1));
        for (ptr, _) in &live {
            prop_assert!(tx.read(*ptr).is_ok());
        }
    }
}

/// Readers spinning on a locked object eventually succeed (commit releases
/// locks promptly) rather than erroring.
#[test]
fn readers_wait_out_commit_locks() {
    let farm = FarmCluster::start(FarmConfig::small(2));
    let ptr = farm
        .run(MachineId(0), |tx| {
            tx.alloc(8, Hint::Local, &0u64.to_le_bytes())
        })
        .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let farm = farm.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                farm.run(MachineId(0), |tx| {
                    let buf = tx.read(ptr)?;
                    let v = read_u64(&buf);
                    tx.update(&buf, (v + 1).to_le_bytes().to_vec())
                })
                .unwrap();
            }
        })
    };
    let mut failures = 0;
    for _ in 0..500 {
        let mut tx = farm.begin_read_only(MachineId(1));
        if matches!(tx.read(ptr), Err(FarmError::Conflict)) {
            failures += 1;
        }
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    assert_eq!(
        failures, 0,
        "read-only snapshots must never fail under write churn"
    );
}
