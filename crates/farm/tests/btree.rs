//! Functional and model-based tests for the distributed B+-tree.

use a1_farm::{BTree, BTreeConfig, FarmCluster, FarmConfig, Hint, MachineId};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn cluster() -> Arc<FarmCluster> {
    FarmCluster::start(FarmConfig::small(3))
}

fn small_tree(c: &Arc<FarmCluster>) -> BTree {
    let cfg = BTreeConfig {
        max_keys: 4,
        max_key_len: 32,
        max_val_len: 32,
    };
    c.run(MachineId(0), |tx| BTree::create(tx, cfg, Hint::Local))
        .unwrap()
}

#[test]
fn insert_get_remove() {
    let c = cluster();
    let tree = small_tree(&c);
    c.run(MachineId(0), |tx| {
        assert_eq!(tree.insert(tx, b"hello", b"world")?, None);
        assert_eq!(tree.get(tx, b"hello")?, Some(b"world".to_vec()));
        assert_eq!(tree.get(tx, b"missing")?, None);
        assert_eq!(
            tree.insert(tx, b"hello", b"there")?,
            Some(b"world".to_vec())
        );
        Ok(())
    })
    .unwrap();
    // Separate transaction sees committed state.
    c.run(MachineId(1), |tx| {
        assert_eq!(tree.get(tx, b"hello")?, Some(b"there".to_vec()));
        assert_eq!(tree.remove(tx, b"hello")?, Some(b"there".to_vec()));
        assert_eq!(tree.remove(tx, b"hello")?, None);
        Ok(())
    })
    .unwrap();
}

#[test]
fn many_inserts_split_and_scan_sorted() {
    let c = cluster();
    let tree = small_tree(&c);
    // 200 keys with max_keys=4 forces multi-level splits.
    for i in 0..200u32 {
        let k = format!("key{:04}", (i * 37) % 200);
        c.run(MachineId(0), |tx| {
            tree.insert(tx, k.as_bytes(), b"v").map(|_| ())
        })
        .unwrap();
    }
    let mut tx = c.begin_read_only(MachineId(1));
    let all = tree.scan(&mut tx, &[], &[], usize::MAX).unwrap();
    assert_eq!(all.len(), 200);
    for w in all.windows(2) {
        assert!(w[0].0 < w[1].0, "scan must be sorted");
    }
    // Range scan.
    let range = tree
        .scan(&mut tx, b"key0010", b"key0020", usize::MAX)
        .unwrap();
    assert_eq!(range.len(), 10);
    assert_eq!(range[0].0, b"key0010".to_vec());
    // Limit.
    let limited = tree.scan(&mut tx, &[], &[], 7).unwrap();
    assert_eq!(limited.len(), 7);
    // Prefix scan.
    let prefix = tree.scan_prefix(&mut tx, b"key01", usize::MAX).unwrap();
    assert_eq!(prefix.len(), 100);
}

#[test]
fn multi_key_transactionality() {
    let c = cluster();
    let tree = small_tree(&c);
    // A transaction inserting two keys is atomic: a conflicting abort leaves
    // neither.
    let r = c.run(MachineId(0), |tx| {
        tree.insert(tx, b"a", b"1")?;
        tree.insert(tx, b"b", b"2")?;
        Ok(())
    });
    assert!(r.is_ok());
    let mut tx = c.begin_read_only(MachineId(0));
    assert_eq!(tree.get(&mut tx, b"a").unwrap(), Some(b"1".to_vec()));
    assert_eq!(tree.get(&mut tx, b"b").unwrap(), Some(b"2".to_vec()));
}

#[test]
fn concurrent_inserts_all_land() {
    let c = cluster();
    let cfg = BTreeConfig {
        max_keys: 8,
        max_key_len: 32,
        max_val_len: 32,
    };
    let tree = c
        .run(MachineId(0), |tx| BTree::create(tx, cfg, Hint::Local))
        .unwrap();
    let mut handles = Vec::new();
    for t in 0..4u32 {
        let c = c.clone();
        let tree = tree.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..50u32 {
                let k = format!("t{}k{:03}", t, i);
                c.run(MachineId(t % 3), |tx| {
                    tree.insert(tx, k.as_bytes(), b"x").map(|_| ())
                })
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut tx = c.begin_read_only(MachineId(0));
    assert_eq!(tree.len(&mut tx).unwrap(), 200);
}

#[test]
fn key_value_limits_enforced() {
    let c = cluster();
    let tree = small_tree(&c);
    let mut tx = c.begin(MachineId(0));
    assert!(tree.insert(&mut tx, &[], b"v").is_err());
    assert!(tree.insert(&mut tx, &[7; 33], b"v").is_err());
    assert!(tree.insert(&mut tx, b"k", &[7; 33]).is_err());
    tx.abort();
}

#[test]
fn destroy_frees_everything() {
    let c = cluster();
    let tree = small_tree(&c);
    for i in 0..50u32 {
        let k = format!("k{i:03}");
        c.run(MachineId(0), |tx| {
            tree.insert(tx, k.as_bytes(), b"v").map(|_| ())
        })
        .unwrap();
    }
    let before = c
        .stats()
        .freed_objects
        .load(std::sync::atomic::Ordering::Relaxed);
    c.run(MachineId(0), |tx| tree.destroy(tx)).unwrap();
    let after = c
        .stats()
        .freed_objects
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        after - before >= 10,
        "all nodes + header freed (got {})",
        after - before
    );
    // Lookups now fail.
    let mut tx = c.begin_read_only(MachineId(0));
    assert!(tree.get(&mut tx, b"k001").is_err());
}

#[test]
fn snapshot_scan_ignores_concurrent_inserts() {
    let c = cluster();
    let tree = small_tree(&c);
    for i in 0..20u32 {
        let k = format!("k{i:03}");
        c.run(MachineId(0), |tx| {
            tree.insert(tx, k.as_bytes(), b"v").map(|_| ())
        })
        .unwrap();
    }
    let mut snap = c.begin_read_only(MachineId(1));
    // Force the snapshot to be taken before the next writes by reading now.
    let before = tree.len(&mut snap).unwrap();
    assert_eq!(before, 20);
    for i in 20..40u32 {
        let k = format!("k{i:03}");
        c.run(MachineId(0), |tx| {
            tree.insert(tx, k.as_bytes(), b"v").map(|_| ())
        })
        .unwrap();
    }
    // Old snapshot still sees 20; a new one sees 40.
    assert_eq!(tree.len(&mut snap).unwrap(), 20);
    let mut fresh = c.begin_read_only(MachineId(2));
    assert_eq!(tree.len(&mut fresh).unwrap(), 40);
}

/// Model-based test: random operation sequences match `BTreeMap`.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Remove(Vec<u8>),
    Get(Vec<u8>),
    Scan(Vec<u8>, Vec<u8>),
}

fn arb_key() -> impl Strategy<Value = Vec<u8>> {
    // Small key space to maximize collisions and structural churn.
    (0u8..20, 0u8..4).prop_map(|(a, b)| vec![b'k', a, b])
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_key(), prop::collection::vec(any::<u8>(), 0..8)).prop_map(|(k, v)| Op::Insert(k, v)),
        arb_key().prop_map(Op::Remove),
        arb_key().prop_map(Op::Get),
        (arb_key(), arb_key()).prop_map(|(a, b)| Op::Scan(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]
    #[test]
    fn matches_btreemap_model(ops in prop::collection::vec(arb_op(), 1..80)) {
        let c = cluster();
        let tree = small_tree(&c);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let old = c
                        .run(MachineId(0), |tx| tree.insert(tx, &k, &v))
                        .unwrap();
                    prop_assert_eq!(old, model.insert(k.clone(), v.clone()));
                }
                Op::Remove(k) => {
                    let old = c.run(MachineId(0), |tx| tree.remove(tx, &k)).unwrap();
                    prop_assert_eq!(old, model.remove(&k));
                }
                Op::Get(k) => {
                    let mut tx = c.begin_read_only(MachineId(1));
                    prop_assert_eq!(tree.get(&mut tx, &k).unwrap(), model.get(&k).cloned());
                }
                Op::Scan(mut lo, mut hi) => {
                    if lo > hi {
                        std::mem::swap(&mut lo, &mut hi);
                    }
                    let mut tx = c.begin_read_only(MachineId(1));
                    let got = tree.scan(&mut tx, &lo, &hi, usize::MAX).unwrap();
                    let want: Vec<(Vec<u8>, Vec<u8>)> = model
                        .range(lo.clone()..hi.clone())
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        // Final full-scan equivalence.
        let mut tx = c.begin_read_only(MachineId(0));
        let got = tree.scan(&mut tx, &[], &[], usize::MAX).unwrap();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, want);
    }
}
