//! Property tests for the physical-clock layer (`farm/src/clock.rs`):
//! Marzullo interval intersection and lease safety under skew, uncertainty,
//! and backward clock jumps. All time here is virtual — the tests drive a
//! `VirtualClock` explicitly, so they are deterministic and instant.

use a1_farm::{
    marzullo, ClockSample, ClockSource, Lease, LeaseManager, MachineClock, MachineId, VirtualClock,
};
use proptest::prelude::*;

/// Number of intervals (ignoring malformed lo > hi ones) containing `x`.
fn depth_at(samples: &[(i64, i64)], x: i64) -> usize {
    samples
        .iter()
        .filter(|&&(lo, hi)| lo <= hi && lo <= x && x <= hi)
        .count()
}

/// Brute-force maximum overlap depth: the depth is maximized at some
/// interval endpoint, so scanning edges is exhaustive.
fn brute_max_depth(samples: &[(i64, i64)]) -> usize {
    samples
        .iter()
        .filter(|&&(lo, hi)| lo <= hi)
        .flat_map(|&(lo, hi)| [lo, hi])
        .map(|e| depth_at(samples, e))
        .max()
        .unwrap_or(0)
}

fn arb_interval() -> impl Strategy<Value = (i64, i64)> {
    // Mostly well-formed intervals, some malformed (lo > hi) to exercise the
    // skip path.
    (-1_000i64..1_000, 0i64..400).prop_map(|(lo, w)| (lo, lo + w - 50))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// Agreement-interval correctness against a brute-force reference:
    /// `marzullo` returns an interval exactly when some point is covered by
    /// at least `quorum` sources, and the returned interval sits at the
    /// maximal overlap depth (every endpoint covered by `max_depth` sources).
    #[test]
    fn marzullo_matches_brute_force(
        samples in prop::collection::vec(arb_interval(), 0..12),
        quorum in 1usize..8,
    ) {
        let max_depth = brute_max_depth(&samples);
        match marzullo(&samples, quorum) {
            Some((lo, hi)) => {
                prop_assert!(max_depth >= quorum);
                prop_assert!(lo <= hi);
                prop_assert_eq!(depth_at(&samples, lo), max_depth);
                prop_assert_eq!(depth_at(&samples, hi), max_depth);
            }
            None => prop_assert!(max_depth < quorum),
        }
    }

    /// Fault tolerance: with `n` good sources whose intervals all contain
    /// the true offset `t` (half-width ≤ W) and `f < n` arbitrary faulty
    /// sources, a quorum of `n` guarantees the agreement interval is
    /// contained in at least `n - f ≥ 1` good intervals — so every point of
    /// it lies within W of the truth, no matter what the faulty clocks say.
    #[test]
    fn marzullo_tolerates_f_faulty_clocks(
        t in -500i64..500,
        good_widths in prop::collection::vec((0i64..100, 0i64..100), 3..7),
        faulty in prop::collection::vec((-10_000i64..10_000, 0i64..20_000), 0..3),
    ) {
        let n = good_widths.len();
        let mut samples: Vec<(i64, i64)> =
            good_widths.iter().map(|&(w_lo, w_hi)| (t - w_lo, t + w_hi)).collect();
        // Keep f < n so at least one good interval contains the result.
        samples.extend(faulty.iter().take(n - 1).map(|&(lo, w)| (lo, lo + w)));
        let (lo, hi) = marzullo(&samples, n).expect("n good sources agree at t");
        prop_assert!((lo - t).abs() <= 100, "lo {} strays from truth {}", lo, t);
        prop_assert!((hi - t).abs() <= 100, "hi {} strays from truth {}", hi, t);
    }

    /// Lease safety: as long as the holder/grantor skew difference stays
    /// within the combined uncertainty margin (2U), there is no instant at
    /// which the holder still considers its lease valid while the grantor
    /// already considers it reclaimable.
    #[test]
    fn lease_never_valid_and_reclaimable_under_bounded_skew(
        uncertainty in 1u64..50_000,
        holder_skew in -40_000i64..40_000,
        skew_delta in -2i64..3,           // scaled by U below
        lease_us in 1u64..500,
        steps in prop::collection::vec(1u64..200_000, 1..20),
    ) {
        let base = VirtualClock::starting_at(1 << 30);
        let holder_clock = MachineClock::new(base.clone(), uncertainty);
        let grantor_clock = MachineClock::new(base.clone(), uncertainty);
        holder_clock.jump_ns(holder_skew);
        grantor_clock.jump_ns(holder_skew + skew_delta * uncertainty as i64);

        let mgr = LeaseManager::new(grantor_clock.clone(), lease_us * 1_000);
        let lease = mgr.grant(MachineId(1));
        for step in steps {
            base.advance(step);
            let valid = lease.holder_valid(&holder_clock);
            let reclaimable = mgr.reclaimable(&lease);
            prop_assert!(
                !(valid && reclaimable),
                "split-brain window: lease both held and reclaimable"
            );
        }
    }

    /// A backward clock jump on the holder fail-safes the lease: the next
    /// read marks the clock suspect and the holder stops trusting its lease
    /// immediately, regardless of how much lease time notionally remains.
    #[test]
    fn backward_jump_invalidates_lease_until_sync(
        jump in 1i64..1_000_000,
        uncertainty in 1u64..10_000,
    ) {
        let base = VirtualClock::starting_at(1 << 30);
        let clock = MachineClock::new(base.clone(), uncertainty);
        let mgr = LeaseManager::new(clock.clone(), 10_000_000); // 10ms lease
        let lease = mgr.grant(MachineId(2));
        prop_assert!(lease.holder_valid(&clock));

        clock.jump_ns(-jump);
        prop_assert!(!lease.holder_valid(&clock), "suspect clock must fail-safe");
        prop_assert!(clock.is_suspect());

        // A quorum sync that agrees our clock is `jump` behind restores
        // trust (and corrects the skew back to zero).
        let samples: Vec<ClockSample> = (0..3)
            .map(|i| ClockSample {
                peer: MachineId(10 + i),
                offset_low_ns: jump - 1,
                offset_high_ns: jump + 1,
            })
            .collect();
        let out = clock.sync(&samples, 3, 1 << 40, 0).expect("quorum agrees");
        prop_assert_eq!(out.correction_ns, jump);
        prop_assert!(!clock.is_suspect());
        prop_assert_eq!(clock.skew_ns(), 0);
        prop_assert!(lease.holder_valid(&clock));
    }
}

/// Exact expiry boundaries: the holder gives up an uncertainty margin
/// *early* and the grantor waits an uncertainty margin *late*, so their
/// views never overlap the wrong way around the expiry instant.
#[test]
fn lease_expiry_boundaries_are_strict() {
    let base = VirtualClock::starting_at(1_000_000);
    let clock = MachineClock::new(base.clone(), 1_000);
    let lease = Lease {
        holder: MachineId(0),
        expires_at_ns: base.now_ns() + 100_000,
    };

    // Holder margin: invalid as soon as now + U reaches expiry.
    base.advance(100_000 - 1_000 - 1); // now + U == expires - 1
    assert!(lease.holder_valid(&clock));
    base.advance(1); // now + U == expires
    assert!(!lease.holder_valid(&clock));

    // Grantor margin: reclaimable only once now - U passes expiry.
    base.advance(1_000 + 1_000); // now == expires + U
    assert!(!lease.grantor_expired(&clock));
    base.advance(1); // now - U == expires + 1
    assert!(lease.grantor_expired(&clock));
}
