//! Invariant oracles: the judgments a scenario's verdict is built from.
//!
//! Each oracle is a named check with a deterministic detail string; failed
//! oracles carry enough context to debug from the printed report alone.
//! Scenarios collect [`OracleReport`]s and the runner folds them into a
//! pass/fail verdict plus the trace fingerprint.

use a1_farm::{Lease, LeaseManager, MachineClock};

/// One invariant check's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleReport {
    /// Stable oracle name, e.g. `answers-match-reference`.
    pub name: String,
    pub ok: bool,
    /// Deterministic explanation (expected/actual on failure).
    pub detail: String,
}

impl OracleReport {
    pub fn pass(name: &str, detail: impl Into<String>) -> OracleReport {
        OracleReport {
            name: name.to_string(),
            ok: true,
            detail: detail.into(),
        }
    }

    pub fn fail(name: &str, detail: impl Into<String>) -> OracleReport {
        OracleReport {
            name: name.to_string(),
            ok: false,
            detail: detail.into(),
        }
    }

    /// Equality oracle: `ok` iff `expected == actual`.
    pub fn check_eq<T: PartialEq + std::fmt::Debug>(
        name: &str,
        expected: &T,
        actual: &T,
    ) -> OracleReport {
        if expected == actual {
            OracleReport::pass(name, format!("{actual:?}"))
        } else {
            OracleReport::fail(name, format!("expected {expected:?}, got {actual:?}"))
        }
    }

    /// Predicate oracle.
    pub fn check(name: &str, ok: bool, detail: impl Into<String>) -> OracleReport {
        if ok {
            OracleReport::pass(name, detail)
        } else {
            OracleReport::fail(name, detail)
        }
    }
}

/// The lease-safety invariant (§5.1): at no sampled instant may a lease be
/// simultaneously *valid* from the holder's clock and *reclaimable* from
/// the grantor's. Sample it after every fault/advance step.
pub fn lease_safety_sample(
    lease: &Lease,
    holder_clock: &MachineClock,
    mgr: &LeaseManager,
) -> Option<String> {
    let valid = lease.holder_valid(holder_clock);
    let reclaimable = mgr.reclaimable(lease);
    if valid && reclaimable {
        Some(format!(
            "lease for machine {} valid at holder yet reclaimable at grantor",
            lease.holder.0
        ))
    } else {
        None
    }
}

/// Watermark monotonicity: a sequence of observed per-source watermarks
/// must never decrease. Feed observations in order; returns the first
/// violation.
pub fn watermark_monotonic(observed: &[(String, u64)]) -> Option<String> {
    let mut last: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for (source, seq) in observed {
        if let Some(prev) = last.get(source.as_str()) {
            if seq < prev {
                return Some(format!(
                    "watermark for source '{source}' went backward: {prev} -> {seq}"
                ));
            }
        }
        last.insert(source, *seq);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_oracle_reports_both_sides() {
        let r = OracleReport::check_eq("x", &1, &2);
        assert!(!r.ok);
        assert!(r.detail.contains("expected 1"));
        assert!(OracleReport::check_eq("x", &1, &1).ok);
    }

    #[test]
    fn watermark_monotonicity_catches_regression() {
        let ok = [
            ("s".to_string(), 1),
            ("s".to_string(), 5),
            ("t".to_string(), 2),
        ];
        assert!(watermark_monotonic(&ok).is_none());
        let bad = [("s".to_string(), 5), ("s".to_string(), 3)];
        assert!(watermark_monotonic(&bad).unwrap().contains("went backward"));
    }
}
