//! The scenario catalog: each scenario is a deterministic fault/clock story
//! driven against a [`crate::SimEnv`], judged by invariant oracles.
//!
//! A scenario owns its environment construction so it can customize the
//! configuration (DR on, cache on, small pages) while keeping the harness
//! invariants: one seed in, every decision derived from it.

use std::sync::Arc;

use crate::oracle::OracleReport;
use crate::trace::Trace;

/// What a scenario run produced: its oracle verdicts plus the primary
/// environment's event trace (the replayability artifact).
pub struct ScenarioOutcome {
    pub oracles: Vec<OracleReport>,
    pub trace: Arc<Trace>,
}

impl ScenarioOutcome {
    pub fn passed(&self) -> bool {
        self.oracles.iter().all(|o| o.ok)
    }
}

/// A deterministic fault-injection story. `run` must be a pure function of
/// `seed`: same seed, same trace, same verdict — byte for byte.
pub trait Scenario: Send + Sync {
    /// Stable kebab-case name (CLI `--scenario` key).
    fn name(&self) -> &'static str;
    /// One-line description for reports.
    fn description(&self) -> &'static str;
    fn run(&self, seed: u64) -> ScenarioOutcome;
}

/// Every scenario in the catalog, in stable order.
pub fn catalog() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(crate::scenarios::ingest::PartitionDuringIngest),
        Box::new(crate::scenarios::query::CoordinatorDeathMidFanout),
        Box::new(crate::scenarios::query::MessageLossStorm),
        Box::new(crate::scenarios::clockfault::ClockSkewPastLeaseBound),
        Box::new(crate::scenarios::clockfault::BackwardClockJump),
        Box::new(crate::scenarios::recovery::ReplogReplayRace),
        Box::new(crate::scenarios::recovery::CacheInvalidationVsCrash),
    ]
}

/// Look up a catalog scenario by its stable name.
pub fn by_name(name: &str) -> Option<Box<dyn Scenario>> {
    catalog().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_stable() {
        let names: Vec<&str> = catalog().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
        assert!(names.len() >= 6, "catalog must cover >= 6 scenarios");
        assert!(by_name("partition-during-ingest").is_some());
        assert!(by_name("nope").is_none());
    }
}
