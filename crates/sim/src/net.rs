//! The simulated network: a [`FaultInjector`] whose every ruling is a pure
//! function of the scenario's explicit state (partitions, reply-drop sets)
//! plus a seeded RNG stream (random loss/delay) — so a run's network
//! behavior is exactly replayable from `(seed, scenario)`.

use a1_rdma::{ClockSource, ClusterRng, FaultDecision, FaultInjector, MachineId, NetOp};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::trace::Trace;

/// Deterministic fault network. Install on the fabric with
/// [`a1_rdma::Fabric::set_fault_injector`]; drive it from scenario code via
/// the partition/drop/loss controls. Every non-`Deliver` ruling is recorded
/// in the run's [`Trace`].
pub struct SimNet {
    /// Directional blocked pairs `(from, to)`: ops between them Drop.
    blocked: Mutex<HashSet<(u32, u32)>>,
    /// Machines whose outgoing RPC *replies* are lost — the "request
    /// applied, ack never arrived" ambiguity.
    reply_loss: Mutex<HashSet<u32>>,
    /// Probability any op is dropped, seeded stream `rng`.
    loss_rate: Mutex<f64>,
    /// Extra delivery delay in ns applied to every delivered op; under the
    /// virtual clock this advances simulated time, never wall time.
    delay_ns: AtomicU64,
    rng: ClusterRng,
    trace: Arc<Trace>,
    clock: Arc<dyn ClockSource>,
}

impl SimNet {
    pub fn new(rng: ClusterRng, trace: Arc<Trace>, clock: Arc<dyn ClockSource>) -> Arc<SimNet> {
        Arc::new(SimNet {
            blocked: Mutex::new(HashSet::new()),
            reply_loss: Mutex::new(HashSet::new()),
            loss_rate: Mutex::new(0.0),
            delay_ns: AtomicU64::new(0),
            rng,
            trace,
            clock,
        })
    }

    /// Sever both directions between `a` and `b`.
    pub fn partition(&self, a: MachineId, b: MachineId) {
        let mut blocked = self.blocked.lock();
        blocked.insert((a.0, b.0));
        blocked.insert((b.0, a.0));
        self.trace.record(
            self.clock.now_ns(),
            "net.partition",
            format!("{} <-x-> {}", a.0, b.0),
        );
    }

    /// Sever `m` from every other machine in a `machines`-wide cluster.
    pub fn isolate(&self, m: MachineId, machines: u32) {
        for other in 0..machines {
            if other != m.0 {
                let mut blocked = self.blocked.lock();
                blocked.insert((m.0, other));
                blocked.insert((other, m.0));
            }
        }
        self.trace.record(
            self.clock.now_ns(),
            "net.isolate",
            format!("machine {}", m.0),
        );
    }

    /// Remove every partition and reply-loss rule.
    pub fn heal(&self) {
        self.blocked.lock().clear();
        self.reply_loss.lock().clear();
        self.trace
            .record(self.clock.now_ns(), "net.heal", "all links restored");
    }

    /// Start losing RPC replies sent *by* `m` (its handlers still run).
    pub fn lose_replies_from(&self, m: MachineId) {
        self.reply_loss.lock().insert(m.0);
        self.trace.record(
            self.clock.now_ns(),
            "net.reply-loss",
            format!("machine {}", m.0),
        );
    }

    /// Random messaging loss: each RPC/reply/UD datagram is dropped with
    /// probability `rate`, decided by the seeded RNG stream (replayable).
    /// One-sided READ/WRITE/CAS are exempt — RDMA reliable connections
    /// retransmit those, so their failure mode is machine death or
    /// partition, never silent loss (§2).
    pub fn set_loss_rate(&self, rate: f64) {
        *self.loss_rate.lock() = rate;
        self.trace
            .record(self.clock.now_ns(), "net.loss-rate", format!("{rate}"));
    }

    /// Fixed extra delivery delay for every delivered op.
    pub fn set_delay_ns(&self, ns: u64) {
        self.delay_ns.store(ns, Ordering::SeqCst);
        self.trace
            .record(self.clock.now_ns(), "net.delay", format!("{ns}ns"));
    }
}

impl FaultInjector for SimNet {
    fn decide(&self, op: NetOp, from: MachineId, to: MachineId, _len: usize) -> FaultDecision {
        if self.blocked.lock().contains(&(from.0, to.0)) {
            self.trace.record(
                self.clock.now_ns(),
                "fault.drop",
                format!("{} {}->{} partitioned", op.name(), from.0, to.0),
            );
            return FaultDecision::Drop;
        }
        if op == NetOp::RpcReply && self.reply_loss.lock().contains(&from.0) {
            self.trace.record(
                self.clock.now_ns(),
                "fault.drop",
                format!("rpc-reply {}->{} lost", from.0, to.0),
            );
            return FaultDecision::Drop;
        }
        let messaging = matches!(op, NetOp::Rpc | NetOp::RpcReply | NetOp::Ud);
        let rate = *self.loss_rate.lock();
        if messaging && rate > 0.0 && self.rng.next_f64() < rate {
            self.trace.record(
                self.clock.now_ns(),
                "fault.drop",
                format!("{} {}->{} random", op.name(), from.0, to.0),
            );
            return FaultDecision::Drop;
        }
        let delay = self.delay_ns.load(Ordering::SeqCst);
        if delay > 0 {
            return FaultDecision::Delay(delay);
        }
        FaultDecision::Deliver
    }
}
