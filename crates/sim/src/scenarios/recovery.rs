//! Recovery scenarios: replication-log replay races around process crashes,
//! and cache invalidation interleaved with crash/restart.

use std::time::Duration;

use a1_objectstore::{ObjectStore, StoreConfig};
use a1_rdma::{MachineId, VirtualClock};
use a1_recovery::{recover_consistent, Replicator};

use crate::oracle::OracleReport;
use crate::scenario::{Scenario, ScenarioOutcome};
use crate::workload::{self, GRAPH, TENANT};
use crate::SimEnv;

const MACHINES: u32 = 3;

/// Replication-log sweep interrupted by a process crash, then the replayed
/// entries delivered twice (the at-least-once bus): consistent recovery
/// from the object store must still equal the origin graph exactly.
pub struct ReplogReplayRace;

impl Scenario for ReplogReplayRace {
    fn name(&self) -> &'static str {
        "replog-replay-race"
    }

    fn description(&self) -> &'static str {
        "process crash mid-sweep plus duplicate log replay; consistent recovery must equal the origin graph"
    }

    fn run(&self, seed: u64) -> ScenarioOutcome {
        let clock = VirtualClock::starting_at(1 << 30);
        let mut cfg = SimEnv::base_config(seed, MACHINES, &clock);
        cfg.dr_enabled = true;
        let env = SimEnv::with_config(seed, MACHINES, clock, cfg);
        let client = env.client();
        workload::setup_schema(&client);
        let spokes = workload::seeded_nodes(&env.rng, 6);
        workload::build_hub(&client, "hub", &spokes);

        let store = ObjectStore::new(StoreConfig::default());
        let repl = Replicator::new(env.cluster.clone(), store).expect("replicator");
        repl.replicate_catalog().expect("catalog");

        // Partial sweep, then a process crash/restart in the middle of
        // replication (PyCo memory survives, so the log does too).
        let swept = repl.sweep(3).expect("partial sweep");
        env.event("dr.sweep", format!("partial swept={swept}"));
        let victim = MachineId(1 + env.rng.gen_range((MACHINES - 1) as u64) as u32);
        env.crash_process(victim);
        env.advance(Duration::from_micros(100));
        env.restart_process(victim);

        // The bus redelivers: every still-pending entry lands twice.
        {
            let inner = env.cluster.inner();
            let log = inner.replog.as_ref().expect("dr enabled");
            let entries = log
                .fetch_pending(&inner.farm, MachineId(0), 64)
                .expect("fetch pending");
            env.event("dr.replay", format!("{} entries twice", entries.len()));
            for e in &entries {
                repl.apply_entry(e).expect("first delivery");
                repl.apply_entry(e).expect("duplicate delivery");
            }
        }
        repl.sweep_all().expect("drain");
        repl.update_watermark().expect("watermark");

        // Consistent recovery into a fresh deterministic cluster.
        let rcfg = SimEnv::base_config(seed ^ 0x9e37_79b9, 2, &env.clock);
        let (recovered, report) =
            recover_consistent(repl.store(), rcfg, TENANT, GRAPH).expect("recover");
        let rc = recovered.client();

        let mut ids: Vec<String> = spokes.iter().map(|(id, _)| id.clone()).collect();
        ids.push("hub".to_string());
        let origin = workload::canonical_state(&client, &ids);
        let restored = workload::canonical_state(&rc, &ids);
        let edge_count = rc
            .query(TENANT, GRAPH, &workload::hub_count_query("hub"))
            .expect("recovered query")
            .count;

        ScenarioOutcome {
            oracles: vec![
                OracleReport::check_eq(
                    "no-committed-write-loss",
                    &(spokes.len() + 1),
                    &report.vertices,
                ),
                OracleReport::check_eq("edges-recovered", &spokes.len(), &report.edges),
                OracleReport::check_eq("recovered-matches-origin", &origin, &restored),
                OracleReport::check_eq("recovered-fanout", &Some(spokes.len() as u64), &edge_count),
            ],
            trace: env.trace.clone(),
        }
    }
}

/// Hot-vertex cache warmed, a cached vertex rewritten, and the process
/// crash/restart interleaved with the re-read: the cache must never serve
/// the stale pre-write value.
pub struct CacheInvalidationVsCrash;

impl Scenario for CacheInvalidationVsCrash {
    fn name(&self) -> &'static str {
        "cache-invalidation-vs-crash"
    }

    fn description(&self) -> &'static str {
        "write to a cached vertex races a process crash/restart; reads must see the new value, never the stale cache entry"
    }

    fn run(&self, seed: u64) -> ScenarioOutcome {
        let env = SimEnv::new(seed, MACHINES); // cache enabled by default
        let client = env.client();
        workload::setup_schema(&client);
        let spokes = workload::seeded_nodes(&env.rng, 8);
        workload::build_hub(&client, "hub", &spokes);
        let q = workload::hub_rows_query("hub");

        // Warm the hot-vertex cache with repeated scans.
        for _ in 0..4 {
            client.query(TENANT, GRAPH, &q).expect("warm scan");
        }
        let warm_stats = env.cluster.cache_stats();
        let warmed = OracleReport::check(
            "cache-warmed",
            warm_stats.hits > 0,
            format!("hits={} misses={}", warm_stats.hits, warm_stats.misses),
        );

        // Rewrite one cached spoke; new ranks land in 1000..1999, disjoint
        // from every seeded rank, so staleness is detectable by value.
        let (id, rank) = spokes[env.rng.gen_range(spokes.len() as u64) as usize].clone();
        let new_rank = rank + 1000;
        client
            .update_vertex(
                TENANT,
                GRAPH,
                workload::NODE_TYPE,
                &workload::node_attrs(&id, new_rank),
            )
            .expect("rewrite");
        env.event("cache.rewrite", format!("{id} rank {rank}->{new_rank}"));

        // Fault-free reference performing the identical write.
        let ref_env = SimEnv::new(seed, MACHINES);
        let ref_client = ref_env.client();
        workload::setup_schema(&ref_client);
        let ref_spokes = workload::seeded_nodes(&ref_env.rng, 8);
        workload::build_hub(&ref_client, "hub", &ref_spokes);
        for _ in 0..4 {
            ref_client.query(TENANT, GRAPH, &q).expect("reference warm");
        }
        let (rid, rrank) =
            ref_spokes[ref_env.rng.gen_range(ref_spokes.len() as u64) as usize].clone();
        ref_client
            .update_vertex(
                TENANT,
                GRAPH,
                workload::NODE_TYPE,
                &workload::node_attrs(&rid, rrank + 1000),
            )
            .expect("reference rewrite");
        let reference = workload::render_rows(
            &ref_client
                .query(TENANT, GRAPH, &q)
                .expect("reference scan")
                .rows,
        );

        // Crash a process; a read in the window must fail cleanly or match
        // the post-write truth — never the stale cached value.
        let victim = MachineId(1 + env.rng.gen_range((MACHINES - 1) as u64) as u32);
        env.crash_process(victim);
        let during = client.query(TENANT, GRAPH, &q);
        let during_ok = match during {
            Ok(out) => OracleReport::check_eq(
                "mid-crash-read-if-any",
                &reference,
                &workload::render_rows(&out.rows),
            ),
            Err(e) => OracleReport::pass("mid-crash-read-if-any", format!("clean error: {e}")),
        };
        env.advance(Duration::from_micros(100));
        env.restart_process(victim);

        let after = workload::render_rows(
            &client
                .query(TENANT, GRAPH, &q)
                .expect("post-restart scan")
                .rows,
        );
        let fresh = OracleReport::check(
            "read-sees-new-value",
            after.iter().any(|r| r.contains(&format!("{new_rank}"))),
            format!("updated rank {new_rank} visible after restart"),
        );

        ScenarioOutcome {
            oracles: vec![
                warmed,
                during_ok,
                fresh,
                OracleReport::check_eq("answers-match-reference", &reference, &after),
            ],
            trace: env.trace.clone(),
        }
    }
}
