//! Clock-fault scenarios: drift past the lease drift bound, and backward
//! jumps against the monotonic clamp and lease fail-safe.

use std::time::Duration;

use a1_farm::{ClockSample, LeaseManager, MachineId};
use a1_rdma::VirtualClock;

use crate::oracle::{lease_safety_sample, OracleReport};
use crate::scenario::{Scenario, ScenarioOutcome};
use crate::workload::{self, GRAPH, TENANT};
use crate::SimEnv;

const MACHINES: u32 = 3;

/// Quorum samples that would pull `skew` back to zero: each peer reports
/// this clock's offset as `-skew` give or take the sampling error.
fn correcting_samples(skew: i64, error_ns: i64) -> Vec<ClockSample> {
    [MachineId(0), MachineId(2)]
        .iter()
        .map(|&peer| ClockSample {
            peer,
            offset_low_ns: -skew - error_ns,
            offset_high_ns: -skew + error_ns,
        })
        .collect()
}

/// A holder's clock drifts every step (seeded, mostly fast) and at one
/// seeded step jumps 50 µs ahead — far past the 10 µs drift bound the sync
/// protocol assumes. Periodic Marzullo syncs must flag the excursion, and
/// the lease-safety invariant must hold at every sampled instant.
pub struct ClockSkewPastLeaseBound;

impl Scenario for ClockSkewPastLeaseBound {
    fn name(&self) -> &'static str {
        "clock-skew-past-lease-bound"
    }

    fn description(&self) -> &'static str {
        "holder clock drifts past the sync drift bound; leases must never be valid at the holder while reclaimable at the grantor"
    }

    fn run(&self, seed: u64) -> ScenarioOutcome {
        let env = SimEnv::new(seed, MACHINES);
        let grantor = env.machine_clock(MachineId(0)).clone();
        let holder = env.machine_clock(MachineId(1)).clone();
        // 200 µs lease on the grantor's clock, renewed every 10 µs step.
        let mgr = LeaseManager::new(grantor.clone(), 200_000);
        let mut lease = mgr.grant(MachineId(1));

        let mut violations: Vec<String> = Vec::new();
        let mut out_of_bounds = 0u32;
        let mut syncs = 0u32;
        let jump_step = 8 + env.rng.gen_range(8) as usize;
        for step in 0..40usize {
            // Per-step drift in [-2, +8) µs; the 36 µs uncertainty floor
            // below covers the worst 4-step inter-sync window.
            let drift = -2_000 + env.rng.gen_range(10_000) as i64;
            holder.jump_ns(drift);
            if step == jump_step {
                holder.jump_ns(50_000);
                env.event("clock.jump", format!("holder +50us at step {step}"));
            }
            env.advance(Duration::from_micros(10));
            if let Some(v) = lease_safety_sample(&lease, &holder, &mgr) {
                violations.push(format!("step {step}: {v}"));
            }
            if step < 24 {
                if let Some(renewed) = mgr.renew(&lease) {
                    lease = renewed;
                }
            }
            if step % 4 == 3 {
                let samples = correcting_samples(holder.skew_ns(), 2_000);
                if let Some(sync) = holder.sync(&samples, 2, 10_000, 36_000) {
                    syncs += 1;
                    if sync.was_out_of_bounds {
                        out_of_bounds += 1;
                    }
                    env.event(
                        "clock.sync",
                        format!(
                            "step {step} correction={}ns oob={}",
                            sync.correction_ns, sync.was_out_of_bounds
                        ),
                    );
                }
                if let Some(v) = lease_safety_sample(&lease, &holder, &mgr) {
                    violations.push(format!("step {step} post-sync: {v}"));
                }
            }
        }
        // Renewals stopped at step 24; run time well past the lease.
        env.advance(Duration::from_micros(400));
        let expired = !lease.holder_valid(&holder) && mgr.reclaimable(&lease);

        ScenarioOutcome {
            oracles: vec![
                OracleReport::check(
                    "lease-safety",
                    violations.is_empty(),
                    violations
                        .first()
                        .cloned()
                        .unwrap_or_else(|| "no sampled violation".to_string()),
                ),
                OracleReport::check(
                    "excursion-detected",
                    out_of_bounds >= 1,
                    format!("{out_of_bounds}/{syncs} syncs flagged out-of-bounds"),
                ),
                OracleReport::check(
                    "lease-expires-consistently",
                    expired,
                    "after renewals stop both sides must agree the lease is over",
                ),
            ],
            trace: env.trace.clone(),
        }
    }
}

/// A machine's clock jumps half a millisecond backward mid-workload. The
/// monotonic clamp must hold reads, the suspect flag must fail-safe leases,
/// paged queries (whose continuation TTL runs on the fabric clock) must
/// keep working, and a quorum sync must restore the clock.
pub struct BackwardClockJump;

impl Scenario for BackwardClockJump {
    fn name(&self) -> &'static str {
        "backward-clock-jump"
    }

    fn description(&self) -> &'static str {
        "backward clock jump mid-paged-query: monotonic clamp, lease fail-safe, and recovery via quorum sync"
    }

    fn run(&self, seed: u64) -> ScenarioOutcome {
        let clock = VirtualClock::starting_at(1 << 30);
        let mut cfg = SimEnv::base_config(seed, MACHINES, &clock);
        cfg.exec.page_size = 4;
        let env = SimEnv::with_config(seed, MACHINES, clock, cfg);
        let client = env.client();
        workload::setup_schema(&client);
        let spokes = workload::seeded_nodes(&env.rng, 10);
        workload::build_hub(&client, "hub", &spokes);
        let ids: Vec<String> = spokes.iter().map(|(id, _)| id.clone()).collect();
        let before = workload::canonical_state(&client, &ids);

        // First page of a 3-page scan, token held across the fault.
        let q = workload::hub_rows_query("hub");
        let page1 = client.query(TENANT, GRAPH, &q).expect("page 1");
        let mut rows = page1.rows.len();
        let mut token = page1.continuation.clone();

        let victim = env.machine_clock(MachineId(1)).clone();
        let mgr = LeaseManager::new(env.machine_clock(MachineId(0)).clone(), 10_000_000);
        let lease = mgr.grant(MachineId(1));
        let valid_before = lease.holder_valid(&victim);

        let now_before = victim.now_ns();
        victim.jump_ns(-500_000);
        env.event("clock.jump", "machine 1 -500us");
        let now_after = victim.now_ns();
        let monotonic = OracleReport::check(
            "monotonic-clamp",
            now_after >= now_before,
            format!("{now_before} -> {now_after}"),
        );
        let suspect = OracleReport::check("suspect-after-jump", victim.is_suspect(), "flagged");
        let fail_safe = OracleReport::check(
            "lease-fail-safe",
            valid_before && !lease.holder_valid(&victim),
            "suspect holder must drop an otherwise-live lease",
        );

        // Continuations live on the fabric's virtual clock, not the jumped
        // machine clock: paging must continue.
        while let Some(t) = token {
            let page = client.query_next(&t).expect("page after jump");
            rows += page.rows.len();
            token = page.continuation.clone();
        }
        let paging = OracleReport::check_eq("paging-survives-jump", &spokes.len(), &rows);

        // Quorum sync pulls the skew back and clears the suspicion.
        let sync = victim
            .sync(
                &correcting_samples(victim.skew_ns(), 2_000),
                2,
                10_000,
                10_000,
            )
            .expect("quorum sync");
        env.event("clock.sync", format!("correction={}ns", sync.correction_ns));
        let restored = OracleReport::check(
            "sync-restores-clock",
            !victim.is_suspect() && victim.skew_ns().abs() <= 2_000 && lease.holder_valid(&victim),
            format!(
                "skew={}ns suspect={}",
                victim.skew_ns(),
                victim.is_suspect()
            ),
        );

        let after = workload::canonical_state(&client, &ids);
        ScenarioOutcome {
            oracles: vec![
                monotonic,
                suspect,
                fail_safe,
                paging,
                restored,
                OracleReport::check_eq("state-unchanged", &before, &after),
            ],
            trace: env.trace.clone(),
        }
    }
}
