//! Query-path fault scenarios: a participant dying mid-fan-out, and a
//! seeded random message-loss storm.

use std::time::Duration;

use a1_core::{A1Client, A1Result};
use a1_rdma::{MachineId, VirtualClock};

use crate::oracle::OracleReport;
use crate::scenario::{Scenario, ScenarioOutcome};
use crate::workload::{self, GRAPH, TENANT};
use crate::SimEnv;

const MACHINES: u32 = 4;
const SPOKES: usize = 20;

/// Query with bounded retries: transient unavailability (healing partitions,
/// post-failover `SnapshotTooOld`) is retried; persistent failure surfaces.
fn query_count_with_retries(
    env: &SimEnv,
    client: &A1Client,
    a1ql: &str,
    max_retries: usize,
) -> A1Result<Option<u64>> {
    let mut last = None;
    for attempt in 0..=max_retries {
        match client.query(TENANT, GRAPH, a1ql) {
            Ok(out) => return Ok(out.count),
            Err(e) => {
                env.event("query.retry", format!("attempt {attempt}: {e}"));
                last = Some(e);
                env.advance(Duration::from_micros(100));
            }
        }
    }
    Err(last.expect("retries>0"))
}

fn hub_env(seed: u64, ship_threshold: usize) -> (SimEnv, Vec<(String, i64)>) {
    let clock = VirtualClock::starting_at(1 << 30);
    let mut cfg = SimEnv::base_config(seed, MACHINES, &clock);
    // Force the RPC work-op path even for small per-machine batches, so
    // reply loss actually lands mid-fan-out.
    cfg.exec.ship_policy = a1_core::query::ShipPolicy::Fixed(ship_threshold);
    let env = SimEnv::with_config(seed, MACHINES, clock, cfg);
    let client = env.client();
    workload::setup_schema(&client);
    let spokes = workload::seeded_nodes(&env.rng, SPOKES);
    workload::build_hub(&client, "hub", &spokes);
    (env, spokes)
}

/// A participant machine "dies" mid-fan-out: its work-op handlers run but
/// every reply is lost (the applied-but-unacknowledged ambiguity), then the
/// machine is killed outright and backups promote.
pub struct CoordinatorDeathMidFanout;

impl Scenario for CoordinatorDeathMidFanout {
    fn name(&self) -> &'static str {
        "coordinator-death-mid-fanout"
    }

    fn description(&self) -> &'static str {
        "work-op replies lost mid-fan-out, then the machine killed; retried query must match the pre-fault answer"
    }

    fn run(&self, seed: u64) -> ScenarioOutcome {
        let (env, _spokes) = hub_env(seed, 1);
        let client = env.client();
        let q = workload::hub_count_query("hub");

        // Pre-fault reference answer from this same graph.
        let reference = query_count_with_retries(&env, &client, &q, 0).expect("pre-fault query");
        let ref_ok = OracleReport::check_eq("pre-fault-count", &Some(SPOKES as u64), &reference);

        // Phase 1: lose every reply from a victim. The query must fail
        // cleanly or return the right answer — never a wrong one.
        let victim = MachineId(1 + env.rng.gen_range((MACHINES - 1) as u64) as u32);
        env.net.lose_replies_from(victim);
        let during = query_count_with_retries(&env, &client, &q, 0);
        let clean = match &during {
            Ok(c) => OracleReport::check_eq("mid-fault-answer-if-any", &reference, c),
            Err(e) => OracleReport::pass("mid-fault-answer-if-any", format!("clean error: {e}")),
        };
        env.net.heal();
        let healed = query_count_with_retries(&env, &client, &q, 8);
        let healed_ok = match healed {
            Ok(c) => OracleReport::check_eq("healed-answer", &reference, &c),
            Err(e) => OracleReport::fail("healed-answer", format!("query still failing: {e}")),
        };

        // Phase 2: kill the victim outright; failure detection promotes
        // backups; the answer must survive the failover.
        env.kill_machine(victim);
        let after_kill = query_count_with_retries(&env, &client, &q, 16);
        let kill_ok = match after_kill {
            Ok(c) => OracleReport::check_eq("post-failover-answer", &reference, &c),
            Err(e) => OracleReport::fail("post-failover-answer", format!("{e}")),
        };

        ScenarioOutcome {
            oracles: vec![ref_ok, clean, healed_ok, kill_ok],
            trace: env.trace.clone(),
        }
    }
}

/// Seeded random loss on the messaging layer (query RPCs, work-op ships,
/// replies) while the cluster is queried — the classic replayable "storm"
/// sweep. Every drop decision comes from the run RNG, so a failing seed
/// replays exactly. One-sided RDMA verbs are exempt (RC retransmission),
/// so the data itself never corrupts: the invariant is that a query under
/// loss fails cleanly or answers right — never wrong.
pub struct MessageLossStorm;

impl Scenario for MessageLossStorm {
    fn name(&self) -> &'static str {
        "message-loss-storm"
    }

    fn description(&self) -> &'static str {
        "5% seeded RPC loss during a query storm; every answer must be clean-error or correct, and the graph must survive untouched"
    }

    fn run(&self, seed: u64) -> ScenarioOutcome {
        // ship_threshold 1 forces every fan-out through the RPC path that
        // the storm is attacking.
        let (env, spokes) = hub_env(seed, 1);
        let client = env.client();
        let q = workload::hub_count_query("hub");
        let reference = Some(SPOKES as u64);
        let before = {
            let ids: Vec<String> = spokes.iter().map(|(id, _)| id.clone()).collect();
            workload::canonical_state(&client, &ids)
        };

        env.net.set_loss_rate(0.05);
        let (mut clean_errors, mut answered, mut wrong) = (0u32, 0u32, Vec::new());
        for i in 0..30 {
            match client.query(TENANT, GRAPH, &q) {
                Ok(out) if out.count == reference => answered += 1,
                Ok(out) => wrong.push(format!("query {i}: got {:?}", out.count)),
                Err(e) => {
                    clean_errors += 1;
                    env.event("storm.error", format!("query {i}: {e}"));
                }
            }
            env.advance(Duration::from_micros(20));
        }
        env.net.set_loss_rate(0.0);

        // After the storm the same query must converge quickly...
        let after = query_count_with_retries(&env, &client, &q, 8);
        let converged = match after {
            Ok(c) => OracleReport::check_eq("post-storm-answer", &reference, &c),
            Err(e) => OracleReport::fail("post-storm-answer", format!("{e}")),
        };
        // ...and the storm must not have perturbed any data (loss only ever
        // suppressed replies; it never invented writes).
        let ids: Vec<String> = spokes.iter().map(|(id, _)| id.clone()).collect();
        let state = workload::canonical_state(&client, &ids);

        ScenarioOutcome {
            oracles: vec![
                OracleReport::check(
                    "no-wrong-answers",
                    wrong.is_empty(),
                    wrong.first().cloned().unwrap_or_else(|| {
                        format!("{answered} correct, {clean_errors} clean errors")
                    }),
                ),
                converged,
                OracleReport::check_eq("state-unperturbed", &before, &state),
            ],
            trace: env.trace.clone(),
        }
    }
}
