//! Ingest under partition: at-least-once redelivery across a network
//! partition must neither lose nor double-apply records.

use a1_core::Mutation;
use a1_ingest::{IngestConfig, IngestPipeline, MutationRecord, WatermarkTable};
use a1_rdma::MachineId;

use crate::oracle::{watermark_monotonic, OracleReport};
use crate::scenario::{Scenario, ScenarioOutcome};
use crate::workload::{self, GRAPH, NODE_TYPE, TENANT};
use crate::SimEnv;

const MACHINES: u32 = 4;
const RECORDS: usize = 32;
const BATCH: usize = 8;

/// The stream's records: `n0..n31` vertex upserts with seeded ranks, FIFO
/// sequence numbers 1..=32 from one source.
fn stream(env: &SimEnv) -> Vec<MutationRecord> {
    workload::seeded_nodes(&env.rng, RECORDS)
        .into_iter()
        .enumerate()
        .map(|(i, (id, rank))| {
            MutationRecord::keyed(
                "s",
                (i + 1) as u64,
                &id,
                Mutation::UpsertVertex {
                    tenant: TENANT.to_string(),
                    graph: GRAPH.to_string(),
                    ty: NODE_TYPE.to_string(),
                    attrs: a1_json::Json::parse(&workload::node_attrs(&id, rank)).unwrap(),
                },
            )
        })
        .collect()
}

/// Read the durable per-source watermark the pipeline has committed so far
/// (`None` while it is unreachable mid-partition — skip the observation).
fn read_watermark(env: &SimEnv, pipe: &IngestPipeline) -> Option<u64> {
    let farm = env.cluster.farm();
    let wm = WatermarkTable::open(farm, pipe.watermarks()).ok()?;
    let mut tx = farm.begin(MachineId(0));
    let got = wm.get(&mut tx, "s", 0).ok()?;
    tx.abort();
    Some(got.unwrap_or(0))
}

/// Drive the whole stream through group commits, retrying batches that hit
/// the partition after healing. Returns (applied, deduped) totals and the
/// watermark observations.
fn deliver(
    env: &SimEnv,
    pipe: &IngestPipeline,
    recs: &[MutationRecord],
    mut on_fault: impl FnMut(&SimEnv, usize),
) -> (u64, u64, Vec<(String, u64)>) {
    let (mut applied, mut deduped) = (0u64, 0u64);
    let mut watermarks = Vec::new();
    let machine = MachineId(1);
    for (bi, chunk) in recs.chunks(BATCH).enumerate() {
        on_fault(env, bi);
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > 16 {
                // Unrecoverable: leave the shortfall for the oracles.
                env.event("ingest.give-up", format!("batch {bi}"));
                break;
            }
            match pipe.commit_batch(machine, 0, chunk) {
                Ok((a, d)) => {
                    applied += a;
                    deduped += d;
                    env.event(
                        "ingest.commit",
                        format!("batch {bi} applied={a} deduped={d}"),
                    );
                    if let Some(w) = read_watermark(env, pipe) {
                        watermarks.push(("s".to_string(), w));
                    }
                    break;
                }
                Err(e) => {
                    env.event("ingest.fail", format!("batch {bi}: {e}"));
                    // The partition makes replicas unreachable; heal (the
                    // operator's recovery) and redeliver the same batch —
                    // the at-least-once contract.
                    env.net.heal();
                    env.advance(std::time::Duration::from_micros(200));
                }
            }
        }
    }
    (applied, deduped, watermarks)
}

pub struct PartitionDuringIngest;

impl Scenario for PartitionDuringIngest {
    fn name(&self) -> &'static str {
        "partition-during-ingest"
    }

    fn description(&self) -> &'static str {
        "network partition lands between group commits; redelivery after heal must not lose or double-apply records"
    }

    fn run(&self, seed: u64) -> ScenarioOutcome {
        let env = SimEnv::new(seed, MACHINES);
        let client = env.client();
        workload::setup_schema(&client);
        let recs = stream(&env);
        let pipe = IngestPipeline::start(
            &env.cluster,
            IngestConfig {
                partitions: 1,
                ..IngestConfig::default()
            },
        )
        .expect("pipeline");

        // Isolate a replica-holding machine right before the third batch;
        // failed batches heal + redeliver inside `deliver`.
        let victim = MachineId(1 + (env.rng.gen_range((MACHINES - 1) as u64) as u32));
        let (applied, _deduped, mut wm) = deliver(&env, &pipe, &recs, |env, bi| {
            if bi == 2 {
                env.net.isolate(victim, MACHINES);
            }
        });

        // A batch only trips the heal inside `deliver` if its commit
        // actually crossed the cut; end the partition unconditionally (the
        // operator's recovery) before redelivery and readback.
        env.net.heal();

        // Full redelivery (the bus replays the stream after a fault): every
        // record must dedup against the persisted watermarks.
        let (re_applied, re_deduped, wm2) = deliver(&env, &pipe, &recs, |_, _| {});
        wm.extend(wm2);

        let ids: Vec<String> = recs.iter().map(|r| r.key.clone()).collect();
        let state = workload::canonical_state(&client, &ids);

        // Fault-free reference with the same seed: same records, no faults.
        let ref_env = SimEnv::new(seed, MACHINES);
        let ref_client = ref_env.client();
        workload::setup_schema(&ref_client);
        let ref_recs = stream(&ref_env);
        let ref_pipe = IngestPipeline::start(
            &ref_env.cluster,
            IngestConfig {
                partitions: 1,
                ..IngestConfig::default()
            },
        )
        .expect("reference pipeline");
        let (ref_applied, _, _) = deliver(&ref_env, &ref_pipe, &ref_recs, |_, _| {});
        let ref_state = workload::canonical_state(&ref_client, &ids);

        let oracles = vec![
            OracleReport::check_eq("applied-exactly-once", &(RECORDS as u64), &applied),
            OracleReport::check_eq("reference-applied", &(RECORDS as u64), &ref_applied),
            OracleReport::check(
                "redelivery-is-idempotent",
                re_applied == 0 && re_deduped == RECORDS as u64,
                format!("redelivery applied={re_applied} deduped={re_deduped}"),
            ),
            OracleReport::check(
                "watermarks-monotonic",
                watermark_monotonic(&wm).is_none(),
                watermark_monotonic(&wm).unwrap_or_else(|| format!("{} observations", wm.len())),
            ),
            OracleReport::check_eq("answers-match-reference", &ref_state, &state),
        ];
        let _ = pipe.shutdown();
        let _ = ref_pipe.shutdown();
        ScenarioOutcome {
            oracles,
            trace: env.trace.clone(),
        }
    }
}
