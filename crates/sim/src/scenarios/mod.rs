//! Scenario implementations, grouped by the subsystem under attack.

pub mod clockfault;
pub mod ingest;
pub mod query;
pub mod recovery;
