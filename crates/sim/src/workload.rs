//! Shared deterministic workloads: a small social graph plus canonical-form
//! readbacks. Scenarios compare canonical state across runs (faulted vs.
//! fault-free reference), so every rendering here is sorted and free of
//! physical details like addresses or machine ids.

use a1_core::{A1Client, Json};
use a1_rdma::ClusterRng;

pub const TENANT: &str = "sim";
pub const GRAPH: &str = "g";
pub const NODE_TYPE: &str = "node";
pub const EDGE_TYPE: &str = "follows";

pub const NODE_SCHEMA: &str = r#"{
    "name": "node",
    "fields": [
        {"id": 0, "name": "id", "type": "string", "required": true},
        {"id": 1, "name": "rank", "type": "int64"}
    ]
}"#;

/// Create tenant/graph/vertex/edge types.
pub fn setup_schema(client: &A1Client) {
    client.create_tenant(TENANT).expect("tenant");
    client.create_graph(TENANT, GRAPH).expect("graph");
    client
        .create_vertex_type(TENANT, GRAPH, NODE_SCHEMA, "id", &[])
        .expect("vertex type");
    client
        .create_edge_type(TENANT, GRAPH, r#"{"name": "follows", "fields": []}"#)
        .expect("edge type");
}

pub fn node_attrs(id: &str, rank: i64) -> String {
    format!(r#"{{"id": "{id}", "rank": {rank}}}"#)
}

/// Deterministic node ids `n0..n{count}` with seeded ranks.
pub fn seeded_nodes(rng: &ClusterRng, count: usize) -> Vec<(String, i64)> {
    (0..count)
        .map(|i| (format!("n{i}"), rng.gen_range(1000) as i64))
        .collect()
}

/// A hub-and-spokes graph: `hub` with `follows` edges to every node in
/// `spokes`. Spread across machines by the store's own placement.
pub fn build_hub(client: &A1Client, hub: &str, spokes: &[(String, i64)]) {
    client
        .create_vertex(TENANT, GRAPH, NODE_TYPE, &node_attrs(hub, 0))
        .expect("hub vertex");
    for (id, rank) in spokes {
        client
            .create_vertex(TENANT, GRAPH, NODE_TYPE, &node_attrs(id, *rank))
            .expect("spoke vertex");
        client
            .create_edge(
                TENANT,
                GRAPH,
                NODE_TYPE,
                &Json::str(hub),
                EDGE_TYPE,
                NODE_TYPE,
                &Json::str(id),
                None,
            )
            .expect("edge");
    }
}

/// Canonical per-vertex state: sorted `id=<json|absent>` lines. Sorting
/// removes physical ordering, so equal graphs render equal regardless of
/// placement or retry history.
pub fn canonical_state(client: &A1Client, ids: &[String]) -> Vec<String> {
    let mut out: Vec<String> = ids
        .iter()
        .map(|id| {
            match client
                .get_vertex(TENANT, GRAPH, NODE_TYPE, &Json::str(id))
                .expect("get_vertex")
            {
                Some(j) => format!("{id}={j}"),
                None => format!("{id}=absent"),
            }
        })
        .collect();
    out.sort();
    out
}

/// One-hop scan from `root` over `follows`, selecting id and rank rows.
pub fn hub_rows_query(root: &str) -> String {
    format!(
        r#"{{ "id": "{root}",
             "_out_edge": {{ "_type": "follows",
             "_vertex": {{ "_select": ["id", "rank"] }}}}}}"#
    )
}

/// Order-independent rendering of query rows.
pub fn render_rows(rows: &[Json]) -> Vec<String> {
    let mut out: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
    out.sort();
    out
}

/// One-hop fan-out count from `root` over `follows`.
pub fn hub_count_query(root: &str) -> String {
    format!(
        r#"{{ "id": "{root}",
             "_out_edge": {{ "_type": "follows",
             "_vertex": {{ "_select": ["_count(*)"] }}}}}}"#
    )
}
