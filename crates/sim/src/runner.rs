//! Run scenarios and fold outcomes into replayable verdicts.
//!
//! A verdict carries the trace fingerprint: two runs of the same
//! `(scenario, seed)` must produce byte-identical traces, so the hash is
//! both the replayability check and the cross-host comparison artifact.

use crate::scenario::{by_name, catalog, Scenario};
use crate::OracleReport;

/// One scenario run's verdict: everything needed to report, compare, and
/// reproduce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimVerdict {
    pub scenario: String,
    pub seed: u64,
    pub passed: bool,
    pub oracles: Vec<OracleReport>,
    /// FNV-1a over the rendered trace — byte-identical traces, equal hashes.
    pub trace_hash: u64,
    pub events: usize,
}

impl SimVerdict {
    /// The exact command that replays this run.
    pub fn repro_command(&self) -> String {
        repro_command(&self.scenario, self.seed)
    }
}

pub fn repro_command(scenario: &str, seed: u64) -> String {
    format!(
        "cargo run --release -p a1-bench --bin experiments -- sim --scenario {scenario} --seed {seed}"
    )
}

/// Run one scenario at one seed.
pub fn run_scenario(scenario: &dyn Scenario, seed: u64) -> SimVerdict {
    let outcome = scenario.run(seed);
    SimVerdict {
        scenario: scenario.name().to_string(),
        seed,
        passed: outcome.passed(),
        oracles: outcome.oracles,
        trace_hash: outcome.trace.hash(),
        events: outcome.trace.len(),
    }
}

/// Run a catalog scenario by name. `None` for unknown names.
pub fn run_by_name(name: &str, seed: u64) -> Option<SimVerdict> {
    by_name(name).map(|s| run_scenario(s.as_ref(), seed))
}

/// A randomized sweep's summary: per-seed failures carry their repro
/// commands, so a red sweep is immediately actionable.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    pub runs: usize,
    pub failures: Vec<SimVerdict>,
}

impl SweepReport {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Sweep every catalog scenario over `seeds` consecutive seeds starting at
/// `seed0`. `on_verdict` observes every run (progress lines, artifacts).
pub fn sweep(seed0: u64, seeds: u64, mut on_verdict: impl FnMut(&SimVerdict)) -> SweepReport {
    let mut report = SweepReport::default();
    for scenario in catalog() {
        for seed in seed0..seed0 + seeds {
            let verdict = run_scenario(scenario.as_ref(), seed);
            on_verdict(&verdict);
            report.runs += 1;
            if !verdict.passed {
                report.failures.push(verdict);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_command_names_scenario_and_seed() {
        let c = repro_command("partition-during-ingest", 7);
        assert!(c.contains("--scenario partition-during-ingest"));
        assert!(c.contains("--seed 7"));
    }
}
