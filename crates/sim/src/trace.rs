//! Event trace: the replayability contract's unit of comparison.
//!
//! Every nondeterminism-relevant decision a simulation makes — fault
//! verdicts, clock jumps, crash/restart steps, oracle samples — is recorded
//! here with its virtual timestamp. Two runs of the same `(seed, scenario)`
//! must produce **byte-identical** rendered traces; the fixed-point hash
//! gives CI a cheap equality check and failure reports a stable fingerprint.

use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::Arc;

/// One recorded simulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time the event was recorded at, in ns.
    pub t_ns: u64,
    /// Short stable category, e.g. `fault.drop`, `crash`, `oracle`.
    pub kind: String,
    /// Human-readable detail. Must be deterministic — no addresses, no wall
    /// times, no thread ids.
    pub detail: String,
}

/// An append-only, thread-safe event log scoped to one simulation run.
#[derive(Debug, Default)]
pub struct Trace {
    events: Mutex<Vec<TraceEvent>>,
}

impl Trace {
    pub fn new() -> Arc<Trace> {
        Arc::new(Trace::default())
    }

    pub fn record(&self, t_ns: u64, kind: &str, detail: impl Into<String>) {
        self.events.lock().push(TraceEvent {
            t_ns,
            kind: kind.to_string(),
            detail: detail.into(),
        });
    }

    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Stable textual rendering: one `t_ns kind detail` line per event, in
    /// record order. This string — not a summary of it — is what the
    /// replayability test compares across runs.
    pub fn render(&self) -> String {
        let events = self.events.lock();
        let mut out = String::with_capacity(events.len() * 48);
        for e in events.iter() {
            let _ = writeln!(out, "{:>12} {} {}", e.t_ns, e.kind, e.detail);
        }
        out
    }

    /// FNV-1a over the rendered trace: a stable 64-bit fingerprint.
    pub fn hash(&self) -> u64 {
        fnv1a(self.render().as_bytes())
    }
}

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_hash_are_stable() {
        let t = Trace::new();
        t.record(10, "fault.drop", "rpc 0->1");
        t.record(20, "crash", "machine 1");
        let t2 = Trace::new();
        t2.record(10, "fault.drop", "rpc 0->1");
        t2.record(20, "crash", "machine 1");
        assert_eq!(t.render(), t2.render());
        assert_eq!(t.hash(), t2.hash());
        t2.record(30, "restart", "machine 1");
        assert_ne!(t.hash(), t2.hash());
    }

    #[test]
    fn render_orders_by_record_order() {
        let t = Trace::new();
        t.record(20, "b", "second recorded");
        t.record(10, "a", "first by time, second by order");
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[0].contains("second recorded"));
        assert_eq!(t.len(), 2);
    }
}
