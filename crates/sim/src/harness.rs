//! The simulation environment: one A1 cluster wired so that **every**
//! nondeterminism source is owned by the harness.
//!
//! * Time — a [`VirtualClock`] injected as the fabric's [`ClockSource`];
//!   every timer in the stack (conflict backoff, lease expiry, continuation
//!   and cache TTLs, ingest flush deadlines) reads and sleeps on it, so
//!   time only moves when the scenario advances it.
//! * Randomness — the fabric's [`ClusterRng`] and the scenario's own RNG
//!   are both derived from the run seed.
//! * The network — a [`SimNet`] fault injector rules on every simulated
//!   verb; its decisions are a pure function of scenario state + seed.
//! * Execution — the cluster runs with serial fan-out and serial morsels,
//!   and scenarios drive it from a single thread, so the event order is a
//!   function of the inputs alone.

use std::sync::Arc;
use std::time::Duration;

use a1_core::{A1Client, A1Cluster, A1Config};
use a1_farm::MachineClock;
use a1_rdma::{ClockSource, ClusterRng, MachineId, VirtualClock};

use crate::net::SimNet;
use crate::trace::Trace;

/// A seeded, fully-deterministic A1 cluster plus the handles a scenario
/// needs to inject faults and advance time.
pub struct SimEnv {
    pub seed: u64,
    pub machines: u32,
    pub clock: Arc<VirtualClock>,
    pub net: Arc<SimNet>,
    pub trace: Arc<Trace>,
    /// Scenario-level decision stream, independent of the cluster's
    /// internal RNG (forked from the same seed).
    pub rng: ClusterRng,
    pub cluster: A1Cluster,
}

impl SimEnv {
    /// The deterministic base configuration: virtual clock, run seed,
    /// serial execution. Scenarios that need DR or caching enable those on
    /// the returned config before [`SimEnv::with_config`].
    pub fn base_config(seed: u64, machines: u32, clock: &Arc<VirtualClock>) -> A1Config {
        let mut cfg = A1Config::small(machines);
        cfg.farm.fabric.seed = seed;
        cfg.farm.fabric.clock = clock.clone();
        // Latency injection would only advance virtual time; keep it off so
        // time moves exactly when scenarios say so.
        cfg.farm.fabric.inject_latency = false;
        // Serial fan-out + serial morsels: with synchronous RPC this makes
        // work-op order a pure function of the query and the data.
        cfg.exec.fanout_parallelism = 1;
        cfg.exec.intra_parallelism = 1;
        cfg
    }

    /// Boot a deterministic cluster with the base configuration.
    pub fn new(seed: u64, machines: u32) -> SimEnv {
        let clock = VirtualClock::starting_at(1 << 30);
        let cfg = Self::base_config(seed, machines, &clock);
        Self::with_config(seed, machines, clock, cfg)
    }

    /// Boot with a scenario-customized config. `cfg.farm.fabric.clock` must
    /// be `clock` and `cfg.farm.fabric.seed` must be `seed` (use
    /// [`SimEnv::base_config`] as the starting point).
    pub fn with_config(
        seed: u64,
        machines: u32,
        clock: Arc<VirtualClock>,
        cfg: A1Config,
    ) -> SimEnv {
        let trace = Trace::new();
        let cluster = A1Cluster::start(cfg).expect("sim cluster boot");
        let net = SimNet::new(
            ClusterRng::new(seed ^ 0x5157_0000_0000_0001),
            trace.clone(),
            clock.clone() as Arc<dyn a1_rdma::ClockSource>,
        );
        cluster
            .farm()
            .fabric()
            .set_fault_injector(Some(net.clone() as Arc<dyn a1_rdma::FaultInjector>));
        trace.record(
            clock.now_ns(),
            "boot",
            format!("seed={seed} machines={machines}"),
        );
        SimEnv {
            seed,
            machines,
            clock,
            net,
            trace,
            rng: ClusterRng::new(seed ^ 0x5157_0000_0000_0002),
            cluster,
        }
    }

    pub fn client(&self) -> A1Client {
        self.cluster.client()
    }

    /// Record a scenario-level event at current virtual time.
    pub fn event(&self, kind: &str, detail: impl Into<String>) {
        self.trace.record(self.clock.now_ns(), kind, detail);
    }

    /// Advance virtual time.
    pub fn advance(&self, d: Duration) {
        let now = self.clock.advance(d.as_nanos() as u64);
        self.trace
            .record(now, "tick", format!("+{}us", d.as_micros()));
    }

    /// A machine's physical clock (skew/jump injection, lease checks).
    pub fn machine_clock(&self, m: MachineId) -> &Arc<MachineClock> {
        self.cluster.farm().machine_clock(m)
    }

    /// Crash the FaRM process on `m` (memory survives in PyCo, §5.3).
    pub fn crash_process(&self, m: MachineId) {
        self.event("crash", format!("process machine {}", m.0));
        self.cluster.farm().crash_process(m);
    }

    /// Restart a crashed process (fast restart, §5.3).
    pub fn restart_process(&self, m: MachineId) {
        self.event("restart", format!("process machine {}", m.0));
        self.cluster.farm().restart_process(m);
    }

    /// Kill a machine outright (memory gone; backups promote).
    pub fn kill_machine(&self, m: MachineId) {
        self.event("kill", format!("machine {}", m.0));
        self.cluster.farm().kill_machine(m);
    }
}
