//! # a1-sim — deterministic simulation harness for the A1 cluster
//!
//! Every source of nondeterminism in a simulated A1 deployment — time,
//! randomness, network faults, machine crashes, clock skew — is owned by a
//! seeded scheduler here, so any run is exactly replayable from
//! `(scenario, seed)`:
//!
//! * [`SimEnv`] boots a cluster on a [`a1_rdma::VirtualClock`] and a seeded
//!   [`a1_rdma::ClusterRng`], with serial query execution so event order is
//!   a pure function of the inputs.
//! * [`SimNet`] rules on every simulated network verb (deliver, drop,
//!   delay) as a fault injector: partitions, reply loss, seeded random
//!   loss storms.
//! * [`Trace`] records the run; its FNV-1a hash is the replayability
//!   fingerprint — same `(scenario, seed)`, same bytes, same hash.
//! * The [`scenario::catalog`] holds the fault stories (partitions during
//!   ingest, machine death mid-fan-out, clock skew past the lease bound,
//!   backward jumps, replication-log replay races, cache invalidation vs.
//!   crash), each judged by invariant [`oracle`]s: answers must match a
//!   fault-free same-seed reference, committed writes must survive, leases
//!   must stay fail-safe, watermarks must be monotonic.
//! * [`runner`] folds outcomes into [`SimVerdict`]s and sweeps seed ranges,
//!   printing the exact reproduction command for every failure.

pub mod harness;
pub mod net;
pub mod oracle;
pub mod runner;
pub mod scenario;
pub mod scenarios;
pub mod trace;
pub mod workload;

pub use harness::SimEnv;
pub use net::SimNet;
pub use oracle::{lease_safety_sample, watermark_monotonic, OracleReport};
pub use runner::{repro_command, run_by_name, run_scenario, sweep, SimVerdict, SweepReport};
pub use scenario::{by_name, catalog, Scenario, ScenarioOutcome};
pub use trace::{Trace, TraceEvent};
