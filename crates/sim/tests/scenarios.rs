//! The scenario catalog at fixed seeds, plus the harness's core promise:
//! same `(scenario, seed)` ⇒ byte-identical trace and identical verdict.

use a1_sim::{by_name, catalog, run_scenario, sweep};

fn assert_passes(name: &str, seed: u64) {
    let scenario = by_name(name).expect("catalog scenario");
    let verdict = run_scenario(scenario.as_ref(), seed);
    assert!(
        verdict.passed,
        "{name} seed {seed} failed: {:?}\nrepro: {}",
        verdict.oracles.iter().filter(|o| !o.ok).collect::<Vec<_>>(),
        verdict.repro_command()
    );
    assert!(verdict.events > 0, "trace must not be empty");
}

#[test]
fn partition_during_ingest_passes() {
    assert_passes("partition-during-ingest", 1);
    assert_passes("partition-during-ingest", 42);
}

#[test]
fn coordinator_death_mid_fanout_passes() {
    assert_passes("coordinator-death-mid-fanout", 1);
    assert_passes("coordinator-death-mid-fanout", 42);
}

#[test]
fn message_loss_storm_passes() {
    assert_passes("message-loss-storm", 1);
    assert_passes("message-loss-storm", 42);
}

#[test]
fn clock_skew_past_lease_bound_passes() {
    assert_passes("clock-skew-past-lease-bound", 1);
    assert_passes("clock-skew-past-lease-bound", 42);
}

#[test]
fn backward_clock_jump_passes() {
    assert_passes("backward-clock-jump", 1);
    assert_passes("backward-clock-jump", 42);
}

#[test]
fn replog_replay_race_passes() {
    assert_passes("replog-replay-race", 1);
    assert_passes("replog-replay-race", 42);
}

#[test]
fn cache_invalidation_vs_crash_passes() {
    assert_passes("cache-invalidation-vs-crash", 1);
    assert_passes("cache-invalidation-vs-crash", 42);
}

/// The tentpole invariant: every scenario replays byte-for-byte from its
/// seed — the rendered traces of two runs are identical, not just equal
/// hashes, and the verdicts agree oracle by oracle.
#[test]
fn same_seed_replays_byte_identical() {
    for scenario in catalog() {
        let seed = 7;
        let first = scenario.run(seed);
        let second = scenario.run(seed);
        assert_eq!(
            first.trace.render(),
            second.trace.render(),
            "{} seed {seed}: trace diverged between identical runs",
            scenario.name()
        );
        assert_eq!(first.trace.hash(), second.trace.hash());
        assert_eq!(
            first.oracles,
            second.oracles,
            "{} seed {seed}: verdict diverged",
            scenario.name()
        );
    }
}

/// Different seeds should explore different executions: at least one
/// scenario's trace must differ across seeds (faults land elsewhere).
#[test]
fn different_seeds_explore_different_traces() {
    let diverged = catalog().iter().any(|s| {
        let a = s.run(11).trace.hash();
        let b = s.run(12).trace.hash();
        a != b
    });
    assert!(diverged, "seed had no effect on any scenario");
}

/// A miniature randomized sweep (the CI job runs the big one): every
/// catalog scenario over a small seed range, zero failures, and failures
/// would carry runnable repro commands.
#[test]
fn mini_sweep_is_green() {
    let mut seen = 0usize;
    let report = sweep(100, 2, |v| {
        seen += 1;
        assert!(v.repro_command().contains(&format!("--seed {}", v.seed)));
    });
    assert_eq!(report.runs, seen);
    assert_eq!(report.runs, catalog().len() * 2);
    assert!(
        report.passed(),
        "sweep failures: {:?}",
        report
            .failures
            .iter()
            .map(|f| f.repro_command())
            .collect::<Vec<_>>()
    );
}
