//! End-to-end query benchmarks: the Table 2 queries (Q1–Q4) through the
//! full client → coordinator → worker path on a compact knowledge graph.

use a1_bench::workload::{KnowledgeGraph, KnowledgeGraphSpec, GRAPH, TENANT};
use a1_core::A1Config;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_queries(c: &mut Criterion) {
    let kg = KnowledgeGraph::load(A1Config::small(4), KnowledgeGraphSpec::tiny());
    let queries = [
        ("q1_two_hop_count", kg.q1()),
        ("q2_three_hop_map_filter", kg.q2()),
        ("q3_star_match", kg.q3()),
        ("q4_fanout", kg.q4()),
    ];
    let mut g = c.benchmark_group("table2_queries");
    for (name, text) in &queries {
        g.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(kg.client.query(TENANT, GRAPH, text).unwrap()))
        });
    }
    g.bench_function("point_get_vertex", |b| {
        let id = a1_core::Json::str(&kg.director_id);
        b.iter(|| std::hint::black_box(kg.client.get_vertex(TENANT, GRAPH, "entity", &id).unwrap()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_queries
}
criterion_main!(benches);
