//! One bench target per paper table/figure, as cargo-runnable entry points.
//! Each regenerates its artifact at a reduced scale so `cargo bench`
//! completes quickly; the `experiments` binary produces the full versions.
//!
//! * Fig. 10/12/13 — DES latency-vs-throughput points over measured profiles.
//! * Fig. 11 — RDMA read latency linearity.
//! * Fig. 14 — cluster-size scaling point.
//! * Q4 — vertex-read throughput point.
//! * §5 baseline — A1 vs two-tier latency.
//! * Ablations — MVCC mode and edge-list representation.

use a1_bench::costmodel::{CostModel, QueryProfile};
use a1_bench::des::{simulate, DesConfig};
use a1_bench::workload::{KnowledgeGraph, KnowledgeGraphSpec, GRAPH, TENANT};
use a1_core::{A1Config, MachineId};
use criterion::{criterion_group, criterion_main, Criterion};

fn profile_of(kg: &KnowledgeGraph, text: &str) -> QueryProfile {
    let outcome = kg
        .cluster
        .inner()
        .coordinate_query(MachineId(0), TENANT, GRAPH, text)
        .unwrap();
    QueryProfile::from_outcome("q", &outcome, &CostModel::default())
}

fn bench_figures(c: &mut Criterion) {
    let kg = KnowledgeGraph::load(A1Config::small(4), KnowledgeGraphSpec::tiny());
    let q1 = profile_of(&kg, &kg.q1());
    let q2 = profile_of(&kg, &kg.q2());
    let q3 = profile_of(&kg, &kg.q3());
    let q4 = profile_of(&kg, &kg.q4());

    let mut g = c.benchmark_group("figures");
    let des = |profile: &QueryProfile, machines: usize, qps: f64| {
        simulate(
            profile,
            &DesConfig {
                machines,
                qps,
                duration_s: 0.3,
                warmup_s: 0.1,
                ..DesConfig::default()
            },
        )
    };
    g.bench_function("fig10_q1_des_point", |b| {
        b.iter(|| std::hint::black_box(des(&q1, 245, 5_000.0)))
    });
    g.bench_function("fig12_q2_des_point", |b| {
        b.iter(|| std::hint::black_box(des(&q2, 245, 5_000.0)))
    });
    g.bench_function("fig13_q3_des_point", |b| {
        b.iter(|| std::hint::black_box(des(&q3, 245, 5_000.0)))
    });
    g.bench_function("q4_stress_des_point", |b| {
        b.iter(|| std::hint::black_box(des(&q4, 245, 1_000.0)))
    });
    g.bench_function("fig14_scaling_des_point", |b| {
        b.iter(|| std::hint::black_box(des(&q1, 10, 2_000.0)))
    });
    g.bench_function("fig11_rdma_reads", |b| {
        // Re-measure the Fig. 11 latency accounting path.
        b.iter(|| std::hint::black_box(a1_bench::figures::fig11()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figures
}
criterion_main!(benches);
