//! Microbenchmarks of the distributed B+-tree (§3.1): inserts, cached
//! lookups, range scans.

use a1_farm::{BTree, BTreeConfig, FarmCluster, FarmConfig, Hint, MachineId};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_btree(c: &mut Criterion) {
    let farm = FarmCluster::start(FarmConfig::small(3));
    let tree = farm
        .run(MachineId(0), |tx| {
            BTree::create(tx, BTreeConfig::default(), Hint::Local)
        })
        .unwrap();
    for i in 0..1000u32 {
        let key = format!("key{i:06}");
        farm.run(MachineId(0), |tx| {
            tree.insert(tx, key.as_bytes(), b"value").map(|_| ())
        })
        .unwrap();
    }

    let mut g = c.benchmark_group("btree");
    g.bench_function("get_1k_entries", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let key = format!("key{:06}", i % 1000);
            i += 1;
            let mut tx = farm.begin_read_only(MachineId(1));
            std::hint::black_box(tree.get(&mut tx, key.as_bytes()).unwrap());
        })
    });
    g.bench_function("insert_then_remove", |b| {
        b.iter(|| {
            farm.run(MachineId(0), |tx| {
                tree.insert(tx, b"zz-temp", b"v").map(|_| ())
            })
            .unwrap();
            farm.run(MachineId(0), |tx| tree.remove(tx, b"zz-temp").map(|_| ()))
                .unwrap();
        })
    });
    g.bench_function("scan_100", |b| {
        b.iter(|| {
            let mut tx = farm.begin_read_only(MachineId(1));
            std::hint::black_box(tree.scan(&mut tx, b"key000100", b"key000200", 100).unwrap());
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_btree
}
criterion_main!(benches);
