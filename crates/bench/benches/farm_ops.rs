//! Microbenchmarks of the FaRM storage layer: reads (local vs remote via the
//! simulated fabric), transactional commits, allocation — the primitives
//! behind every paper number.

use a1_farm::{FarmCluster, FarmConfig, Hint, MachineId};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_farm(c: &mut Criterion) {
    let farm = FarmCluster::start(FarmConfig::small(3));
    let local = farm
        .run(MachineId(0), |tx| {
            tx.alloc(220, Hint::Machine(MachineId(0)), &[1; 220])
        })
        .unwrap();
    let remote = farm
        .run(MachineId(0), |tx| {
            tx.alloc(220, Hint::Machine(MachineId(1)), &[1; 220])
        })
        .unwrap();

    let mut g = c.benchmark_group("farm");
    g.bench_function("read_local_220B", |b| {
        b.iter(|| {
            let mut tx = farm.begin_read_only(MachineId(0));
            std::hint::black_box(tx.read(local).unwrap());
        })
    });
    g.bench_function("read_remote_220B", |b| {
        b.iter(|| {
            let mut tx = farm.begin_read_only(MachineId(0));
            std::hint::black_box(tx.read(remote).unwrap());
        })
    });
    g.bench_function("rw_txn_counter_increment", |b| {
        let ptr = farm
            .run(MachineId(0), |tx| {
                tx.alloc(8, Hint::Local, &0u64.to_le_bytes())
            })
            .unwrap();
        b.iter(|| {
            farm.run(MachineId(0), |tx| {
                let buf = tx.read(ptr)?;
                let v = u64::from_le_bytes(buf.data()[..8].try_into().unwrap());
                tx.update(&buf, (v + 1).to_le_bytes().to_vec())
            })
            .unwrap();
        })
    });
    g.bench_function("alloc_free_220B", |b| {
        b.iter(|| {
            let ptr = farm
                .run(MachineId(0), |tx| tx.alloc(220, Hint::Local, &[7; 220]))
                .unwrap();
            farm.run(MachineId(0), |tx| {
                let buf = tx.read(ptr)?;
                tx.free(&buf)
            })
            .unwrap();
            farm.gc();
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_farm
}
criterion_main!(benches);
