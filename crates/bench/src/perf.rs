//! The perf-trajectory suite: real (wall-clock) query latency measurements
//! in machine-readable form, plus the serial-vs-parallel fan-out A/B.
//!
//! Unlike the DES-backed figures (which model a 245-machine cluster), this
//! suite measures *this build* on a small latency-injected cluster so the
//! numbers move when the engine does. CI runs `experiments --quick --json`
//! on every push and uploads the output; `BENCH_<n>.json` files committed at
//! the repo root snapshot the trajectory across PRs.

use crate::workload::{KnowledgeGraph, KnowledgeGraphSpec, GRAPH, TENANT};
use a1_core::{A1Config, Json, MachineId};
use a1_farm::LatencyModel;
use std::fmt::Write as _;
use std::time::Instant;

/// The latency model for the measured phase: the default model scaled so
/// every *network* wait lands in the injector's sleep regime (≥200 µs, where
/// concurrent waits genuinely overlap even on a 1-core CI runner) while
/// local reads stay near-free. Think of it as a loaded/oversubscribed
/// network: the local/remote asymmetry that drives the paper's design is
/// preserved, just magnified.
pub(crate) fn measured_latency() -> LatencyModel {
    LatencyModel {
        local_read_ns: 100,
        rack_rtt_ns: 1_000_000,
        cross_rack_rtt_ns: 2_000_000,
        per_kib_ns: 2_000,
        rpc_overhead_ns: 1_000_000,
    }
}

/// One measured workload configuration.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name (`q1`, `q4`, …).
    pub workload: String,
    /// Simulated machines in the cluster.
    pub machines: u32,
    /// The [`a1_core::query::exec::ExecConfig::fanout_parallelism`] setting
    /// (0 = auto/parallel, 1 = serial).
    pub fanout_parallelism: usize,
    pub iters: usize,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub avg_ns: u64,
    /// Sequential throughput (1 / avg latency).
    pub throughput_qps: f64,
    /// FaRM objects read by one execution.
    pub objects_read: u64,
    pub vertices_read: u64,
    pub local_read_fraction: f64,
    /// Peak shipped work ops in flight during any hop (proves fan-out).
    pub max_concurrent_ships: u64,
    /// The query's answer (count or row count) — cross-checked between
    /// serial and parallel modes.
    pub result: u64,
}

pub(crate) fn spec(quick: bool) -> KnowledgeGraphSpec {
    if quick {
        // Small enough to load in well under a second with latency
        // injection, big enough that every hop spreads across all machines
        // with per-machine batches above the ship threshold.
        KnowledgeGraphSpec {
            hub_films: 32,
            actors_per_film: 8,
            actor_pool: 120,
            films_per_actor: 2,
            character_films: 4,
            payload_bytes: 64,
            seed: 0xA1,
        }
    } else {
        KnowledgeGraphSpec::default()
    }
}

/// Nearest-rank percentile (rank rounded up), so p99 over a small sample is
/// the maximum rather than silently dropping the tail. Shared with the
/// morsel suite.
pub(crate) fn percentile(sorted_ns: &[u64], pct: usize) -> u64 {
    let rank = (sorted_ns.len() * pct).div_ceil(100);
    sorted_ns[rank.saturating_sub(1).min(sorted_ns.len() - 1)]
}

fn measure_workload(
    kg: &KnowledgeGraph,
    name: &str,
    text: &str,
    machines: u32,
    fanout: usize,
    iters: usize,
) -> WorkloadResult {
    let inner = kg.cluster.inner();
    let run = || {
        inner
            .coordinate_query(MachineId(0), TENANT, GRAPH, text)
            .expect("query")
    };
    for _ in 0..2 {
        run(); // warm proxy caches and the pool
    }
    let mut samples_ns = Vec::with_capacity(iters);
    let mut last = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let outcome = run();
        samples_ns.push(t0.elapsed().as_nanos() as u64);
        last = Some(outcome);
    }
    let outcome = last.expect("at least one iteration");
    samples_ns.sort_unstable();
    let avg_ns = samples_ns.iter().sum::<u64>() / iters as u64;
    WorkloadResult {
        workload: name.to_string(),
        machines,
        fanout_parallelism: fanout,
        iters,
        p50_ns: percentile(&samples_ns, 50),
        p99_ns: percentile(&samples_ns, 99),
        avg_ns,
        throughput_qps: 1e9 / avg_ns as f64,
        objects_read: outcome.metrics.objects_read(),
        vertices_read: outcome.metrics.vertices_read,
        local_read_fraction: outcome.metrics.local_read_fraction(),
        max_concurrent_ships: outcome
            .per_hop
            .iter()
            .map(|h| h.max_concurrent_ships)
            .max()
            .unwrap_or(0),
        result: outcome.count.unwrap_or(outcome.rows.len() as u64),
    }
}

/// Run the suite: Q1 and Q4 under the serial (`fanout_parallelism = 1`) and
/// parallel (auto) coordinator on identically seeded 8-machine clusters with
/// injected latency. Panics if the two modes disagree on any query's answer,
/// so the CI perf job doubles as a correctness gate.
pub fn run_suite(quick: bool) -> Vec<WorkloadResult> {
    let machines = 8u32;
    let iters = if quick { 8 } else { 24 };
    let mut results = Vec::new();
    for fanout in [1usize, 0] {
        let mut cfg = A1Config::small(machines).with_fanout(fanout);
        cfg.farm.fabric.latency = measured_latency();
        // Load fast (no injection), then measure with wall-clock injection.
        let kg = KnowledgeGraph::load(cfg, spec(quick));
        kg.cluster.farm().fabric().set_inject_latency(true);
        for (name, text) in [("q1", kg.q1()), ("q4", kg.q4())] {
            results.push(measure_workload(&kg, name, &text, machines, fanout, iters));
        }
        kg.cluster.farm().fabric().set_inject_latency(false);
    }
    for r in &results {
        let twin = results
            .iter()
            .find(|o| o.workload == r.workload && o.fanout_parallelism != r.fanout_parallelism)
            .expect("both modes measured");
        assert_eq!(
            r.result, twin.result,
            "serial and parallel coordinators disagree on {}",
            r.workload
        );
    }
    results
}

/// Serialize suite results for the CI artifact / committed `BENCH_<n>.json`.
pub fn suite_to_json(results: &[WorkloadResult], quick: bool) -> Json {
    Json::obj(vec![
        ("schema", Json::str("a1-bench-v1")),
        ("quick", Json::Bool(quick)),
        (
            "results",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("workload", Json::str(&r.workload)),
                            ("machines", Json::Num(r.machines as f64)),
                            ("fanout_parallelism", Json::Num(r.fanout_parallelism as f64)),
                            ("iters", Json::Num(r.iters as f64)),
                            ("p50_latency_ns", Json::Num(r.p50_ns as f64)),
                            ("p99_latency_ns", Json::Num(r.p99_ns as f64)),
                            ("avg_latency_ns", Json::Num(r.avg_ns as f64)),
                            ("throughput_qps", Json::Num(r.throughput_qps)),
                            ("objects_read", Json::Num(r.objects_read as f64)),
                            ("vertices_read", Json::Num(r.vertices_read as f64)),
                            ("local_read_fraction", Json::Num(r.local_read_fraction)),
                            (
                                "max_concurrent_ships",
                                Json::Num(r.max_concurrent_ships as f64),
                            ),
                            ("result", Json::Num(r.result as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Human-readable serial-vs-parallel report (the `fanout` experiments
/// target).
pub fn fanout_report(quick: bool) -> String {
    let results = run_suite(quick);
    let mut out = String::new();
    writeln!(
        out,
        "== §3.4 parallel per-hop fan-out vs serial coordinator (8 machines, injected latency) =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<4} {:<9} {:>10} {:>10} {:>10} {:>9} {:>7}",
        "Q", "mode", "p50 µs", "p99 µs", "avg µs", "qps", "ships"
    )
    .unwrap();
    for r in &results {
        let mode = if r.fanout_parallelism == 1 {
            "serial"
        } else {
            "parallel"
        };
        writeln!(
            out,
            "{:<4} {:<9} {:>10.1} {:>10.1} {:>10.1} {:>9.0} {:>7}",
            r.workload,
            mode,
            r.p50_ns as f64 / 1000.0,
            r.p99_ns as f64 / 1000.0,
            r.avg_ns as f64 / 1000.0,
            r.throughput_qps,
            r.max_concurrent_ships,
        )
        .unwrap();
    }
    for name in ["q1", "q4"] {
        let by = |f: usize| {
            results
                .iter()
                .find(|r| r.workload == name && r.fanout_parallelism == f)
                .unwrap()
        };
        writeln!(
            out,
            "{name} speedup (serial p50 / parallel p50): {:.2}x",
            by(1).p50_ns as f64 / by(0).p50_ns as f64
        )
        .unwrap();
    }
    writeln!(
        out,
        "(paper Fig. 9: the coordinator ships a hop's operators to all owning machines concurrently)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_parallel_beats_serial() {
        let results = run_suite(true);
        assert_eq!(results.len(), 4);
        let p50 = |workload: &str, fanout: usize| {
            results
                .iter()
                .find(|r| r.workload == workload && r.fanout_parallelism == fanout)
                .unwrap()
                .p50_ns
        };
        // The parallel coordinator must beat serial on the big fan-out
        // query; we leave margin (0.9) for timer noise in CI.
        assert!(
            (p50("q4", 0) as f64) < p50("q4", 1) as f64 * 0.9,
            "parallel q4 p50 {} !< serial p50 {}",
            p50("q4", 0),
            p50("q4", 1)
        );
        // Parallel mode actually overlapped ships.
        let peak = results
            .iter()
            .filter(|r| r.fanout_parallelism == 0)
            .map(|r| r.max_concurrent_ships)
            .max()
            .unwrap();
        assert!(peak > 1, "no overlapping ships observed (peak {peak})");
        // JSON round-trips through the vendored parser.
        let j = suite_to_json(&results, true);
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(parsed.get("results").unwrap().as_arr().unwrap().len(), 4);
    }
}
