//! The fetch suite: scalar vs doorbell-batched one-sided read path A/B,
//! measured wall-clock on a latency-injected cluster while ingest rewrites
//! the hot set underneath.
//!
//! The workload is the inline-fetch shape from the paper's query story
//! (§3.4): shipping disabled, so the coordinator evaluates a remote hub
//! morsel entirely with one-sided reads. Scalar, that is a header RTT plus
//! a record RTT **per hub, serially** — the round-trip chain the paper's
//! doorbell batching collapses. Batched, the whole morsel's headers post as
//! one doorbell and the records as a second, so the per-query verb count
//! drops from `2·hubs` to two and the wall-clock from `2·hubs` RTTs to two.
//!
//! The A/B runs two clusters over the same deterministically built graph —
//! identical configs except [`ExecConfig::batched_fetch`] — with a churn
//! writer rewriting hub payloads on each throughout. The churn never
//! touches ranks, ids, or edges, so every answer is invariant across
//! committed states: the suite interleaves row-emitting queries from both
//! clusters and compares the rendered rows byte-for-byte. A batched read
//! that consumed a torn or stale slot would surface here as a divergence.
//! A final unmeasured phase re-checks identity with
//! [`ShipPolicy::Cost`], covering {scalar, batched} × {Fixed, Cost}.
//!
//! [`ExecConfig::batched_fetch`]: a1_core::query::ExecConfig::batched_fetch
//! [`ShipPolicy::Cost`]: a1_core::query::ShipPolicy

use crate::cache::{build_graph, count_query, rows_query, CacheGraphSpec, GRAPH, TENANT};
use crate::perf::percentile;
use a1_core::{A1Cluster, A1Config, Json, MachineId, Mutation};
use a1_farm::LatencyModel;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Hot-set shape: enough hubs that the serial RTT chain dominates, with a
/// payload small enough that the bandwidth term stays negligible (the
/// suite isolates round trips, not bytes — the cache suite owns bytes).
pub fn fetch_spec(quick: bool) -> CacheGraphSpec {
    if quick {
        CacheGraphSpec {
            hubs: 16,
            payload_bytes: 2048,
        }
    } else {
        CacheGraphSpec {
            hubs: 24,
            payload_bytes: 4096,
        }
    }
}

/// RTT-dominated latency model: a 1 ms rack round trip against a cheap
/// per-KiB term, so collapsing N serial round trips into one doorbell is
/// the visible effect.
fn fetch_latency() -> LatencyModel {
    LatencyModel {
        local_read_ns: 100,
        rack_rtt_ns: 1_000_000,
        cross_rack_rtt_ns: 2_000_000,
        per_kib_ns: 2_000,
        rpc_overhead_ns: 1_000_000,
    }
}

/// A cluster configured for the suite: shipping disabled so every hub is
/// an inline one-sided fetch, cache disabled so every query pays the full
/// header + record read (no revalidation shortcut), serial work-op loop so
/// the verb counts are deterministic.
pub fn suite_config(batched: bool) -> A1Config {
    let mut cfg = A1Config::small(4).with_intra_parallelism(1);
    cfg.cache.enabled = false;
    cfg.exec.ship_policy = a1_core::query::ShipPolicy::Fixed(usize::MAX);
    cfg.exec.batched_fetch = batched;
    cfg.farm.fabric.threads_per_machine = 8;
    cfg.farm.fabric.latency = fetch_latency();
    cfg
}

fn hub_rewrite(i: usize, salt: u64) -> Mutation {
    Mutation::UpsertVertex {
        tenant: TENANT.into(),
        graph: GRAPH.into(),
        ty: "entity".into(),
        attrs: Json::obj(vec![
            ("id", Json::str(&format!("hub{i:04}"))),
            ("rank", Json::Num(1.0)),
            ("payload", Json::str(&format!("rewrite-{salt}"))),
        ]),
    }
}

/// One measured fetch-path configuration.
#[derive(Debug, Clone)]
pub struct FetchBenchResult {
    /// `scalar` or `batched`.
    pub mode: String,
    pub machines: u32,
    pub iters: usize,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub avg_ns: u64,
    pub throughput_qps: f64,
    /// Summed one-sided fetch posts over the measured queries, reported
    /// through `QueryMetrics::fetch_verbs` (scalar reads and doorbells
    /// both count as one post each — the batching win is fewer posts).
    pub fetch_verbs: u64,
    /// The count answer, cross-checked between the two modes every iter.
    pub result: u64,
}

/// The whole suite's outcome.
#[derive(Debug, Clone)]
pub struct FetchSuite {
    pub results: Vec<FetchBenchResult>,
    /// scalar p50 / batched p50.
    pub speedup: f64,
    /// scalar fetch verbs / batched fetch verbs over the measured phase.
    pub verb_reduction: f64,
    /// Rendered rows matched byte-for-byte on every iteration — across
    /// scalar/batched under churn, and across Fixed/Cost in the policy
    /// identity phase.
    pub answers_identical: bool,
    /// Churn batches committed during measurement (both clusters).
    pub churn_batches: u64,
}

fn sorted_rows(rows: &[Json]) -> String {
    let mut texts: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
    texts.sort();
    texts.join(",")
}

/// Run the suite: interleaved queries against a scalar-fetch and a
/// batched-fetch cluster over the same graph, churn rewriting hub payloads
/// on both, then a Fixed-vs-Cost policy identity sweep.
pub fn run_fetch_suite(quick: bool) -> FetchSuite {
    let spec = fetch_spec(quick);
    let iters = if quick { 6 } else { 12 };
    let scalar_cl = build_graph(suite_config(false), &spec);
    let batched_cl = build_graph(suite_config(true), &spec);
    let count_q = count_query();
    let rows_q = rows_query();
    // Machine 1 coordinates; the hubs live on machine 0, so with shipping
    // disabled every hub evaluation crosses the fabric.
    let coord = |cl: &A1Cluster, q: &str| {
        cl.inner()
            .coordinate_query(MachineId(1), TENANT, GRAPH, q)
            .expect("query")
    };

    // Warm (injection off): proxy caches and pools on both clusters.
    for cl in [&scalar_cl, &batched_cl] {
        for q in [&count_q, &rows_q] {
            coord(cl, q);
        }
    }

    let stop = AtomicBool::new(false);
    let churn_batches = AtomicU64::new(0);
    scalar_cl.farm().fabric().set_inject_latency(true);
    batched_cl.farm().fabric().set_inject_latency(true);

    let mut scalar_ns = Vec::with_capacity(iters);
    let mut batched_ns = Vec::with_capacity(iters);
    let mut scalar_verbs = 0u64;
    let mut batched_verbs = 0u64;
    let mut answers_identical = true;
    let expected = spec.hubs as u64;

    std::thread::scope(|s| {
        for cl in [&scalar_cl, &batched_cl] {
            let churn_client = cl.client();
            let (stop_ref, batches_ref, spec_ref) = (&stop, &churn_batches, &spec);
            s.spawn(move || {
                let mut salt = 1u64;
                while !stop_ref.load(Ordering::Relaxed) {
                    let i = (salt as usize) % spec_ref.hubs;
                    churn_client
                        .apply_batch_at(MachineId(0), &[hub_rewrite(i, salt)])
                        .expect("churn upsert");
                    batches_ref.fetch_add(1, Ordering::Relaxed);
                    salt += 1;
                    // A rewrite trickle, not a write storm: the suite
                    // measures read-path round trips under live updates,
                    // not lock-wait spin on perpetually locked hubs.
                    std::thread::sleep(std::time::Duration::from_millis(40));
                }
            });
        }

        for _ in 0..iters {
            let t0 = Instant::now();
            let so = coord(&scalar_cl, &count_q);
            scalar_ns.push(t0.elapsed().as_nanos() as u64);
            let t0 = Instant::now();
            let bo = coord(&batched_cl, &count_q);
            batched_ns.push(t0.elapsed().as_nanos() as u64);
            scalar_verbs += so.metrics.fetch_verbs;
            batched_verbs += bo.metrics.fetch_verbs;
            assert_eq!(so.count, Some(expected), "scalar count drifted");
            assert_eq!(bo.count, Some(expected), "batched count drifted");

            // Byte-identity under churn: the rewrites never touch the
            // emitted fields, so both clusters must render the same rows.
            let sr = coord(&scalar_cl, &rows_q);
            let br = coord(&batched_cl, &rows_q);
            if sorted_rows(&sr.rows) != sorted_rows(&br.rows) {
                answers_identical = false;
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    scalar_cl.farm().fabric().set_inject_latency(false);
    batched_cl.farm().fabric().set_inject_latency(false);

    // Policy identity phase (unmeasured): the adaptive cost decision must
    // never change an answer, whichever fetch path backs it.
    for batched in [false, true] {
        let mut cfg = suite_config(batched);
        cfg.exec.ship_policy = a1_core::query::ShipPolicy::Cost;
        let cl = build_graph(cfg, &spec);
        let co = coord(&cl, &count_q);
        if co.count != Some(expected) {
            answers_identical = false;
        }
        let cr = coord(&cl, &rows_q);
        let reference = coord(&batched_cl, &rows_q);
        if sorted_rows(&cr.rows) != sorted_rows(&reference.rows) {
            answers_identical = false;
        }
    }

    scalar_ns.sort_unstable();
    batched_ns.sort_unstable();
    let mk = |mode: &str, ns: &[u64], verbs: u64| {
        let avg = ns.iter().sum::<u64>() / ns.len() as u64;
        FetchBenchResult {
            mode: mode.to_string(),
            machines: scalar_cl.farm().fabric().num_machines(),
            iters,
            p50_ns: percentile(ns, 50),
            p99_ns: percentile(ns, 99),
            avg_ns: avg,
            throughput_qps: 1e9 / avg as f64,
            fetch_verbs: verbs,
            result: expected,
        }
    };
    let results = vec![
        mk("scalar", &scalar_ns, scalar_verbs),
        mk("batched", &batched_ns, batched_verbs),
    ];
    FetchSuite {
        speedup: results[0].p50_ns as f64 / results[1].p50_ns as f64,
        verb_reduction: scalar_verbs as f64 / batched_verbs.max(1) as f64,
        answers_identical,
        churn_batches: churn_batches.load(Ordering::Relaxed),
        results,
    }
}

/// Serialize for the CI artifact / committed `BENCH_<n>.json` (the `fetch`
/// section of the `a1-bench-v8` schema).
pub fn fetch_suite_to_json(suite: &FetchSuite) -> Json {
    Json::obj(vec![
        ("speedup", Json::Num(suite.speedup)),
        ("verb_reduction", Json::Num(suite.verb_reduction)),
        ("answers_identical", Json::Bool(suite.answers_identical)),
        ("churn_batches", Json::Num(suite.churn_batches as f64)),
        (
            "results",
            Json::Arr(
                suite
                    .results
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("mode", Json::str(&r.mode)),
                            ("machines", Json::Num(r.machines as f64)),
                            ("iters", Json::Num(r.iters as f64)),
                            ("p50_latency_ns", Json::Num(r.p50_ns as f64)),
                            ("p99_latency_ns", Json::Num(r.p99_ns as f64)),
                            ("avg_latency_ns", Json::Num(r.avg_ns as f64)),
                            ("throughput_qps", Json::Num(r.throughput_qps)),
                            ("fetch_verbs", Json::Num(r.fetch_verbs as f64)),
                            ("result", Json::Num(r.result as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Human-readable report (the `fetch` experiments target).
pub fn fetch_report(quick: bool) -> String {
    let suite = run_fetch_suite(quick);
    let mut out = String::new();
    writeln!(
        out,
        "== scalar vs doorbell-batched one-sided fetch (two clusters, same graph, churn running) =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>10} {:>10} {:>10} {:>9} {:>12}",
        "mode", "p50 ms", "p99 ms", "avg ms", "qps", "fetch verbs"
    )
    .unwrap();
    for r in &suite.results {
        writeln!(
            out,
            "{:<10} {:>10.2} {:>10.2} {:>10.2} {:>9.1} {:>12}",
            r.mode,
            r.p50_ns as f64 / 1e6,
            r.p99_ns as f64 / 1e6,
            r.avg_ns as f64 / 1e6,
            r.throughput_qps,
            r.fetch_verbs,
        )
        .unwrap();
    }
    writeln!(
        out,
        "speedup (scalar p50 / batched p50): {:.2}x  verb reduction {:.1}x  churn batches {}  answers identical: {}",
        suite.speedup, suite.verb_reduction, suite.churn_batches, suite.answers_identical,
    )
    .unwrap();
    writeln!(
        out,
        "(batched: one doorbell posts the morsel's headers, a second its records — two RTTs replace 2N)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fetch_suite_clears_gates() {
        let suite = run_fetch_suite(true);
        // The acceptance gates the CI fetch job re-checks: >=2x p50 from
        // collapsing the serial RTT chain...
        assert!(
            suite.speedup >= 2.0,
            "speedup {:.2}x below the 2x floor",
            suite.speedup
        );
        // ...>=4x fewer one-sided posts per query...
        assert!(
            suite.verb_reduction >= 4.0,
            "verb reduction {:.1}x below the 4x floor",
            suite.verb_reduction
        );
        // ...and byte-identical answers across {scalar, batched} x
        // {Fixed, Cost} while ingest rewrote the hot set throughout.
        assert!(suite.answers_identical, "fetch answers diverged");
        assert!(suite.churn_batches > 0, "churn threads never committed");
        let scalar = &suite.results[0];
        let batched = &suite.results[1];
        assert!(scalar.fetch_verbs > batched.fetch_verbs);
        assert_eq!(scalar.result, batched.result);
        // JSON round-trips through the vendored parser.
        let j = fetch_suite_to_json(&suite);
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(parsed.get("results").unwrap().as_arr().unwrap().len(), 2);
    }
}
