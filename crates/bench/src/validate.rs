//! Schema validation for the `--json` perf document (`a1-bench-v8`).
//!
//! CI used to pipe the artifact through `python3 -m json.tool`, which only
//! proved it parsed. `experiments --validate <file>` checks the actual
//! contract the perf-trajectory tooling depends on: the schema tag, every
//! required section, and the fields each section's consumers read. A
//! malformed artifact fails the job instead of silently uploading garbage.

use a1_core::Json;

/// The schema tag the current `--json` output carries.
pub const SCHEMA: &str = "a1-bench-v8";

fn require<'a>(j: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    j.get(key)
        .ok_or_else(|| format!("{ctx}: missing required field '{key}'"))
}

fn require_num(j: &Json, key: &str, ctx: &str) -> Result<(), String> {
    match require(j, key, ctx)? {
        Json::Num(_) => Ok(()),
        other => Err(format!(
            "{ctx}: field '{key}' must be a number, got {other}"
        )),
    }
}

fn require_arr<'a>(j: &'a Json, key: &str, ctx: &str) -> Result<&'a [Json], String> {
    match require(j, key, ctx)? {
        Json::Arr(items) => Ok(items),
        other => Err(format!(
            "{ctx}: field '{key}' must be an array, got {other}"
        )),
    }
}

fn each_has_nums(items: &[Json], fields: &[&str], ctx: &str) -> Result<(), String> {
    for (i, item) in items.iter().enumerate() {
        for f in fields {
            require_num(item, f, &format!("{ctx}[{i}]"))?;
        }
    }
    Ok(())
}

/// Validate one `--json` document against the `a1-bench-v8` contract.
/// Returns a human-readable error naming the first violation.
pub fn validate_doc(doc: &Json) -> Result<(), String> {
    let schema = require(doc, "schema", "document")?
        .as_str()
        .ok_or("document: 'schema' must be a string")?;
    if schema != SCHEMA {
        return Err(format!(
            "document: schema '{schema}' != expected '{SCHEMA}'"
        ));
    }
    match require(doc, "quick", "document")? {
        Json::Bool(_) => {}
        other => return Err(format!("document: 'quick' must be a bool, got {other}")),
    }

    // Q1/Q4 latency results (the original perf suite).
    let results = require_arr(doc, "results", "document")?;
    if results.is_empty() {
        return Err("document: 'results' must not be empty".into());
    }
    each_has_nums(
        results,
        &[
            "machines",
            "fanout_parallelism",
            "iters",
            "p50_latency_ns",
            "p99_latency_ns",
            "avg_latency_ns",
            "throughput_qps",
            "result",
        ],
        "results",
    )?;

    // Ingest suite: one entry per mode (single-op / group-commit / parallel).
    let ingest = require_arr(doc, "ingest", "document")?;
    if ingest.is_empty() {
        return Err("document: 'ingest' must not be empty".into());
    }
    each_has_nums(
        ingest,
        &["records", "elapsed_ns", "records_per_sec", "check"],
        "ingest",
    )?;

    // Wire suite: codec micro-bench + per-query bytes-on-wire.
    let wire = require(doc, "wire", "document")?;
    let codec = require_arr(wire, "codec", "wire")?;
    each_has_nums(codec, &["bytes", "encode_ns", "decode_ns"], "wire.codec")?;
    let queries = require_arr(wire, "queries", "wire")?;
    each_has_nums(
        queries,
        &["rpcs", "req_bytes", "reply_bytes", "total_bytes"],
        "wire.queries",
    )?;
    require(wire, "bytes_reduction", "wire")?;

    // Intra-machine morsel suite.
    let intra = require(doc, "intra", "document")?;
    let cases = require_arr(intra, "results", "intra")?;
    each_has_nums(
        cases,
        &["intra_parallelism", "p50_latency_ns", "morsels", "result"],
        "intra.results",
    )?;

    // Open-loop serving suite.
    let serve = require(doc, "serve", "document")?;
    require_num(serve, "machines", "serve")?;
    require_num(serve, "max_sustainable_qps", "serve")?;
    match require(serve, "answers_match_closed_loop", "serve")? {
        Json::Bool(true) => {}
        Json::Bool(false) => {
            return Err("serve: answers_match_closed_loop is false".into());
        }
        other => {
            return Err(format!(
                "serve: 'answers_match_closed_loop' must be a bool, got {other}"
            ))
        }
    }
    let rungs = require_arr(serve, "rungs", "serve")?;
    if rungs.is_empty() {
        return Err("serve: 'rungs' must not be empty".into());
    }
    each_has_nums(
        rungs,
        &[
            "target_qps",
            "achieved_qps",
            "requests",
            "rejected",
            "errors",
            "p50_latency_ns",
            "p99_latency_ns",
            "p999_latency_ns",
        ],
        "serve.rungs",
    )?;

    // Hot-vertex read-cache suite: cached vs bypass A/B under churn. The
    // CI cache-effectiveness job reads `speedup`, `hit_rate` and
    // `answers_identical` to enforce its floors, so a document that lacks
    // them (or shipped with divergent answers) is rejected outright.
    let cache = require(doc, "cache", "document")?;
    require_num(cache, "speedup", "cache")?;
    require_num(cache, "hit_rate", "cache")?;
    require_num(cache, "evictions", "cache")?;
    require_num(cache, "churn_batches", "cache")?;
    match require(cache, "answers_identical", "cache")? {
        Json::Bool(true) => {}
        Json::Bool(false) => {
            return Err("cache: answers_identical is false".into());
        }
        other => {
            return Err(format!(
                "cache: 'answers_identical' must be a bool, got {other}"
            ))
        }
    }
    let modes = require_arr(cache, "results", "cache")?;
    if modes.len() != 2 {
        return Err(format!(
            "cache: 'results' must hold the cached/uncached pair, got {}",
            modes.len()
        ));
    }
    each_has_nums(
        modes,
        &[
            "machines",
            "iters",
            "p50_latency_ns",
            "p99_latency_ns",
            "avg_latency_ns",
            "throughput_qps",
            "cache_hits",
            "cache_misses",
            "local_read_fraction",
            "result",
        ],
        "cache.results",
    )?;

    // Doorbell-batched fetch suite: scalar vs batched one-sided read path
    // over the same graph under churn. The CI fetch job reads `speedup`,
    // `verb_reduction` and `answers_identical` to enforce its floors, so a
    // document that lacks them (or shipped with divergent answers between
    // the scalar and batched paths) is rejected outright.
    let fetch = require(doc, "fetch", "document")?;
    require_num(fetch, "speedup", "fetch")?;
    require_num(fetch, "verb_reduction", "fetch")?;
    require_num(fetch, "churn_batches", "fetch")?;
    match require(fetch, "answers_identical", "fetch")? {
        Json::Bool(true) => {}
        Json::Bool(false) => {
            return Err("fetch: answers_identical is false".into());
        }
        other => {
            return Err(format!(
                "fetch: 'answers_identical' must be a bool, got {other}"
            ))
        }
    }
    let fetch_modes = require_arr(fetch, "results", "fetch")?;
    if fetch_modes.len() != 2 {
        return Err(format!(
            "fetch: 'results' must hold the scalar/batched pair, got {}",
            fetch_modes.len()
        ));
    }
    each_has_nums(
        fetch_modes,
        &[
            "machines",
            "iters",
            "p50_latency_ns",
            "p99_latency_ns",
            "avg_latency_ns",
            "throughput_qps",
            "fetch_verbs",
            "result",
        ],
        "fetch.results",
    )?;

    // Deterministic-simulation suite: the scenario catalog at fixed seeds.
    // A document is only valid if every scenario passed AND every run
    // replayed byte-identically — a sim regression must fail the job, not
    // upload quietly.
    let sim = require(doc, "sim", "document")?;
    match require(sim, "all_passed", "sim")? {
        Json::Bool(true) => {}
        Json::Bool(false) => return Err("sim: all_passed is false".into()),
        other => return Err(format!("sim: 'all_passed' must be a bool, got {other}")),
    }
    match require(sim, "replay_identical", "sim")? {
        Json::Bool(true) => {}
        Json::Bool(false) => {
            return Err("sim: replay_identical is false — same (scenario, seed) diverged".into())
        }
        other => {
            return Err(format!(
                "sim: 'replay_identical' must be a bool, got {other}"
            ))
        }
    }
    let scenarios = require_arr(sim, "results", "sim")?;
    if scenarios.len() < 6 {
        return Err(format!(
            "sim: 'results' must cover the >=6-scenario catalog, got {}",
            scenarios.len()
        ));
    }
    each_has_nums(scenarios, &["seeds", "failures"], "sim.results")?;
    Ok(())
}

/// Validate a serialized document (the `--validate <file>` entry point).
pub fn validate_text(text: &str) -> Result<(), String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    validate_doc(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal well-formed a1-bench-v8 document.
    fn sample() -> Json {
        Json::parse(
            r#"{
              "schema": "a1-bench-v8",
              "quick": true,
              "results": [{
                "workload": "q1", "machines": 8, "fanout_parallelism": 0,
                "iters": 8, "p50_latency_ns": 1, "p99_latency_ns": 2,
                "avg_latency_ns": 1, "throughput_qps": 10.0, "result": 5
              }],
              "ingest": [{
                "workload": "ingest-group-commit", "machines": 4,
                "partitions": 4, "batch_size": 64, "records": 10,
                "elapsed_ns": 100, "records_per_sec": 5000.0, "batches": 2,
                "batch_retries": 0, "batch_splits": 0, "dedup_hits": 0,
                "check": 10
              }],
              "wire": {
                "codec": [{"message": "query-request", "bytes": 10,
                  "encode_ns": 5, "decode_ns": 5}],
                "queries": [{"workload": "q1", "format": "binary",
                  "fanout_parallelism": 0, "rpcs": 8, "req_bytes": 100,
                  "reply_bytes": 200, "total_bytes": 300,
                  "avg_latency_ns": 10, "result": 5}],
                "bytes_reduction": {"q1": 0.5}
              },
              "intra": {"results": [{"workload": "hub", "machines": 8,
                "intra_parallelism": 4, "iters": 8, "p50_latency_ns": 10,
                "p99_latency_ns": 20, "avg_latency_ns": 12,
                "throughput_qps": 100.0, "frontier": 64, "morsels": 4,
                "max_concurrent_morsels": 4, "result": 5}]},
              "serve": {
                "machines": 8, "max_sustainable_qps": 100.0,
                "answers_match_closed_loop": true,
                "rungs": [{"target_qps": 50, "achieved_qps": 49,
                  "requests": 20, "rejected": 0, "errors": 0,
                  "p50_latency_ns": 1, "p99_latency_ns": 2,
                  "p999_latency_ns": 3, "sustainable": true}]
              },
              "cache": {
                "speedup": 2.5, "hit_rate": 0.9, "evictions": 0,
                "answers_identical": true, "churn_batches": 12,
                "results": [
                  {"mode": "cached", "machines": 4, "iters": 6,
                   "p50_latency_ns": 10, "p99_latency_ns": 20,
                   "avg_latency_ns": 12, "throughput_qps": 100.0,
                   "cache_hits": 50, "cache_misses": 5,
                   "local_read_fraction": 0.8, "result": 32},
                  {"mode": "uncached", "machines": 4, "iters": 6,
                   "p50_latency_ns": 25, "p99_latency_ns": 40,
                   "avg_latency_ns": 30, "throughput_qps": 40.0,
                   "cache_hits": 0, "cache_misses": 0,
                   "local_read_fraction": 0.1, "result": 32}
                ]
              },
              "fetch": {
                "speedup": 8.0, "verb_reduction": 6.0,
                "answers_identical": true, "churn_batches": 10,
                "results": [
                  {"mode": "scalar", "machines": 4, "iters": 6,
                   "p50_latency_ns": 80, "p99_latency_ns": 90,
                   "avg_latency_ns": 82, "throughput_qps": 12.0,
                   "fetch_verbs": 200, "result": 16},
                  {"mode": "batched", "machines": 4, "iters": 6,
                   "p50_latency_ns": 10, "p99_latency_ns": 12,
                   "avg_latency_ns": 11, "throughput_qps": 90.0,
                   "fetch_verbs": 30, "result": 16}
                ]
              },
              "sim": {
                "all_passed": true, "replay_identical": true,
                "results": [
                  {"scenario": "partition-during-ingest", "seeds": 2,
                   "failures": 0, "trace_hashes": ["aa", "bb"]},
                  {"scenario": "coordinator-death-mid-fanout", "seeds": 2,
                   "failures": 0, "trace_hashes": ["aa", "bb"]},
                  {"scenario": "message-loss-storm", "seeds": 2,
                   "failures": 0, "trace_hashes": ["aa", "bb"]},
                  {"scenario": "clock-skew-past-lease-bound", "seeds": 2,
                   "failures": 0, "trace_hashes": ["aa", "bb"]},
                  {"scenario": "backward-clock-jump", "seeds": 2,
                   "failures": 0, "trace_hashes": ["aa", "bb"]},
                  {"scenario": "replog-replay-race", "seeds": 2,
                   "failures": 0, "trace_hashes": ["aa", "bb"]},
                  {"scenario": "cache-invalidation-vs-crash", "seeds": 2,
                   "failures": 0, "trace_hashes": ["aa", "bb"]}
                ]
              }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn accepts_well_formed() {
        validate_doc(&sample()).unwrap();
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(validate_text("not json").is_err());
        assert!(validate_text("{}").is_err());

        // Wrong schema tag.
        let mut doc = sample();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "schema" {
                    *v = Json::str("a1-bench-v4");
                }
            }
        }
        let err = validate_doc(&doc).unwrap_err();
        assert!(err.contains("a1-bench-v4"), "{err}");

        // Missing serve section.
        let mut doc = sample();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "serve");
        }
        let err = validate_doc(&doc).unwrap_err();
        assert!(err.contains("serve"), "{err}");

        // A rung missing its tail percentile.
        let text = sample().to_string().replace("\"p999_latency_ns\"", "\"x\"");
        let err = validate_text(&text).unwrap_err();
        assert!(err.contains("p999_latency_ns"), "{err}");

        // Missing cache section.
        let mut doc = sample();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "cache");
        }
        let err = validate_doc(&doc).unwrap_err();
        assert!(err.contains("cache"), "{err}");

        // Missing sim section.
        let mut doc = sample();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "sim");
        }
        let err = validate_doc(&doc).unwrap_err();
        assert!(err.contains("sim"), "{err}");

        // Missing fetch section.
        let mut doc = sample();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "fetch");
        }
        let err = validate_doc(&doc).unwrap_err();
        assert!(err.contains("fetch"), "{err}");

        // Scalar and batched answers diverged — never a valid artifact.
        let mut doc = sample();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k != "fetch" {
                    continue;
                }
                if let Json::Obj(fetch_fields) = v {
                    for (fk, fv) in fetch_fields.iter_mut() {
                        if fk == "answers_identical" {
                            *fv = Json::Bool(false);
                        }
                    }
                }
            }
        }
        let err = validate_doc(&doc).unwrap_err();
        assert!(err.contains("fetch: answers_identical"), "{err}");

        // A replay divergence is never a valid artifact.
        let mut doc = sample();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k != "sim" {
                    continue;
                }
                if let Json::Obj(sim_fields) = v {
                    for (sk, sv) in sim_fields.iter_mut() {
                        if sk == "replay_identical" {
                            *sv = Json::Bool(false);
                        }
                    }
                }
            }
        }
        let err = validate_doc(&doc).unwrap_err();
        assert!(err.contains("replay_identical"), "{err}");

        // Cached and bypass answers diverged — never a valid artifact.
        let mut doc = sample();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k != "cache" {
                    continue;
                }
                if let Json::Obj(cache_fields) = v {
                    for (ck, cv) in cache_fields.iter_mut() {
                        if ck == "answers_identical" {
                            *cv = Json::Bool(false);
                        }
                    }
                }
            }
        }
        let err = validate_doc(&doc).unwrap_err();
        assert!(err.contains("answers_identical"), "{err}");
    }
}
