//! Wire-protocol benchmarks: the codec micro-bench (JSON text vs. binary
//! frames, encode + decode) and bytes-on-wire for Q1/Q4 on the 8-machine
//! latency-injected cluster, measured under every {serial, parallel} ×
//! {json, binary} combination.
//!
//! Since `Fabric::rpc` charges simulated latency per byte of request and
//! reply, fewer bytes is directly faster — this suite is the evidence for
//! the binary wire being the default. It doubles as a correctness gate:
//! [`run_wire_suite`] panics if any combination disagrees on a query's
//! answer, or if the binary wire fails to cut ≥40% of total RPC bytes.

use crate::perf::{measured_latency, spec};
use crate::workload::{KnowledgeGraph, GRAPH, TENANT};
use a1_core::query::exec::{
    CompiledMatch, CompiledStep, CompiledTraverse, QueryMetrics, WorkOp, WorkResult,
};
use a1_core::query::plan::{AttrPredicate, CmpOp, Select};
use a1_core::{wire, A1Config, Json, WireFormat};
use a1_farm::{Addr, RegionId};
use std::fmt::Write as _;
use std::time::Instant;

/// One codec micro-bench measurement.
#[derive(Debug, Clone)]
pub struct CodecBenchResult {
    /// Message kind (`work_op`, `work_result`).
    pub message: String,
    /// `json` or `binary`.
    pub format: String,
    /// Encoded size in bytes.
    pub bytes: usize,
    /// Average encode cost per message.
    pub encode_ns: u64,
    /// Average decode cost per message.
    pub decode_ns: u64,
}

/// Bytes-on-wire for one query under one ⟨format, coordinator⟩ combination.
#[derive(Debug, Clone)]
pub struct WireQueryResult {
    pub workload: String,
    /// `json` or `binary`.
    pub format: String,
    /// 0 = parallel fan-out, 1 = serial coordinator.
    pub fanout_parallelism: usize,
    pub rpcs: u64,
    pub req_bytes: u64,
    pub reply_bytes: u64,
    pub total_bytes: u64,
    pub avg_latency_ns: u64,
    /// The query's answer (count or row count), asserted identical across
    /// all combinations.
    pub result: u64,
}

/// The whole wire suite.
#[derive(Debug, Clone)]
pub struct WireSuite {
    pub codec: Vec<CodecBenchResult>,
    pub queries: Vec<WireQueryResult>,
}

fn fmt_name(fmt: WireFormat) -> &'static str {
    match fmt {
        WireFormat::Binary => "binary",
        WireFormat::Json => "json",
    }
}

/// A representative mid-traversal work op: a 64-vertex frontier batch with a
/// predicate and a traversal (the shape Q1/Q4 ship every hop).
fn sample_work_op() -> WorkOp {
    WorkOp {
        tenant: TENANT.into(),
        graph: GRAPH.into(),
        snapshot_ts: 123_456,
        vertices: (0..64)
            .map(|i| Addr::new(RegionId(i % 8), 64 * (i + 1)))
            .collect(),
        step: CompiledStep {
            type_filter: Some(a1_core::TypeId(3)),
            id_filter: None,
            preds: vec![AttrPredicate {
                attr: "str_str_map".into(),
                map_key: Some("character".into()),
                op: CmpOp::Eq,
                value: Json::str("Batman"),
            }],
            matches: vec![CompiledMatch {
                dir: a1_core::edges::Dir::Out,
                edge_type: a1_core::TypeId(7),
                target: Some(Addr::new(RegionId(3), 256)),
                target_type: None,
                preds: vec![],
            }],
            traverse: Some(CompiledTraverse {
                dir: a1_core::edges::Dir::In,
                edge_type: a1_core::TypeId(9),
                edge_preds: vec![],
            }),
        },
        emit_rows: false,
        select: Select::All,
        cache_bypass: false,
    }
}

/// A representative worker reply: 64 next-hop pointers plus 16 rows.
fn sample_work_result() -> WorkResult {
    WorkResult {
        next: (0..64)
            .map(|i| Addr::new(RegionId(i % 8), 128 * (i + 1)))
            .collect(),
        rows: (0..16)
            .map(|i| {
                (
                    Addr::new(RegionId(i % 8), 64 * (i + 1)),
                    Json::obj(vec![
                        ("_type", Json::str("entity")),
                        ("id", Json::Str(format!("entity.{i:04}"))),
                        ("name", Json::Arr(vec![Json::Str(format!("Entity {i}"))])),
                        ("rank", Json::Num(i as f64)),
                    ]),
                )
            })
            .collect(),
        metrics: QueryMetrics {
            vertices_read: 64,
            edges_visited: 480,
            local_reads: 128,
            remote_reads: 2,
            ..QueryMetrics::default()
        },
        morsels: 4,
        max_concurrent_morsels: 2,
    }
}

fn bench_codec(iters: usize) -> Vec<CodecBenchResult> {
    let op = sample_work_op();
    let res = Ok(sample_work_result());
    let mut out = Vec::new();
    for fmt in [WireFormat::Json, WireFormat::Binary] {
        // Work op: encode, then decode through the server entry point.
        let encoded = wire::encode_work_op(&op, fmt);
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(wire::encode_work_op(std::hint::black_box(&op), fmt));
        }
        let encode_ns = t0.elapsed().as_nanos() as u64 / iters as u64;
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(wire::decode_request(std::hint::black_box(&encoded)).unwrap());
        }
        let decode_ns = t0.elapsed().as_nanos() as u64 / iters as u64;
        out.push(CodecBenchResult {
            message: "work_op".into(),
            format: fmt_name(fmt).into(),
            bytes: encoded.len(),
            encode_ns,
            decode_ns,
        });

        let encoded = wire::encode_work_result(&res, fmt);
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(wire::encode_work_result(std::hint::black_box(&res), fmt));
        }
        let encode_ns = t0.elapsed().as_nanos() as u64 / iters as u64;
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(wire::decode_work_result(std::hint::black_box(&encoded)).unwrap());
        }
        let decode_ns = t0.elapsed().as_nanos() as u64 / iters as u64;
        out.push(CodecBenchResult {
            message: "work_result".into(),
            format: fmt_name(fmt).into(),
            bytes: encoded.len(),
            encode_ns,
            decode_ns,
        });
    }
    out
}

/// Run the suite. Panics if any ⟨format, coordinator⟩ combination disagrees
/// on a query's answer, or if the binary wire saves less than 40% of total
/// RPC bytes vs. `WireFormat::Json` on any Q1/Q4 combination — so the CI
/// perf-trajectory job doubles as the wire-protocol acceptance gate.
pub fn run_wire_suite(quick: bool) -> WireSuite {
    let machines = 8u32;
    let iters = if quick { 2_000 } else { 20_000 };
    let query_iters = if quick { 3 } else { 8 };
    let codec = bench_codec(iters);

    let mut queries = Vec::new();
    for fmt in [WireFormat::Json, WireFormat::Binary] {
        for fanout in [1usize, 0] {
            let mut cfg = A1Config::small(machines)
                .with_fanout(fanout)
                .with_wire_format(fmt);
            cfg.farm.fabric.latency = measured_latency();
            // Load fast (no injection), then measure with injection on so
            // the byte counts come off the same cluster the latency suite
            // measures.
            let kg = KnowledgeGraph::load(cfg, spec(quick));
            let fabric = kg.cluster.farm().fabric().clone();
            fabric.set_inject_latency(true);
            for (name, text) in [("q1", kg.q1()), ("q4", kg.q4())] {
                // Warm proxy caches so the measured delta is the query only.
                let _ = kg.client.query(TENANT, GRAPH, &text).expect("warmup");
                let before = fabric.metrics().snapshot();
                let t0 = Instant::now();
                let mut result = 0;
                for _ in 0..query_iters {
                    let outcome = kg.client.query(TENANT, GRAPH, &text).expect("query");
                    result = outcome.count.unwrap_or(outcome.rows.len() as u64);
                }
                let elapsed = t0.elapsed().as_nanos() as u64;
                let delta = fabric.metrics().snapshot().delta_since(&before);
                queries.push(WireQueryResult {
                    workload: name.into(),
                    format: fmt_name(fmt).into(),
                    fanout_parallelism: fanout,
                    rpcs: delta.rpcs / query_iters as u64,
                    req_bytes: delta.rpc_req_bytes / query_iters as u64,
                    reply_bytes: delta.rpc_reply_bytes / query_iters as u64,
                    total_bytes: delta.rpc_bytes() / query_iters as u64,
                    avg_latency_ns: elapsed / query_iters as u64,
                    result,
                });
            }
            fabric.set_inject_latency(false);
        }
    }

    // Gate 1: every combination agrees on every query's answer.
    for r in &queries {
        for o in &queries {
            if r.workload == o.workload {
                assert_eq!(
                    r.result, o.result,
                    "{} answers diverge: {}/{} vs {}/{}",
                    r.workload, r.format, r.fanout_parallelism, o.format, o.fanout_parallelism
                );
            }
        }
    }
    // Gate 2: the binary wire cuts ≥40% of total RPC bytes in every
    // combination (the ISSUE 4 acceptance bar).
    for workload in ["q1", "q4"] {
        for fanout in [1usize, 0] {
            let by = |format: &str| {
                queries
                    .iter()
                    .find(|r| {
                        r.workload == workload
                            && r.format == format
                            && r.fanout_parallelism == fanout
                    })
                    .expect("measured")
            };
            let (json, binary) = (by("json"), by("binary"));
            assert!(
                (binary.total_bytes as f64) <= 0.60 * json.total_bytes as f64,
                "{workload} fanout={fanout}: binary {}B !≤ 60% of json {}B",
                binary.total_bytes,
                json.total_bytes
            );
        }
    }
    WireSuite { codec, queries }
}

/// Serialize for the CI artifact / committed `BENCH_<n>.json` (`wire`
/// section of the `a1-bench-v3` schema).
pub fn wire_suite_to_json(suite: &WireSuite) -> Json {
    let reduction = |workload: &str| -> Json {
        let total = |format: &str| {
            suite
                .queries
                .iter()
                .filter(|r| r.workload == workload && r.format == format)
                .map(|r| r.total_bytes)
                .sum::<u64>() as f64
        };
        let json_b = total("json");
        if json_b == 0.0 {
            return Json::Null;
        }
        Json::Num(1.0 - total("binary") / json_b)
    };
    Json::obj(vec![
        (
            "codec",
            Json::Arr(
                suite
                    .codec
                    .iter()
                    .map(|c| {
                        Json::obj(vec![
                            ("message", Json::str(&c.message)),
                            ("format", Json::str(&c.format)),
                            ("bytes", Json::Num(c.bytes as f64)),
                            ("encode_ns", Json::Num(c.encode_ns as f64)),
                            ("decode_ns", Json::Num(c.decode_ns as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "queries",
            Json::Arr(
                suite
                    .queries
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("workload", Json::str(&r.workload)),
                            ("format", Json::str(&r.format)),
                            ("fanout_parallelism", Json::Num(r.fanout_parallelism as f64)),
                            ("rpcs", Json::Num(r.rpcs as f64)),
                            ("req_bytes", Json::Num(r.req_bytes as f64)),
                            ("reply_bytes", Json::Num(r.reply_bytes as f64)),
                            ("total_bytes", Json::Num(r.total_bytes as f64)),
                            ("avg_latency_ns", Json::Num(r.avg_latency_ns as f64)),
                            ("result", Json::Num(r.result as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "bytes_reduction",
            Json::obj(vec![("q1", reduction("q1")), ("q4", reduction("q4"))]),
        ),
    ])
}

/// Human-readable report (the `wire` experiments target).
pub fn wire_report(quick: bool) -> String {
    let suite = run_wire_suite(quick);
    let mut out = String::new();
    writeln!(
        out,
        "== wire protocol v1: binary frames vs JSON text (§3.1 Bond messages) =="
    )
    .unwrap();
    writeln!(out, "codec micro-bench (per message):").unwrap();
    writeln!(
        out,
        "{:<12} {:<7} {:>7} {:>11} {:>11}",
        "message", "format", "bytes", "encode ns", "decode ns"
    )
    .unwrap();
    for c in &suite.codec {
        writeln!(
            out,
            "{:<12} {:<7} {:>7} {:>11} {:>11}",
            c.message, c.format, c.bytes, c.encode_ns, c.decode_ns
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nbytes on wire per query (8 machines, injected latency):"
    )
    .unwrap();
    writeln!(
        out,
        "{:<4} {:<7} {:<9} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "Q", "format", "mode", "rpcs", "req B", "reply B", "total B", "avg µs"
    )
    .unwrap();
    for r in &suite.queries {
        let mode = if r.fanout_parallelism == 1 {
            "serial"
        } else {
            "parallel"
        };
        writeln!(
            out,
            "{:<4} {:<7} {:<9} {:>6} {:>10} {:>10} {:>10} {:>10.1}",
            r.workload,
            r.format,
            mode,
            r.rpcs,
            r.req_bytes,
            r.reply_bytes,
            r.total_bytes,
            r.avg_latency_ns as f64 / 1000.0,
        )
        .unwrap();
    }
    for workload in ["q1", "q4"] {
        let total = |format: &str| {
            suite
                .queries
                .iter()
                .filter(|r| r.workload == workload && r.format == format)
                .map(|r| r.total_bytes)
                .sum::<u64>() as f64
        };
        writeln!(
            out,
            "{workload} bytes-on-wire reduction (binary vs json): {:.1}%",
            100.0 * (1.0 - total("binary") / total("json"))
        )
        .unwrap();
    }
    writeln!(
        out,
        "(identical answers asserted across {{serial, parallel}} × {{json, binary}})"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE 4 acceptance gate: ≥40% fewer total RPC bytes on Q1/Q4 with
    /// identical answers across every combination (both asserted inside
    /// `run_wire_suite`), plus a sanity check on the emitted JSON.
    #[test]
    fn wire_gate_quick() {
        let suite = run_wire_suite(true);
        assert_eq!(suite.queries.len(), 8);
        // The codec micro-bench agrees with the cluster-level gate: binary
        // messages are smaller than their JSON twins.
        for message in ["work_op", "work_result"] {
            let by = |format: &str| {
                suite
                    .codec
                    .iter()
                    .find(|c| c.message == message && c.format == format)
                    .unwrap()
                    .bytes as f64
            };
            assert!(
                by("binary") <= 0.60 * by("json"),
                "{message}: binary {} !≤ 60% of json {}",
                by("binary"),
                by("json")
            );
        }
        let j = wire_suite_to_json(&suite);
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(parsed.get("queries").unwrap().as_arr().unwrap().len(), 8);
        let q4_cut = parsed
            .get("bytes_reduction")
            .and_then(|r| r.get("q4"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(q4_cut >= 0.40, "q4 reduction {q4_cut} < 40%");
    }
}
