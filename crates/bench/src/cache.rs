//! The cache suite: cross-query hot-vertex read cache A/B, measured
//! wall-clock on a latency-injected cluster while ingest rewrites the hot
//! set underneath.
//!
//! The workload is the cache's target shape from the paper's serving story
//! (§2.2, §6): a small set of **hub** vertices that every query touches,
//! homed on a machine *remote* from the coordinator, re-read by a stream of
//! repeated Q1-style one-hop traversals whose predicate forces a record
//! read. Uncached, every hub costs the coordinator a remote header read
//! plus a remote payload read per query; cached, a single 32-byte HEADER
//! probe revalidates the entry and the payload never crosses the wire
//! again.
//!
//! The A/B runs against **one** cluster through two front-door clients: the
//! `cached` client uses the backend caches, the `uncached` client is listed
//! in [`CacheConfig::bypass_clients`]. Both therefore see the same
//! committed state at every instant, so their answers must match
//! byte-for-byte even while a churn thread rewrites hub payloads through
//! `apply_batch_at` — the suite interleaves row-emitting queries from both
//! clients and compares the rendered rows exactly. A stale cache entry that
//! survived invalidation *and* revalidation would show up here as a
//! byte-level divergence.
//!
//! [`CacheConfig::bypass_clients`]: a1_core::CacheConfig::bypass_clients

use crate::perf::percentile;
use a1_core::{A1Cluster, A1Config, CacheConfig, Json, MachineId, Mutation};
use a1_farm::LatencyModel;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

pub const TENANT: &str = "bing";
pub const GRAPH: &str = "hot";

/// The client id the suite registers for cache bypass.
pub const UNCACHED_CLIENT: &str = "uncached";

/// The cached-side client id (any id not in `bypass_clients` would do).
pub const CACHED_CLIENT: &str = "cached-reader";

const SCHEMA: &str = r#"{
    "name": "entity",
    "fields": [
        {"id": 0, "name": "id", "type": "string", "required": true},
        {"id": 1, "name": "rank", "type": "int64"},
        {"id": 2, "name": "payload", "type": "string"}
    ]
}"#;

/// Hot-set shape parameters.
#[derive(Debug, Clone)]
pub struct CacheGraphSpec {
    /// Hub vertices in the hot set (every query's hop-2 frontier). Kept
    /// small enough that the root's edge list stays inline.
    pub hubs: usize,
    /// Hub record payload bytes — what the cache saves per re-read.
    pub payload_bytes: usize,
}

impl CacheGraphSpec {
    pub fn quick() -> CacheGraphSpec {
        CacheGraphSpec {
            hubs: 16,
            payload_bytes: 8192,
        }
    }

    pub fn full() -> CacheGraphSpec {
        CacheGraphSpec {
            hubs: 24,
            payload_bytes: 12288,
        }
    }
}

/// The suite's latency model: the rack round trip dominates small reads and
/// the bandwidth term is weighted so multi-KiB payload transfers are
/// visible next to it (a congested 40 Gb/s fabric). Both of the cache's
/// savings show up under it: a hit halves the round trips (one probe vs
/// header + payload) *and* drops the payload bytes.
fn cache_latency() -> LatencyModel {
    LatencyModel {
        local_read_ns: 100,
        rack_rtt_ns: 1_000_000,
        cross_rack_rtt_ns: 2_000_000,
        per_kib_ns: 500_000,
        rpc_overhead_ns: 1_000_000,
    }
}

/// A cluster configured for the suite. Shipping is disabled
/// (`ShipPolicy::Fixed(MAX)`) so the coordinator executes every hop inline
/// against remote memory — the read pattern the per-machine cache
/// accelerates — and the `uncached` client id bypasses the cache for the
/// A/B baseline.
pub fn suite_config() -> A1Config {
    let mut cfg = A1Config::small(4)
        .with_cache(CacheConfig {
            enabled: true,
            capacity_bytes: 64 << 20,
            bypass_clients: vec![UNCACHED_CLIENT.to_string()],
        })
        // Serial work-op loop: the suite isolates *per-read* cost (probe vs
        // header+payload pair), and morsel splitting would bury it under
        // per-morsel transaction setup — overlap has its own suite.
        .with_intra_parallelism(1);
    cfg.exec.ship_policy = a1_core::query::ShipPolicy::Fixed(usize::MAX);
    cfg.farm.fabric.threads_per_machine = 8;
    cfg.farm.fabric.latency = cache_latency();
    cfg
}

fn payload(bytes: usize, salt: u64) -> String {
    (0..bytes)
        .map(|i| (((i as u64 + salt) % 26) as u8 + b'a') as char)
        .collect()
}

fn hub_upsert(i: usize, spec: &CacheGraphSpec, salt: u64) -> Mutation {
    Mutation::UpsertVertex {
        tenant: TENANT.into(),
        graph: GRAPH.into(),
        ty: "entity".into(),
        attrs: Json::obj(vec![
            ("id", Json::str(&format!("hub{i:04}"))),
            ("rank", Json::Num(1.0)),
            ("payload", Json::str(&payload(spec.payload_bytes, salt))),
        ]),
    }
}

/// Build the hot-set workload:
///
/// ```text
/// root (machine 1, the coordinator) ──fan──▶ hub_i (machine 0, ×hubs)
/// ```
///
/// Every hub lives on machine 0 and the coordinator is machine 1, so with
/// shipping disabled each hub evaluation is a remote read pair — the cache's
/// best case and the paper's hub-entity access pattern.
pub fn build_graph(cfg: A1Config, spec: &CacheGraphSpec) -> A1Cluster {
    let cluster = A1Cluster::start(cfg).expect("cluster");
    let client = cluster.client();
    client.create_tenant(TENANT).unwrap();
    client.create_graph(TENANT, GRAPH).unwrap();
    client
        .create_vertex_type(TENANT, GRAPH, SCHEMA, "id", &[])
        .unwrap();
    client
        .create_edge_type(TENANT, GRAPH, r#"{"name": "fan", "fields": []}"#)
        .unwrap();
    client
        .apply_batch_at(
            MachineId(1),
            &[Mutation::UpsertVertex {
                tenant: TENANT.into(),
                graph: GRAPH.into(),
                ty: "entity".into(),
                attrs: Json::obj(vec![("id", Json::str("root")), ("rank", Json::Num(0.0))]),
            }],
        )
        .unwrap();
    for i in 0..spec.hubs {
        client
            .apply_batch_at(MachineId(0), &[hub_upsert(i, spec, 0)])
            .unwrap();
        client
            .apply_batch(&[Mutation::UpsertEdge {
                tenant: TENANT.into(),
                graph: GRAPH.into(),
                src_type: "entity".into(),
                src_id: Json::str("root"),
                edge_type: "fan".into(),
                dst_type: "entity".into(),
                dst_id: Json::str(&format!("hub{i:04}")),
                data: None,
            }])
            .unwrap();
    }
    cluster
}

/// The measured query: count the hubs passing a record predicate (the
/// answer is always `hubs` — churn rewrites payloads, never ranks).
pub fn count_query() -> String {
    r#"{ "id": "root",
        "_out_edge": { "_type": "fan",
        "_vertex": { "rank": 1, "_select": ["_count(*)"] } } }"#
        .to_string()
}

/// The byte-identity query: emit the hubs' stable `id` attribute as rows.
pub fn rows_query() -> String {
    r#"{ "id": "root",
        "_out_edge": { "_type": "fan",
        "_vertex": { "rank": 1, "_select": ["id"] } } }"#
        .to_string()
}

/// One measured client configuration.
#[derive(Debug, Clone)]
pub struct CacheBenchResult {
    /// `cached` or `uncached` (the bypass-listed client).
    pub mode: String,
    pub machines: u32,
    pub iters: usize,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub avg_ns: u64,
    pub throughput_qps: f64,
    /// Summed per-query cache counters reported through `QueryMetrics`.
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// local_reads / (local_reads + remote_reads) over the measured runs —
    /// cache hits count as local (the payload never crossed the wire).
    pub local_read_fraction: f64,
    /// The count answer, cross-checked between the two modes every iter.
    pub result: u64,
}

/// The whole suite's outcome.
#[derive(Debug, Clone)]
pub struct CacheSuite {
    pub results: Vec<CacheBenchResult>,
    /// uncached p50 / cached p50.
    pub speedup: f64,
    /// Hit rate over the backend caches for the whole measured phase.
    pub hit_rate: f64,
    pub evictions: u64,
    /// Rendered rows from interleaved cached/uncached queries matched
    /// byte-for-byte on every iteration, churn running throughout.
    pub answers_identical: bool,
    /// Ingest batches the churn thread committed during measurement.
    pub churn_batches: u64,
}

fn sorted_rows(rows: &[Json]) -> String {
    let mut texts: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
    texts.sort();
    texts.join(",")
}

/// Run the suite: interleaved cached/uncached queries against one cluster
/// while a churn thread rewrites hub payloads through the batch-apply
/// ingest path (exercising write-side invalidation + revalidation, not
/// just a read-only cache).
pub fn run_cache_suite(quick: bool) -> CacheSuite {
    let spec = if quick {
        CacheGraphSpec::quick()
    } else {
        CacheGraphSpec::full()
    };
    let iters = if quick { 6 } else { 12 };
    let cluster = build_graph(suite_config(), &spec);
    let inner = cluster.inner();
    let count_q = count_query();
    let rows_q = rows_query();
    // Every measured query coordinates from machine 1 — remote from the
    // hubs on machine 0 — with a pinned client identity. The front-door
    // `A1Client::query` routes round-robin over the backends (right for
    // serving, wrong for an A/B: each backend has its own cache, so which
    // cache a query consults would depend on routing alignment).
    let coord = |client: &str, q: &str| {
        inner
            .coordinate_query_for(MachineId(1), TENANT, GRAPH, q, client)
            .expect("query")
    };

    // Warm (injection off): proxy caches, pools, and machine 1's vertex
    // cache — count and rows queries read the same headers + records.
    for q in [&count_q, &rows_q] {
        for _ in 0..2 {
            coord(CACHED_CLIENT, q);
            coord(UNCACHED_CLIENT, q);
        }
    }

    let stop = AtomicBool::new(false);
    let churn_batches = AtomicU64::new(0);
    let stats_before = cluster.cache_stats();
    cluster.farm().fabric().set_inject_latency(true);

    let mut cached_ns = Vec::with_capacity(iters);
    let mut uncached_ns = Vec::with_capacity(iters);
    let mut cached_sum = (0u64, 0u64, 0u64, 0u64); // hits, misses, local, remote
    let mut uncached_sum = (0u64, 0u64, 0u64, 0u64);
    let mut count_answers: Vec<(u64, u64)> = Vec::with_capacity(iters);
    let mut answers_identical = true;

    std::thread::scope(|s| {
        let churn_client = cluster.client();
        let (stop_ref, batches_ref, spec_ref) = (&stop, &churn_batches, &spec);
        s.spawn(move || {
            let mut salt = 1u64;
            while !stop_ref.load(Ordering::Relaxed) {
                let i = (salt as usize) % spec_ref.hubs;
                churn_client
                    .apply_batch_at(MachineId(0), &[hub_upsert(i, spec_ref, salt)])
                    .expect("churn upsert");
                batches_ref.fetch_add(1, Ordering::Relaxed);
                salt += 1;
                // A steady rewrite trickle, not a saturating write storm:
                // the suite measures read-path savings under live
                // invalidation, and an unthrottled loop would spend the
                // whole run holding hub header locks (both sides of the
                // A/B just measure lock-wait spin then) and re-invalidate
                // most of the hot set within every single query.
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
        });

        for _ in 0..iters {
            let t0 = Instant::now();
            let c = coord(CACHED_CLIENT, &count_q);
            cached_ns.push(t0.elapsed().as_nanos() as u64);
            let t0 = Instant::now();
            let u = coord(UNCACHED_CLIENT, &count_q);
            uncached_ns.push(t0.elapsed().as_nanos() as u64);
            for (sum, o) in [(&mut cached_sum, &c), (&mut uncached_sum, &u)] {
                sum.0 += o.metrics.cache_hits;
                sum.1 += o.metrics.cache_misses;
                sum.2 += o.metrics.local_reads;
                sum.3 += o.metrics.remote_reads;
            }
            count_answers.push((c.count.unwrap_or(0), u.count.unwrap_or(0)));

            // Byte-identity under churn: same committed state, same rows.
            let cr = coord(CACHED_CLIENT, &rows_q);
            let ur = coord(UNCACHED_CLIENT, &rows_q);
            if sorted_rows(&cr.rows) != sorted_rows(&ur.rows) {
                answers_identical = false;
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    cluster.farm().fabric().set_inject_latency(false);
    let stats = cluster.cache_stats();
    let expected = spec.hubs as u64;
    for (c, u) in &count_answers {
        assert_eq!(*c, expected, "cached count drifted");
        assert_eq!(*u, expected, "uncached count drifted");
    }

    cached_ns.sort_unstable();
    uncached_ns.sort_unstable();
    let mk = |mode: &str, ns: &[u64], sums: (u64, u64, u64, u64)| {
        let avg = ns.iter().sum::<u64>() / ns.len() as u64;
        CacheBenchResult {
            mode: mode.to_string(),
            machines: cluster.farm().fabric().num_machines(),
            iters,
            p50_ns: percentile(ns, 50),
            p99_ns: percentile(ns, 99),
            avg_ns: avg,
            throughput_qps: 1e9 / avg as f64,
            cache_hits: sums.0,
            cache_misses: sums.1,
            local_read_fraction: sums.2 as f64 / (sums.2 + sums.3).max(1) as f64,
            result: expected,
        }
    };
    let results = vec![
        mk("cached", &cached_ns, cached_sum),
        mk("uncached", &uncached_ns, uncached_sum),
    ];
    let measured_hits = stats.hits - stats_before.hits;
    let measured_misses = stats.misses - stats_before.misses;
    CacheSuite {
        speedup: results[1].p50_ns as f64 / results[0].p50_ns as f64,
        hit_rate: measured_hits as f64 / (measured_hits + measured_misses).max(1) as f64,
        evictions: stats.evictions,
        answers_identical,
        churn_batches: churn_batches.load(Ordering::Relaxed),
        results,
    }
}

/// Serialize for the CI artifact / committed `BENCH_<n>.json` (the `cache`
/// section of the `a1-bench-v6` schema).
pub fn cache_suite_to_json(suite: &CacheSuite) -> Json {
    Json::obj(vec![
        ("speedup", Json::Num(suite.speedup)),
        ("hit_rate", Json::Num(suite.hit_rate)),
        ("evictions", Json::Num(suite.evictions as f64)),
        ("answers_identical", Json::Bool(suite.answers_identical)),
        ("churn_batches", Json::Num(suite.churn_batches as f64)),
        (
            "results",
            Json::Arr(
                suite
                    .results
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("mode", Json::str(&r.mode)),
                            ("machines", Json::Num(r.machines as f64)),
                            ("iters", Json::Num(r.iters as f64)),
                            ("p50_latency_ns", Json::Num(r.p50_ns as f64)),
                            ("p99_latency_ns", Json::Num(r.p99_ns as f64)),
                            ("avg_latency_ns", Json::Num(r.avg_ns as f64)),
                            ("throughput_qps", Json::Num(r.throughput_qps)),
                            ("cache_hits", Json::Num(r.cache_hits as f64)),
                            ("cache_misses", Json::Num(r.cache_misses as f64)),
                            ("local_read_fraction", Json::Num(r.local_read_fraction)),
                            ("result", Json::Num(r.result as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Human-readable report (the `cache` experiments target).
pub fn cache_report(quick: bool) -> String {
    let suite = run_cache_suite(quick);
    let mut out = String::new();
    writeln!(
        out,
        "== hot-vertex read cache vs bypass (one cluster, two clients, churn running) =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>10} {:>10} {:>10} {:>9} {:>8} {:>8} {:>7}",
        "mode", "p50 ms", "p99 ms", "avg ms", "qps", "hits", "misses", "local"
    )
    .unwrap();
    for r in &suite.results {
        writeln!(
            out,
            "{:<10} {:>10.2} {:>10.2} {:>10.2} {:>9.1} {:>8} {:>8} {:>6.0}%",
            r.mode,
            r.p50_ns as f64 / 1e6,
            r.p99_ns as f64 / 1e6,
            r.avg_ns as f64 / 1e6,
            r.throughput_qps,
            r.cache_hits,
            r.cache_misses,
            r.local_read_fraction * 100.0,
        )
        .unwrap();
    }
    writeln!(
        out,
        "speedup (uncached p50 / cached p50): {:.2}x  hit rate {:.0}%  churn batches {}  answers identical: {}",
        suite.speedup,
        suite.hit_rate * 100.0,
        suite.churn_batches,
        suite.answers_identical,
    )
    .unwrap();
    writeln!(
        out,
        "(every hit replaces a remote header+payload read pair with one 32-byte version probe)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_cache_suite_clears_gates() {
        let suite = run_cache_suite(true);
        // The acceptance gates the CI cache-effectiveness job re-checks:
        // ≥2x p50 speedup on the hub-skewed repeated-read workload…
        assert!(
            suite.speedup >= 2.0,
            "speedup {:.2}x below the 2x floor",
            suite.speedup
        );
        // …a real hit rate despite churn invalidating entries…
        assert!(
            suite.hit_rate >= 0.5,
            "hit rate {:.2} below 0.5",
            suite.hit_rate
        );
        // …and byte-identical answers between the cached and bypass
        // clients while ingest rewrote the hot set throughout.
        assert!(suite.answers_identical, "cached answers diverged");
        assert!(suite.churn_batches > 0, "churn thread never committed");
        // The cached client really was served from the cache and reported
        // it through per-query metrics.
        let cached = &suite.results[0];
        let uncached = &suite.results[1];
        assert!(cached.cache_hits > 0, "no hits recorded");
        assert_eq!(
            uncached.cache_hits + uncached.cache_misses,
            0,
            "bypass client touched the cache"
        );
        assert!(
            cached.local_read_fraction > uncached.local_read_fraction,
            "hits did not raise the local-read fraction ({} vs {})",
            cached.local_read_fraction,
            uncached.local_read_fraction
        );
        // JSON round-trips through the vendored parser.
        let j = cache_suite_to_json(&suite);
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(parsed.get("results").unwrap().as_arr().unwrap().len(), 2);
    }
}
