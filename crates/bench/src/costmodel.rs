//! From measured query execution to service-time demands.
//!
//! The latency/throughput figures (10, 12–14) are queueing phenomena. We
//! refuse to invent the workload: the per-hop, per-machine demands come from
//! *instrumented real executions* of the actual engine
//! ([`a1_core::query::exec::HopStats`]); this module only attaches a cost
//! model (microseconds per local read, remote read, per-vertex CPU, RPC) so
//! the discrete-event simulator can replay thousands of instances under an
//! arrival process. See DESIGN.md ("DES is trace-driven").

use a1_core::query::exec::{HopStats, QueryOutcome};

/// Cost constants, loosely calibrated to the paper's hardware (§6: 17 µs
/// average RDMA read under load, 2.4 GHz Xeons).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Local memory object read (+ cache effects).
    pub local_read_us: f64,
    /// One-sided RDMA read, in-rack/oversubscribed mix (paper avg, Fig. 11).
    pub remote_read_us: f64,
    /// Per-vertex operator CPU (predicate eval, dispatch, serialization).
    pub cpu_per_vertex_us: f64,
    /// One-way RPC network latency (ship or reply).
    pub rpc_net_us: f64,
    /// Fixed coordinator work per query (parse, plan, index lookup).
    pub coord_base_us: f64,
    /// Coordinator aggregation per returned vertex/row (dedup, repartition).
    pub agg_per_vertex_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            local_read_us: 0.2,
            remote_read_us: 17.0,
            cpu_per_vertex_us: 1.5,
            rpc_net_us: 15.0,
            coord_base_us: 60.0,
            agg_per_vertex_us: 1.0,
        }
    }
}

/// One hop's demands.
#[derive(Debug, Clone)]
pub struct HopDemand {
    /// Worker-side service time, split across `spread` machines.
    pub worker_total_us: f64,
    /// How many machines the hop's batches land on (0 = unshipped: all work
    /// runs at the coordinator, remote reads included).
    pub spread: usize,
    /// Coordinator-side aggregation after the hop.
    pub coord_us: f64,
    /// Vertices read in this hop (throughput accounting).
    pub vertices: u64,
}

/// A replayable query profile.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    pub name: String,
    pub coord_base_us: f64,
    pub hops: Vec<HopDemand>,
    pub rpc_net_us: f64,
    /// Total vertices a single execution reads (the paper's Q4 metric).
    pub vertices_per_query: u64,
}

impl QueryProfile {
    /// Derive a profile from a measured execution.
    pub fn from_outcome(name: &str, outcome: &QueryOutcome, cost: &CostModel) -> QueryProfile {
        let hops = outcome
            .per_hop
            .iter()
            .map(|h| Self::hop_demand(h, cost))
            .collect::<Vec<_>>();
        QueryProfile {
            name: name.to_string(),
            coord_base_us: cost.coord_base_us,
            hops,
            rpc_net_us: cost.rpc_net_us,
            vertices_per_query: outcome.metrics.vertices_read,
        }
    }

    fn hop_demand(h: &HopStats, cost: &CostModel) -> HopDemand {
        let work = h.local_reads as f64 * cost.local_read_us
            + h.remote_reads as f64 * cost.remote_read_us
            + h.vertices_read as f64 * cost.cpu_per_vertex_us;
        HopDemand {
            worker_total_us: work,
            spread: h.rpcs as usize, // 0 = coordinator executed it inline
            coord_us: h.returned as f64 * cost.agg_per_vertex_us,
            vertices: h.vertices_read,
        }
    }

    /// Closed-form single-query latency at an idle cluster: the sum of hop
    /// critical paths. Used for the §5 baseline comparison and as the DES
    /// low-load sanity anchor.
    pub fn unloaded_latency_us(&self) -> f64 {
        let mut total = self.coord_base_us;
        for hop in &self.hops {
            if hop.spread == 0 {
                total += hop.worker_total_us + hop.coord_us;
            } else {
                total +=
                    2.0 * self.rpc_net_us + hop.worker_total_us / hop.spread as f64 + hop.coord_us;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(lr: u64, rr: u64, v: u64, rpcs: u64, ret: u64) -> HopStats {
        HopStats {
            frontier: v,
            machines: rpcs.max(1),
            rpcs,
            vertices_read: v,
            edges_visited: 0,
            local_reads: lr,
            remote_reads: rr,
            returned: ret,
            ..HopStats::default()
        }
    }

    #[test]
    fn demand_derivation() {
        let cost = CostModel::default();
        let outcome = QueryOutcome {
            rows: vec![],
            count: Some(2),
            metrics: a1_core::QueryMetrics {
                vertices_read: 100,
                ..Default::default()
            },
            continuation: None,
            per_hop: vec![hop(90, 10, 100, 4, 50)],
        };
        let p = QueryProfile::from_outcome("t", &outcome, &cost);
        assert_eq!(p.hops.len(), 1);
        let d = &p.hops[0];
        // 90 local × 0.2 + 10 remote × 17 + 100 × 1.5 = 338.
        assert!((d.worker_total_us - 338.0).abs() < 1e-9);
        assert_eq!(d.spread, 4);
        assert!((d.coord_us - 50.0).abs() < 1e-9);
        assert_eq!(p.vertices_per_query, 100);
    }

    #[test]
    fn unloaded_latency_shipped_vs_not() {
        let cost = CostModel::default();
        let mk = |rpcs: u64| QueryOutcome {
            rows: vec![],
            count: None,
            metrics: Default::default(),
            continuation: None,
            per_hop: vec![hop(0, 100, 100, rpcs, 10)],
        };
        let shipped = QueryProfile::from_outcome("s", &mk(10), &cost);
        let unshipped = QueryProfile::from_outcome("u", &mk(0), &cost);
        // Shipping divides worker time by the spread.
        assert!(shipped.unloaded_latency_us() < unshipped.unloaded_latency_us());
    }
}
