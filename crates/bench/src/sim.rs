//! Deterministic-simulation suite: runs the a1-sim scenario catalog from
//! the experiments binary, for CI and the `--json` artifact.
//!
//! Three entry points:
//!
//! * [`run_sim_suite`] — the fixed-seed block CI runs on every push: every
//!   catalog scenario at a small set of pinned seeds, each run **twice** to
//!   prove byte-identical replay (the harness's core promise).
//! * [`run_one`] — replay a single `(scenario, seed)`; this is the target
//!   of the repro command every failure prints.
//! * [`run_sweep`] — the randomized N-seed sweep (a scheduled CI job runs
//!   1000+); failures print their exact reproduction commands.

use a1_core::Json;
use a1_sim::{by_name, catalog, run_scenario, sweep, SimVerdict};

/// Fixed seeds for the per-push CI block: small, stable, and spread enough
/// that seeded fault choices (victim machine, jump step) vary.
pub const FIXED_SEEDS: [u64; 3] = [1, 42, 20_260_808];

pub struct SimScenarioResult {
    pub scenario: String,
    pub seeds: usize,
    pub failures: usize,
    /// Per-seed trace hashes (first run). Stable across hosts and runs.
    pub trace_hashes: Vec<u64>,
    /// Every seed's second run produced a byte-identical trace and verdict.
    pub replay_identical: bool,
}

pub struct SimSuiteResults {
    pub results: Vec<SimScenarioResult>,
    pub failures: Vec<SimVerdict>,
}

impl SimSuiteResults {
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }

    pub fn replay_identical(&self) -> bool {
        self.results.iter().all(|r| r.replay_identical)
    }
}

/// The fixed-seed scenario block plus the replayability double-run.
pub fn run_sim_suite(quick: bool) -> SimSuiteResults {
    let seeds: &[u64] = if quick {
        &FIXED_SEEDS[..2]
    } else {
        &FIXED_SEEDS
    };
    let mut results = Vec::new();
    let mut failures = Vec::new();
    for scenario in catalog() {
        let mut hashes = Vec::new();
        let mut replay_identical = true;
        let mut scenario_failures = 0;
        for &seed in seeds {
            let first = run_scenario(scenario.as_ref(), seed);
            let second = run_scenario(scenario.as_ref(), seed);
            if first.trace_hash != second.trace_hash || first.oracles != second.oracles {
                replay_identical = false;
            }
            hashes.push(first.trace_hash);
            if !first.passed {
                scenario_failures += 1;
                failures.push(first);
            }
        }
        results.push(SimScenarioResult {
            scenario: scenario.name().to_string(),
            seeds: seeds.len(),
            failures: scenario_failures,
            trace_hashes: hashes,
            replay_identical,
        });
    }
    SimSuiteResults { results, failures }
}

/// Replay one `(scenario, seed)` and print the full oracle report + trace
/// fingerprint. Returns false for unknown scenarios or failed oracles.
pub fn run_one(name: &str, seed: u64) -> bool {
    let Some(scenario) = by_name(name) else {
        eprintln!(
            "unknown scenario '{name}'. Catalog: {}",
            catalog()
                .iter()
                .map(|s| s.name().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return false;
    };
    let verdict = run_scenario(scenario.as_ref(), seed);
    println!(
        "{} seed={} {} trace_hash={:016x} events={}",
        verdict.scenario,
        verdict.seed,
        if verdict.passed { "PASS" } else { "FAIL" },
        verdict.trace_hash,
        verdict.events
    );
    for o in &verdict.oracles {
        println!(
            "  [{}] {}: {}",
            if o.ok { "ok" } else { "FAIL" },
            o.name,
            o.detail
        );
    }
    if !verdict.passed {
        println!("repro: {}", verdict.repro_command());
    }
    verdict.passed
}

/// Randomized sweep: every scenario over `seeds` seeds starting at `seed0`.
/// Prints progress and, for every failure, the exact repro command.
pub fn run_sweep(seed0: u64, seeds: u64) -> bool {
    let per_scenario = catalog().len() as u64;
    let total = per_scenario * seeds;
    let mut done = 0u64;
    let report = sweep(seed0, seeds, |v| {
        done += 1;
        if !v.passed {
            println!("FAIL {} seed={}", v.scenario, v.seed);
            for o in v.oracles.iter().filter(|o| !o.ok) {
                println!("  {}: {}", o.name, o.detail);
            }
            println!("  repro: {}", v.repro_command());
        } else if done.is_multiple_of(500) {
            println!("... {done}/{total} runs green");
        }
    });
    println!(
        "sim sweep: {} runs over seeds {}..{} — {} failures",
        report.runs,
        seed0,
        seed0 + seeds,
        report.failures.len()
    );
    report.passed()
}

/// Human-readable fixed-seed report (the `sim` target without flags).
pub fn sim_report(quick: bool) -> String {
    let suite = run_sim_suite(quick);
    let mut out = String::from(
        "Deterministic simulation (fixed-seed block, every run twice for replay)\n\
         scenario                          seeds  failures  replay  trace hashes\n",
    );
    for r in &suite.results {
        out.push_str(&format!(
            "{:<33} {:>5} {:>9}  {:>6}  {}\n",
            r.scenario,
            r.seeds,
            r.failures,
            if r.replay_identical {
                "exact"
            } else {
                "DIVERGED"
            },
            r.trace_hashes
                .iter()
                .map(|h| format!("{h:016x}"))
                .collect::<Vec<_>>()
                .join(" ")
        ));
    }
    for f in &suite.failures {
        out.push_str(&format!("repro: {}\n", f.repro_command()));
    }
    out.push_str(&format!(
        "verdict: {}\n",
        if suite.all_passed() && suite.replay_identical() {
            "all scenarios green, replay byte-identical"
        } else {
            "FAILURES above"
        }
    ));
    out
}

/// The `sim` section of the `--json` artifact (`a1-bench-v7`).
pub fn sim_suite_to_json(suite: &SimSuiteResults) -> Json {
    Json::Obj(vec![
        ("all_passed".to_string(), Json::Bool(suite.all_passed())),
        (
            "replay_identical".to_string(),
            Json::Bool(suite.replay_identical()),
        ),
        (
            "results".to_string(),
            Json::Arr(
                suite
                    .results
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("scenario".to_string(), Json::str(&r.scenario)),
                            ("seeds".to_string(), Json::Num(r.seeds as f64)),
                            ("failures".to_string(), Json::Num(r.failures as f64)),
                            (
                                "trace_hashes".to_string(),
                                Json::Arr(
                                    r.trace_hashes
                                        .iter()
                                        .map(|h| Json::str(&format!("{h:016x}")))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_is_green_and_replayable() {
        let suite = run_sim_suite(true);
        assert!(suite.all_passed(), "failures: {:?}", suite.failures.len());
        assert!(suite.replay_identical());
        assert!(suite.results.len() >= 6);
        let json = sim_suite_to_json(&suite);
        assert_eq!(json.get("all_passed"), Some(&Json::Bool(true)));
    }
}
