//! Open-loop discrete-event simulation of query latency vs offered load.
//!
//! Machines are multi-server FIFO queues (`threads` servers each — FaRM's
//! pinned thread model, §2.2). A query is an alternating sequence of
//! coordinator stages and fan-out worker stages (Fig. 9), with demands from
//! a measured [`QueryProfile`]. Arrivals are Poisson at the configured QPS,
//! coordinators chosen uniformly (the paper's random frontend routing). The
//! output is the avg/P50/P99 latency and achieved throughput — the axes of
//! Figures 10, 12, 13 and 14.

use crate::costmodel::QueryProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

#[derive(Debug, Clone)]
pub struct DesConfig {
    pub machines: usize,
    pub threads_per_machine: usize,
    /// Offered load (queries per second).
    pub qps: f64,
    /// Simulated seconds (after warmup).
    pub duration_s: f64,
    pub warmup_s: f64,
    pub seed: u64,
}

impl Default for DesConfig {
    fn default() -> Self {
        DesConfig {
            machines: 245,
            threads_per_machine: 4,
            qps: 2000.0,
            duration_s: 2.0,
            warmup_s: 0.5,
            seed: 7,
        }
    }
}

/// Simulation output.
#[derive(Debug, Clone)]
pub struct DesResult {
    pub offered_qps: f64,
    pub completed: usize,
    pub achieved_qps: f64,
    pub avg_ms: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    /// Cluster-wide vertex reads per second (the paper's Q4 headline).
    pub vertex_reads_per_s: f64,
    /// Mean server utilization in [0, 1].
    pub utilization: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Task {
    /// Coordinator stage `hop` for query `q` (hop = 0 is the base stage).
    Coord { q: usize, stage: usize },
    /// One worker batch of query `q`'s hop `stage`.
    Worker { q: usize, stage: usize },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    Arrival(usize),
    Done {
        machine: usize,
        task: Task,
    },
    /// Network delivery: enqueue `task` at `machine` with service `us`.
    Deliver {
        machine: usize,
        task: Task,
        us: f64,
    },
}

struct QueryState {
    arrival_us: f64,
    coordinator: usize,
    /// Next hop index to launch.
    next_hop: usize,
    /// Outstanding worker batches in the current hop.
    outstanding: usize,
    done: bool,
}

struct Machine {
    busy: usize,
    queue: VecDeque<(Task, f64)>,
    busy_us: f64,
}

/// Run the simulation for one (profile, load) point.
pub fn simulate(profile: &QueryProfile, cfg: &DesConfig) -> DesResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let total_us = (cfg.warmup_s + cfg.duration_s) * 1e6;
    let mut machines: Vec<Machine> = (0..cfg.machines)
        .map(|_| Machine {
            busy: 0,
            queue: VecDeque::new(),
            busy_us: 0.0,
        })
        .collect();
    let mut queries: Vec<QueryState> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut completed_in_window = 0usize;
    let mut vertices_in_window = 0u64;

    // Event heap keyed by time (ns-resolution integer to keep Ord).
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut events: Vec<Event> = Vec::new();
    let push = |heap: &mut BinaryHeap<Reverse<(u64, usize)>>,
                events: &mut Vec<Event>,
                t_us: f64,
                e: Event| {
        let idx = events.len();
        events.push(e);
        heap.push(Reverse(((t_us * 1000.0) as u64, idx)));
    };

    // Seed the arrival process.
    let mut t_arrival = 0.0f64;
    let inter = 1e6 / cfg.qps;
    t_arrival += -inter * (1.0 - rng.gen::<f64>()).ln();
    push(&mut heap, &mut events, t_arrival, Event::Arrival(0));

    // Service times carry multiplicative jitter (mean 1): cache misses,
    // degree skew, allocator variance. This produces the avg-vs-P99 spread
    // the paper plots.
    let mut jitter_rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED);
    let mut service = move |task: &Task, profile: &QueryProfile| -> f64 {
        let base = match task {
            Task::Coord { stage: 0, .. } => profile.coord_base_us,
            Task::Coord { stage, .. } => profile.hops[stage - 1].coord_us.max(0.1),
            Task::Worker { stage, .. } => {
                let hop = &profile.hops[*stage];
                let spread = hop.spread.max(1) as f64;
                (hop.worker_total_us / spread).max(0.1)
            }
        };
        // 0.5 + Exp(mean 0.5): mean 1.0, long right tail.
        let e: f64 = -(1.0f64 - jitter_rng.gen::<f64>()).ln() * 0.5;
        base * (0.5 + e)
    };

    while let Some(Reverse((t_ns, idx))) = heap.pop() {
        let now = t_ns as f64 / 1000.0;
        if now > total_us + 2e6 {
            break; // drain cap
        }
        let event = events[idx];
        match event {
            Event::Arrival(_) => {
                if now <= total_us {
                    // Admit this query.
                    let q = queries.len();
                    let coordinator = rng.gen_range(0..cfg.machines);
                    queries.push(QueryState {
                        arrival_us: now,
                        coordinator,
                        next_hop: 0,
                        outstanding: 0,
                        done: false,
                    });
                    let task = Task::Coord { q, stage: 0 };
                    push(
                        &mut heap,
                        &mut events,
                        now,
                        Event::Deliver {
                            machine: coordinator,
                            task,
                            us: service(&task, profile),
                        },
                    );
                    // Schedule the next arrival.
                    let dt = -inter * (1.0 - rng.gen::<f64>()).ln();
                    push(&mut heap, &mut events, now + dt, Event::Arrival(0));
                }
            }
            Event::Deliver { machine, task, us } => {
                let m = &mut machines[machine];
                if m.busy < cfg.threads_per_machine {
                    m.busy += 1;
                    m.busy_us += us;
                    push(
                        &mut heap,
                        &mut events,
                        now + us,
                        Event::Done { machine, task },
                    );
                } else {
                    m.queue.push_back((task, us));
                }
            }
            Event::Done { machine, task } => {
                // Free the server, start the next queued task.
                {
                    let m = &mut machines[machine];
                    if let Some((next_task, us)) = m.queue.pop_front() {
                        m.busy_us += us;
                        push(
                            &mut heap,
                            &mut events,
                            now + us,
                            Event::Done {
                                machine,
                                task: next_task,
                            },
                        );
                    } else {
                        m.busy -= 1;
                    }
                }
                // Advance the query's state machine.
                match task {
                    Task::Coord { q, stage } => {
                        let hop_idx = stage; // coord stage N precedes hop N
                        if hop_idx >= profile.hops.len() {
                            // Query complete.
                            let qs = &mut queries[q];
                            if !qs.done {
                                qs.done = true;
                                let latency = now - qs.arrival_us;
                                if qs.arrival_us >= cfg.warmup_s * 1e6 && qs.arrival_us <= total_us
                                {
                                    latencies.push(latency);
                                    completed_in_window += 1;
                                    vertices_in_window += profile.vertices_per_query;
                                }
                            }
                            continue;
                        }
                        let hop = &profile.hops[hop_idx];
                        let coordinator = queries[q].coordinator;
                        if hop.spread == 0 {
                            // Unshipped hop: runs at the coordinator.
                            let t = Task::Worker { q, stage: hop_idx };
                            queries[q].outstanding = 1;
                            queries[q].next_hop = hop_idx + 1;
                            push(
                                &mut heap,
                                &mut events,
                                now,
                                Event::Deliver {
                                    machine: coordinator,
                                    task: t,
                                    us: service(&t, profile),
                                },
                            );
                        } else {
                            queries[q].outstanding = hop.spread;
                            queries[q].next_hop = hop_idx + 1;
                            for _ in 0..hop.spread {
                                let worker = rng.gen_range(0..cfg.machines);
                                let t = Task::Worker { q, stage: hop_idx };
                                // One-way ship latency before service.
                                push(
                                    &mut heap,
                                    &mut events,
                                    now + profile.rpc_net_us,
                                    Event::Deliver {
                                        machine: worker,
                                        task: t,
                                        us: service(&t, profile),
                                    },
                                );
                            }
                        }
                    }
                    Task::Worker { q, stage } => {
                        let qs = &mut queries[q];
                        qs.outstanding -= 1;
                        if qs.outstanding == 0 {
                            // Barrier done → coordinator aggregation stage.
                            let hop = &profile.hops[stage];
                            let reply_net = if hop.spread == 0 {
                                0.0
                            } else {
                                profile.rpc_net_us
                            };
                            let t = Task::Coord {
                                q,
                                stage: stage + 1,
                            };
                            let coordinator = qs.coordinator;
                            push(
                                &mut heap,
                                &mut events,
                                now + reply_net,
                                Event::Deliver {
                                    machine: coordinator,
                                    task: t,
                                    us: service(&t, profile),
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    latencies.sort_by(|a, b| a.total_cmp(b));
    let n = latencies.len().max(1);
    let pct = |p: f64| {
        latencies
            .get(((n as f64 * p) as usize).min(n - 1))
            .copied()
            .unwrap_or(0.0)
    };
    let avg = latencies.iter().sum::<f64>() / n as f64;
    let busy_total: f64 = machines.iter().map(|m| m.busy_us).sum();
    DesResult {
        offered_qps: cfg.qps,
        completed: completed_in_window,
        achieved_qps: completed_in_window as f64 / cfg.duration_s,
        avg_ms: avg / 1000.0,
        p50_ms: pct(0.50) / 1000.0,
        p99_ms: pct(0.99) / 1000.0,
        vertex_reads_per_s: vertices_in_window as f64 / cfg.duration_s,
        utilization: busy_total / ((cfg.machines * cfg.threads_per_machine) as f64 * total_us),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::HopDemand;

    fn profile() -> QueryProfile {
        QueryProfile {
            name: "t".into(),
            coord_base_us: 50.0,
            hops: vec![
                HopDemand {
                    worker_total_us: 200.0,
                    spread: 4,
                    coord_us: 20.0,
                    vertices: 50,
                },
                HopDemand {
                    worker_total_us: 2000.0,
                    spread: 20,
                    coord_us: 400.0,
                    vertices: 1600,
                },
            ],
            rpc_net_us: 15.0,
            vertices_per_query: 1650,
        }
    }

    #[test]
    fn low_load_latency_near_unloaded() {
        let p = profile();
        let cfg = DesConfig {
            machines: 50,
            qps: 100.0,
            duration_s: 1.0,
            ..Default::default()
        };
        let r = simulate(&p, &cfg);
        assert!(r.completed > 40, "completed {}", r.completed);
        let unloaded_ms = p.unloaded_latency_us() / 1000.0;
        assert!(
            r.avg_ms < unloaded_ms * 3.0,
            "low-load avg {} should be near unloaded {}",
            r.avg_ms,
            unloaded_ms
        );
        assert!(r.utilization < 0.2);
    }

    #[test]
    fn latency_rises_with_load() {
        let p = profile();
        let lo = simulate(
            &p,
            &DesConfig {
                machines: 20,
                qps: 500.0,
                duration_s: 1.0,
                ..Default::default()
            },
        );
        let hi = simulate(
            &p,
            &DesConfig {
                machines: 20,
                qps: 20_000.0,
                duration_s: 1.0,
                ..Default::default()
            },
        );
        assert!(
            hi.p99_ms > lo.p99_ms,
            "p99 must rise with load: {} vs {}",
            hi.p99_ms,
            lo.p99_ms
        );
        assert!(hi.utilization > lo.utilization);
    }

    #[test]
    fn bigger_cluster_more_capacity() {
        let p = profile();
        let small = simulate(
            &p,
            &DesConfig {
                machines: 10,
                qps: 8000.0,
                duration_s: 1.0,
                ..Default::default()
            },
        );
        let big = simulate(
            &p,
            &DesConfig {
                machines: 55,
                qps: 8000.0,
                duration_s: 1.0,
                ..Default::default()
            },
        );
        assert!(
            big.p99_ms <= small.p99_ms,
            "55 machines should beat 10 at the same load: {} vs {}",
            big.p99_ms,
            small.p99_ms
        );
        // Throughput accounting.
        assert!(big.vertex_reads_per_s > 0.0);
    }

    #[test]
    fn deterministic_with_seed() {
        let p = profile();
        let cfg = DesConfig {
            machines: 10,
            qps: 1000.0,
            duration_s: 0.5,
            ..Default::default()
        };
        let a = simulate(&p, &cfg);
        let b = simulate(&p, &cfg);
        assert_eq!(a.completed, b.completed);
        assert!((a.avg_ms - b.avg_ms).abs() < 1e-9);
    }
}
