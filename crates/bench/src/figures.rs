//! Runners that regenerate every table and figure of the paper's evaluation
//! (§6). Each returns a formatted text block; the `experiments` binary
//! prints them, and EXPERIMENTS.md records paper-vs-measured values.

use crate::costmodel::{CostModel, QueryProfile};
use crate::des::{simulate, DesConfig};
use crate::workload::{
    KnowledgeGraph, KnowledgeGraphSpec, UniformGraphSpec, ENTITY_SCHEMA, GRAPH, TENANT,
};
use a1_baseline::{TwoTierConfig, TwoTierGraph};
use a1_core::{A1Cluster, A1Config, Json, MachineId};
use a1_farm::{FarmCluster, FarmConfig, Hint, Ptr, TxnMode};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn kg_cluster_config() -> A1Config {
    // 8 simulated machines: enough spread for shipping to matter, small
    // enough to load quickly.
    A1Config::small(8)
}

/// Measure a query through the coordinator directly (per-hop stats needed
/// for the DES profiles).
fn measure(kg: &KnowledgeGraph, name: &str, text: &str) -> (QueryProfile, a1_core::QueryOutcome) {
    let inner = kg.cluster.inner();
    let outcome = inner
        .coordinate_query(MachineId(0), TENANT, GRAPH, text)
        .expect("query");
    let profile = QueryProfile::from_outcome(name, &outcome, &CostModel::default());
    (profile, outcome)
}

/// Table 2 + §6 query footprints: run Q1–Q4 and report what they touch.
pub fn table2() -> String {
    let kg = KnowledgeGraph::load(kg_cluster_config(), KnowledgeGraphSpec::default());
    let mut out = String::new();
    writeln!(
        out,
        "== Table 2: evaluation queries (measured on the synthetic KG) =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<4} {:>8} {:>10} {:>9} {:>9} {:>8} {:>7} {:>7}",
        "Q", "result", "vertices", "edges", "objects", "local%", "rpcs", "hops"
    )
    .unwrap();
    for (name, text) in [
        ("Q1", kg.q1()),
        ("Q2", kg.q2()),
        ("Q3", kg.q3()),
        ("Q4", kg.q4()),
    ] {
        let (_, o) = measure(&kg, name, &text);
        let result = o
            .count
            .map(|c| c.to_string())
            .unwrap_or_else(|| format!("{} rows", o.rows.len()));
        writeln!(
            out,
            "{:<4} {:>8} {:>10} {:>9} {:>9} {:>7.1}% {:>7} {:>7}",
            name,
            result,
            o.metrics.vertices_read,
            o.metrics.edges_visited,
            o.metrics.objects_read(),
            o.metrics.local_read_fraction() * 100.0,
            o.metrics.rpcs,
            o.metrics.hops,
        )
        .unwrap();
    }
    writeln!(
        out,
        "(paper Q1 footprint: 49 + 1639 vertices, 1785 edges, 3443 objects, ≥95% local)"
    )
    .unwrap();
    out
}

/// Figures 10/12/13: avg & P99 latency vs offered QPS at paper cluster size.
pub fn latency_vs_throughput(which: &str) -> String {
    let kg = KnowledgeGraph::load(kg_cluster_config(), KnowledgeGraphSpec::default());
    let (name, text, paper_note) = match which {
        "fig10" => (
            "Q1",
            kg.q1(),
            "paper: ~8 ms avg / 14 ms P99 at 20k qps, tight spread",
        ),
        "fig12" => (
            "Q2",
            kg.q2(),
            "paper: low-ms avg, rising P99 near saturation (log scale)",
        ),
        "fig13" => ("Q3", kg.q3(), "paper: <10 ms avg up to 20k qps"),
        _ => panic!("unknown figure"),
    };
    let (profile, outcome) = measure(&kg, name, &text);
    let mut out = String::new();
    writeln!(
        out,
        "== {which}: {name} latency vs throughput (DES over measured profile; 245 machines) =="
    )
    .unwrap();
    writeln!(
        out,
        "profile: {} vertices/query, unloaded latency {:.2} ms, result={:?}",
        outcome.metrics.vertices_read,
        profile.unloaded_latency_us() / 1000.0,
        outcome.count
    )
    .unwrap();
    writeln!(
        out,
        "{:>10} {:>10} {:>10} {:>10} {:>8}",
        "qps", "avg ms", "p50 ms", "p99 ms", "util"
    )
    .unwrap();
    for qps in [2_000.0, 5_000.0, 10_000.0, 20_000.0] {
        let r = simulate(
            &profile,
            &DesConfig {
                qps,
                ..DesConfig::default()
            },
        );
        writeln!(
            out,
            "{:>10} {:>10.2} {:>10.2} {:>10.2} {:>7.1}%",
            qps as u64,
            r.avg_ms,
            r.p50_ms,
            r.p99_ms,
            r.utilization * 100.0
        )
        .unwrap();
    }
    writeln!(out, "({paper_note})").unwrap();
    out
}

/// Figure 11: total RDMA read time vs number of reads (measured on the
/// simulated fabric's latency accounting — the linear trend with ~17 µs per
/// read).
pub fn fig11() -> String {
    let farm = FarmCluster::start(FarmConfig::small(4));
    // Allocate ten remote objects (on machines other than the reader's).
    let ptrs: Vec<Ptr> = (0..10)
        .map(|i| {
            farm.run(MachineId(0), |tx| {
                tx.alloc(220, Hint::Machine(MachineId(1 + (i % 3))), &[7; 220])
            })
            .unwrap()
        })
        .collect();
    let fabric = farm.fabric();
    let mut out = String::new();
    writeln!(
        out,
        "== Figure 11: total RDMA read latency vs number of reads =="
    )
    .unwrap();
    writeln!(out, "{:>7} {:>12}", "reads", "total µs").unwrap();
    for n in 0..=10usize {
        let before = fabric.metrics().snapshot().sim_ns;
        let mut tx = farm.begin_read_only(MachineId(0));
        for ptr in ptrs.iter().take(n) {
            let _ = tx.read(*ptr).unwrap();
        }
        drop(tx);
        let total_ns = fabric.metrics().snapshot().sim_ns - before;
        writeln!(out, "{:>7} {:>12.1}", n, total_ns as f64 / 1000.0).unwrap();
    }
    writeln!(out, "(paper: linear, ≈17 µs average per read)").unwrap();
    out
}

/// §6 Q4 stress: vertex reads/second at high load.
pub fn q4_stress() -> String {
    let kg = KnowledgeGraph::load(kg_cluster_config(), KnowledgeGraphSpec::default());
    let (profile, outcome) = measure(&kg, "Q4", &kg.q4());
    let mut out = String::new();
    writeln!(
        out,
        "== §6 Q4 stress: throughput of vertex reads (DES; 245 machines) =="
    )
    .unwrap();
    writeln!(
        out,
        "profile: {} vertices/query (24,312 at paper scale)",
        outcome.metrics.vertices_read
    )
    .unwrap();
    writeln!(
        out,
        "{:>10} {:>10} {:>10} {:>16} {:>12}",
        "qps", "avg ms", "p99 ms", "vertex reads/s", "per machine"
    )
    .unwrap();
    for qps in [1_000.0, 5_000.0, 15_000.0] {
        let r = simulate(
            &profile,
            &DesConfig {
                qps,
                duration_s: 1.0,
                ..DesConfig::default()
            },
        );
        writeln!(
            out,
            "{:>10} {:>10.2} {:>10.2} {:>16.0} {:>12.0}",
            qps as u64,
            r.avg_ms,
            r.p99_ms,
            r.vertex_reads_per_s,
            r.vertex_reads_per_s / 245.0
        )
        .unwrap();
    }
    writeln!(
        out,
        "(paper: 33 ms at 1k qps; 365M vertex reads/s = 1.49M/machine at 15k qps)"
    )
    .unwrap();
    out
}

/// Figure 14: latency vs throughput for cluster sizes 10/15/35/55.
pub fn fig14(scale_divisor: usize) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== Figure 14: latency vs throughput by cluster size (uniform graph, 1/{scale_divisor} of paper scale) =="
    )
    .unwrap();
    writeln!(
        out,
        "{:>9} {:>10} {:>10} {:>10} {:>10}",
        "machines", "qps", "avg ms", "p99 ms", "util"
    )
    .unwrap();
    for machines in [10u32, 15, 35, 55] {
        // Real cluster of that size: measure the 2-hop profile.
        let cluster = A1Cluster::start(A1Config::small(machines)).unwrap();
        let spec = UniformGraphSpec::paper_scaled(scale_divisor);
        let starts = spec.load(&cluster);
        let inner = cluster.inner();
        // Average the profile across several starts.
        let mut profiles = Vec::new();
        for s in starts.iter().take(8) {
            let o = inner
                .coordinate_query(
                    MachineId(0),
                    TENANT,
                    GRAPH,
                    &UniformGraphSpec::two_hop_query(s),
                )
                .unwrap();
            profiles.push(QueryProfile::from_outcome(
                "2hop",
                &o,
                &CostModel::default(),
            ));
        }
        let profile = average_profiles(&profiles);
        for qps in [5_000.0, 20_000.0, 80_000.0, 160_000.0, 320_000.0] {
            let r = simulate(
                &profile,
                &DesConfig {
                    machines: machines as usize,
                    qps,
                    duration_s: 1.0,
                    ..DesConfig::default()
                },
            );
            writeln!(
                out,
                "{:>9} {:>10} {:>10.2} {:>10.2} {:>9.1}%",
                machines,
                qps as u64,
                r.avg_ms,
                r.p99_ms,
                r.utilization * 100.0
            )
            .unwrap();
        }
    }
    writeln!(
        out,
        "(paper: flat latency below capacity; usable throughput grows with cluster size)"
    )
    .unwrap();
    out
}

fn average_profiles(profiles: &[QueryProfile]) -> QueryProfile {
    let max_hops = profiles.iter().map(|p| p.hops.len()).max().unwrap_or(0);
    let mut hops = Vec::new();
    for h in 0..max_hops {
        let with = profiles
            .iter()
            .filter_map(|p| p.hops.get(h))
            .collect::<Vec<_>>();
        let n = with.len().max(1) as f64;
        hops.push(crate::costmodel::HopDemand {
            worker_total_us: with.iter().map(|d| d.worker_total_us).sum::<f64>() / n,
            spread: (with.iter().map(|d| d.spread).sum::<usize>() as f64 / n).round() as usize,
            coord_us: with.iter().map(|d| d.coord_us).sum::<f64>() / n,
            vertices: (with.iter().map(|d| d.vertices).sum::<u64>() as f64 / n) as u64,
        });
    }
    QueryProfile {
        name: profiles.first().map(|p| p.name.clone()).unwrap_or_default(),
        coord_base_us: profiles.first().map(|p| p.coord_base_us).unwrap_or(50.0),
        hops,
        rpc_net_us: profiles.first().map(|p| p.rpc_net_us).unwrap_or(15.0),
        vertices_per_query: (profiles.iter().map(|p| p.vertices_per_query).sum::<u64>() as f64
            / profiles.len().max(1) as f64) as u64,
    }
}

/// §6 locality: object reads per query and the local fraction under
/// operator shipping.
pub fn locality() -> String {
    let kg = KnowledgeGraph::load(kg_cluster_config(), KnowledgeGraphSpec::default());
    let (_, o) = measure(&kg, "Q1", &kg.q1());
    let mut out = String::new();
    writeln!(out, "== §6 locality: query shipping effectiveness (Q1) ==").unwrap();
    writeln!(out, "objects read per query: {}", o.metrics.objects_read()).unwrap();
    writeln!(out, "remote objects:         {}", o.metrics.remote_reads).unwrap();
    writeln!(
        out,
        "local read fraction:    {:.1}%",
        o.metrics.local_read_fraction() * 100.0
    )
    .unwrap();
    writeln!(out, "(paper: 3443 objects, 163 remote → 95% local)").unwrap();
    out
}

/// §5 baseline comparison: A1 vs the TAO-style two-tier stack on the same
/// 2-hop query shape (the paper reports a 3.6× average latency win).
pub fn baseline_compare() -> String {
    // A1 side.
    let kg = KnowledgeGraph::load(kg_cluster_config(), KnowledgeGraphSpec::default());
    let (profile, outcome) = measure(&kg, "Q1", &kg.q1());
    let a1_ms = profile.unloaded_latency_us() / 1000.0;

    // Two-tier side, same topology and workload shape.
    let tt = TwoTierGraph::new(TwoTierConfig::default());
    let spec = &kg.spec;
    for f in 0..spec.hub_films {
        tt.object_put(&format!("film{f:04}"), &Json::obj(vec![]));
        tt.assoc_add("director", "film", &format!("film{f:04}"));
    }
    // Mirror the film→actor edges measured in A1 (same counts).
    let mut edges = 0u64;
    'outer: for f in 0..spec.hub_films {
        for a in 0..spec.actors_per_film {
            tt.assoc_add(
                &format!("film{f:04}"),
                "actor",
                &format!(
                    "actor{:05}",
                    (f * spec.actors_per_film + a) % spec.actor_pool
                ),
            );
            edges += 1;
            if edges >= outcome.metrics.edges_visited {
                break 'outer;
            }
        }
    }
    // Warm pass, then the measured pass (cache-hot, the favorable case).
    let _ = tt.two_hop_count("director", "film", "actor");
    let before = tt.sim_us();
    let count = tt.two_hop_count("director", "film", "actor");
    let tt_ms = (tt.sim_us() - before) as f64 / 1000.0;

    let mut out = String::new();
    writeln!(
        out,
        "== §5: A1 vs TAO-style two-tier cache (2-hop query) =="
    )
    .unwrap();
    writeln!(out, "A1 (operator shipping):        {a1_ms:>8.2} ms").unwrap();
    writeln!(
        out,
        "two-tier (client-side, warm):  {tt_ms:>8.2} ms  ({count} results)"
    )
    .unwrap();
    writeln!(
        out,
        "speedup:                        {:>8.1}x",
        tt_ms / a1_ms
    )
    .unwrap();
    writeln!(out, "(paper: A1 improves average serving latency 3.6x)").unwrap();
    out
}

/// §5.2 ablation: FaRMv1 (no MVCC) vs FaRMv2 — abort rate of large
/// read-only queries under concurrent updates. Real execution, no model.
pub fn ablation_mvcc() -> String {
    let run = |mode: TxnMode| -> (u64, u64, u64) {
        let mut cfg = FarmConfig::small(3);
        cfg.mode = mode;
        let farm = FarmCluster::start(cfg);
        // 64 objects, updated continuously by a writer thread.
        let ptrs: Arc<Vec<Ptr>> = Arc::new(
            (0..64)
                .map(|i| {
                    farm.run(MachineId(0), |tx| {
                        tx.alloc(8, Hint::Machine(MachineId(i % 3)), &[0; 8])
                    })
                    .unwrap()
                })
                .collect(),
        );
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let farm = farm.clone();
            let ptrs = ptrs.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let ptr = ptrs[i % ptrs.len()];
                    let _ = farm.run(MachineId(1), |tx| {
                        let buf = tx.read(ptr)?;
                        tx.update(&buf, vec![(i % 256) as u8; 8])
                    });
                    i += 1;
                }
            })
        };
        // 200 "large read-only queries", each reading all 64 objects.
        let mut aborted = 0u64;
        let mut committed = 0u64;
        for _ in 0..200 {
            let mut tx = farm.begin_read_only(MachineId(2));
            let mut ok = true;
            for ptr in ptrs.iter() {
                if tx.read(*ptr).is_err() {
                    ok = false;
                    break;
                }
            }
            match (ok, tx.commit()) {
                (true, Ok(_)) => committed += 1,
                _ => aborted += 1,
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        let risks = farm.stats().opacity_risks.load(Ordering::Relaxed);
        (committed, aborted, risks)
    };

    let (v1_ok, v1_abort, v1_risks) = run(TxnMode::V1Occ);
    let (v2_ok, v2_abort, v2_risks) = run(TxnMode::V2Mvcc);
    let mut out = String::new();
    writeln!(
        out,
        "== §5.2 ablation: opacity + MVCC (200 large read-only queries under churn) =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>10} {:>10} {:>12} {:>16}",
        "mode", "committed", "aborted", "abort rate", "opacity risks"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>10} {:>10} {:>11.1}% {:>16}",
        "FaRMv1",
        v1_ok,
        v1_abort,
        v1_abort as f64 / 2.0,
        v1_risks
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>10} {:>10} {:>11.1}% {:>16}",
        "FaRMv2",
        v2_ok,
        v2_abort,
        v2_abort as f64 / 2.0,
        v2_risks
    )
    .unwrap();
    writeln!(
        out,
        "(paper: v1's OCC aborts large queries frequently; v2's MVCC read-only txns never abort)"
    )
    .unwrap();
    out
}

/// §3.2 ablation: inline edge lists vs the global edge B-tree across the
/// spill threshold. Real measurements of enumeration cost.
pub fn ablation_edges() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== §3.2 ablation: inline edge list vs global edge B-tree =="
    )
    .unwrap();
    writeln!(
        out,
        "{:>8} {:>14} {:>16} {:>14}",
        "degree", "representation", "enum objects", "enum sim µs"
    )
    .unwrap();
    for &degree in &[4usize, 16, 64, 256, 1024, 2048] {
        let cluster = A1Cluster::start(A1Config {
            inline_edge_threshold: 1024,
            ..A1Config::small(3)
        })
        .unwrap();
        let client = cluster.client();
        client.create_tenant(TENANT).unwrap();
        client.create_graph(TENANT, GRAPH).unwrap();
        client
            .create_vertex_type(TENANT, GRAPH, ENTITY_SCHEMA, "id", &[])
            .unwrap();
        client
            .create_edge_type(TENANT, GRAPH, r#"{"name": "has", "fields": []}"#)
            .unwrap();
        client
            .create_vertex(TENANT, GRAPH, "entity", r#"{"id": "hub"}"#)
            .unwrap();
        for i in 0..degree {
            client
                .create_vertex(TENANT, GRAPH, "entity", &format!(r#"{{"id": "l{i:05}"}}"#))
                .unwrap();
            client
                .create_edge(
                    TENANT,
                    GRAPH,
                    "entity",
                    &Json::str("hub"),
                    "has",
                    "entity",
                    &Json::str(&format!("l{i:05}")),
                    None,
                )
                .unwrap();
        }
        let fabric = cluster.farm().fabric();
        let before = fabric.metrics().snapshot();
        let out_q = cluster
            .inner()
            .coordinate_query(
                MachineId(0),
                TENANT,
                GRAPH,
                r#"{"id": "hub", "_out_edge": {"_type": "has",
                        "_vertex": {"_select": ["_count(*)"]}}}"#,
            )
            .unwrap();
        assert_eq!(out_q.count, Some(degree as u64));
        let delta = fabric.metrics().snapshot().delta_since(&before);
        let repr = if degree > 1024 { "B-tree" } else { "inline" };
        writeln!(
            out,
            "{:>8} {:>14} {:>16} {:>14.1}",
            degree,
            repr,
            delta.total_reads(),
            delta.sim_ns as f64 / 1000.0
        )
        .unwrap();
    }
    writeln!(
        out,
        "(paper: inline lists to ~1000 edges — one extra read; spill to B-tree beyond)"
    )
    .unwrap();
    out
}

/// §5.3: fast restart vs full re-replication.
pub fn fast_restart() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== §5.3: fast restart (PyCo) vs reboot re-replication =="
    )
    .unwrap();

    // Fast restart: process crash preserves region memory.
    let farm = FarmCluster::start(FarmConfig::small(3));
    for i in 0..200u32 {
        farm.run(MachineId(0), |tx| {
            tx.alloc(200, Hint::Machine(MachineId(1)), &i.to_le_bytes())
        })
        .unwrap();
    }
    let before = farm.fabric().metrics().snapshot();
    let t0 = std::time::Instant::now();
    farm.crash_process(MachineId(1));
    farm.restart_process(MachineId(1));
    let fast_us = t0.elapsed().as_micros();
    let fast_bytes = farm
        .fabric()
        .metrics()
        .snapshot()
        .delta_since(&before)
        .bytes_read;

    // Reboot: memory gone; CM re-replicates whole regions.
    let farm2 = FarmCluster::start(FarmConfig::small(4));
    for i in 0..200u32 {
        farm2
            .run(MachineId(0), |tx| {
                tx.alloc(200, Hint::Machine(MachineId(1)), &i.to_le_bytes())
            })
            .unwrap();
    }
    let before = farm2.fabric().metrics().snapshot();
    let t0 = std::time::Instant::now();
    farm2.reboot_machine(MachineId(1));
    let reboot_us = t0.elapsed().as_micros();
    let delta = farm2.fabric().metrics().snapshot().delta_since(&before);

    writeln!(
        out,
        "fast restart:  {:>8} µs wall, {:>12} bytes copied",
        fast_us, fast_bytes
    )
    .unwrap();
    writeln!(
        out,
        "reboot:        {:>8} µs wall, {:>12} simulated-ns of re-replication traffic",
        reboot_us, delta.sim_ns
    )
    .unwrap();
    writeln!(
        out,
        "(paper: fast restart cut downtime by an order of magnitude)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_is_linear() {
        let text = fig11();
        assert!(text.contains("reads"));
        // 10 reads should cost roughly 10× one read (±50%).
        let lines: Vec<&str> = text.lines().collect();
        let parse =
            |line: &str| -> f64 { line.split_whitespace().nth(1).unwrap().parse().unwrap() };
        let one = parse(lines[3]); // n=1
        let ten = parse(lines[12]); // n=10
        assert!(ten > one * 5.0 && ten < one * 15.0, "one={one} ten={ten}");
        // Paper's ~17µs per read.
        assert!(one > 4.0 && one < 30.0, "per-read {one}µs");
    }

    #[test]
    fn ablation_mvcc_shows_v1_pathology() {
        let text = ablation_mvcc();
        assert!(text.contains("FaRMv1"));
        // v2 line must show zero aborts.
        let v2_line = text.lines().find(|l| l.starts_with("FaRMv2")).unwrap();
        let aborted: u64 = v2_line.split_whitespace().nth(2).unwrap().parse().unwrap();
        assert_eq!(aborted, 0, "MVCC read-only queries never abort");
    }

    #[test]
    fn locality_exceeds_90_percent() {
        let text = locality();
        let line = text
            .lines()
            .find(|l| l.contains("local read fraction"))
            .unwrap();
        let pct: f64 = line
            .split_whitespace()
            .last()
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(pct >= 90.0, "measured locality {pct}%");
    }
}
