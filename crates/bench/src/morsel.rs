//! The morsel suite: intra-machine (morsel-driven) parallelism A/B,
//! measured wall-clock on a latency-injected 8-machine cluster.
//!
//! PR 2's fan-out parallelized a hop *across* machines; this suite measures
//! the level below — [`ExecConfig::intra_parallelism`] splitting one
//! machine's work-op batch into morsels on its own worker pool. The workload
//! is built to defeat cross-machine fan-out: a **hub-skewed** frontier where
//! one machine owns ~90% of the hop's vertices, so the whole hop collapses
//! onto a single shipped work op (the common shape in the paper's
//! knowledge-graph workloads, where hub entities concentrate frontiers). A
//! **uniform** frontier is measured alongside as the control: fan-out
//! already covers it, so morsels help less there by design.
//!
//! Every configuration must answer the same count query identically — the
//! suite doubles as a correctness gate across {serial, parallel fan-out} ×
//! {1, N} morsel configs, like the fan-out suite in [`crate::perf`].
//!
//! [`ExecConfig::intra_parallelism`]: a1_core::query::exec::ExecConfig::intra_parallelism

use crate::perf::{measured_latency, percentile};
use a1_core::{A1Cluster, A1Config, Json, MachineId, Mutation};
use std::fmt::Write as _;
use std::time::Instant;

pub const TENANT: &str = "bing";
pub const GRAPH: &str = "morsel";

const SCHEMA: &str = r#"{
    "name": "entity",
    "fields": [
        {"id": 0, "name": "id", "type": "string", "required": true},
        {"id": 1, "name": "rank", "type": "int64"},
        {"id": 2, "name": "payload", "type": "string"}
    ]
}"#;

/// Frontier shape parameters.
#[derive(Debug, Clone)]
pub struct MorselGraphSpec {
    /// Frontier vertices (hop-2 work-op batch size across the cluster).
    pub srcs: usize,
    /// Fraction of the frontier owned by machine 0 in the skewed variant.
    pub skew: f64,
    /// Match-target payload bytes (read during predicate evaluation).
    pub payload_bytes: usize,
}

impl MorselGraphSpec {
    pub fn quick() -> MorselGraphSpec {
        MorselGraphSpec {
            srcs: 64,
            skew: 0.9,
            payload_bytes: 64,
        }
    }

    pub fn full() -> MorselGraphSpec {
        MorselGraphSpec {
            srcs: 160,
            skew: 0.9,
            payload_bytes: 220,
        }
    }
}

/// Build the two-hop match workload:
///
/// ```text
/// root ──fan──▶ src_i ──hit──▶ tgt_i   (match: tgt.rank == 1)
/// ```
///
/// `root` lives on machine 1 (the coordinator, so hop 1 is an inline run).
/// In the skewed variant ~`skew` of the `src` vertices are pinned to
/// machine 0 — hop 2 becomes one big shipped work op — and every `tgt_i` is
/// a *distinct* vertex on machines 1…N−1, so each match evaluation is a
/// remote header+record read from machine 0 that only morsels can overlap
/// (the per-batch neighbor memo doesn't collapse distinct targets).
pub fn build_graph(cfg: A1Config, spec: &MorselGraphSpec, skewed: bool) -> A1Cluster {
    let machines = cfg.farm.fabric.machines;
    assert!(machines >= 3, "need a hub machine plus remote targets");
    let cluster = A1Cluster::start(cfg).expect("cluster");
    let client = cluster.client();
    client.create_tenant(TENANT).unwrap();
    client.create_graph(TENANT, GRAPH).unwrap();
    client
        .create_vertex_type(TENANT, GRAPH, SCHEMA, "id", &[])
        .unwrap();
    for et in ["fan", "hit"] {
        client
            .create_edge_type(
                TENANT,
                GRAPH,
                &format!(r#"{{"name": "{et}", "fields": []}}"#),
            )
            .unwrap();
    }
    let payload: String = (0..spec.payload_bytes)
        .map(|i| ((i % 26) as u8 + b'a') as char)
        .collect();
    let vertex = |id: &str, rank: i64| Mutation::UpsertVertex {
        tenant: TENANT.into(),
        graph: GRAPH.into(),
        ty: "entity".into(),
        attrs: Json::obj(vec![
            ("id", Json::str(id)),
            ("rank", Json::Num(rank as f64)),
            ("payload", Json::str(&payload)),
        ]),
    };
    let edge = |src: &str, et: &str, dst: &str| Mutation::UpsertEdge {
        tenant: TENANT.into(),
        graph: GRAPH.into(),
        src_type: "entity".into(),
        src_id: Json::str(src),
        edge_type: et.into(),
        dst_type: "entity".into(),
        dst_id: Json::str(dst),
        data: None,
    };

    // Vertices allocate at the batch's pinned coordinator (Hint::Local), so
    // `apply_batch_at` controls placement — that is what makes the skew.
    client
        .apply_batch_at(MachineId(1), &[vertex("root", 0)])
        .unwrap();
    let home = |i: usize| -> MachineId {
        if skewed {
            let hub = (spec.srcs as f64 * spec.skew).round() as usize;
            if i < hub {
                MachineId(0)
            } else {
                MachineId(1 + ((i - hub) as u32 % (machines - 1)))
            }
        } else {
            MachineId(i as u32 % machines)
        }
    };
    for i in 0..spec.srcs {
        let sid = format!("src{i:05}");
        let tid = format!("tgt{i:05}");
        client.apply_batch_at(home(i), &[vertex(&sid, 0)]).unwrap();
        // Targets never land on machine 0: from the hub machine every match
        // read is a (simulated) remote read.
        client
            .apply_batch_at(
                MachineId(1 + (i as u32 % (machines - 1))),
                &[vertex(&tid, 1)],
            )
            .unwrap();
        client
            .apply_batch(&[edge("root", "fan", &sid), edge(&sid, "hit", &tid)])
            .unwrap();
    }
    cluster
}

/// The measured query: count the frontier vertices whose `hit` target
/// satisfies `rank == 1` (all of them — the answer is `srcs`).
pub fn match_query() -> String {
    r#"{ "id": "root",
        "_out_edge": { "_type": "fan",
        "_vertex": {
        "_match": [{ "_out_edge": { "_type": "hit",
        "_vertex": { "rank": 1 } } }],
        "_select": ["_count(*)"] } } }"#
        .to_string()
}

/// One measured morsel configuration.
#[derive(Debug, Clone)]
pub struct MorselBenchResult {
    /// `skewed` (one machine owns ~90% of the frontier) or `uniform`.
    pub workload: String,
    pub machines: u32,
    /// [`ExecConfig::intra_parallelism`]: 0 = auto/morsel-parallel,
    /// 1 = legacy serial per-machine loop.
    ///
    /// [`ExecConfig::intra_parallelism`]: a1_core::query::exec::ExecConfig::intra_parallelism
    pub intra_parallelism: usize,
    pub iters: usize,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub avg_ns: u64,
    pub throughput_qps: f64,
    /// Hop-2 frontier size (the morsel-split batch, summed over machines).
    pub frontier: u64,
    /// Total morsels the hops were split into in one execution.
    pub morsels: u64,
    /// Peak concurrently executing morsels inside any single work op.
    pub max_concurrent_morsels: u64,
    /// The query's answer, cross-checked between every configuration.
    pub result: u64,
}

/// A cluster configured for the suite: 8 machines × 8 simulated cores (the
/// base worker threads `intra_parallelism = 0` resolves against).
pub fn suite_config(fanout: usize, intra: usize) -> A1Config {
    let mut cfg = A1Config::small(8)
        .with_fanout(fanout)
        .with_intra_parallelism(intra);
    cfg.farm.fabric.threads_per_machine = 8;
    cfg.farm.fabric.latency = measured_latency();
    cfg
}

fn measure(cluster: &A1Cluster, workload: &str, intra: usize, iters: usize) -> MorselBenchResult {
    let inner = cluster.inner();
    let text = match_query();
    // Coordinate from machine 1: machine 0's (hub) batch ships over RPC and
    // morsel-splits inside `handle_work` at the data's home machine.
    let run = || {
        inner
            .coordinate_query(MachineId(1), TENANT, GRAPH, &text)
            .expect("query")
    };
    for _ in 0..2 {
        run(); // warm proxy caches and the pool
    }
    let mut samples_ns = Vec::with_capacity(iters);
    let mut last = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let outcome = run();
        samples_ns.push(t0.elapsed().as_nanos() as u64);
        last = Some(outcome);
    }
    let outcome = last.expect("at least one iteration");
    samples_ns.sort_unstable();
    let avg_ns = samples_ns.iter().sum::<u64>() / iters as u64;
    MorselBenchResult {
        workload: workload.to_string(),
        machines: cluster.farm().fabric().num_machines(),
        intra_parallelism: intra,
        iters,
        p50_ns: percentile(&samples_ns, 50),
        p99_ns: percentile(&samples_ns, 99),
        avg_ns,
        throughput_qps: 1e9 / avg_ns as f64,
        frontier: outcome
            .per_hop
            .iter()
            .map(|h| h.frontier)
            .max()
            .unwrap_or(0),
        morsels: outcome.per_hop.iter().map(|h| h.morsels).sum(),
        max_concurrent_morsels: outcome
            .per_hop
            .iter()
            .map(|h| h.max_concurrent_morsels)
            .max()
            .unwrap_or(0),
        result: outcome.count.unwrap_or(outcome.rows.len() as u64),
    }
}

/// Run the suite: the skewed and uniform workloads under the serial
/// (`intra_parallelism = 1`) and morsel-parallel (auto) work-op loop, on
/// identically seeded 8-machine clusters with injected latency. Additional
/// unmeasured configurations — the serial fan-out coordinator and a fixed
/// morsel cap — are cross-checked for identical answers, so the CI perf job
/// doubles as a correctness gate across {serial, parallel} × {1, N} morsel
/// configs.
pub fn run_morsel_suite(quick: bool) -> Vec<MorselBenchResult> {
    let spec = if quick {
        MorselGraphSpec::quick()
    } else {
        MorselGraphSpec::full()
    };
    let iters = if quick { 5 } else { 12 };
    let mut results = Vec::new();
    for (workload, skewed) in [("skewed", true), ("uniform", false)] {
        for intra in [1usize, 0] {
            // Load fast (no injection), then measure with wall-clock
            // injection — like the fan-out suite.
            let cluster = build_graph(suite_config(0, intra), &spec, skewed);
            cluster.farm().fabric().set_inject_latency(true);
            results.push(measure(&cluster, workload, intra, iters));
            cluster.farm().fabric().set_inject_latency(false);
        }
        // Correctness-only configurations: serial fan-out × {1, N} morsels.
        // (No timing — answers must match the measured runs exactly.)
        let expected = results.last().expect("measured above").result;
        for (fanout, intra) in [(1usize, 1usize), (1, 0), (0, 4)] {
            let cluster = build_graph(suite_config(fanout, intra), &spec, skewed);
            let out = cluster
                .inner()
                .coordinate_query(MachineId(1), TENANT, GRAPH, &match_query())
                .expect("query");
            assert_eq!(
                out.count.unwrap_or(0),
                expected,
                "{workload}: fanout={fanout} intra={intra} disagrees"
            );
        }
    }
    for r in &results {
        let twin = results
            .iter()
            .find(|o| o.workload == r.workload && o.intra_parallelism != r.intra_parallelism)
            .expect("both modes measured");
        assert_eq!(
            r.result, twin.result,
            "serial and morsel-parallel work ops disagree on {}",
            r.workload
        );
    }
    results
}

/// Serialize suite results for the CI artifact / committed `BENCH_<n>.json`
/// (the `intra` section of the `a1-bench-v4` schema).
pub fn morsel_suite_to_json(results: &[MorselBenchResult]) -> Json {
    Json::obj(vec![(
        "results",
        Json::Arr(
            results
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("workload", Json::str(&r.workload)),
                        ("machines", Json::Num(r.machines as f64)),
                        ("intra_parallelism", Json::Num(r.intra_parallelism as f64)),
                        ("iters", Json::Num(r.iters as f64)),
                        ("p50_latency_ns", Json::Num(r.p50_ns as f64)),
                        ("p99_latency_ns", Json::Num(r.p99_ns as f64)),
                        ("avg_latency_ns", Json::Num(r.avg_ns as f64)),
                        ("throughput_qps", Json::Num(r.throughput_qps)),
                        ("frontier", Json::Num(r.frontier as f64)),
                        ("morsels", Json::Num(r.morsels as f64)),
                        (
                            "max_concurrent_morsels",
                            Json::Num(r.max_concurrent_morsels as f64),
                        ),
                        ("result", Json::Num(r.result as f64)),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Human-readable serial-vs-morsel report (the `morsel` experiments
/// target).
pub fn morsel_report(quick: bool) -> String {
    let results = run_morsel_suite(quick);
    let mut out = String::new();
    writeln!(
        out,
        "== intra-machine morsel parallelism vs serial work-op loop (8 machines × 8 cores, injected latency) =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<8} {:<8} {:>10} {:>10} {:>10} {:>9} {:>8} {:>6}",
        "frontier", "mode", "p50 µs", "p99 µs", "avg µs", "qps", "morsels", "peak"
    )
    .unwrap();
    for r in &results {
        let mode = if r.intra_parallelism == 1 {
            "serial"
        } else {
            "morsel"
        };
        writeln!(
            out,
            "{:<8} {:<8} {:>10.1} {:>10.1} {:>10.1} {:>9.0} {:>8} {:>6}",
            r.workload,
            mode,
            r.p50_ns as f64 / 1000.0,
            r.p99_ns as f64 / 1000.0,
            r.avg_ns as f64 / 1000.0,
            r.throughput_qps,
            r.morsels,
            r.max_concurrent_morsels,
        )
        .unwrap();
    }
    for name in ["skewed", "uniform"] {
        let by = |i: usize| {
            results
                .iter()
                .find(|r| r.workload == name && r.intra_parallelism == i)
                .unwrap()
        };
        writeln!(
            out,
            "{name} speedup (serial p50 / morsel p50): {:.2}x",
            by(1).p50_ns as f64 / by(0).p50_ns as f64
        )
        .unwrap();
    }
    writeln!(
        out,
        "(a hub-skewed frontier collapses onto one machine's work op; only morsels can overlap its reads)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_morsel_suite_parallel_beats_serial() {
        let results = run_morsel_suite(true);
        assert_eq!(results.len(), 4);
        let get = |workload: &str, intra: usize| {
            results
                .iter()
                .find(|r| r.workload == workload && r.intra_parallelism == intra)
                .unwrap()
        };
        // The acceptance gate: ≥2x wall-clock speedup on the hub-skewed
        // workload, where cross-machine fan-out cannot help.
        let serial = get("skewed", 1);
        let morsel = get("skewed", 0);
        assert!(
            (morsel.p50_ns as f64) * 2.0 < serial.p50_ns as f64,
            "morsel skewed p50 {} not ≥2x faster than serial p50 {}",
            morsel.p50_ns,
            serial.p50_ns
        );
        // Morsels genuinely overlapped inside a single work op.
        assert!(
            morsel.max_concurrent_morsels > 1,
            "no overlapping morsels observed (peak {})",
            morsel.max_concurrent_morsels
        );
        // The serial loop reports itself as one morsel per work op.
        assert_eq!(serial.max_concurrent_morsels, 1);
        // JSON round-trips through the vendored parser.
        let j = morsel_suite_to_json(&results);
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(parsed.get("results").unwrap().as_arr().unwrap().len(), 4);
    }
}
