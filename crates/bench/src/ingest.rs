//! The ingest-throughput suite: single-op vs group-commit vs
//! partition-parallel streaming ingestion, measured wall-clock on a
//! latency-injected 8-machine cluster.
//!
//! Three modes load an identical mutation stream (vertices with a secondary
//! index + chain edges) into identically configured clusters:
//!
//! * **`single-op`** — one FaRM transaction per mutation through
//!   `A1Client::apply_batch(&[m])`, serially: today's client write path.
//! * **`group-commit`** — one `a1-ingest` pipeline partition batching many
//!   mutations per transaction.
//! * **`parallel`** — one partition (and applier) per machine, range-
//!   partitioned so each partition's inserts land in a contiguous index
//!   range.
//!
//! After the measured phase every cluster must answer the same
//! secondary-index count query identically — the suite doubles as a
//! correctness gate, like the fan-out suite in [`crate::perf`].

use a1_core::{A1Client, A1Cluster, A1Config, Json, Mutation};
use a1_farm::LatencyModel;
use a1_ingest::{IngestConfig, IngestPipeline, MutationRecord, Partitioner};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub const TENANT: &str = "bing";
pub const GRAPH: &str = "stream";

const SCHEMA: &str = r#"{
    "name": "entity",
    "fields": [
        {"id": 0, "name": "id", "type": "string", "required": true},
        {"id": 1, "name": "rank", "type": "int64"},
        {"id": 2, "name": "payload", "type": "string"}
    ]
}"#;

/// The measured phase's latency model: remote operations land in the
/// injector's sleep regime (≥200 µs — overlappable even on a 1-core CI
/// runner) while local reads stay near-free, preserving the local/remote
/// asymmetry that makes partition-local allocation matter.
fn ingest_latency() -> LatencyModel {
    LatencyModel {
        local_read_ns: 100,
        rack_rtt_ns: 200_000,
        cross_rack_rtt_ns: 400_000,
        per_kib_ns: 1_000,
        rpc_overhead_ns: 200_000,
    }
}

/// Stream shape parameters.
#[derive(Debug, Clone)]
pub struct IngestStreamSpec {
    /// Vertices in the stream; edges chain `v_i → v_{i+1}`.
    pub vertices: usize,
    /// Simulated upstream bus sources the records are striped over.
    pub sources: usize,
    /// Vertex payload bytes.
    pub payload_bytes: usize,
}

impl IngestStreamSpec {
    pub fn quick() -> IngestStreamSpec {
        IngestStreamSpec {
            vertices: 192,
            sources: 4,
            payload_bytes: 64,
        }
    }

    pub fn full() -> IngestStreamSpec {
        IngestStreamSpec {
            vertices: 1024,
            sources: 8,
            payload_bytes: 220,
        }
    }

    /// Total mutation records the stream carries.
    pub fn records(&self) -> usize {
        self.vertices * 2 - 1
    }
}

fn vertex_id(i: usize) -> String {
    format!("v{i:06}")
}

/// The stream: every vertex (rank 1, so the secondary index counts them
/// all), then chain edges. Phase 1 ends at `self.vertices` — callers flush
/// between phases so edges never race their endpoints.
pub fn gen_stream(spec: &IngestStreamSpec) -> Vec<MutationRecord> {
    let payload: String = (0..spec.payload_bytes)
        .map(|i| ((i % 26) as u8 + b'a') as char)
        .collect();
    let mut out = Vec::with_capacity(spec.records());
    let mut seqs = vec![0u64; spec.sources];
    let mut next = |i: usize| {
        let s = i % spec.sources;
        seqs[s] += 1;
        (format!("bus{s}"), seqs[s])
    };
    for i in 0..spec.vertices {
        let (source, seq) = next(i);
        let id = vertex_id(i);
        out.push(MutationRecord::keyed(
            &source,
            seq,
            &id,
            Mutation::UpsertVertex {
                tenant: TENANT.into(),
                graph: GRAPH.into(),
                ty: "entity".into(),
                attrs: Json::obj(vec![
                    ("id", Json::str(&id)),
                    ("rank", Json::Num(1.0)),
                    ("payload", Json::str(&payload)),
                ]),
            },
        ));
    }
    for i in 0..spec.vertices - 1 {
        let (source, seq) = next(i);
        out.push(
            MutationRecord::new(
                &source,
                seq,
                Mutation::UpsertEdge {
                    tenant: TENANT.into(),
                    graph: GRAPH.into(),
                    src_type: "entity".into(),
                    src_id: Json::str(&vertex_id(i)),
                    edge_type: "link".into(),
                    dst_type: "entity".into(),
                    dst_id: Json::str(&vertex_id(i + 1)),
                    data: None,
                },
            )
            .expect("edge records derive their key"),
        );
    }
    out
}

/// One measured ingest configuration.
#[derive(Debug, Clone)]
pub struct IngestBenchResult {
    /// `single-op`, `group-commit`, or `parallel`.
    pub mode: String,
    pub machines: u32,
    pub partitions: usize,
    pub batch_size: usize,
    pub records: usize,
    pub elapsed_ns: u64,
    pub records_per_sec: f64,
    pub batches: u64,
    pub batch_retries: u64,
    pub batch_splits: u64,
    pub dedup_hits: u64,
    /// The cross-checked secondary-index count (must equal `vertices` and
    /// agree across modes).
    pub check: u64,
}

fn fresh_cluster(machines: u32) -> (A1Cluster, A1Client) {
    let mut cfg = A1Config::small(machines);
    cfg.farm.fabric.latency = ingest_latency();
    let cluster = A1Cluster::start(cfg).expect("cluster");
    let client = cluster.client();
    client.create_tenant(TENANT).unwrap();
    client.create_graph(TENANT, GRAPH).unwrap();
    client
        .create_vertex_type(TENANT, GRAPH, SCHEMA, "id", &["rank"])
        .unwrap();
    client
        .create_edge_type(TENANT, GRAPH, r#"{"name": "link", "fields": []}"#)
        .unwrap();
    (cluster, client)
}

/// Count every ingested vertex through the rank secondary index.
fn check_count(client: &A1Client) -> u64 {
    client
        .query(
            TENANT,
            GRAPH,
            r#"{ "_type": "entity", "rank": 1, "_select": ["_count(*)"] }"#,
        )
        .expect("check query")
        .count
        .unwrap_or(0)
}

/// Range split points giving each of `parts` partitions a contiguous vertex
/// id block.
fn range_splits(spec: &IngestStreamSpec, parts: usize) -> Vec<String> {
    (1..parts)
        .map(|p| vertex_id(p * spec.vertices / parts))
        .collect()
}

fn run_pipeline_mode(
    mode: &str,
    machines: u32,
    spec: &IngestStreamSpec,
    stream: &[MutationRecord],
    cfg: IngestConfig,
) -> IngestBenchResult {
    let (cluster, client) = fresh_cluster(machines);
    let partitions = if cfg.partitions == 0 {
        machines as usize
    } else {
        cfg.partitions
    };
    let batch_size = cfg.batch_size;
    cluster.farm().fabric().set_inject_latency(true);
    let t0 = Instant::now();
    let pipe = IngestPipeline::start(&cluster, cfg).expect("pipeline");
    for r in &stream[..spec.vertices] {
        pipe.submit(r.clone()).expect("submit vertex");
    }
    pipe.flush().expect("flush vertices");
    for r in &stream[spec.vertices..] {
        pipe.submit(r.clone()).expect("submit edge");
    }
    pipe.flush().expect("flush edges");
    let elapsed = t0.elapsed();
    let stats = pipe.shutdown().expect("shutdown");
    cluster.farm().fabric().set_inject_latency(false);
    assert_eq!(
        stats.failed, 0,
        "ingest dropped records in mode {mode}: {:?}",
        stats
    );
    IngestBenchResult {
        mode: mode.to_string(),
        machines,
        partitions,
        batch_size,
        records: stream.len(),
        elapsed_ns: elapsed.as_nanos() as u64,
        records_per_sec: stream.len() as f64 / elapsed.as_secs_f64(),
        batches: stats.batches,
        batch_retries: stats.batch_retries,
        batch_splits: stats.batch_splits,
        dedup_hits: stats.deduped,
        check: check_count(&client),
    }
}

/// Run the A/B/C suite on identically seeded `machines`-wide clusters.
/// Panics if any two modes disagree on the check query — the CI perf job
/// doubles as a correctness gate.
pub fn run_ingest_suite(quick: bool) -> Vec<IngestBenchResult> {
    let machines = 8u32;
    let spec = if quick {
        IngestStreamSpec::quick()
    } else {
        IngestStreamSpec::full()
    };
    let stream = gen_stream(&spec);
    let batch = 32usize;
    let mut results = Vec::new();

    // Mode A: one transaction per mutation, serial (the pre-ingest client
    // path, kept as the baseline).
    {
        let (cluster, client) = fresh_cluster(machines);
        cluster.farm().fabric().set_inject_latency(true);
        let t0 = Instant::now();
        for r in &stream {
            client
                .apply_batch(std::slice::from_ref(&r.op))
                .expect("single op");
        }
        let elapsed = t0.elapsed();
        cluster.farm().fabric().set_inject_latency(false);
        results.push(IngestBenchResult {
            mode: "single-op".into(),
            machines,
            partitions: 1,
            batch_size: 1,
            records: stream.len(),
            elapsed_ns: elapsed.as_nanos() as u64,
            records_per_sec: stream.len() as f64 / elapsed.as_secs_f64(),
            batches: stream.len() as u64,
            batch_retries: 0,
            batch_splits: 0,
            dedup_hits: 0,
            check: check_count(&client),
        });
    }

    // Mode B: group commit, one applier.
    results.push(run_pipeline_mode(
        "group-commit",
        machines,
        &spec,
        &stream,
        IngestConfig {
            partitions: 1,
            batch_size: batch,
            queue_depth: 4 * batch,
            flush_interval: Duration::from_millis(2),
            ..IngestConfig::default()
        },
    ));

    // Mode C: one applier per machine, range-partitioned.
    results.push(run_pipeline_mode(
        "parallel",
        machines,
        &spec,
        &stream,
        IngestConfig {
            partitions: machines as usize,
            batch_size: batch,
            queue_depth: 4 * batch,
            flush_interval: Duration::from_millis(2),
            partitioner: Partitioner::KeyRange(range_splits(&spec, machines as usize)),
            ..IngestConfig::default()
        },
    ));

    for r in &results {
        assert_eq!(
            r.check, spec.vertices as u64,
            "mode {} lost vertices ({} of {})",
            r.mode, r.check, spec.vertices
        );
    }
    results
}

/// Serialize for the CI artifact / committed `BENCH_<n>.json`.
pub fn ingest_suite_to_json(results: &[IngestBenchResult]) -> Json {
    Json::Arr(
        results
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("workload", Json::Str(format!("ingest-{}", r.mode))),
                    ("machines", Json::Num(r.machines as f64)),
                    ("partitions", Json::Num(r.partitions as f64)),
                    ("batch_size", Json::Num(r.batch_size as f64)),
                    ("records", Json::Num(r.records as f64)),
                    ("elapsed_ns", Json::Num(r.elapsed_ns as f64)),
                    ("records_per_sec", Json::Num(r.records_per_sec)),
                    ("batches", Json::Num(r.batches as f64)),
                    ("batch_retries", Json::Num(r.batch_retries as f64)),
                    ("batch_splits", Json::Num(r.batch_splits as f64)),
                    ("dedup_hits", Json::Num(r.dedup_hits as f64)),
                    ("check", Json::Num(r.check as f64)),
                ])
            })
            .collect(),
    )
}

/// Human-readable report (the `ingest` experiments target).
pub fn ingest_report(quick: bool) -> String {
    let results = run_ingest_suite(quick);
    let mut out = String::new();
    writeln!(
        out,
        "== streaming ingest: single-op vs group-commit vs partition-parallel (8 machines, injected latency) =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<14} {:>6} {:>6} {:>8} {:>12} {:>8} {:>8}",
        "mode", "parts", "batch", "records", "rec/s", "retries", "splits"
    )
    .unwrap();
    for r in &results {
        writeln!(
            out,
            "{:<14} {:>6} {:>6} {:>8} {:>12.0} {:>8} {:>8}",
            r.mode,
            r.partitions,
            r.batch_size,
            r.records,
            r.records_per_sec,
            r.batch_retries,
            r.batch_splits
        )
        .unwrap();
    }
    let by = |mode: &str| {
        results
            .iter()
            .find(|r| r.mode == mode)
            .expect("mode measured")
            .records_per_sec
    };
    writeln!(
        out,
        "group-commit speedup over single-op:  {:.2}x",
        by("group-commit") / by("single-op")
    )
    .unwrap();
    writeln!(
        out,
        "parallel speedup over single-op:      {:.2}x",
        by("parallel") / by("single-op")
    )
    .unwrap();
    writeln!(
        out,
        "(the paper's A1 is fed from Bing's pipelines over an at-least-once pub/sub bus, §1/§6)"
    )
    .unwrap();
    out
}
