//! Open-loop serving benchmark: Poisson arrivals at a target QPS against the
//! front door, measuring tail latency and the max sustainable rate.
//!
//! Every other suite in this crate is closed-loop — one request at a time,
//! so the system can never be pushed past saturation and queueing delay is
//! invisible. A1 is judged at Bing scale under *open-loop* load (§6), where
//! arrivals don't wait for completions. This suite builds the arrival
//! schedule as a virtual clock of request deadlines: request `i` is *due* at
//! `start + Σ exp(λ)` regardless of how the system is doing, and its latency
//! is measured from that deadline, not from when a worker got around to
//! sending it. When the cluster falls behind, the backlog shows up as
//! queueing delay in the tail — the latency-collapse signal closed-loop
//! iteration structurally cannot produce.
//!
//! The request mix is Q1 (2-hop), Q4 (3-hop stress), and ingest (vertex
//! payload updates against a disjoint key range, so concurrent writes can
//! never change the query answers). Every query answer observed under load
//! is compared byte-for-byte against the closed-loop answer captured before
//! the storm; any divergence fails the suite. The cluster runs with the
//! front door enabled, so past saturation requests are shed with structured
//! `Overloaded` rejections instead of queueing without bound.

use crate::perf::{measured_latency, spec};
use crate::workload::{KnowledgeGraph, GRAPH, TENANT};
use a1_core::{A1Config, A1Error, AdmissionConfig, Json, QueryOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Per-machine in-flight admission limit used by the suite.
const MAX_INFLIGHT: usize = 64;

/// Disjoint vertices the ingest leg updates (none participate in Q1/Q4
/// traversals, so answers stay byte-identical under concurrent writes).
const INGEST_KEYS: usize = 64;

/// Loadgen worker threads. They spend their time asleep until a request is
/// due; the count only caps how many requests can be in flight at once.
const WORKERS: usize = 32;

/// A rung is "sustainable" only if p99 stays under this ceiling.
const P99_CEILING_NS: u64 = 250_000_000;

/// Committed floor for the CI gate: the quick suite must sustain at least
/// this many QPS or the load-test job fails. Deliberately conservative
/// (below the ladder's own first rung × its 0.9 keep-up ratio, so any
/// sustainable first rung clears it) — a shared CI runner is slow, but a
/// scheduling regression (e.g. ingest starving query morsels) drops
/// sustained QPS by integer factors, not percentages.
pub const SERVE_QPS_FLOOR_QUICK: f64 = 20.0;

/// One target-QPS rung of the open-loop ladder.
#[derive(Debug, Clone)]
pub struct ServeRung {
    pub target_qps: f64,
    /// Completed (non-rejected, non-error) requests per second of rung time.
    pub achieved_qps: f64,
    pub requests: usize,
    /// Requests shed by the front door with `Overloaded`.
    pub rejected: usize,
    /// Any other error (must be zero for the rung to count).
    pub errors: usize,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub sustainable: bool,
}

/// The whole suite: the ladder walked until the first unsustainable rung.
#[derive(Debug, Clone)]
pub struct ServeSuite {
    pub machines: u32,
    pub max_inflight_per_machine: usize,
    /// Seconds of open-loop fire per rung.
    pub duration_s: f64,
    /// The request mix, as `kind:weight` pairs.
    pub mix: String,
    pub rungs: Vec<ServeRung>,
    /// Achieved QPS of the highest sustainable rung (0 if none was).
    pub max_sustainable_qps: f64,
    pub answers_match_closed_loop: bool,
}

/// Canonical bytes of a query outcome, for the byte-identity assertion.
fn canonical(outcome: &QueryOutcome) -> String {
    let mut s = String::new();
    if let Some(c) = outcome.count {
        let _ = write!(s, "count={c};");
    }
    for row in &outcome.rows {
        s.push_str(&row.to_string());
        s.push(';');
    }
    if let Some(cont) = &outcome.continuation {
        // Token ids differ run to run; only the *presence* of paging is part
        // of the answer shape.
        let _ = write!(s, "cont={};", !cont.is_empty());
    }
    s
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Q1,
    Q4,
    Ingest,
}

/// Deterministic 2:1:2 mix — two Q1, one Q4, two ingest per five requests.
fn kind_of(i: usize) -> Kind {
    match i % 5 {
        0 | 2 => Kind::Q1,
        1 => Kind::Q4,
        _ => Kind::Ingest,
    }
}

const MIX: &str = "q1:2,q4:1,ingest:2";

struct RungOutcome {
    latencies_ns: Vec<u64>,
    completed: usize,
    rejected: usize,
    errors: usize,
    mismatches: usize,
    elapsed: Duration,
}

/// Fire one rung: `target_qps` for `duration` seconds of Poisson arrivals.
fn fire_rung(
    kg: &KnowledgeGraph,
    target_qps: f64,
    duration: f64,
    baseline_q1: &str,
    baseline_q4: &str,
    seed: u64,
) -> RungOutcome {
    let n = (target_qps * duration).ceil().max(1.0) as usize;
    // The virtual clock: exponential inter-arrival gaps, fixed up front so
    // the schedule never adapts to the system falling behind (open loop).
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    let arrivals: Vec<Duration> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / target_qps;
            Duration::from_secs_f64(t)
        })
        .collect();
    let q1 = kg.q1();
    let q4 = kg.q4();
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    let mut per_worker: Vec<(Vec<u64>, usize, usize, usize, usize)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let client = kg.cluster.client().with_client_id(&format!("lg{w}"));
                let (next, arrivals, q1, q4) = (&next, &arrivals, &q1, &q4);
                let (baseline_q1, baseline_q4) = (baseline_q1, baseline_q4);
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    let (mut completed, mut rejected, mut errors, mut mismatches) = (0, 0, 0, 0);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= arrivals.len() {
                            break;
                        }
                        let due = started + arrivals[i];
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let kind = kind_of(i);
                        let result = match kind {
                            Kind::Q1 => client.query(TENANT, GRAPH, q1).map(Some),
                            Kind::Q4 => client.query(TENANT, GRAPH, q4).map(Some),
                            Kind::Ingest => {
                                // Optimistic-conflict retries are the
                                // client's job (see `A1Error::is_retryable`);
                                // the time they cost lands in the measured
                                // latency, as it would for a real front end.
                                let attrs = format!(
                                    r#"{{"id": "load{:04}", "rank": {i}}}"#,
                                    i % INGEST_KEYS
                                );
                                let mut attempt = 0;
                                loop {
                                    match client.update_vertex(TENANT, GRAPH, "entity", &attrs) {
                                        Err(e) if e.is_retryable() && attempt < 16 => {
                                            attempt += 1;
                                            std::thread::sleep(Duration::from_micros(
                                                100 << attempt.min(6),
                                            ));
                                        }
                                        other => break other.map(|()| None),
                                    }
                                }
                            }
                        };
                        // Latency counts from the *deadline*: a request the
                        // saturated system only got to late carries its
                        // queueing delay, which is the collapse signal.
                        let latency_ns = due.elapsed().as_nanos() as u64;
                        match result {
                            Ok(outcome) => {
                                completed += 1;
                                latencies.push(latency_ns);
                                if let Some(outcome) = outcome {
                                    let baseline = match kind {
                                        Kind::Q1 => baseline_q1,
                                        _ => baseline_q4,
                                    };
                                    if canonical(&outcome) != baseline {
                                        mismatches += 1;
                                    }
                                }
                            }
                            Err(A1Error::Overloaded { .. }) => rejected += 1,
                            Err(_) => errors += 1,
                        }
                    }
                    (latencies, completed, rejected, errors, mismatches)
                })
            })
            .collect();
        for h in handles {
            per_worker.push(h.join().expect("loadgen worker"));
        }
    });
    let elapsed = started.elapsed();
    let mut latencies_ns = Vec::new();
    let (mut completed, mut rejected, mut errors, mut mismatches) = (0, 0, 0, 0);
    for (lats, c, r, e, m) in per_worker {
        latencies_ns.extend(lats);
        completed += c;
        rejected += r;
        errors += e;
        mismatches += m;
    }
    latencies_ns.sort_unstable();
    RungOutcome {
        latencies_ns,
        completed,
        rejected,
        errors,
        mismatches,
        elapsed,
    }
}

/// Nearest-rank percentile in per-mille (999 = p99.9).
fn percentile_permille(sorted_ns: &[u64], permille: usize) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (sorted_ns.len() * permille).div_ceil(1000);
    sorted_ns[rank.saturating_sub(1).min(sorted_ns.len() - 1)]
}

/// Run the open-loop serving suite on the 8-machine latency-injected
/// cluster: walk a QPS ladder with Poisson arrivals, stop at the first
/// unsustainable rung, and report tail latency plus the max sustainable
/// rate.
///
/// Panics — deliberately, this is the CI gate — if any answer observed
/// under concurrent load differs byte-for-byte from its closed-loop
/// baseline, if any request fails with a non-`Overloaded` error, or (quick
/// mode) if the max sustainable QPS falls below the committed
/// [`SERVE_QPS_FLOOR_QUICK`] floor.
pub fn run_serve_suite(quick: bool) -> ServeSuite {
    let machines = 8u32;
    let mut cfg = A1Config::small(machines);
    cfg.farm.fabric.latency = measured_latency();
    cfg.admission = AdmissionConfig {
        max_inflight_queries: MAX_INFLIGHT,
        ..AdmissionConfig::default()
    };
    // Load fast (no injection), then measure with wall-clock injection.
    let kg = KnowledgeGraph::load(cfg, spec(quick));
    for i in 0..INGEST_KEYS {
        kg.client
            .create_vertex(
                TENANT,
                GRAPH,
                "entity",
                &format!(r#"{{"id": "load{i:04}", "rank": 0}}"#),
            )
            .expect("ingest target vertex");
    }
    // Closed-loop baselines: the bytes every answer under load must match.
    let baseline_q1 = canonical(&kg.client.query(TENANT, GRAPH, &kg.q1()).expect("q1"));
    let baseline_q4 = canonical(&kg.client.query(TENANT, GRAPH, &kg.q4()).expect("q4"));

    kg.cluster.farm().fabric().set_inject_latency(true);
    let (ladder, duration): (&[f64], f64) = if quick {
        (&[25.0, 50.0, 100.0, 200.0, 400.0], 0.4)
    } else {
        (&[50.0, 100.0, 200.0, 400.0, 800.0, 1600.0], 2.0)
    };
    let mut rungs = Vec::new();
    let mut max_sustainable = 0.0f64;
    let mut total_mismatches = 0usize;
    let mut total_errors = 0usize;
    for (i, &qps) in ladder.iter().enumerate() {
        let out = fire_rung(
            &kg,
            qps,
            duration,
            &baseline_q1,
            &baseline_q4,
            0xA1_5E_11 + i as u64,
        );
        let achieved = out.completed as f64 / out.elapsed.as_secs_f64();
        let p99 = percentile_permille(&out.latencies_ns, 990);
        // Sustainable = kept up with the schedule (≥90% of target completed,
        // ≤5% shed) without the tail collapsing.
        let sustainable = achieved >= 0.9 * qps
            && p99 <= P99_CEILING_NS
            && out.rejected * 20 <= out.completed + out.rejected
            && out.errors == 0;
        total_mismatches += out.mismatches;
        total_errors += out.errors;
        rungs.push(ServeRung {
            target_qps: qps,
            achieved_qps: achieved,
            requests: out.completed + out.rejected + out.errors,
            rejected: out.rejected,
            errors: out.errors,
            p50_ns: percentile_permille(&out.latencies_ns, 500),
            p99_ns: p99,
            p999_ns: percentile_permille(&out.latencies_ns, 999),
            sustainable,
        });
        if sustainable {
            max_sustainable = max_sustainable.max(achieved);
        } else {
            break; // past the knee; higher rungs only get worse
        }
    }
    kg.cluster.farm().fabric().set_inject_latency(false);

    assert_eq!(
        total_mismatches, 0,
        "answers under open-loop load diverged from closed-loop execution"
    );
    assert_eq!(
        total_errors, 0,
        "non-Overloaded errors under load (the front door must shed, not fail)"
    );
    if quick {
        assert!(
            max_sustainable >= SERVE_QPS_FLOOR_QUICK,
            "max sustainable QPS {max_sustainable:.0} regressed below the committed floor {SERVE_QPS_FLOOR_QUICK}"
        );
    }
    ServeSuite {
        machines,
        max_inflight_per_machine: MAX_INFLIGHT,
        duration_s: duration,
        mix: MIX.to_string(),
        rungs,
        max_sustainable_qps: max_sustainable,
        answers_match_closed_loop: true, // asserted above
    }
}

/// Serialize for the `serve` section of the `--json` document.
pub fn serve_suite_to_json(suite: &ServeSuite) -> Json {
    Json::obj(vec![
        ("machines", Json::Num(suite.machines as f64)),
        (
            "max_inflight_per_machine",
            Json::Num(suite.max_inflight_per_machine as f64),
        ),
        ("duration_s", Json::Num(suite.duration_s)),
        ("mix", Json::str(&suite.mix)),
        (
            "rungs",
            Json::Arr(
                suite
                    .rungs
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("target_qps", Json::Num(r.target_qps)),
                            ("achieved_qps", Json::Num(r.achieved_qps)),
                            ("requests", Json::Num(r.requests as f64)),
                            ("rejected", Json::Num(r.rejected as f64)),
                            ("errors", Json::Num(r.errors as f64)),
                            ("p50_latency_ns", Json::Num(r.p50_ns as f64)),
                            ("p99_latency_ns", Json::Num(r.p99_ns as f64)),
                            ("p999_latency_ns", Json::Num(r.p999_ns as f64)),
                            ("sustainable", Json::Bool(r.sustainable)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("max_sustainable_qps", Json::Num(suite.max_sustainable_qps)),
        (
            "answers_match_closed_loop",
            Json::Bool(suite.answers_match_closed_loop),
        ),
    ])
}

/// Human-readable report (the `serve` experiments target).
pub fn serve_report(quick: bool) -> String {
    let suite = run_serve_suite(quick);
    let mut out = String::new();
    writeln!(
        out,
        "== open-loop serving: Poisson arrivals vs the front door ({} machines, injected latency, mix {}) ==",
        suite.machines, suite.mix
    )
    .unwrap();
    writeln!(
        out,
        "{:>10} {:>10} {:>9} {:>9} {:>10} {:>10} {:>10}  ok?",
        "target", "achieved", "requests", "rejected", "p50 ms", "p99 ms", "p99.9 ms"
    )
    .unwrap();
    for r in &suite.rungs {
        writeln!(
            out,
            "{:>10.0} {:>10.0} {:>9} {:>9} {:>10.2} {:>10.2} {:>10.2}  {}",
            r.target_qps,
            r.achieved_qps,
            r.requests,
            r.rejected,
            r.p50_ns as f64 / 1e6,
            r.p99_ns as f64 / 1e6,
            r.p999_ns as f64 / 1e6,
            if r.sustainable { "yes" } else { "COLLAPSE" },
        )
        .unwrap();
    }
    writeln!(
        out,
        "max sustainable: {:.0} QPS (answers byte-identical to closed-loop: {})",
        suite.max_sustainable_qps, suite.answers_match_closed_loop
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_serve_suite_gates() {
        // Runs the full quick ladder; the in-suite asserts (byte-identity,
        // error-freedom, QPS floor) are the real test.
        let suite = run_serve_suite(true);
        assert!(!suite.rungs.is_empty());
        assert!(suite.max_sustainable_qps >= SERVE_QPS_FLOOR_QUICK);
        assert!(suite.answers_match_closed_loop);
        // Every recorded rung saw traffic and measured a tail.
        for r in &suite.rungs {
            assert!(r.requests > 0);
            assert!(r.p99_ns >= r.p50_ns);
        }
        // JSON round-trips through the vendored parser.
        let j = serve_suite_to_json(&suite);
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(
            parsed.get("rungs").unwrap().as_arr().unwrap().len(),
            suite.rungs.len()
        );
    }
}
