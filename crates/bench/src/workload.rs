//! Workload generators.
//!
//! The paper evaluates on a film/entertainment knowledge graph (§6): 3.7 B
//! vertices, heavy-tailed degrees (hubs beyond 10 M edges), ~220-byte
//! payloads. These generators produce the same *shape* at configurable
//! scale: the default spec gives "Spielberg" exactly 49 films whose casts
//! union to ~1639 distinct actors, matching the paper's reported Q1
//! footprint. A uniform random graph backs the Figure 14 scaling study
//! (23 M vertices / 63 M edges in the paper, scaled down here).

use a1_core::{A1Client, A1Cluster, A1Config, Json};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub const TENANT: &str = "bing";
pub const GRAPH: &str = "kg";

/// The weakly-typed `entity` vertex schema of §5: every entity is one type;
/// attributes live in lists/maps.
pub const ENTITY_SCHEMA: &str = r#"{
    "name": "entity",
    "fields": [
        {"id": 0, "name": "id", "type": "string", "required": true},
        {"id": 1, "name": "name", "type": "list<string>"},
        {"id": 2, "name": "str_str_map", "type": "map<string,string>"},
        {"id": 3, "name": "rank", "type": "int64"},
        {"id": 4, "name": "payload", "type": "string"}
    ]
}"#;

pub const EDGE_TYPES: &[&str] = &[
    "director.film",
    "film.actor",
    "actor.film",
    "film.genre",
    "character.film",
    "film.performance",
    "performance.actor",
];

/// Knowledge-graph shape parameters.
#[derive(Debug, Clone)]
pub struct KnowledgeGraphSpec {
    /// Films by the "hub" director (paper Q1: 49).
    pub hub_films: usize,
    /// Actors credited per film (paper Q1 reads 1785 edges over 49 films).
    pub actors_per_film: usize,
    /// Total actor pool (overlap between casts creates the dedup the paper
    /// reports: 1785 edges → 1639 distinct actors).
    pub actor_pool: usize,
    /// Films per non-hub actor (drives Q4 fan-out).
    pub films_per_actor: usize,
    /// Batman-style character film count (Q2).
    pub character_films: usize,
    /// Average vertex payload bytes (paper: 220).
    pub payload_bytes: usize,
    pub seed: u64,
}

impl Default for KnowledgeGraphSpec {
    fn default() -> Self {
        KnowledgeGraphSpec {
            hub_films: 49,
            actors_per_film: 37,
            actor_pool: 1800,
            films_per_actor: 2,
            character_films: 8,
            payload_bytes: 220,
            seed: 0xA1,
        }
    }
}

impl KnowledgeGraphSpec {
    /// A small variant for quick tests and CI-speed benches.
    pub fn tiny() -> KnowledgeGraphSpec {
        KnowledgeGraphSpec {
            hub_films: 6,
            actors_per_film: 5,
            actor_pool: 20,
            films_per_actor: 1,
            character_films: 3,
            payload_bytes: 64,
            seed: 0xA1,
        }
    }
}

/// A loaded knowledge graph plus the ids the evaluation queries start from.
pub struct KnowledgeGraph {
    pub cluster: A1Cluster,
    pub client: A1Client,
    pub spec: KnowledgeGraphSpec,
    pub director_id: String,
    pub character_id: String,
    pub hub_actor_id: String,
}

impl KnowledgeGraph {
    /// Build the schema and load the synthetic knowledge graph.
    pub fn load(cfg: A1Config, spec: KnowledgeGraphSpec) -> KnowledgeGraph {
        let cluster = A1Cluster::start(cfg).expect("cluster");
        let client = cluster.client();
        client.create_tenant(TENANT).unwrap();
        client.create_graph(TENANT, GRAPH).unwrap();
        client
            .create_vertex_type(TENANT, GRAPH, ENTITY_SCHEMA, "id", &["rank"])
            .unwrap();
        for et in EDGE_TYPES {
            client
                .create_edge_type(
                    TENANT,
                    GRAPH,
                    &format!(r#"{{"name": "{et}", "fields": []}}"#),
                )
                .unwrap();
        }

        let mut rng = StdRng::seed_from_u64(spec.seed);
        let payload: String = (0..spec.payload_bytes)
            .map(|i| ((i % 26) as u8 + b'a') as char)
            .collect();
        let mk_vertex = |client: &A1Client, id: &str, name: &str, extra: &str| {
            client
                .create_vertex(
                    TENANT,
                    GRAPH,
                    "entity",
                    &format!(
                        r#"{{"id": "{id}", "name": ["{name}"], "payload": "{payload}"{extra}}}"#
                    ),
                )
                .unwrap();
        };
        let mk_edge = |client: &A1Client, src: &str, et: &str, dst: &str| {
            client
                .create_edge(
                    TENANT,
                    GRAPH,
                    "entity",
                    &Json::str(src),
                    et,
                    "entity",
                    &Json::str(dst),
                    None,
                )
                .unwrap();
        };

        // The hub director and their films (Q1's first hop).
        let director_id = "steven.spielberg".to_string();
        mk_vertex(&client, &director_id, "Steven Spielberg", "");
        // Actor pool.
        for a in 0..spec.actor_pool {
            mk_vertex(&client, &format!("actor{a:05}"), &format!("Actor {a}"), "");
        }
        // Genres.
        for g in ["war", "action", "comedy", "drama"] {
            mk_vertex(&client, &format!("genre.{g}"), g, "");
        }
        // The hub actor (Q4 start) is actor00000.
        let hub_actor_id = "actor00000".to_string();

        for f in 0..spec.hub_films {
            let fid = format!("film{f:04}");
            mk_vertex(&client, &fid, &format!("Film {f}"), "");
            mk_edge(&client, &director_id, "director.film", &fid);
            let genre = if f % 2 == 0 {
                "genre.war"
            } else {
                "genre.drama"
            };
            mk_edge(&client, &fid, "film.genre", genre);
            // Cast: random actors from the pool; the hub actor is in every
            // other film (Q3's match pattern needs director+actor overlap).
            let mut cast = std::collections::HashSet::new();
            if f % 2 == 0 {
                cast.insert(0usize);
            }
            while cast.len() < spec.actors_per_film {
                cast.insert(rng.gen_range(0..spec.actor_pool));
            }
            for a in cast {
                let aid = format!("actor{a:05}");
                mk_edge(&client, &fid, "film.actor", &aid);
                mk_edge(&client, &aid, "actor.film", &fid);
            }
        }
        // Additional films so every actor has `films_per_actor` credits.
        let mut extra_film = 0usize;
        for a in 0..spec.actor_pool {
            for _ in 0..spec.films_per_actor.saturating_sub(1) {
                let fid = format!("xfilm{extra_film:05}");
                extra_film += 1;
                mk_vertex(&client, &fid, &format!("Extra {extra_film}"), "");
                let aid = format!("actor{a:05}");
                mk_edge(&client, &fid, "film.actor", &aid);
                mk_edge(&client, &aid, "actor.film", &fid);
            }
        }

        // The Batman-style subgraph (Q2): character → films → performances →
        // actors, with the character name in a str_str_map.
        let character_id = "character.batman".to_string();
        mk_vertex(&client, &character_id, "Batman", "");
        for f in 0..spec.character_films {
            let fid = format!("batfilm{f:02}");
            mk_vertex(&client, &fid, &format!("Batman Film {f}"), "");
            mk_edge(&client, &character_id, "character.film", &fid);
            mk_edge(&client, &fid, "film.genre", "genre.action");
            // Two performances per film; only one is the Batman role.
            for (p, character) in [("hero", "Batman"), ("villain", "Joker")] {
                let pid = format!("perf.{fid}.{p}");
                client
                    .create_vertex(
                        TENANT,
                        GRAPH,
                        "entity",
                        &format!(
                            r#"{{"id": "{pid}", "str_str_map": {{"character": "{character}"}}}}"#
                        ),
                    )
                    .unwrap();
                mk_edge(&client, &fid, "film.performance", &pid);
                let actor = format!("actor{:05}", rng.gen_range(0..spec.actor_pool));
                mk_edge(&client, &pid, "performance.actor", &actor);
            }
        }

        KnowledgeGraph {
            cluster,
            client,
            spec,
            director_id,
            character_id,
            hub_actor_id,
        }
    }

    /// Paper Table 2 Q1.
    pub fn q1(&self) -> String {
        format!(
            r#"{{ "id" : "{}",
                "_out_edge" : {{ "_type" : "director.film",
                "_vertex" : {{
                "_out_edge" : {{ "_type" : "film.actor",
                "_vertex" : {{
                "_select" : ["_count(*)"] }}}}}}}}}}"#,
            self.director_id
        )
    }

    /// Paper Table 2 Q2.
    pub fn q2(&self) -> String {
        format!(
            r#"{{ "id" : "{}",
                "_out_edge" : {{ "_type" : "character.film",
                "_vertex" : {{
                "_out_edge" : {{ "_type" : "film.performance",
                "_vertex" : {{
                "str_str_map[character]" : "Batman",
                "_out_edge" : {{ "_type" : "performance.actor",
                "_vertex" : {{
                "_select" : ["_count(*)"] }}}}}}}}}}}}}}"#,
            self.character_id
        )
    }

    /// Paper Table 2 Q3 (star match: war films with the hub actor).
    pub fn q3(&self) -> String {
        format!(
            r#"{{ "id" : "{}",
                "_out_edge" : {{ "_type" : "director.film",
                "_vertex" : {{ "_type" : "entity",
                "_select" : ["name[0]"],
                "_match" : [{{
                "_out_edge" : {{ "_type" : "film.actor",
                "_vertex" : {{ "id" : "{}" }}}}}},
                {{ "_out_edge" : {{ "_type" : "film.genre",
                "_vertex" : {{ "id" : "genre.war" }}}}}}] }}}}}}"#,
            self.director_id, self.hub_actor_id
        )
    }

    /// Paper Table 2 Q4 (stress: 3-hop fan-out).
    pub fn q4(&self) -> String {
        format!(
            r#"{{ "id" : "{}",
                "_out_edge" : {{ "_type" : "actor.film",
                "_vertex" : {{
                "_out_edge" : {{ "_type" : "film.actor",
                "_vertex" : {{
                "_out_edge" : {{ "_type" : "actor.film",
                "_vertex" : {{
                "_select" : ["_count(*)"] }}}}}}}}}}}}}}"#,
            self.hub_actor_id
        )
    }
}

/// Uniform random graph for the Figure 14 scaling study.
#[derive(Debug, Clone)]
pub struct UniformGraphSpec {
    pub vertices: usize,
    pub edges: usize,
    pub seed: u64,
}

impl UniformGraphSpec {
    /// The paper's 23 M / 63 M dataset scaled by `factor` (e.g. 1000 → 23 k
    /// vertices).
    pub fn paper_scaled(factor: usize) -> UniformGraphSpec {
        UniformGraphSpec {
            vertices: (23_000_000 / factor).max(100),
            edges: (63_000_000 / factor).max(300),
            seed: 0x14,
        }
    }

    /// Load into a cluster; returns query start ids.
    pub fn load(&self, cluster: &A1Cluster) -> Vec<String> {
        let client = cluster.client();
        client.create_tenant(TENANT).unwrap();
        client.create_graph(TENANT, GRAPH).unwrap();
        client
            .create_vertex_type(TENANT, GRAPH, ENTITY_SCHEMA, "id", &[])
            .unwrap();
        client
            .create_edge_type(TENANT, GRAPH, r#"{"name": "link", "fields": []}"#)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(self.seed);
        for v in 0..self.vertices {
            client
                .create_vertex(TENANT, GRAPH, "entity", &format!(r#"{{"id": "v{v:07}"}}"#))
                .unwrap();
        }
        let mut made = 0usize;
        while made < self.edges {
            let a = rng.gen_range(0..self.vertices);
            let b = rng.gen_range(0..self.vertices);
            if a == b {
                continue;
            }
            let r = client.create_edge(
                TENANT,
                GRAPH,
                "entity",
                &Json::str(&format!("v{a:07}")),
                "link",
                "entity",
                &Json::str(&format!("v{b:07}")),
                None,
            );
            if r.is_ok() {
                made += 1;
            }
        }
        (0..32.min(self.vertices))
            .map(|i| format!("v{:07}", i * (self.vertices / 32).max(1)))
            .collect()
    }

    /// The 2-hop query used for Figure 14.
    pub fn two_hop_query(start: &str) -> String {
        format!(
            r#"{{ "id": "{start}", "_out_edge": {{ "_type": "link",
                "_vertex": {{ "_out_edge": {{ "_type": "link",
                "_vertex": {{ "_select": ["_count(*)"] }}}}}}}}}}"#
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_kg_loads_and_queries() {
        let kg = KnowledgeGraph::load(A1Config::small(3), KnowledgeGraphSpec::tiny());
        let out = kg.client.query(TENANT, GRAPH, &kg.q1()).unwrap();
        assert!(out.count.unwrap() > 0, "Q1 finds actors");
        let out = kg.client.query(TENANT, GRAPH, &kg.q2()).unwrap();
        assert!(out.count.unwrap() > 0, "Q2 finds Batman actors");
        let out = kg.client.query(TENANT, GRAPH, &kg.q3()).unwrap();
        assert!(
            !out.rows.is_empty(),
            "Q3 finds war films with the hub actor"
        );
        let out = kg.client.query(TENANT, GRAPH, &kg.q4()).unwrap();
        assert!(out.count.unwrap() > 0, "Q4 finds co-star films");
    }

    #[test]
    fn uniform_graph_loads() {
        let cluster = A1Cluster::start(A1Config::small(3)).unwrap();
        let spec = UniformGraphSpec {
            vertices: 200,
            edges: 500,
            seed: 1,
        };
        let starts = spec.load(&cluster);
        assert!(!starts.is_empty());
        let client = cluster.client();
        let out = client
            .query(TENANT, GRAPH, &UniformGraphSpec::two_hop_query(&starts[0]))
            .unwrap();
        assert!(out.count.is_some());
    }
}
