//! Benchmark harness for the A1 reproduction: workload generators, the
//! trace-driven discrete-event throughput simulator, and runners that
//! regenerate every table and figure in the paper's evaluation (§6).
//!
//! See DESIGN.md §3 for the experiment ↔ module map and EXPERIMENTS.md for
//! recorded paper-vs-measured results.

pub mod cache;
pub mod costmodel;
pub mod des;
pub mod fetch;
pub mod figures;
pub mod ingest;
pub mod loadgen;
pub mod morsel;
pub mod perf;
pub mod sim;
pub mod validate;
pub mod wire;
pub mod workload;

pub use cache::{cache_report, cache_suite_to_json, run_cache_suite, CacheBenchResult, CacheSuite};
pub use costmodel::{CostModel, HopDemand, QueryProfile};
pub use des::{DesConfig, DesResult};
pub use fetch::{fetch_report, fetch_suite_to_json, run_fetch_suite, FetchBenchResult, FetchSuite};
pub use ingest::{ingest_suite_to_json, run_ingest_suite, IngestBenchResult};
pub use loadgen::{
    run_serve_suite, serve_report, serve_suite_to_json, ServeRung, ServeSuite,
    SERVE_QPS_FLOOR_QUICK,
};
pub use perf::{run_suite, suite_to_json, WorkloadResult};
pub use validate::{validate_doc, validate_text};
pub use wire::{run_wire_suite, wire_suite_to_json, WireQueryResult, WireSuite};
pub use workload::{KnowledgeGraph, KnowledgeGraphSpec, UniformGraphSpec};
