//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p a1-bench --bin experiments -- all
//! cargo run --release -p a1-bench --bin experiments -- fig10
//! ```
//!
//! Targets: table2, fig10, fig11, fig12, fig13, fig14, q4, locality,
//! baseline, ablation-mvcc, ablation-edges, fast-restart, all.

use a1_bench::figures;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target = args.first().map(String::as_str).unwrap_or("all");
    let fig14_scale: usize = args
        .iter()
        .position(|a| a == "--fig14-scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);

    let run = |name: &str| -> Option<String> {
        match name {
            "table2" => Some(figures::table2()),
            "fig10" => Some(figures::latency_vs_throughput("fig10")),
            "fig11" => Some(figures::fig11()),
            "fig12" => Some(figures::latency_vs_throughput("fig12")),
            "fig13" => Some(figures::latency_vs_throughput("fig13")),
            "fig14" => Some(figures::fig14(fig14_scale)),
            "q4" => Some(figures::q4_stress()),
            "locality" => Some(figures::locality()),
            "baseline" => Some(figures::baseline_compare()),
            "ablation-mvcc" => Some(figures::ablation_mvcc()),
            "ablation-edges" => Some(figures::ablation_edges()),
            "fast-restart" => Some(figures::fast_restart()),
            _ => None,
        }
    };

    let all = [
        "table2",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "q4",
        "locality",
        "baseline",
        "ablation-mvcc",
        "ablation-edges",
        "fast-restart",
    ];
    if target == "all" {
        for name in all {
            println!("{}", run(name).expect("known target"));
        }
    } else {
        match run(target) {
            Some(text) => println!("{text}"),
            None => {
                eprintln!("unknown target '{target}'. Targets: {}", all.join(", "));
                std::process::exit(2);
            }
        }
    }
}
