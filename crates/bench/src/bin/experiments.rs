//! Regenerate the paper's tables and figures, and run the perf-trajectory
//! suite.
//!
//! ```text
//! cargo run --release -p a1-bench --bin experiments -- all
//! cargo run --release -p a1-bench --bin experiments -- fig10
//! cargo run --release -p a1-bench --bin experiments -- --quick --json
//! ```
//!
//! Figure targets: table2, fig10, fig11, fig12, fig13, fig14, q4, locality,
//! baseline, ablation-mvcc, ablation-edges, fast-restart, fanout, ingest,
//! wire, morsel, serve, cache, fetch, sim, all.
//!
//! Simulation targets (deterministic fault injection, crates/sim):
//!
//! * `sim` — fixed-seed scenario block, every run twice to prove replay.
//! * `sim --scenario <name> --seed <n>` — replay one run (every failure
//!   prints this exact command).
//! * `sim --sweep <n> [--seed0 <s>]` — randomized n-seed sweep over the
//!   whole catalog; failures print repro commands.
//!
//! Flags:
//!
//! * `--json` — run the perf-trajectory suites (real wall-clock latency of
//!   Q1/Q4 under the serial and parallel coordinator, ingest throughput:
//!   single-op vs group-commit vs partition-parallel, the wire suite:
//!   codec micro-bench + bytes-on-wire, binary vs JSON, the intra
//!   suite: serial vs morsel-parallel work ops on hub-skewed and uniform
//!   frontiers, the serve suite: open-loop Poisson load against the
//!   admission-controlled front door, and the cache suite: hot-vertex read
//!   cache vs bypass on a hub-skewed repeated-read workload under churn,
//!   the fetch suite: scalar vs doorbell-batched one-sided reads on the
//!   inline-fetch path under churn, and the sim suite: the deterministic
//!   fault-scenario catalog with its replayability check) and print one
//!   JSON document (schema `a1-bench-v8`) to stdout. CI uploads this as an
//!   artifact; `BENCH_<n>.json` snapshots are committed at the repo root.
//! * `--validate <file>` — check a `--json` artifact against the
//!   `a1-bench-v8` schema; exits 2 with a diagnostic on violation.
//! * `--quick` — smaller workload + fewer iterations (CI-speed).
//! * `--fig14-scale N` — divisor applied to the paper's Figure 14 dataset.

use a1_bench::{cache, fetch, figures, ingest, loadgen, morsel, perf, sim, validate, wire};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Deterministic-simulation entry points. `sim --scenario X --seed N`
    // replays one run (the repro command failures print); `sim --sweep N`
    // runs the randomized seed sweep; bare `sim` falls through to the
    // fixed-seed report below.
    if args.first().map(String::as_str) == Some("sim") {
        let flag_val = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1))
        };
        let seed: u64 = flag_val("--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
        if let Some(name) = flag_val("--scenario") {
            std::process::exit(if sim::run_one(name, seed) { 0 } else { 1 });
        }
        if let Some(n) = flag_val("--sweep").and_then(|v| v.parse::<u64>().ok()) {
            let seed0: u64 = flag_val("--seed0")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            std::process::exit(if sim::run_sweep(seed0, n) { 0 } else { 1 });
        }
    }

    // `--validate <file>`: schema-check an existing artifact and exit.
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("--validate requires a file path");
            std::process::exit(2);
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        };
        match validate::validate_text(&text) {
            Ok(()) => {
                println!("{path}: valid {}", validate::SCHEMA);
                return;
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        }
    }

    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");
    let fig14_scale: usize = args
        .iter()
        .position(|a| a == "--fig14-scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    // The target is the first non-flag argument, skipping `--fig14-scale`'s
    // value.
    let mut target = None;
    let mut skip_value = false;
    for a in &args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if a == "--fig14-scale" {
            skip_value = true;
            continue;
        }
        if !a.starts_with("--") {
            target = Some(a.clone());
            break;
        }
    }
    let target = target.unwrap_or_else(|| "all".to_string());

    if json {
        let results = perf::run_suite(quick);
        let ingest_results = ingest::run_ingest_suite(quick);
        let wire_results = wire::run_wire_suite(quick);
        let morsel_results = morsel::run_morsel_suite(quick);
        let serve_results = loadgen::run_serve_suite(quick);
        let cache_results = cache::run_cache_suite(quick);
        let fetch_results = fetch::run_fetch_suite(quick);
        let sim_results = sim::run_sim_suite(quick);
        // One document carrying all suites, so the perf-trajectory CI job
        // tracks wire bytes, ingest throughput, morsel speedup and serving
        // headroom alongside Q1/Q4 latency.
        let mut doc = match perf::suite_to_json(&results, quick) {
            a1_core::Json::Obj(mut fields) => {
                for (k, v) in fields.iter_mut() {
                    if k == "schema" {
                        *v = a1_core::Json::str(validate::SCHEMA);
                    }
                }
                fields
            }
            other => vec![("results".to_string(), other)],
        };
        doc.push((
            "ingest".to_string(),
            ingest::ingest_suite_to_json(&ingest_results),
        ));
        doc.push(("wire".to_string(), wire::wire_suite_to_json(&wire_results)));
        doc.push((
            "intra".to_string(),
            morsel::morsel_suite_to_json(&morsel_results),
        ));
        doc.push((
            "serve".to_string(),
            loadgen::serve_suite_to_json(&serve_results),
        ));
        doc.push((
            "cache".to_string(),
            cache::cache_suite_to_json(&cache_results),
        ));
        doc.push((
            "fetch".to_string(),
            fetch::fetch_suite_to_json(&fetch_results),
        ));
        doc.push(("sim".to_string(), sim::sim_suite_to_json(&sim_results)));
        let doc = a1_core::Json::Obj(doc);
        // The emitter must always satisfy its own `--validate` contract.
        if let Err(e) = validate::validate_doc(&doc) {
            eprintln!("generated document violates its own schema: {e}");
            std::process::exit(1);
        }
        println!("{}", doc.to_string_pretty());
        return;
    }

    let run = |name: &str| -> Option<String> {
        match name {
            "table2" => Some(figures::table2()),
            "fig10" => Some(figures::latency_vs_throughput("fig10")),
            "fig11" => Some(figures::fig11()),
            "fig12" => Some(figures::latency_vs_throughput("fig12")),
            "fig13" => Some(figures::latency_vs_throughput("fig13")),
            "fig14" => Some(figures::fig14(fig14_scale)),
            "q4" => Some(figures::q4_stress()),
            "locality" => Some(figures::locality()),
            "baseline" => Some(figures::baseline_compare()),
            "ablation-mvcc" => Some(figures::ablation_mvcc()),
            "ablation-edges" => Some(figures::ablation_edges()),
            "fast-restart" => Some(figures::fast_restart()),
            "fanout" => Some(perf::fanout_report(quick)),
            "ingest" => Some(ingest::ingest_report(quick)),
            "wire" => Some(wire::wire_report(quick)),
            "morsel" => Some(morsel::morsel_report(quick)),
            "serve" => Some(loadgen::serve_report(quick)),
            "cache" => Some(cache::cache_report(quick)),
            "fetch" => Some(fetch::fetch_report(quick)),
            "sim" => Some(sim::sim_report(quick)),
            _ => None,
        }
    };

    let all = [
        "table2",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "q4",
        "locality",
        "baseline",
        "ablation-mvcc",
        "ablation-edges",
        "fast-restart",
        "fanout",
        "ingest",
        "wire",
        "morsel",
        "serve",
        "cache",
        "fetch",
        "sim",
    ];
    if target == "all" {
        for name in all {
            println!("{}", run(name).expect("known target"));
        }
    } else {
        match run(&target) {
            Some(text) => println!("{text}"),
            None => {
                eprintln!("unknown target '{target}'. Targets: {}", all.join(", "));
                std::process::exit(2);
            }
        }
    }
}
