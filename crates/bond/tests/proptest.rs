//! Property tests for the bond wire format and key encoding.

use a1_bond::{decode_record, encode_record, keyenc, Record, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(Value::Int32),
        any::<i64>().prop_map(Value::Int64),
        any::<u64>().prop_map(Value::UInt64),
        any::<i64>().prop_map(Value::Date),
        // Finite + special doubles; NaN excluded because Record equality uses
        // PartialEq (NaN != NaN), not because the codec can't carry it.
        prop_oneof![
            any::<i32>().prop_map(|n| n as f64),
            Just(f64::INFINITY),
            Just(-0.0)
        ]
        .prop_map(Value::Double),
        "\\PC{0,16}".prop_map(Value::String),
        prop::collection::vec(any::<u8>(), 0..16).prop_map(Value::Blob),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            prop::collection::vec((inner.clone(), inner), 0..4).prop_map(Value::Map),
        ]
    })
}

fn arb_record() -> impl Strategy<Value = Record> {
    prop::collection::btree_map(any::<u16>(), arb_value(), 0..8).prop_map(|m| {
        let mut rec = Record::new();
        for (id, v) in m {
            rec.set(id, v);
        }
        rec
    })
}

proptest! {
    #[test]
    fn wire_roundtrip(rec in arb_record()) {
        let bytes = encode_record(&rec);
        let back = decode_record(&bytes).unwrap();
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_record(&bytes);
    }
}

/// Keyable values only (no lists/maps, no NaN ambiguity concerns — NaN is
/// fine for keyenc since total order is used, but we exclude it so the model
/// comparison below is simple).
fn arb_key_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int64),
        any::<u64>().prop_map(Value::UInt64),
        any::<i32>().prop_map(|n| Value::Double(n as f64)),
        prop::collection::vec(any::<u8>(), 0..8).prop_map(Value::Blob),
        "[a-c\\x00]{0,6}".prop_map(Value::String),
    ]
}

/// Model ordering on tuples of key values: element-wise, by (tag rank, value).
fn model_cmp(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Bool(_) => 0,
            Value::Int32(_) | Value::Int64(_) | Value::Date(_) => 1,
            Value::UInt64(_) => 2,
            Value::Double(_) => 3,
            Value::String(_) | Value::Blob(_) => 4,
            _ => 5,
        }
    }
    fn bytes_of(v: &Value) -> Vec<u8> {
        match v {
            Value::String(s) => s.as_bytes().to_vec(),
            Value::Blob(b) => b.clone(),
            _ => unreachable!(),
        }
    }
    for (x, y) in a.iter().zip(b.iter()) {
        let c = rank(x).cmp(&rank(y));
        if c != Ordering::Equal {
            return c;
        }
        let c = if rank(x) == 4 {
            bytes_of(x).cmp(&bytes_of(y))
        } else {
            x.compare(y).unwrap_or(Ordering::Equal)
        };
        if c != Ordering::Equal {
            return c;
        }
    }
    a.len().cmp(&b.len())
}

proptest! {
    #[test]
    fn keyenc_order_preserving(
        a in prop::collection::vec(arb_key_value(), 0..3),
        b in prop::collection::vec(arb_key_value(), 0..3),
    ) {
        let ka = keyenc::encode_tuple(&a).unwrap();
        let kb = keyenc::encode_tuple(&b).unwrap();
        prop_assert_eq!(ka.cmp(&kb), model_cmp(&a, &b));
    }
}
