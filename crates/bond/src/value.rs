//! Dynamically-typed Bond values and records.

/// The Bond type system supported by A1 (paper §3): primitives plus composite
/// lists and maps, with nesting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BondType {
    Bool,
    Int32,
    Int64,
    UInt64,
    Double,
    String,
    /// Days since the Unix epoch (may be negative).
    Date,
    Blob,
    List(Box<BondType>),
    Map(Box<BondType>, Box<BondType>),
}

impl BondType {
    /// Parse a type from its textual form, e.g. `"list<string>"`,
    /// `"map<string,string>"`. Used by schema declarations in examples/tests.
    pub fn parse(s: &str) -> Option<BondType> {
        let s = s.trim();
        Some(match s {
            "bool" => BondType::Bool,
            "int32" => BondType::Int32,
            "int64" => BondType::Int64,
            "uint64" => BondType::UInt64,
            "double" => BondType::Double,
            "string" => BondType::String,
            "date" => BondType::Date,
            "blob" => BondType::Blob,
            _ => {
                if let Some(inner) = s.strip_prefix("list<").and_then(|r| r.strip_suffix('>')) {
                    BondType::List(Box::new(BondType::parse(inner)?))
                } else if let Some(inner) = s.strip_prefix("map<").and_then(|r| r.strip_suffix('>'))
                {
                    let (k, v) = split_top_level(inner)?;
                    BondType::Map(Box::new(BondType::parse(k)?), Box::new(BondType::parse(v)?))
                } else {
                    return None;
                }
            }
        })
    }
}

/// Split `"k,v"` at the top-level comma (ignoring commas inside `<...>`).
fn split_top_level(s: &str) -> Option<(&str, &str)> {
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => depth = depth.checked_sub(1)?,
            ',' if depth == 0 => return Some((&s[..i], &s[i + 1..])),
            _ => {}
        }
    }
    None
}

impl std::fmt::Display for BondType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BondType::Bool => write!(f, "bool"),
            BondType::Int32 => write!(f, "int32"),
            BondType::Int64 => write!(f, "int64"),
            BondType::UInt64 => write!(f, "uint64"),
            BondType::Double => write!(f, "double"),
            BondType::String => write!(f, "string"),
            BondType::Date => write!(f, "date"),
            BondType::Blob => write!(f, "blob"),
            BondType::List(e) => write!(f, "list<{e}>"),
            BondType::Map(k, v) => write!(f, "map<{k},{v}>"),
        }
    }
}

/// A dynamically-typed Bond value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Bool(bool),
    Int32(i32),
    Int64(i64),
    UInt64(u64),
    Double(f64),
    String(String),
    Date(i64),
    Blob(Vec<u8>),
    List(Vec<Value>),
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// Whether this value conforms to `ty` (recursively; empty composites
    /// conform to any element type).
    pub fn conforms_to(&self, ty: &BondType) -> bool {
        match (self, ty) {
            (Value::Bool(_), BondType::Bool)
            | (Value::Int32(_), BondType::Int32)
            | (Value::Int64(_), BondType::Int64)
            | (Value::UInt64(_), BondType::UInt64)
            | (Value::Double(_), BondType::Double)
            | (Value::String(_), BondType::String)
            | (Value::Date(_), BondType::Date)
            | (Value::Blob(_), BondType::Blob) => true,
            (Value::List(items), BondType::List(elem)) => items.iter().all(|v| v.conforms_to(elem)),
            (Value::Map(pairs), BondType::Map(k, v)) => pairs
                .iter()
                .all(|(pk, pv)| pk.conforms_to(k) && pv.conforms_to(v)),
            _ => false,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int32(v) => Some(*v as i64),
            Value::Int64(v) | Value::Date(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            Value::Int32(v) => Some(*v as f64),
            Value::Int64(v) => Some(*v as f64),
            Value::UInt64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Map lookup by string key (for `str_str_map[key]` predicates, §6 Q2).
    pub fn map_get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs
                .iter()
                .find(|(k, _)| k.as_str() == Some(key))
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// Total comparison between two values of the same primitive type; `None`
    /// for mismatched or composite types. Used by query predicates and key
    /// ordering. Doubles compare by IEEE total order so the result is total.
    pub fn compare(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use Value::*;
        Some(match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int32(a), Int32(b)) => a.cmp(b),
            (Int64(a), Int64(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (UInt64(a), UInt64(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (String(a), String(b)) => a.cmp(b),
            (Blob(a), Blob(b)) => a.cmp(b),
            _ => return None,
        })
    }
}

/// A set of (field id → value) pairs, sorted by field id.
///
/// Records are what get serialized into a vertex or edge data object. They
/// are validated against the declaring type's [`crate::Schema`] on write.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    fields: Vec<(u16, Value)>,
}

impl Record {
    pub fn new() -> Record {
        Record::default()
    }

    /// Set a field, replacing any existing value for the id.
    pub fn set(&mut self, id: u16, value: Value) -> &mut Self {
        match self.fields.binary_search_by_key(&id, |(i, _)| *i) {
            Ok(pos) => self.fields[pos].1 = value,
            Err(pos) => self.fields.insert(pos, (id, value)),
        }
        self
    }

    pub fn with(mut self, id: u16, value: Value) -> Self {
        self.set(id, value);
        self
    }

    pub fn get(&self, id: u16) -> Option<&Value> {
        self.fields
            .binary_search_by_key(&id, |(i, _)| *i)
            .ok()
            .map(|pos| &self.fields[pos].1)
    }

    pub fn remove(&mut self, id: u16) -> Option<Value> {
        match self.fields.binary_search_by_key(&id, |(i, _)| *i) {
            Ok(pos) => Some(self.fields.remove(pos).1),
            Err(_) => None,
        }
    }

    pub fn fields(&self) -> &[(u16, Value)] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_parse_display_roundtrip() {
        for t in [
            "bool",
            "int32",
            "int64",
            "uint64",
            "double",
            "string",
            "date",
            "blob",
            "list<string>",
            "map<string,string>",
            "list<map<string,list<int64>>>",
        ] {
            let ty = BondType::parse(t).unwrap();
            assert_eq!(ty.to_string(), t);
        }
        assert!(BondType::parse("float").is_none());
        assert!(BondType::parse("list<").is_none());
        assert!(BondType::parse("map<string>").is_none());
    }

    #[test]
    fn conformance() {
        assert!(Value::Int64(3).conforms_to(&BondType::Int64));
        assert!(!Value::Int64(3).conforms_to(&BondType::Int32));
        assert!(Value::List(vec![]).conforms_to(&BondType::List(Box::new(BondType::Bool))));
        assert!(Value::List(vec![Value::Bool(true)])
            .conforms_to(&BondType::List(Box::new(BondType::Bool))));
        assert!(!Value::List(vec![Value::Int32(1)])
            .conforms_to(&BondType::List(Box::new(BondType::Bool))));
        let m = Value::Map(vec![(Value::String("a".into()), Value::Int64(1))]);
        assert!(m.conforms_to(&BondType::Map(
            Box::new(BondType::String),
            Box::new(BondType::Int64)
        )));
        assert!(!m.conforms_to(&BondType::Map(
            Box::new(BondType::Int64),
            Box::new(BondType::Int64)
        )));
    }

    #[test]
    fn record_set_get_sorted() {
        let mut r = Record::new();
        r.set(5, Value::Bool(true));
        r.set(1, Value::Int32(7));
        r.set(5, Value::Bool(false)); // overwrite
        assert_eq!(r.len(), 2);
        assert_eq!(r.fields()[0].0, 1);
        assert_eq!(r.get(5), Some(&Value::Bool(false)));
        assert_eq!(r.remove(1), Some(Value::Int32(7)));
        assert_eq!(r.get(1), None);
    }

    #[test]
    fn compare_totals() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int64(1).compare(&Value::Int64(2)), Some(Less));
        assert_eq!(
            Value::Double(f64::NAN).compare(&Value::Double(f64::NAN)),
            Some(Equal)
        );
        assert_eq!(Value::Int64(1).compare(&Value::String("x".into())), None);
        assert_eq!(
            Value::String("a".into()).compare(&Value::String("b".into())),
            Some(Less)
        );
    }

    #[test]
    fn map_get() {
        let m = Value::Map(vec![(
            Value::String("character".into()),
            Value::String("Batman".into()),
        )]);
        assert_eq!(m.map_get("character").unwrap().as_str(), Some("Batman"));
        assert!(m.map_get("other").is_none());
        assert!(Value::Int64(1).map_get("x").is_none());
    }
}
