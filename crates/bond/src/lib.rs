//! Bond-like schematized serialization.
//!
//! The paper (§3) uses Microsoft Bond to schematize vertex and edge payloads:
//! typed attributes with numeric field ids, compact binary encoding, and a
//! type system with primitives, lists, maps and nesting. Bond itself is not
//! reproducible here, so this crate implements the subset A1 relies on:
//!
//! * [`Schema`] — named, ordered field definitions with stable field ids.
//! * [`Value`] / [`Record`] — dynamically-typed values validated against a schema.
//! * [`wire`] — a compact self-describing binary encoding (varint/zigzag based)
//!   so that readers can skip unknown fields (schema evolution).
//! * [`frame`] — the versioned binary message frame (magic + version + tag)
//!   wrapping every inter-machine payload; the magic byte doubles as the
//!   binary-vs-JSON format discriminator.
//! * [`keyenc`] — an order-preserving byte encoding for index keys, used by
//!   A1's primary and secondary B-tree indexes.

pub mod frame;
pub mod keyenc;
pub mod schema;
pub mod value;
pub mod wire;

pub use frame::{MsgTag, WireFormat};
pub use schema::{FieldDef, Schema, SchemaError};
pub use value::{BondType, Record, Value};
pub use wire::{decode_record, encode_record, WireError};

#[cfg(test)]
mod tests {
    use super::*;

    /// The Actor/Film example from paper §3 (Fig. 5).
    #[test]
    fn paper_actor_film_schema() {
        let actor = Schema::build(
            "Actor",
            vec![
                FieldDef::required(0, "name", BondType::String),
                FieldDef::optional(1, "origin", BondType::String),
                FieldDef::optional(2, "birth_date", BondType::Date),
            ],
        )
        .unwrap();

        let mut rec = Record::new();
        rec.set(0, Value::String("Tom Hanks".into()));
        rec.set(1, Value::String("USA".into()));
        rec.set(2, Value::Date(-4930)); // 1956-07-09 in days since epoch
        actor.validate(&rec).unwrap();

        let bytes = encode_record(&rec);
        let back = decode_record(&bytes).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.get(0), Some(&Value::String("Tom Hanks".into())));
        assert_eq!(actor.field_by_name("origin").unwrap().id, 1);
    }

    /// Knowledge-graph entities use a string→string map attribute (§5, Q2's
    /// `str_str_map[character]` predicate).
    #[test]
    fn weakly_typed_entity() {
        let entity = Schema::build(
            "entity",
            vec![
                FieldDef::required(0, "id", BondType::String),
                FieldDef::optional(1, "name", BondType::List(Box::new(BondType::String))),
                FieldDef::optional(
                    2,
                    "str_str_map",
                    BondType::Map(Box::new(BondType::String), Box::new(BondType::String)),
                ),
            ],
        )
        .unwrap();
        let mut rec = Record::new();
        rec.set(0, Value::String("character.batman".into()));
        rec.set(1, Value::List(vec![Value::String("Batman".into())]));
        rec.set(
            2,
            Value::Map(vec![(
                Value::String("universe".into()),
                Value::String("DC".into()),
            )]),
        );
        entity.validate(&rec).unwrap();
        let back = decode_record(&encode_record(&rec)).unwrap();
        assert_eq!(back, rec);
    }
}
