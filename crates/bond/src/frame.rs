//! The versioned binary message frame for inter-machine traffic.
//!
//! Every binary message on the (simulated) RDMA fabric — work-op ships,
//! query/page requests, their replies, replication-log entry bodies and
//! ingest stream records — is wrapped in a four-part frame:
//!
//! ```text
//!   ┌───────┬─────────┬─────┬──────────────────────────────┐
//!   │ magic │ version │ tag │ Bond compact-binary body     │
//!   │ 0xA1  │  0x01   │ u8  │ (wire::encode_record)        │
//!   └───────┴─────────┴─────┴──────────────────────────────┘
//! ```
//!
//! The magic byte doubles as a format discriminator: no JSON text starts
//! with `0xA1` (it is not valid UTF-8 as a first byte), so receivers can
//! auto-detect binary frames vs. the legacy JSON wire with a single byte
//! probe ([`is_binary`]) — which is how replication-log entries written by
//! pre-binary builds still replay, byte-for-byte, through the DR path.
//!
//! The version byte is strict: decoders reject frames from a future
//! protocol version instead of misinterpreting them. New message kinds get
//! new tags; unknown tags are a decode error (the RPC layer replies with a
//! structured error rather than guessing).

use crate::value::Record;
use crate::wire::{decode_record, encode_record, WireError};

/// First byte of every binary frame (also the format discriminator).
pub const MAGIC: u8 = 0xA1;

/// Current protocol version.
pub const VERSION: u8 = 0x01;

/// Message kind carried by a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgTag {
    /// A shipped worker operator batch (coordinator → worker).
    WorkOp = 0x01,
    /// A worker's successful reply.
    WorkResult = 0x02,
    /// A client query request (client/frontend → coordinator).
    Query = 0x03,
    /// A continuation-page request.
    Page = 0x04,
    /// A successful query outcome (rows/count/metrics).
    Outcome = 0x05,
    /// A mutation / replication-log entry body.
    Mutation = 0x06,
    /// An ingest stream record (mutation + delivery envelope).
    MutationRecord = 0x07,
    /// A structured error reply (code + message).
    Error = 0x08,
}

impl MsgTag {
    pub fn from_byte(b: u8) -> Option<MsgTag> {
        Some(match b {
            0x01 => MsgTag::WorkOp,
            0x02 => MsgTag::WorkResult,
            0x03 => MsgTag::Query,
            0x04 => MsgTag::Page,
            0x05 => MsgTag::Outcome,
            0x06 => MsgTag::Mutation,
            0x07 => MsgTag::MutationRecord,
            0x08 => MsgTag::Error,
            _ => return None,
        })
    }
}

/// Which encoding a producer puts on the wire. Binary is the default
/// everywhere; JSON remains as the external client/debug format and for
/// replaying logs written by older builds (decoders always auto-detect).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    #[default]
    Binary,
    Json,
}

/// Does this buffer start a binary frame (vs. legacy JSON text)?
pub fn is_binary(buf: &[u8]) -> bool {
    buf.first() == Some(&MAGIC)
}

/// Wrap a body record in a frame.
pub fn frame(tag: MsgTag, body: &Record) -> Vec<u8> {
    let encoded = encode_record(body);
    let mut out = Vec::with_capacity(3 + encoded.len());
    out.push(MAGIC);
    out.push(VERSION);
    out.push(tag as u8);
    out.extend_from_slice(&encoded);
    out
}

/// Split a frame into its tag and body record, validating magic + version.
pub fn unframe(buf: &[u8]) -> Result<(MsgTag, Record), WireError> {
    if buf.len() < 3 {
        return Err(WireError::Truncated);
    }
    if buf[0] != MAGIC {
        return Err(WireError::BadMagic(buf[0]));
    }
    if buf[1] != VERSION {
        return Err(WireError::UnsupportedVersion(buf[1]));
    }
    let tag = MsgTag::from_byte(buf[2]).ok_or(WireError::UnknownTag(buf[2]))?;
    let body = decode_record(&buf[3..])?;
    Ok((tag, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn frame_roundtrip() {
        let rec = Record::new()
            .with(0, Value::String("héllo".into()))
            .with(3, Value::UInt64(42));
        let buf = frame(MsgTag::WorkOp, &rec);
        assert!(is_binary(&buf));
        assert_eq!(buf[1], VERSION);
        let (tag, back) = unframe(&buf).unwrap();
        assert_eq!(tag, MsgTag::WorkOp);
        assert_eq!(back, rec);
    }

    #[test]
    fn rejects_bad_frames() {
        assert_eq!(unframe(&[]), Err(WireError::Truncated));
        assert_eq!(unframe(&[MAGIC, VERSION]), Err(WireError::Truncated));
        assert_eq!(
            unframe(&[0x7B, VERSION, 0x01, 0]),
            Err(WireError::BadMagic(0x7B))
        );
        assert_eq!(
            unframe(&[MAGIC, 0x7F, 0x01, 0]),
            Err(WireError::UnsupportedVersion(0x7F))
        );
        assert_eq!(
            unframe(&[MAGIC, VERSION, 0xEE, 0]),
            Err(WireError::UnknownTag(0xEE))
        );
    }

    #[test]
    fn json_text_is_never_binary() {
        assert!(!is_binary(b"{\"t\":\"work\"}"));
        assert!(!is_binary(b"  {\"t\":\"ok\"}"));
        assert!(!is_binary(b""));
        // 0xA1 is a UTF-8 continuation byte: no JSON document can start
        // with it, so the single-byte probe is unambiguous.
        assert!(std::str::from_utf8(&[MAGIC]).is_err());
    }

    #[test]
    fn all_tags_roundtrip_through_bytes() {
        for tag in [
            MsgTag::WorkOp,
            MsgTag::WorkResult,
            MsgTag::Query,
            MsgTag::Page,
            MsgTag::Outcome,
            MsgTag::Mutation,
            MsgTag::MutationRecord,
            MsgTag::Error,
        ] {
            assert_eq!(MsgTag::from_byte(tag as u8), Some(tag));
        }
        assert_eq!(MsgTag::from_byte(0x00), None);
    }
}
