//! Schemas: named field definitions with stable numeric ids.

use crate::value::{BondType, Record};

/// One field of a schema, comparable to a column definition (paper Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    pub id: u16,
    pub name: String,
    pub ty: BondType,
    pub required: bool,
}

impl FieldDef {
    pub fn required(id: u16, name: &str, ty: BondType) -> FieldDef {
        FieldDef {
            id,
            name: name.to_string(),
            ty,
            required: true,
        }
    }

    pub fn optional(id: u16, name: &str, ty: BondType) -> FieldDef {
        FieldDef {
            id,
            name: name.to_string(),
            ty,
            required: false,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    DuplicateFieldId(u16),
    DuplicateFieldName(String),
    MissingRequiredField { field: String },
    TypeMismatch { field: String, expected: String },
    UnknownField(u16),
    EmptySchemaName,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::DuplicateFieldId(id) => write!(f, "duplicate field id {id}"),
            SchemaError::DuplicateFieldName(n) => write!(f, "duplicate field name '{n}'"),
            SchemaError::MissingRequiredField { field } => {
                write!(f, "missing required field '{field}'")
            }
            SchemaError::TypeMismatch { field, expected } => {
                write!(f, "field '{field}' does not conform to type {expected}")
            }
            SchemaError::UnknownField(id) => write!(f, "unknown field id {id}"),
            SchemaError::EmptySchemaName => write!(f, "schema name must not be empty"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// A vertex or edge type's attribute schema. Fields are kept sorted by id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: String,
    fields: Vec<FieldDef>,
}

impl Schema {
    /// Build a schema, validating id/name uniqueness.
    pub fn build(name: &str, mut fields: Vec<FieldDef>) -> Result<Schema, SchemaError> {
        if name.is_empty() {
            return Err(SchemaError::EmptySchemaName);
        }
        fields.sort_by_key(|f| f.id);
        for w in fields.windows(2) {
            if w[0].id == w[1].id {
                return Err(SchemaError::DuplicateFieldId(w[0].id));
            }
        }
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(SchemaError::DuplicateFieldName(f.name.clone()));
            }
        }
        Ok(Schema {
            name: name.to_string(),
            fields,
        })
    }

    /// An empty schema (edges frequently carry no attributes, §6).
    pub fn empty(name: &str) -> Schema {
        Schema::build(name, vec![]).expect("empty schema is valid")
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    pub fn field(&self, id: u16) -> Option<&FieldDef> {
        self.fields
            .binary_search_by_key(&id, |f| f.id)
            .ok()
            .map(|i| &self.fields[i])
    }

    pub fn field_by_name(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Validate a record against this schema: required fields present, all
    /// present fields known and type-conformant.
    pub fn validate(&self, rec: &Record) -> Result<(), SchemaError> {
        for f in &self.fields {
            match rec.get(f.id) {
                Some(v) if !v.conforms_to(&f.ty) => {
                    return Err(SchemaError::TypeMismatch {
                        field: f.name.clone(),
                        expected: f.ty.to_string(),
                    });
                }
                Some(_) => {}
                None if f.required => {
                    return Err(SchemaError::MissingRequiredField {
                        field: f.name.clone(),
                    })
                }
                None => {}
            }
        }
        for (id, _) in rec.fields() {
            if self.field(*id).is_none() {
                return Err(SchemaError::UnknownField(*id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn film() -> Schema {
        Schema::build(
            "Film",
            vec![
                FieldDef::required(0, "name", BondType::String),
                FieldDef::optional(1, "genre", BondType::String),
                FieldDef::optional(2, "release_date", BondType::Date),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_rejects_duplicates() {
        let e = Schema::build(
            "T",
            vec![
                FieldDef::required(0, "a", BondType::Bool),
                FieldDef::required(0, "b", BondType::Bool),
            ],
        )
        .unwrap_err();
        assert_eq!(e, SchemaError::DuplicateFieldId(0));

        let e = Schema::build(
            "T",
            vec![
                FieldDef::required(0, "a", BondType::Bool),
                FieldDef::required(1, "a", BondType::Bool),
            ],
        )
        .unwrap_err();
        assert_eq!(e, SchemaError::DuplicateFieldName("a".into()));

        assert_eq!(
            Schema::build("", vec![]).unwrap_err(),
            SchemaError::EmptySchemaName
        );
    }

    #[test]
    fn validation() {
        let s = film();
        let ok = Record::new().with(0, Value::String("Jaws".into()));
        s.validate(&ok).unwrap();

        let missing = Record::new().with(1, Value::String("thriller".into()));
        assert!(matches!(
            s.validate(&missing),
            Err(SchemaError::MissingRequiredField { .. })
        ));

        let wrong = Record::new().with(0, Value::Int64(3));
        assert!(matches!(
            s.validate(&wrong),
            Err(SchemaError::TypeMismatch { .. })
        ));

        let unknown = Record::new()
            .with(0, Value::String("Jaws".into()))
            .with(9, Value::Bool(true));
        assert_eq!(s.validate(&unknown), Err(SchemaError::UnknownField(9)));
    }

    #[test]
    fn lookup() {
        let s = film();
        assert_eq!(s.field(1).unwrap().name, "genre");
        assert_eq!(s.field_by_name("release_date").unwrap().id, 2);
        assert!(s.field(7).is_none());
        assert!(s.field_by_name("zzz").is_none());
        assert_eq!(s.name(), "Film");
        assert_eq!(s.fields().len(), 3);
    }
}
