//! Compact self-describing binary encoding.
//!
//! Layout: `varint(field_count)` then, per field sorted by id,
//! `varint(field_id) tag payload`. Every value carries its tag so readers can
//! skip fields whose ids they do not know (schema evolution), mirroring
//! Bond's compact binary protocol. Integers use LEB128 varints; signed values
//! are zigzag-encoded; doubles are 8 little-endian bytes.

use crate::value::{Record, Value};

const TAG_BOOL_FALSE: u8 = 0x01;
const TAG_BOOL_TRUE: u8 = 0x02;
const TAG_INT32: u8 = 0x03;
const TAG_INT64: u8 = 0x04;
const TAG_UINT64: u8 = 0x05;
const TAG_DOUBLE: u8 = 0x06;
const TAG_STRING: u8 = 0x07;
const TAG_DATE: u8 = 0x08;
const TAG_BLOB: u8 = 0x09;
const TAG_LIST: u8 = 0x0A;
const TAG_MAP: u8 = 0x0B;

/// Decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    Truncated,
    InvalidTag(u8),
    InvalidUtf8,
    VarintOverflow,
    /// Field ids must be strictly increasing within a record.
    UnsortedFields,
    TrailingBytes,
    /// Nesting deeper than [`MAX_DEPTH`] (hostile payloads must error, not
    /// overflow the decoder's stack).
    TooDeep,
    /// A framed message did not start with [`crate::frame::MAGIC`].
    BadMagic(u8),
    /// A framed message carried a protocol version this build cannot read.
    UnsupportedVersion(u8),
    /// A framed message carried an unknown message tag.
    UnknownTag(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated input"),
            WireError::InvalidTag(t) => write!(f, "invalid wire tag {t:#x}"),
            WireError::InvalidUtf8 => write!(f, "invalid utf-8 in string"),
            WireError::VarintOverflow => write!(f, "varint overflow"),
            WireError::UnsortedFields => write!(f, "field ids not strictly increasing"),
            WireError::TrailingBytes => write!(f, "trailing bytes after record"),
            WireError::TooDeep => write!(f, "nesting deeper than {MAX_DEPTH}"),
            WireError::BadMagic(b) => write!(f, "bad frame magic {b:#x}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t:#x}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Decoder recursion bound for nested lists/maps — matches the JSON text
/// parser's depth cap so neither wire can be driven into a stack overflow.
pub const MAX_DEPTH: u32 = 128;

pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(WireError::Truncated)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(WireError::VarintOverflow);
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(WireError::VarintOverflow);
        }
    }
}

pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encode a record to bytes.
pub fn encode_record(rec: &Record) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + rec.len() * 8);
    write_varint(&mut out, rec.len() as u64);
    for (id, v) in rec.fields() {
        write_varint(&mut out, *id as u64);
        write_value(&mut out, v);
    }
    out
}

/// Decode a record. The whole buffer must be consumed.
pub fn decode_record(buf: &[u8]) -> Result<Record, WireError> {
    let mut pos = 0usize;
    let n = read_varint(buf, &mut pos)?;
    let mut rec = Record::new();
    let mut last_id: Option<u16> = None;
    for _ in 0..n {
        let id = read_varint(buf, &mut pos)? as u16;
        if let Some(prev) = last_id {
            if id <= prev {
                return Err(WireError::UnsortedFields);
            }
        }
        last_id = Some(id);
        let v = read_value(buf, &mut pos, 0)?;
        rec.set(id, v);
    }
    if pos != buf.len() {
        return Err(WireError::TrailingBytes);
    }
    Ok(rec)
}

fn write_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Bool(false) => out.push(TAG_BOOL_FALSE),
        Value::Bool(true) => out.push(TAG_BOOL_TRUE),
        Value::Int32(v) => {
            out.push(TAG_INT32);
            write_varint(out, zigzag(*v as i64));
        }
        Value::Int64(v) => {
            out.push(TAG_INT64);
            write_varint(out, zigzag(*v));
        }
        Value::UInt64(v) => {
            out.push(TAG_UINT64);
            write_varint(out, *v);
        }
        Value::Double(v) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::String(s) => {
            out.push(TAG_STRING);
            write_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(v) => {
            out.push(TAG_DATE);
            write_varint(out, zigzag(*v));
        }
        Value::Blob(b) => {
            out.push(TAG_BLOB);
            write_varint(out, b.len() as u64);
            out.extend_from_slice(b);
        }
        Value::List(items) => {
            out.push(TAG_LIST);
            write_varint(out, items.len() as u64);
            for item in items {
                write_value(out, item);
            }
        }
        Value::Map(pairs) => {
            out.push(TAG_MAP);
            write_varint(out, pairs.len() as u64);
            for (k, v) in pairs {
                write_value(out, k);
                write_value(out, v);
            }
        }
    }
}

fn read_value(buf: &[u8], pos: &mut usize, depth: u32) -> Result<Value, WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError::TooDeep);
    }
    let tag = *buf.get(*pos).ok_or(WireError::Truncated)?;
    *pos += 1;
    Ok(match tag {
        TAG_BOOL_FALSE => Value::Bool(false),
        TAG_BOOL_TRUE => Value::Bool(true),
        TAG_INT32 => Value::Int32(unzigzag(read_varint(buf, pos)?) as i32),
        TAG_INT64 => Value::Int64(unzigzag(read_varint(buf, pos)?)),
        TAG_UINT64 => Value::UInt64(read_varint(buf, pos)?),
        TAG_DOUBLE => {
            let end = pos.checked_add(8).ok_or(WireError::Truncated)?;
            let bytes = buf.get(*pos..end).ok_or(WireError::Truncated)?;
            *pos = end;
            Value::Double(f64::from_le_bytes(bytes.try_into().expect("8 bytes")))
        }
        TAG_STRING => {
            let len = read_varint(buf, pos)? as usize;
            let end = pos.checked_add(len).ok_or(WireError::Truncated)?;
            let bytes = buf.get(*pos..end).ok_or(WireError::Truncated)?;
            *pos = end;
            Value::String(
                std::str::from_utf8(bytes)
                    .map_err(|_| WireError::InvalidUtf8)?
                    .into(),
            )
        }
        TAG_DATE => Value::Date(unzigzag(read_varint(buf, pos)?)),
        TAG_BLOB => {
            let len = read_varint(buf, pos)? as usize;
            let end = pos.checked_add(len).ok_or(WireError::Truncated)?;
            let bytes = buf.get(*pos..end).ok_or(WireError::Truncated)?;
            *pos = end;
            Value::Blob(bytes.to_vec())
        }
        TAG_LIST => {
            let n = read_varint(buf, pos)? as usize;
            // Guard against hostile lengths: each element takes ≥1 byte.
            if n > buf.len().saturating_sub(*pos) {
                return Err(WireError::Truncated);
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(read_value(buf, pos, depth + 1)?);
            }
            Value::List(items)
        }
        TAG_MAP => {
            let n = read_varint(buf, pos)? as usize;
            if n > buf.len().saturating_sub(*pos) / 2 {
                return Err(WireError::Truncated);
            }
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let k = read_value(buf, pos, depth + 1)?;
                let v = read_value(buf, pos, depth + 1)?;
                pairs.push((k, v));
            }
            Value::Map(pairs)
        }
        other => return Err(WireError::InvalidTag(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(read_varint(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn record_roundtrip_all_types() {
        let rec = Record::new()
            .with(0, Value::Bool(true))
            .with(1, Value::Int32(-5))
            .with(2, Value::Int64(1 << 40))
            .with(3, Value::UInt64(u64::MAX))
            .with(4, Value::Double(-2.5))
            .with(5, Value::String("héllo".into()))
            .with(6, Value::Date(-4930))
            .with(7, Value::Blob(vec![0, 255, 3]))
            .with(8, Value::List(vec![Value::Int64(1), Value::Int64(2)]))
            .with(
                9,
                Value::Map(vec![(Value::String("k".into()), Value::List(vec![]))]),
            );
        let bytes = encode_record(&rec);
        assert_eq!(decode_record(&bytes).unwrap(), rec);
    }

    #[test]
    fn empty_record() {
        let rec = Record::new();
        let bytes = encode_record(&rec);
        assert_eq!(bytes, vec![0]);
        assert_eq!(decode_record(&bytes).unwrap(), rec);
    }

    #[test]
    fn compactness() {
        // A small record should be a handful of bytes — the paper stresses
        // compact schematized payloads (§3.2).
        let rec = Record::new()
            .with(0, Value::Int32(1))
            .with(1, Value::Bool(true));
        assert!(encode_record(&rec).len() <= 8);
    }

    #[test]
    fn decode_errors() {
        assert_eq!(decode_record(&[]), Err(WireError::Truncated));
        assert_eq!(decode_record(&[1]), Err(WireError::Truncated)); // 1 field, no data
        assert_eq!(
            decode_record(&[1, 0, 0xFF]),
            Err(WireError::InvalidTag(0xFF))
        );
        // trailing bytes
        assert_eq!(decode_record(&[0, 9]), Err(WireError::TrailingBytes));
        // unsorted ids: two fields with id 1 then 0
        let mut buf = Vec::new();
        write_varint(&mut buf, 2);
        write_varint(&mut buf, 1);
        buf.push(TAG_BOOL_TRUE);
        write_varint(&mut buf, 0);
        buf.push(TAG_BOOL_TRUE);
        assert_eq!(decode_record(&buf), Err(WireError::UnsortedFields));
        // invalid utf-8
        let mut buf = Vec::new();
        write_varint(&mut buf, 1);
        write_varint(&mut buf, 0);
        buf.push(TAG_STRING);
        write_varint(&mut buf, 1);
        buf.push(0xFF);
        assert_eq!(decode_record(&buf), Err(WireError::InvalidUtf8));
        // hostile list length
        let mut buf = Vec::new();
        write_varint(&mut buf, 1);
        write_varint(&mut buf, 0);
        buf.push(TAG_LIST);
        write_varint(&mut buf, u32::MAX as u64);
        assert_eq!(decode_record(&buf), Err(WireError::Truncated));
    }

    #[test]
    fn deep_nesting_rejected_not_overflowed() {
        // One field whose value is 200 nested single-element lists: deeper
        // than MAX_DEPTH, so the decoder must error instead of recursing
        // until the stack dies.
        let mut buf = Vec::new();
        write_varint(&mut buf, 1);
        write_varint(&mut buf, 0);
        for _ in 0..200 {
            buf.push(TAG_LIST);
            write_varint(&mut buf, 1);
        }
        buf.push(TAG_BOOL_TRUE);
        assert_eq!(decode_record(&buf), Err(WireError::TooDeep));
    }

    #[test]
    fn varint_overflow_rejected() {
        let buf = [0xFF; 11];
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), Err(WireError::VarintOverflow));
    }
}
