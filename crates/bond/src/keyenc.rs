//! Order-preserving key encoding for B-tree indexes.
//!
//! A1's primary and secondary indexes are sorted B-trees (paper §3); keys may
//! be composite (secondary key then primary key, or ⟨src, edge type, dst⟩ for
//! the global edge B-tree). This module encodes tuples of [`Value`]s into
//! byte strings whose lexicographic order equals the tuple order.
//!
//! Per element: a type tag byte, then a payload in an order-preserving form:
//! * signed integers/dates: 8 bytes big-endian with the sign bit flipped,
//! * unsigned: 8 bytes big-endian,
//! * doubles: IEEE-754 total-order transform, big-endian,
//! * strings/blobs: raw bytes with `0x00` escaped as `0x00 0xFF`, terminated
//!   by a single `0x00`. Tags are < 0xFF, which keeps composite comparisons
//!   correct at element boundaries.

use crate::value::Value;

const KTAG_BOOL: u8 = 0x10;
const KTAG_INT: u8 = 0x11; // Int32/Int64/Date share an encoding
const KTAG_UINT: u8 = 0x12;
const KTAG_DOUBLE: u8 = 0x13;
const KTAG_BYTES: u8 = 0x14; // String/Blob share an encoding

/// Values that cannot be index keys (composites).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotKeyable;

impl std::fmt::Display for NotKeyable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lists and maps cannot be used as index keys")
    }
}

impl std::error::Error for NotKeyable {}

/// Encode a single value, appending to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) -> Result<(), NotKeyable> {
    match v {
        Value::Bool(b) => {
            out.push(KTAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int32(n) => encode_int(*n as i64, out),
        Value::Int64(n) | Value::Date(n) => encode_int(*n, out),
        Value::UInt64(n) => {
            out.push(KTAG_UINT);
            out.extend_from_slice(&n.to_be_bytes());
        }
        Value::Double(d) => {
            out.push(KTAG_DOUBLE);
            let bits = d.to_bits();
            // Total-order transform: negatives flip all bits, positives flip
            // the sign bit, so byte order equals numeric order.
            let mapped = if bits & (1 << 63) != 0 {
                !bits
            } else {
                bits ^ (1 << 63)
            };
            out.extend_from_slice(&mapped.to_be_bytes());
        }
        Value::String(s) => encode_bytes(s.as_bytes(), out),
        Value::Blob(b) => encode_bytes(b, out),
        Value::List(_) | Value::Map(_) => return Err(NotKeyable),
    }
    Ok(())
}

fn encode_int(n: i64, out: &mut Vec<u8>) {
    out.push(KTAG_INT);
    out.extend_from_slice(&((n as u64) ^ (1 << 63)).to_be_bytes());
}

fn encode_bytes(b: &[u8], out: &mut Vec<u8>) {
    out.push(KTAG_BYTES);
    for &byte in b {
        if byte == 0 {
            out.push(0x00);
            out.push(0xFF);
        } else {
            out.push(byte);
        }
    }
    out.push(0x00);
}

/// Encode a tuple of values into one composite key.
pub fn encode_tuple(values: &[Value]) -> Result<Vec<u8>, NotKeyable> {
    let mut out = Vec::with_capacity(values.len() * 10);
    for v in values {
        encode_value(v, &mut out)?;
    }
    Ok(out)
}

/// Encode a single value as a standalone key.
pub fn encode_key(v: &Value) -> Result<Vec<u8>, NotKeyable> {
    let mut out = Vec::with_capacity(10);
    encode_value(v, &mut out)?;
    Ok(out)
}

/// The smallest possible key strictly greater than every key with the given
/// prefix — used for B-tree prefix range scans.
pub fn prefix_upper_bound(prefix: &[u8]) -> Vec<u8> {
    let mut out = prefix.to_vec();
    out.push(0xFF);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: Value) -> Vec<u8> {
        encode_key(&v).unwrap()
    }

    #[test]
    fn integer_order() {
        let vals = [i64::MIN, -1, 0, 1, 42, i64::MAX];
        for w in vals.windows(2) {
            assert!(
                k(Value::Int64(w[0])) < k(Value::Int64(w[1])),
                "{} < {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn unsigned_order() {
        assert!(k(Value::UInt64(0)) < k(Value::UInt64(1)));
        assert!(k(Value::UInt64(u64::MAX - 1)) < k(Value::UInt64(u64::MAX)));
    }

    #[test]
    fn double_order() {
        let vals = [f64::NEG_INFINITY, -1.5, -0.0, 0.0, 1e-9, 2.5, f64::INFINITY];
        for w in vals.windows(2) {
            let (a, b) = (k(Value::Double(w[0])), k(Value::Double(w[1])));
            assert!(a <= b, "{} <= {}", w[0], w[1]);
        }
        // -0.0 and 0.0 are distinct in total order but adjacent.
        assert!(k(Value::Double(-0.0)) < k(Value::Double(0.0)));
    }

    #[test]
    fn string_order_and_null_bytes() {
        assert!(k(Value::String("a".into())) < k(Value::String("ab".into())));
        assert!(k(Value::String("a".into())) < k(Value::String("a\0".into())));
        assert!(k(Value::String("a\0".into())) < k(Value::String("a\0\0".into())));
        assert!(k(Value::String("a\0".into())) < k(Value::String("b".into())));
    }

    #[test]
    fn composite_boundaries() {
        // ("a", big-uint) vs ("a\0", anything): "a" < "a\0" must dominate.
        let t1 = encode_tuple(&[Value::String("a".into()), Value::UInt64(u64::MAX)]).unwrap();
        let t2 = encode_tuple(&[Value::String("a\0".into()), Value::UInt64(0)]).unwrap();
        assert!(t1 < t2);
    }

    #[test]
    fn composites_not_keyable() {
        assert_eq!(encode_key(&Value::List(vec![])), Err(NotKeyable));
        assert_eq!(encode_key(&Value::Map(vec![])), Err(NotKeyable));
    }

    #[test]
    fn prefix_bound() {
        let p = k(Value::String("abc".into()));
        let hi = prefix_upper_bound(&p);
        assert!(p < hi);
        let longer = encode_tuple(&[Value::String("abc".into()), Value::UInt64(9)]).unwrap();
        assert!(longer < hi);
    }
}
