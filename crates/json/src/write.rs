//! JSON serialization (compact and pretty).

use crate::Json;

pub fn to_string(v: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

pub fn to_string_pretty(v: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Json, indent: Option<usize>, level: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_number(out, *n),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Json::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        // Render integral values without a trailing ".0" so ids and counts
        // look like integers, matching the paper's query examples.
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact() {
        let j = Json::obj(vec![
            ("a", Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("b", Json::Str("x\"y".into())),
        ]);
        assert_eq!(to_string(&j), r#"{"a":[1,null],"b":"x\"y"}"#);
    }

    #[test]
    fn pretty_parses_back() {
        let j = Json::obj(vec![
            (
                "q",
                Json::obj(vec![("_select", Json::Arr(vec![Json::str("*")]))]),
            ),
            ("n", Json::Num(2.5)),
        ]);
        let pretty = to_string_pretty(&j);
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), j);
    }

    #[test]
    fn control_chars_escaped() {
        let j = Json::Str("\u{1}".into());
        assert_eq!(to_string(&j), "\"\\u0001\"");
        assert_eq!(parse(&to_string(&j)).unwrap(), j);
    }

    #[test]
    fn numbers() {
        assert_eq!(to_string(&Json::Num(3.0)), "3");
        assert_eq!(to_string(&Json::Num(-0.5)), "-0.5");
        assert_eq!(to_string(&Json::Num(1e20)), "100000000000000000000");
    }
}
