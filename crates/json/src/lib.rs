//! Minimal JSON parser/writer used by the A1QL query language.
//!
//! A1 queries are JSON documents (paper §3.4, Fig. 8). This crate implements
//! the subset of JSON needed by A1QL — which happens to be all of JSON — with
//! no third-party dependencies. Object key order is preserved (A1QL documents
//! are small and written by humans; preserving order keeps error messages and
//! round-trips stable).

mod parse;
mod write;

pub use parse::{parse, ParseError};
pub use write::{to_string, to_string_pretty};

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a JSON document from text.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        parse(text)
    }

    /// Compact serialization.
    #[allow(clippy::inherent_to_string_shadow_display)]
    pub fn to_string(&self) -> String {
        to_string(self)
    }

    /// Pretty serialization with two-space indents.
    pub fn to_string_pretty(&self) -> String {
        to_string_pretty(self)
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view of a number, when it is integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Look up a key in an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index into an array.
    pub fn at(&self, idx: usize) -> Option<&Json> {
        match self {
            Json::Arr(a) => a.get(idx),
            _ => None,
        }
    }

    /// Build an object from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let j = Json::obj(vec![
            ("a", Json::from(1.5)),
            ("b", Json::from(true)),
            ("c", Json::from("hi")),
            ("d", Json::Arr(vec![Json::Null, Json::from(2i64)])),
        ]);
        assert_eq!(j.get("a").unwrap().as_f64(), Some(1.5));
        assert_eq!(j.get("a").unwrap().as_i64(), None);
        assert_eq!(j.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("c").unwrap().as_str(), Some("hi"));
        assert!(j.get("d").unwrap().at(0).unwrap().is_null());
        assert_eq!(j.get("d").unwrap().at(1).unwrap().as_i64(), Some(2));
        assert!(j.get("zz").is_none());
        assert!(j.at(0).is_none());
    }

    #[test]
    fn display_roundtrip() {
        let j = Json::obj(vec![("k", Json::from("v"))]);
        assert_eq!(format!("{j}"), r#"{"k":"v"}"#);
    }
}
