//! Recursive-descent JSON parser.

use crate::Json;

/// Maximum nesting depth; A1QL traversals are a handful of hops deep, so this
/// bound is generous while keeping the parser stack-safe.
const MAX_DEPTH: usize = 128;

/// Parse failure with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected literal '{lit}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            out.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(out)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(out)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let ch = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low surrogate.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("missing low surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.err("unexpected low surrogate"));
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences from the raw input.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(c).ok_or_else(|| self.err("invalid utf-8"))?;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated utf-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a single 0, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        let n: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0xC2..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF4 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Json {
        parse(s).unwrap()
    }

    #[test]
    fn scalars() {
        assert_eq!(p("null"), Json::Null);
        assert_eq!(p("true"), Json::Bool(true));
        assert_eq!(p("false"), Json::Bool(false));
        assert_eq!(p("0"), Json::Num(0.0));
        assert_eq!(p("-12.5e2"), Json::Num(-1250.0));
        assert_eq!(p(r#""hi""#), Json::Str("hi".into()));
    }

    #[test]
    fn containers() {
        assert_eq!(p("[]"), Json::Arr(vec![]));
        assert_eq!(p("{}"), Json::Obj(vec![]));
        assert_eq!(
            p(r#"[1, [2, {"a": 3}]]"#),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Arr(vec![Json::Num(2.0), Json::obj(vec![("a", Json::Num(3.0))])])
            ])
        );
    }

    #[test]
    fn key_order_preserved() {
        let j = p(r#"{"z":1,"a":2,"m":3}"#);
        let keys: Vec<_> = j
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn escapes() {
        assert_eq!(p(r#""a\nb\t\"\\""#), Json::Str("a\nb\t\"\\".into()));
        assert_eq!(p(r#""A""#), Json::Str("A".into()));
        assert_eq!(p(r#""😀""#), Json::Str("😀".into()));
        assert_eq!(p("\"héllo\""), Json::Str("héllo".into()));
    }

    #[test]
    fn a1ql_example_from_paper() {
        // Fig. 8: actors that worked with Steven Spielberg.
        let q = r#"{ "id" : "steven.spielberg",
            "_out_edge" : { "_type" : "film.director",
            "_vertex" : {
            "_out_edge" : { "_type" : "film.actor",
            "_vertex" : {
            "_select" : ["*"]
            }}}}}"#;
        let j = p(q);
        assert_eq!(j.get("id").unwrap().as_str(), Some("steven.spielberg"));
        let oe = j.get("_out_edge").unwrap();
        assert_eq!(oe.get("_type").unwrap().as_str(), Some("film.director"));
        assert!(oe.get("_vertex").unwrap().get("_out_edge").is_some());
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("01").is_err());
        assert!(parse("1.").is_err());
        assert!(parse("1e").is_err());
        assert!(parse("\"\u{1}\"").is_err());
        assert!(parse(r#""\q""#).is_err());
        assert!(parse("nul").is_err());
        assert!(parse("true false").is_err());
        assert!(parse(r#""\uD800x""#).is_err());
    }

    #[test]
    fn deep_nesting_rejected() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push('[');
        }
        assert!(parse(&s).is_err());
    }
}
