//! Property tests: serialize→parse round-trips for arbitrary JSON values.

use a1_json::Json;
use proptest::prelude::*;

fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Finite doubles only; JSON has no NaN/Inf.
        (-1e12f64..1e12f64).prop_map(Json::Num),
        any::<i32>().prop_map(|n| Json::Num(n as f64)),
        "[ -~]{0,12}".prop_map(Json::Str),
        // Strings with escapes and non-ASCII.
        prop::collection::vec(
            prop_oneof![
                Just('"'),
                Just('\\'),
                Just('\n'),
                Just('é'),
                Just('😀'),
                Just('\u{7}')
            ],
            0..4
        )
        .prop_map(|cs| Json::Str(cs.into_iter().collect())),
    ];
    leaf.prop_recursive(4, 64, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Arr),
            prop::collection::vec(("[a-z_]{1,8}", inner), 0..6).prop_map(Json::Obj),
        ]
    })
}

proptest! {
    #[test]
    fn roundtrip_compact(j in arb_json()) {
        let text = j.to_string();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(&back, &j);
    }

    #[test]
    fn roundtrip_pretty(j in arb_json()) {
        let text = j.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(&back, &j);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,64}") {
        let _ = Json::parse(&s);
    }
}
