//! Disaster-recovery scenarios from paper §4, including the two worked
//! examples of partial replication.

use a1_core::{A1Cluster, A1Config, Json, MachineId};
use a1_objectstore::{ObjectStore, StoreConfig};
use a1_recovery::{recover_best_effort, recover_consistent, Replicator};

const T: &str = "bing";
const G: &str = "kg";

const SCHEMA: &str = r#"{
    "name": "entity",
    "fields": [
        {"id": 0, "name": "id", "type": "string", "required": true},
        {"id": 1, "name": "name", "type": "list<string>"}
    ]
}"#;

fn dr_cluster() -> (A1Cluster, Replicator) {
    let cluster = A1Cluster::start(A1Config {
        dr_enabled: true,
        ..A1Config::small(3)
    })
    .unwrap();
    let client = cluster.client();
    client.create_tenant(T).unwrap();
    client.create_graph(T, G).unwrap();
    client.create_vertex_type(T, G, SCHEMA, "id", &[]).unwrap();
    client
        .create_edge_type(T, G, r#"{"name": "likes", "fields": []}"#)
        .unwrap();
    let store = ObjectStore::new(StoreConfig::default());
    let repl = Replicator::new(cluster.clone(), store).unwrap();
    repl.replicate_catalog().unwrap();
    (cluster, repl)
}

#[test]
fn full_replication_roundtrip_consistent() {
    let (cluster, repl) = dr_cluster();
    let client = cluster.client();
    for id in ["a", "b", "c"] {
        client
            .create_vertex(
                T,
                G,
                "entity",
                &format!(r#"{{"id": "{id}", "name": ["{id}!"]}}"#),
            )
            .unwrap();
    }
    client
        .create_edge(
            T,
            G,
            "entity",
            &Json::str("a"),
            "likes",
            "entity",
            &Json::str("b"),
            None,
        )
        .unwrap();
    client
        .create_edge(
            T,
            G,
            "entity",
            &Json::str("b"),
            "likes",
            "entity",
            &Json::str("c"),
            None,
        )
        .unwrap();

    assert!(repl.sweep_all().unwrap() >= 5);
    repl.update_watermark().unwrap();

    let (recovered, report) = recover_consistent(repl.store(), A1Config::small(2), T, G).unwrap();
    assert_eq!(report.vertices, 3);
    assert_eq!(report.edges, 2);
    assert_eq!(report.dangling_edges_dropped, 0);

    let rc = recovered.client();
    let got = rc
        .get_vertex(T, G, "entity", &Json::str("a"))
        .unwrap()
        .unwrap();
    assert_eq!(got.get("name").unwrap().at(0).unwrap().as_str(), Some("a!"));
    let out = rc
        .query(
            T,
            G,
            r#"{"id": "a", "_out_edge": {"_type": "likes",
                "_vertex": {"_select": ["_count(*)"]}}}"#,
        )
        .unwrap();
    assert_eq!(out.count, Some(1));
}

/// Paper §4, scenario 1: vertices A and B replicated, the edge was not.
/// Consistent recovery drops the whole transaction; best-effort keeps A and
/// B but no edge.
#[test]
fn partial_replication_scenario_one() {
    let (cluster, repl) = dr_cluster();
    let client = cluster.client();
    // One transaction: A, B, and the edge A→B.
    let mut txn = client.transaction();
    txn.create_vertex(T, G, "entity", &Json::parse(r#"{"id": "A"}"#).unwrap())
        .unwrap();
    txn.create_vertex(T, G, "entity", &Json::parse(r#"{"id": "B"}"#).unwrap())
        .unwrap();
    txn.create_edge(
        T,
        G,
        "entity",
        &Json::str("A"),
        "likes",
        "entity",
        &Json::str("B"),
        None,
    )
    .unwrap();
    txn.commit_with_retry().unwrap();

    // Replicate only A and B (log order: A, B, edge), then "disaster".
    let inner = cluster.inner();
    let log = inner.replog.as_ref().unwrap();
    let entries = log.fetch_pending(&inner.farm, MachineId(0), 10).unwrap();
    assert_eq!(entries.len(), 3);
    // All three share the transaction's commit timestamp.
    assert_eq!(entries[0].commit_ts, entries[1].commit_ts);
    assert_eq!(entries[1].commit_ts, entries[2].commit_ts);
    repl.apply_entry(&entries[0]).unwrap(); // A
    repl.apply_entry(&entries[1]).unwrap(); // B
                                            // tR is computed from what is still unreplicated — the edge.
    repl.update_watermark().unwrap();

    // Consistent recovery: none of A, B or the edge (the paper's rule).
    let (consistent, report) = recover_consistent(repl.store(), A1Config::small(2), T, G).unwrap();
    assert_eq!(report.vertices, 0, "partial transaction excluded entirely");
    assert_eq!(report.edges, 0);
    let cc = consistent.client();
    assert!(cc
        .get_vertex(T, G, "entity", &Json::str("A"))
        .unwrap()
        .is_none());

    // Best-effort: A and B recovered, no edge between them.
    let (best, report) = recover_best_effort(repl.store(), A1Config::small(2), T, G).unwrap();
    assert_eq!(report.vertices, 2);
    assert_eq!(report.edges, 0);
    let bc = best.client();
    assert!(bc
        .get_vertex(T, G, "entity", &Json::str("A"))
        .unwrap()
        .is_some());
    assert!(bc
        .get_vertex(T, G, "entity", &Json::str("B"))
        .unwrap()
        .is_some());
    let out = bc
        .query(
            T,
            G,
            r#"{"id": "A", "_out_edge": {"_type": "likes",
                "_vertex": {"_select": ["_count(*)"]}}}"#,
        )
        .unwrap();
    assert_eq!(out.count, Some(0));
}

/// Paper §4, scenario 2: A and the edge replicated, but not B. Best-effort
/// recovers A, notices B is missing, and drops the edge — internally
/// consistent, no dangling edges.
#[test]
fn partial_replication_scenario_two() {
    let (cluster, repl) = dr_cluster();
    let client = cluster.client();
    let mut txn = client.transaction();
    txn.create_vertex(T, G, "entity", &Json::parse(r#"{"id": "A"}"#).unwrap())
        .unwrap();
    txn.create_vertex(T, G, "entity", &Json::parse(r#"{"id": "B"}"#).unwrap())
        .unwrap();
    txn.create_edge(
        T,
        G,
        "entity",
        &Json::str("A"),
        "likes",
        "entity",
        &Json::str("B"),
        None,
    )
    .unwrap();
    txn.commit_with_retry().unwrap();

    let inner = cluster.inner();
    let log = inner.replog.as_ref().unwrap();
    let entries = log.fetch_pending(&inner.farm, MachineId(0), 10).unwrap();
    repl.apply_entry(&entries[0]).unwrap(); // A
    repl.apply_entry(&entries[2]).unwrap(); // the edge (B missing!)
    repl.update_watermark().unwrap();

    let (best, report) = recover_best_effort(repl.store(), A1Config::small(2), T, G).unwrap();
    assert_eq!(report.vertices, 1);
    assert_eq!(report.edges, 0);
    assert_eq!(
        report.dangling_edges_dropped, 1,
        "edge to missing B dropped"
    );
    let bc = best.client();
    assert!(bc
        .get_vertex(T, G, "entity", &Json::str("A"))
        .unwrap()
        .is_some());
    assert!(bc
        .get_vertex(T, G, "entity", &Json::str("B"))
        .unwrap()
        .is_none());

    // Consistent recovery still excludes everything.
    let (_, report) = recover_consistent(repl.store(), A1Config::small(2), T, G).unwrap();
    assert_eq!(report.vertices, 0);
}

/// Out-of-order and duplicate flushes converge (idempotency, §4).
#[test]
fn replication_is_idempotent_and_order_insensitive() {
    let (cluster, repl) = dr_cluster();
    let client = cluster.client();
    client
        .create_vertex(T, G, "entity", r#"{"id": "v", "name": ["one"]}"#)
        .unwrap();
    client
        .update_vertex(T, G, "entity", r#"{"id": "v", "name": ["two"]}"#)
        .unwrap();

    let inner = cluster.inner();
    let log = inner.replog.as_ref().unwrap();
    let entries = log.fetch_pending(&inner.farm, MachineId(0), 10).unwrap();
    assert_eq!(entries.len(), 2);
    // Apply newest first, then the stale one, then the newest again.
    repl.apply_entry(&entries[1]).unwrap();
    repl.apply_entry(&entries[0]).unwrap();
    repl.apply_entry(&entries[1]).unwrap();
    repl.update_watermark().unwrap();

    let (best, _) = recover_best_effort(repl.store(), A1Config::small(2), T, G).unwrap();
    let got = best
        .client()
        .get_vertex(T, G, "entity", &Json::str("v"))
        .unwrap()
        .unwrap();
    assert_eq!(
        got.get("name").unwrap().at(0).unwrap().as_str(),
        Some("two")
    );
}

/// Deletes replicate as tombstones; recreation with a newer timestamp wins.
#[test]
fn delete_replication_and_tombstones() {
    let (cluster, repl) = dr_cluster();
    let client = cluster.client();
    client
        .create_vertex(T, G, "entity", r#"{"id": "gone"}"#)
        .unwrap();
    client
        .create_vertex(T, G, "entity", r#"{"id": "stays"}"#)
        .unwrap();
    repl.sweep_all().unwrap();
    client
        .delete_vertex(T, G, "entity", &Json::str("gone"))
        .unwrap();
    repl.sweep_all().unwrap();
    repl.update_watermark().unwrap();

    let (best, report) = recover_best_effort(repl.store(), A1Config::small(2), T, G).unwrap();
    assert_eq!(report.vertices, 1);
    let bc = best.client();
    assert!(bc
        .get_vertex(T, G, "entity", &Json::str("gone"))
        .unwrap()
        .is_none());
    assert!(bc
        .get_vertex(T, G, "entity", &Json::str("stays"))
        .unwrap()
        .is_some());

    let (consistent, report) = recover_consistent(repl.store(), A1Config::small(2), T, G).unwrap();
    assert_eq!(report.vertices, 1);
    assert!(consistent
        .client()
        .get_vertex(T, G, "entity", &Json::str("gone"))
        .unwrap()
        .is_none());
}

/// The sweeper retries after transient durable-write failures (§4's
/// asynchronous sweeper path).
#[test]
fn sweeper_retries_after_write_failures() {
    let (cluster, repl) = dr_cluster();
    let client = cluster.client();
    for i in 0..5 {
        client
            .create_vertex(T, G, "entity", &format!(r#"{{"id": "v{i}"}}"#))
            .unwrap();
    }
    repl.store().set_write_fail_rate(1.0);
    assert_eq!(
        repl.sweep(10).unwrap(),
        0,
        "nothing flushes while the store is down"
    );
    let inner = cluster.inner();
    assert_eq!(
        inner
            .replog
            .as_ref()
            .unwrap()
            .len(&inner.farm, MachineId(0))
            .unwrap(),
        5
    );

    repl.store().set_write_fail_rate(0.0);
    assert_eq!(repl.sweep_all().unwrap(), 5);
    assert!(inner
        .replog
        .as_ref()
        .unwrap()
        .is_empty(&inner.farm, MachineId(0))
        .unwrap());

    // Watermark advances past everything once the log is empty.
    let t_r = repl.update_watermark().unwrap();
    assert!(t_r > 0);
}
