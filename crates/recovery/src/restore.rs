//! Rebuilding an A1 cluster from ObjectStore (paper §4).

use crate::{
    catalog_table, edge_table, split_edge_row_key, split_vertex_row_key, vertex_table, TR_WATERMARK,
};
use a1_core::error::{A1Error, A1Result};
use a1_core::server::{A1Cluster, A1Config};
use a1_json::Json;
use a1_objectstore::ObjectStore;
use std::sync::Arc;

/// What a recovery run rebuilt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    pub graphs: usize,
    pub types: usize,
    pub vertices: usize,
    pub edges: usize,
    /// Edges skipped because an endpoint was missing (best-effort only —
    /// this is the paper's "internally consistent, no dangling edges").
    pub dangling_edges_dropped: usize,
    /// Snapshot timestamp used (consistent recovery only).
    pub snapshot_ts: Option<u64>,
}

/// Consistent recovery (§4): restore the newest transactionally consistent
/// snapshot — everything at or below the durable `tR` watermark, read from
/// the versioned tables.
pub fn recover_consistent(
    store: &Arc<ObjectStore>,
    cfg: A1Config,
    tenant: &str,
    graph: &str,
) -> A1Result<(A1Cluster, RecoveryReport)> {
    let t_r = store
        .get_watermark(TR_WATERMARK)
        .ok_or_else(|| A1Error::Internal("no tR watermark recorded".into()))?;
    let (cluster, mut report) = rebuild_skeleton(store, cfg)?;
    let client = cluster.client();
    report.snapshot_ts = Some(t_r);

    // Vertices first, then edges; the snapshot is transaction-consistent so
    // every edge's endpoints exist within it.
    let vt = store.versioned_table(&vertex_table(tenant, graph));
    for (key, value) in vt.scan_at(t_r) {
        let Some((ty, _pk)) = split_vertex_row_key(&key) else {
            continue;
        };
        let attrs = String::from_utf8(value).map_err(|_| A1Error::Internal("bad row".into()))?;
        client.create_vertex(tenant, graph, &ty, &attrs)?;
        report.vertices += 1;
    }
    let et = store.versioned_table(&edge_table(tenant, graph));
    for (key, value) in et.scan_at(t_r) {
        let Some((st, s, e, dt, d)) = split_edge_row_key(&key) else {
            continue;
        };
        let src = Json::parse(&s).map_err(|e| A1Error::Internal(e.to_string()))?;
        let dst = Json::parse(&d).map_err(|e| A1Error::Internal(e.to_string()))?;
        let data = parse_edge_data(&value);
        client.create_edge(tenant, graph, &st, &src, &e, &dt, &dst, data.as_deref())?;
        report.edges += 1;
    }
    Ok((cluster, report))
}

/// Best-effort recovery (§4): restore the latest durable value of every row.
/// The result may not be transactionally consistent but is internally
/// consistent: edges referencing missing vertices are dropped.
pub fn recover_best_effort(
    store: &Arc<ObjectStore>,
    cfg: A1Config,
    tenant: &str,
    graph: &str,
) -> A1Result<(A1Cluster, RecoveryReport)> {
    let (cluster, mut report) = rebuild_skeleton(store, cfg)?;
    let client = cluster.client();

    let vt = store.table(&vertex_table(tenant, graph));
    for (key, row) in vt.scan_live() {
        let Some((ty, _pk)) = split_vertex_row_key(&key) else {
            continue;
        };
        let attrs =
            String::from_utf8(row.value).map_err(|_| A1Error::Internal("bad row".into()))?;
        client.create_vertex(tenant, graph, &ty, &attrs)?;
        report.vertices += 1;
    }
    let et = store.table(&edge_table(tenant, graph));
    for (key, row) in et.scan_live() {
        let Some((st, s, e, dt, d)) = split_edge_row_key(&key) else {
            continue;
        };
        let src = Json::parse(&s).map_err(|e| A1Error::Internal(e.to_string()))?;
        let dst = Json::parse(&d).map_err(|e| A1Error::Internal(e.to_string()))?;
        // Internal consistency: verify both endpoints exist.
        let src_ok = client.get_vertex(tenant, graph, &st, &src)?.is_some();
        let dst_ok = client.get_vertex(tenant, graph, &dt, &dst)?.is_some();
        if !src_ok || !dst_ok {
            report.dangling_edges_dropped += 1;
            continue;
        }
        let data = parse_edge_data(&row.value);
        client.create_edge(tenant, graph, &st, &src, &e, &dt, &dst, data.as_deref())?;
        report.edges += 1;
    }
    Ok((cluster, report))
}

/// Rebuild tenants, graphs and type definitions from the replicated catalog.
fn rebuild_skeleton(
    store: &Arc<ObjectStore>,
    mut cfg: A1Config,
) -> A1Result<(A1Cluster, RecoveryReport)> {
    // The recovered cluster gets its own replication log.
    cfg.dr_enabled = true;
    let cluster = A1Cluster::start(cfg)?;
    let client = cluster.client();
    let mut report = RecoveryReport::default();

    let catalog = store.table(&catalog_table());
    // Tenants, then graphs, then types (key prefixes sort conveniently:
    // g/ < t/ < y/ — so do two passes).
    for (key, _row) in catalog.scan_live() {
        let key = String::from_utf8(key).map_err(|_| A1Error::Internal("bad key".into()))?;
        if let Some(tenant) = key.strip_prefix("t/") {
            client.create_tenant(tenant)?;
        }
    }
    for (key, row) in catalog.scan_live() {
        let key = String::from_utf8(key).map_err(|_| A1Error::Internal("bad key".into()))?;
        if let Some(path) = key.strip_prefix("g/") {
            let mut parts = path.splitn(2, '/');
            let (Some(tenant), Some(graph)) = (parts.next(), parts.next()) else {
                continue;
            };
            client.create_graph(tenant, graph)?;
            report.graphs += 1;
        }
        let _ = row;
    }
    for (key, row) in catalog.scan_live() {
        let key = String::from_utf8(key).map_err(|_| A1Error::Internal("bad key".into()))?;
        let Some(path) = key.strip_prefix("y/") else {
            continue;
        };
        let mut parts = path.splitn(3, '/');
        let (Some(tenant), Some(graph), Some(_ty)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let body = String::from_utf8(row.value).map_err(|_| A1Error::Internal("bad row".into()))?;
        let j = Json::parse(&body).map_err(|e| A1Error::Internal(e.to_string()))?;
        let schema = j
            .get("schema")
            .ok_or_else(|| A1Error::Internal("catalog type without schema".into()))?;
        match j.get("kind").and_then(Json::as_str) {
            Some("vertex") => {
                let def = a1_core::VertexTypeDef::from_json(&j)?;
                let pk_name = def
                    .schema
                    .field(def.primary_key)
                    .map(|f| f.name.clone())
                    .unwrap_or_default();
                let sec_names: Vec<String> = def
                    .secondary
                    .iter()
                    .filter_map(|f| def.schema.field(*f).map(|fd| fd.name.clone()))
                    .collect();
                let sec_refs: Vec<&str> = sec_names.iter().map(String::as_str).collect();
                client.create_vertex_type(
                    tenant,
                    graph,
                    &schema.to_string(),
                    &pk_name,
                    &sec_refs,
                )?;
                report.types += 1;
            }
            Some("edge") => {
                client.create_edge_type(tenant, graph, &schema.to_string())?;
                report.types += 1;
            }
            _ => {}
        }
    }
    Ok((cluster, report))
}

fn parse_edge_data(value: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(value).ok()?;
    let j = Json::parse(text).ok()?;
    if j.is_null() {
        None
    } else {
        Some(j.to_string())
    }
}
