//! Disaster recovery for A1 (paper §4).
//!
//! A1 replicates every committed update asynchronously into ObjectStore via
//! a FaRM-resident replication log. This crate implements the pipeline and
//! both recovery flavors:
//!
//! * [`Replicator`] — drains the replication log into ObjectStore. Each
//!   graph gets a vertex table and an edge table, written under **both**
//!   schemes the paper describes: timestamp-conditional rows (best-effort)
//!   and ⟨key, timestamp⟩ versioned rows (consistent). The `tR` watermark —
//!   the oldest unreplicated commit timestamp — is persisted durably so
//!   consistent recovery knows its snapshot point.
//! * [`recover_consistent`] — rebuilds a fresh A1 cluster from the versioned
//!   tables at snapshot `tR`: the most recent *transactionally consistent*
//!   state known durable.
//! * [`recover_best_effort`] — rebuilds from the latest timestamped rows:
//!   possibly not transactionally consistent, but always *internally*
//!   consistent — edges with a missing endpoint are dropped, never dangling.

mod replicate;
mod restore;

pub use replicate::{Replicator, TR_WATERMARK};
pub use restore::{recover_best_effort, recover_consistent, RecoveryReport};

/// Table naming shared by the replicator and recovery.
pub(crate) fn vertex_table(tenant: &str, graph: &str) -> String {
    format!("{tenant}/{graph}/vertices")
}

pub(crate) fn edge_table(tenant: &str, graph: &str) -> String {
    format!("{tenant}/{graph}/edges")
}

pub(crate) fn catalog_table() -> String {
    "a1/catalog".to_string()
}

/// Row keys: vertices are `type\x00pk-json`; edges are
/// `src_type\x00src\x00etype\x00dst_type\x00dst` (all JSON-encoded parts).
pub(crate) fn vertex_row_key(ty: &str, pk: &a1_json::Json) -> Vec<u8> {
    let mut k = ty.as_bytes().to_vec();
    k.push(0);
    k.extend_from_slice(pk.to_string().as_bytes());
    k
}

pub(crate) fn edge_row_key(
    src_type: &str,
    src: &a1_json::Json,
    etype: &str,
    dst_type: &str,
    dst: &a1_json::Json,
) -> Vec<u8> {
    let mut k = Vec::new();
    for part in [
        src_type.to_string(),
        src.to_string(),
        etype.to_string(),
        dst_type.to_string(),
        dst.to_string(),
    ] {
        k.extend_from_slice(part.as_bytes());
        k.push(0);
    }
    k
}

pub(crate) fn split_edge_row_key(key: &[u8]) -> Option<(String, String, String, String, String)> {
    let mut parts = key.split(|b| *b == 0);
    let mut next = || {
        parts
            .next()
            .and_then(|p| std::str::from_utf8(p).ok())
            .map(String::from)
    };
    Some((next()?, next()?, next()?, next()?, next()?))
}

pub(crate) fn split_vertex_row_key(key: &[u8]) -> Option<(String, String)> {
    let pos = key.iter().position(|b| *b == 0)?;
    Some((
        std::str::from_utf8(&key[..pos]).ok()?.to_string(),
        std::str::from_utf8(&key[pos + 1..]).ok()?.to_string(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use a1_json::Json;

    #[test]
    fn row_keys_roundtrip() {
        let k = vertex_row_key("entity", &Json::str("tom.hanks"));
        let (ty, pk) = split_vertex_row_key(&k).unwrap();
        assert_eq!(ty, "entity");
        assert_eq!(pk, "\"tom.hanks\"");

        let k = edge_row_key(
            "entity",
            &Json::str("a"),
            "likes",
            "entity",
            &Json::str("b"),
        );
        let (st, s, e, dt, d) = split_edge_row_key(&k).unwrap();
        assert_eq!(
            (st.as_str(), e.as_str(), dt.as_str()),
            ("entity", "likes", "entity")
        );
        assert_eq!(s, "\"a\"");
        assert_eq!(d, "\"b\"");
    }
}
