//! The replication pipeline: replication log → ObjectStore (paper §4).
//!
//! Entry bodies arrive already decoded: `Replog::fetch_pending` reads each
//! stored entry through `a1_core::wire::decode_mutation_body`, which
//! auto-detects the binary mutation-body frame (the default since the wire
//! protocol v1) vs. JSON-era text — so logs written by older builds, or
//! logs mixing both eras, replay here unchanged. The replicator itself is
//! format-agnostic: it sees the one shared mutation vocabulary
//! (`put_vertex` / `del_vertex` / `put_edge` / `del_edge`).

use crate::{catalog_table, edge_row_key, edge_table, vertex_row_key, vertex_table};
use a1_core::error::{A1Error, A1Result};
use a1_core::replog::FetchedEntry;
use a1_core::server::A1Cluster;
use a1_farm::MachineId;
use a1_json::Json;
use a1_objectstore::{ObjectStore, StoreError};
use std::sync::Arc;

/// Durable watermark name for `tR` (§4).
pub const TR_WATERMARK: &str = "tR";

/// Drains the A1 replication log into ObjectStore.
pub struct Replicator {
    cluster: A1Cluster,
    store: Arc<ObjectStore>,
}

impl Replicator {
    /// The cluster must have been started with `dr_enabled`.
    pub fn new(cluster: A1Cluster, store: Arc<ObjectStore>) -> A1Result<Replicator> {
        if cluster.inner().replog.is_none() {
            return Err(A1Error::Internal(
                "cluster started without dr_enabled".into(),
            ));
        }
        Ok(Replicator { cluster, store })
    }

    pub fn store(&self) -> &Arc<ObjectStore> {
        &self.store
    }

    /// Attempt to flush up to `max` oldest log entries (the asynchronous
    /// sweeper, §4; call with a small `max` right after commit for the
    /// synchronous attempt). Entries whose durable write fails stay in the
    /// log for the next sweep. Returns how many were flushed.
    pub fn sweep(&self, max: usize) -> A1Result<usize> {
        let inner = self.cluster.inner();
        let log = inner.replog.as_ref().expect("checked in new");
        let entries = log.fetch_pending(&inner.farm, MachineId(0), max)?;
        let mut flushed = 0;
        for entry in entries {
            match self.apply_entry(&entry) {
                Ok(()) => {
                    log.remove(&inner.farm, MachineId(0), &entry.key, entry.ptr)?;
                    flushed += 1;
                }
                Err(StoreError::WriteFailed) => break, // retry later, keep FIFO
                Err(e) => return Err(A1Error::Internal(e.to_string())),
            }
        }
        Ok(flushed)
    }

    /// Sweep until the log is empty (or a durable write fails).
    pub fn sweep_all(&self) -> A1Result<usize> {
        let mut total = 0;
        loop {
            let n = self.sweep(64)?;
            total += n;
            if n == 0 {
                return Ok(total);
            }
        }
    }

    /// Apply one log entry to ObjectStore under **both** schemes. All writes
    /// are idempotent: timestamped rows discard stale updates; versioned
    /// rows converge on re-insert (§4).
    pub fn apply_entry(&self, entry: &FetchedEntry) -> Result<(), StoreError> {
        let body = &entry.body;
        let ts = entry.commit_ts;
        let tenant = body.get("tenant").and_then(Json::as_str).unwrap_or("");
        let graph = body.get("graph").and_then(Json::as_str).unwrap_or("");
        let vt = vertex_table(tenant, graph);
        let et = edge_table(tenant, graph);
        match body.get("op").and_then(Json::as_str) {
            Some("put_vertex") => {
                let ty = body.get("type").and_then(Json::as_str).unwrap_or("");
                let key = vertex_row_key(ty, body.get("key").unwrap_or(&Json::Null));
                let value = body
                    .get("data")
                    .unwrap_or(&Json::Null)
                    .to_string()
                    .into_bytes();
                self.store.put_if_newer(&vt, &key, value.clone(), ts)?;
                self.store.put_versioned(&vt, &key, ts, Some(value))?;
            }
            Some("del_vertex") => {
                let ty = body.get("type").and_then(Json::as_str).unwrap_or("");
                let key = vertex_row_key(ty, body.get("key").unwrap_or(&Json::Null));
                self.store.delete_if_newer(&vt, &key, ts)?;
                self.store.put_versioned(&vt, &key, ts, None)?;
            }
            Some("put_edge") => {
                let key = edge_key_of(body);
                let value = body
                    .get("data")
                    .unwrap_or(&Json::Null)
                    .to_string()
                    .into_bytes();
                self.store.put_if_newer(&et, &key, value.clone(), ts)?;
                self.store.put_versioned(&et, &key, ts, Some(value))?;
            }
            Some("del_edge") => {
                let key = edge_key_of(body);
                self.store.delete_if_newer(&et, &key, ts)?;
                self.store.put_versioned(&et, &key, ts, None)?;
            }
            _ => {} // unknown ops are skipped (forward compatibility)
        }
        Ok(())
    }

    /// Persist the current `tR`: the oldest commit timestamp still in the
    /// log; when the log is empty, everything up to "now" is durable (§4).
    pub fn update_watermark(&self) -> A1Result<u64> {
        let inner = self.cluster.inner();
        let log = inner.replog.as_ref().expect("checked in new");
        let t_r = match log.oldest_pending_ts(&inner.farm, MachineId(0))? {
            // Everything below the oldest *unreplicated* entry is durable.
            Some(oldest) => oldest.saturating_sub(1),
            None => inner.farm.clock().now(),
        };
        self.store
            .put_watermark(TR_WATERMARK, t_r)
            .map_err(|e| A1Error::Internal(e.to_string()))?;
        Ok(t_r)
    }

    /// Replicate the control-plane catalog (graphs + type definitions) so a
    /// fresh cluster can be rebuilt with the right schemas. Control-plane
    /// operations are rare (§3); this snapshot approach mirrors the paper's
    /// separation of data-plane log replication from metadata.
    pub fn replicate_catalog(&self) -> A1Result<()> {
        let inner = self.cluster.inner();
        let mut tx = inner.farm.begin_read_only(MachineId(0));
        let entries = inner.catalog.list_prefix(&mut tx, b"")?;
        let table = self.store.table(&catalog_table());
        let ts = inner.farm.clock().now();
        for (key, value) in entries {
            if key.starts_with("t/") || key.starts_with("g/") || key.starts_with("y/") {
                table.put_if_newer(key.as_bytes(), value.to_string().into_bytes(), ts);
            }
        }
        Ok(())
    }
}

fn edge_key_of(body: &Json) -> Vec<u8> {
    edge_row_key(
        body.get("src_type").and_then(Json::as_str).unwrap_or(""),
        body.get("src").unwrap_or(&Json::Null),
        body.get("etype").and_then(Json::as_str).unwrap_or(""),
        body.get("dst_type").and_then(Json::as_str).unwrap_or(""),
        body.get("dst").unwrap_or(&Json::Null),
    )
}
