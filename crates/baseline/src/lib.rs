//! TAO-style two-tier baseline (paper §1, §5).
//!
//! The architecture A1 replaces: a durable store with a memcached-like
//! lookaside cache in front, exposing a primitive object/association API.
//! Query logic lives in the *client*, which issues one round trip per
//! lookup. The paper's criticisms, all reproducible here:
//!
//! 1. **Primitive KV API** — multi-hop queries become sequential client-side
//!    loops of point lookups (vs A1's shipped operators), so a 2-hop query
//!    pays `O(vertices)` client round trips.
//! 2. **Eventual consistency** — cache entries go stale for up to their TTL
//!    after writes (invalidation is asynchronous).
//! 3. **No atomicity** — an edge is two association-list writes; a crash
//!    between them leaves a *partial edge* (forward link without the
//!    backward link), which is impossible in A1.
//!
//! Latency is tracked in simulated microseconds with the same style of cost
//! model as the A1 fabric, so the §5 "3.6× average latency" comparison can
//! be regenerated.

use a1_json::Json;
use a1_objectstore::{ObjectStore, StoreConfig};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cost model for the two-tier stack (typical datacenter numbers: client↔
/// cache on TCP, cache↔DB on TCP + storage stack).
#[derive(Debug, Clone)]
pub struct TwoTierConfig {
    pub cache_servers: usize,
    pub cache_ttl: Duration,
    /// Client → cache server round trip (TCP/kernel stack, ~200 µs).
    pub client_rtt_us: u64,
    /// Cache miss penalty: cache → durable store round trip (~800 µs).
    pub db_rtt_us: u64,
    /// Cache-server processing per request.
    pub cache_cpu_us: u64,
}

impl Default for TwoTierConfig {
    fn default() -> Self {
        TwoTierConfig {
            cache_servers: 4,
            cache_ttl: Duration::from_secs(30),
            client_rtt_us: 200,
            db_rtt_us: 800,
            cache_cpu_us: 5,
        }
    }
}

#[derive(Debug, Default)]
pub struct TwoTierMetrics {
    pub lookups: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub sim_us: AtomicU64,
}

/// A cached lookup result: when it was cached, and the value (`None` caches
/// a miss).
type CacheEntry = (Instant, Option<Vec<u8>>);

struct CacheServer {
    entries: Mutex<HashMap<Vec<u8>, CacheEntry>>,
}

/// The two-tier graph store: durable tables + lookaside caches.
pub struct TwoTierGraph {
    cfg: TwoTierConfig,
    db: Arc<ObjectStore>,
    caches: Vec<CacheServer>,
    metrics: TwoTierMetrics,
    clock: AtomicU64,
    /// Crash injection: when set, the next `assoc_add` stops after the
    /// forward write (the partial-edge anomaly).
    crash_after_forward: AtomicU64,
}

const OBJ: &str = "objects";
const ASSOC: &str = "assoc";

impl TwoTierGraph {
    pub fn new(cfg: TwoTierConfig) -> TwoTierGraph {
        let caches = (0..cfg.cache_servers.max(1))
            .map(|_| CacheServer {
                entries: Mutex::new(HashMap::new()),
            })
            .collect();
        TwoTierGraph {
            cfg,
            db: ObjectStore::new(StoreConfig::default()),
            caches,
            metrics: TwoTierMetrics::default(),
            clock: AtomicU64::new(1),
            crash_after_forward: AtomicU64::new(0),
        }
    }

    pub fn metrics(&self) -> &TwoTierMetrics {
        &self.metrics
    }

    /// Simulated time spent so far, in microseconds.
    pub fn sim_us(&self) -> u64 {
        self.metrics.sim_us.load(Ordering::Relaxed)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn charge(&self, us: u64) {
        self.metrics.sim_us.fetch_add(us, Ordering::Relaxed);
    }

    fn cache_for(&self, key: &[u8]) -> &CacheServer {
        // Static key partitioning across cache servers.
        let mut h = 0xcbf29ce484222325u64;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        &self.caches[(h as usize) % self.caches.len()]
    }

    // ------------------------------------------------------------- objects

    /// Insert or replace an object (vertex analog).
    pub fn object_put(&self, id: &str, data: &Json) {
        let ts = self.tick();
        self.charge(self.cfg.client_rtt_us + self.cfg.db_rtt_us);
        let _ = self
            .db
            .put_if_newer(OBJ, id.as_bytes(), data.to_string().into_bytes(), ts);
        // Asynchronous cache invalidation — stale reads possible until then.
        self.invalidate(id.as_bytes());
    }

    pub fn object_delete(&self, id: &str) {
        let ts = self.tick();
        self.charge(self.cfg.client_rtt_us + self.cfg.db_rtt_us);
        let _ = self.db.delete_if_newer(OBJ, id.as_bytes(), ts);
        self.invalidate(id.as_bytes());
    }

    /// Point lookup through the lookaside cache — one client round trip, plus
    /// a DB round trip on miss.
    pub fn object_get(&self, id: &str) -> Option<Json> {
        self.lookaside(OBJ, id.as_bytes())
            .and_then(|bytes| Json::parse(std::str::from_utf8(&bytes).ok()?).ok())
    }

    // -------------------------------------------------------------- assocs

    fn assoc_key(src: &str, ty: &str) -> Vec<u8> {
        format!("{src}\u{0}{ty}").into_bytes()
    }

    /// Add a directed association src→dst and its inverse — as **two
    /// separate writes**. A crash between them (injectable) leaves the
    /// paper's partial edge.
    pub fn assoc_add(&self, src: &str, ty: &str, dst: &str) {
        self.assoc_insert(&Self::assoc_key(src, ty), dst);
        if self.crash_after_forward.swap(0, Ordering::Relaxed) == 1 {
            return; // crashed before the inverse write
        }
        self.assoc_insert(&Self::assoc_key(dst, &format!("~{ty}")), src);
    }

    /// Arm the crash injection for the next `assoc_add`.
    pub fn inject_crash_after_forward(&self) {
        self.crash_after_forward.store(1, Ordering::Relaxed);
    }

    fn assoc_insert(&self, key: &[u8], member: &str) {
        let ts = self.tick();
        self.charge(self.cfg.client_rtt_us + self.cfg.db_rtt_us);
        // Read-modify-write of the adjacency list (non-transactional).
        let mut list: Vec<String> = self
            .db
            .table(ASSOC)
            .get(key)
            .and_then(|row| {
                Json::parse(std::str::from_utf8(&row.value).ok()?)
                    .ok()
                    .and_then(|j| {
                        j.as_arr().map(|a| {
                            a.iter()
                                .filter_map(|v| v.as_str().map(String::from))
                                .collect()
                        })
                    })
            })
            .unwrap_or_default();
        if !list.iter().any(|m| m == member) {
            list.push(member.to_string());
        }
        let json = Json::Arr(list.into_iter().map(Json::Str).collect());
        let _ = self
            .db
            .put_if_newer(ASSOC, key, json.to_string().into_bytes(), ts);
        self.invalidate(key);
    }

    /// The members of (src, ty) — forward adjacency.
    pub fn assoc_range(&self, src: &str, ty: &str) -> Vec<String> {
        let key = Self::assoc_key(src, ty);
        self.lookaside(ASSOC, &key)
            .and_then(|bytes| {
                Json::parse(std::str::from_utf8(&bytes).ok()?)
                    .ok()
                    .and_then(|j| {
                        j.as_arr().map(|a| {
                            a.iter()
                                .filter_map(|v| v.as_str().map(String::from))
                                .collect()
                        })
                    })
            })
            .unwrap_or_default()
    }

    /// Inverse adjacency (who points at `dst`).
    pub fn assoc_range_inverse(&self, dst: &str, ty: &str) -> Vec<String> {
        self.assoc_range(dst, &format!("~{ty}"))
    }

    // ---------------------------------------------------- client-side query

    /// Client-side 2-hop traversal with counting — what a TAO client does in
    /// place of A1's Q1. Every association fetch is a client round trip.
    pub fn two_hop_count(&self, start: &str, t1: &str, t2: &str) -> usize {
        let mut seen = std::collections::HashSet::new();
        for mid in self.assoc_range(start, t1) {
            for end in self.assoc_range(&mid, t2) {
                seen.insert(end);
            }
        }
        seen.len()
    }

    /// 2-hop returning the final objects (fetches each one).
    pub fn two_hop_objects(&self, start: &str, t1: &str, t2: &str) -> Vec<Json> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for mid in self.assoc_range(start, t1) {
            for end in self.assoc_range(&mid, t2) {
                if seen.insert(end.clone()) {
                    if let Some(obj) = self.object_get(&end) {
                        out.push(obj);
                    }
                }
            }
        }
        out
    }

    // ------------------------------------------------------------ internals

    fn lookaside(&self, table: &str, key: &[u8]) -> Option<Vec<u8>> {
        self.metrics.lookups.fetch_add(1, Ordering::Relaxed);
        self.charge(self.cfg.client_rtt_us + self.cfg.cache_cpu_us);
        let mut cache_key = table.as_bytes().to_vec();
        cache_key.push(0xFE);
        cache_key.extend_from_slice(key);
        let server = self.cache_for(&cache_key);
        {
            let entries = server.entries.lock();
            if let Some((at, value)) = entries.get(&cache_key) {
                if at.elapsed() < self.cfg.cache_ttl {
                    self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return value.clone();
                }
            }
        }
        // Miss: go to the durable store and fill.
        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.charge(self.cfg.db_rtt_us);
        let value = self.db.table(table).get(key).map(|row| row.value);
        server
            .entries
            .lock()
            .insert(cache_key, (Instant::now(), value.clone()));
        value
    }

    fn invalidate(&self, key: &[u8]) {
        for table in [OBJ, ASSOC] {
            let mut cache_key = table.as_bytes().to_vec();
            cache_key.push(0xFE);
            cache_key.extend_from_slice(key);
            self.cache_for(&cache_key).entries.lock().remove(&cache_key);
        }
    }

    /// Make a cache entry stale on purpose (for the consistency demo): plant
    /// an outdated value that the TTL has not yet expired.
    pub fn poison_cache(&self, table: &str, key: &str, stale: &[u8]) {
        let mut cache_key = table.as_bytes().to_vec();
        cache_key.push(0xFE);
        cache_key.extend_from_slice(key.as_bytes());
        self.cache_for(&cache_key)
            .entries
            .lock()
            .insert(cache_key, (Instant::now(), Some(stale.to_vec())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> TwoTierGraph {
        TwoTierGraph::new(TwoTierConfig::default())
    }

    #[test]
    fn objects_and_assocs() {
        let g = graph();
        g.object_put("a", &Json::obj(vec![("name", Json::str("A"))]));
        g.object_put("b", &Json::obj(vec![("name", Json::str("B"))]));
        g.assoc_add("a", "likes", "b");
        assert_eq!(
            g.object_get("a").unwrap().get("name").unwrap().as_str(),
            Some("A")
        );
        assert_eq!(g.assoc_range("a", "likes"), vec!["b".to_string()]);
        assert_eq!(g.assoc_range_inverse("b", "likes"), vec!["a".to_string()]);
        assert!(g.object_get("zz").is_none());
        // Duplicate assoc adds are idempotent.
        g.assoc_add("a", "likes", "b");
        assert_eq!(g.assoc_range("a", "likes").len(), 1);
    }

    #[test]
    fn two_hop() {
        let g = graph();
        for id in ["d", "f1", "f2", "a1", "a2"] {
            g.object_put(id, &Json::obj(vec![("id", Json::str(id))]));
        }
        g.assoc_add("d", "film", "f1");
        g.assoc_add("d", "film", "f2");
        g.assoc_add("f1", "actor", "a1");
        g.assoc_add("f2", "actor", "a1");
        g.assoc_add("f2", "actor", "a2");
        assert_eq!(g.two_hop_count("d", "film", "actor"), 2);
        assert_eq!(g.two_hop_objects("d", "film", "actor").len(), 2);
    }

    #[test]
    fn partial_edge_anomaly() {
        // The §1 motivating example: a crash between the forward and inverse
        // writes leaves a one-sided edge — impossible in A1's transactions.
        let g = graph();
        g.object_put("x", &Json::obj(vec![]));
        g.object_put("y", &Json::obj(vec![]));
        g.inject_crash_after_forward();
        g.assoc_add("x", "knows", "y");
        assert_eq!(
            g.assoc_range("x", "knows"),
            vec!["y".to_string()],
            "forward link exists"
        );
        assert!(
            g.assoc_range_inverse("y", "knows").is_empty(),
            "backward link missing!"
        );
    }

    #[test]
    fn stale_cache_reads() {
        let g = graph();
        g.object_put("v", &Json::obj(vec![("n", Json::Num(1.0))]));
        let _ = g.object_get("v"); // warm the cache
                                   // Plant a stale value to simulate a lost/pending invalidation, then
                                   // update the durable store directly (another client's write whose
                                   // invalidation hasn't reached this cache).
        g.poison_cache("objects", "v", br#"{"n":1}"#);
        let ts = g.tick();
        let _ =
            g.db.put_if_newer("objects", b"v", br#"{"n":2}"#.to_vec(), ts);
        let read = g.object_get("v").unwrap();
        assert_eq!(
            read.get("n").unwrap().as_f64(),
            Some(1.0),
            "eventual consistency: stale"
        );
    }

    #[test]
    fn latency_accounting() {
        let g = graph();
        g.object_put("a", &Json::obj(vec![]));
        let before = g.sim_us();
        let _ = g.object_get("a"); // miss
        let miss_cost = g.sim_us() - before;
        let before = g.sim_us();
        let _ = g.object_get("a"); // hit
        let hit_cost = g.sim_us() - before;
        assert!(miss_cost > hit_cost, "miss {miss_cost} > hit {hit_cost}");
        assert!(hit_cost >= 200, "every lookup pays the client RTT");
        assert_eq!(g.metrics().cache_hits.load(Ordering::Relaxed), 1);
    }
}
