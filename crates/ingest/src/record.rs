//! The stream record envelope: a [`Mutation`] plus at-least-once delivery
//! metadata (`source`, `seq`) and the entity key that routes it to a
//! partition.

use a1_core::wire;
use a1_core::{A1Error, A1Result, Json, Mutation, WireFormat};

/// One record off the (simulated) pub/sub bus.
///
/// `source` identifies the upstream producer/bus partition; `seq` is that
/// source's strictly-increasing sequence number — together they let the
/// pipeline deduplicate redeliveries. `key` is the partition-routing key:
/// **all mutations of one entity must share it** (vertex primary key for
/// vertex ops, source-vertex key for edge ops), so per-entity ordering
/// survives partition parallelism.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationRecord {
    pub source: String,
    pub seq: u64,
    pub key: String,
    pub op: Mutation,
}

impl MutationRecord {
    /// Build a record, deriving the routing key from the mutation where it
    /// is unambiguous (deletes and edges). Vertex upserts carry their key in
    /// opaque attributes, so use [`MutationRecord::keyed`] for those.
    pub fn new(source: &str, seq: u64, op: Mutation) -> A1Result<MutationRecord> {
        let key = match &op {
            Mutation::UpsertVertex { .. } => {
                return Err(A1Error::Schema(
                    "vertex upserts need an explicit routing key (MutationRecord::keyed)".into(),
                ))
            }
            Mutation::DeleteVertex { id, .. } => json_key(id),
            Mutation::UpsertEdge { src_id, .. } | Mutation::DeleteEdge { src_id, .. } => {
                json_key(src_id)
            }
        };
        Ok(MutationRecord {
            source: source.to_string(),
            seq,
            key,
            op,
        })
    }

    /// Build a record with an explicit routing key.
    pub fn keyed(source: &str, seq: u64, key: &str, op: Mutation) -> MutationRecord {
        MutationRecord {
            source: source.to_string(),
            seq,
            key: key.to_string(),
            op,
        }
    }

    /// Wire format: the mutation body (replog-entry shape) extended with the
    /// envelope fields.
    pub fn to_json(&self) -> Json {
        let mut fields = match self.op.to_json() {
            Json::Obj(fields) => fields,
            other => vec![("body".to_string(), other)],
        };
        fields.push(("source".to_string(), Json::str(&self.source)));
        fields.push(("seq".to_string(), Json::Num(self.seq as f64)));
        fields.push(("pkey".to_string(), Json::str(&self.key)));
        Json::Obj(fields)
    }

    pub fn from_json(j: &Json) -> A1Result<MutationRecord> {
        let op = Mutation::from_json(j)?;
        let source = j
            .get("source")
            .and_then(Json::as_str)
            .ok_or_else(|| A1Error::Schema("record missing 'source'".into()))?
            .to_string();
        let seq =
            j.get("seq")
                .and_then(Json::as_f64)
                .ok_or_else(|| A1Error::Schema("record missing 'seq'".into()))? as u64;
        // Routing key: explicit `pkey`, else the replog `key` field (vertex
        // entries), else derived from the op.
        let key = match j.get("pkey").and_then(Json::as_str) {
            Some(k) => k.to_string(),
            None => match j.get("key") {
                Some(k) => json_key(k),
                None => return MutationRecord::new(&source, seq, op),
            },
        };
        Ok(MutationRecord {
            source,
            seq,
            key,
            op,
        })
    }

    /// Parse a record from JSON text (the legacy bus wire).
    pub fn parse(text: &str) -> A1Result<MutationRecord> {
        let j = Json::parse(text).map_err(|e| A1Error::Schema(e.to_string()))?;
        MutationRecord::from_json(&j)
    }

    /// Serialize for the bus in the given wire format. Binary uses the same
    /// frame + mutation-body encoding as replication-log entries, with the
    /// stream-record message tag.
    pub fn to_wire(&self, fmt: WireFormat) -> Vec<u8> {
        match fmt {
            WireFormat::Binary => wire::mutation_record_to_binary(&self.to_json()),
            WireFormat::Json => self.to_json().to_string().into_bytes(),
        }
    }

    /// Parse a record from either wire format (auto-detected), so a consumer
    /// can drain a bus carrying a mix of binary-era and JSON-era records.
    pub fn from_wire(bytes: &[u8]) -> A1Result<MutationRecord> {
        MutationRecord::from_json(&wire::decode_mutation_body(bytes)?)
    }
}

/// Canonical string form of a key JSON value (unquoted strings so `"v1"` and
/// a producer passing `v1` directly route identically).
fn json_key(j: &Json) -> String {
    match j {
        Json::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upsert(id: &str) -> Mutation {
        Mutation::UpsertVertex {
            tenant: "t".into(),
            graph: "g".into(),
            ty: "entity".into(),
            attrs: Json::obj(vec![("id", Json::str(id))]),
        }
    }

    #[test]
    fn roundtrip_and_derived_keys() {
        let r = MutationRecord::keyed("bus", 9, "v1", upsert("v1"));
        let back = MutationRecord::parse(&r.to_json().to_string()).unwrap();
        assert_eq!(back, r);

        let del = Mutation::DeleteVertex {
            tenant: "t".into(),
            graph: "g".into(),
            ty: "entity".into(),
            id: Json::str("v2"),
        };
        let r = MutationRecord::new("bus", 10, del).unwrap();
        assert_eq!(r.key, "v2");
        let back = MutationRecord::parse(&r.to_json().to_string()).unwrap();
        assert_eq!(back.key, "v2");

        let edge = Mutation::UpsertEdge {
            tenant: "t".into(),
            graph: "g".into(),
            src_type: "entity".into(),
            src_id: Json::str("a"),
            edge_type: "link".into(),
            dst_type: "entity".into(),
            dst_id: Json::str("b"),
            data: None,
        };
        let r = MutationRecord::new("bus", 11, edge).unwrap();
        assert_eq!(r.key, "a", "edges route by source vertex (co-location)");
    }

    #[test]
    fn vertex_upsert_requires_explicit_key() {
        assert!(MutationRecord::new("bus", 1, upsert("v1")).is_err());
    }
}
