//! `a1-ingest` — streaming ingestion for the A1 graph database.
//!
//! The paper's A1 is not loaded by hand: Bing's data pipelines feed it
//! continuously over a pub/sub bus with **at-least-once** delivery (§1,
//! §6), so the database must batch, deduplicate, and apply high-rate
//! update streams without stalling reads. This crate is that subsystem for
//! the reproduction:
//!
//! * **[`MutationRecord`]** — the stream record: an upsert/delete
//!   [`a1_core::Mutation`] (JSON wire format shared with the replication
//!   log's entry bodies, so a DR log replays through this same path) plus
//!   `source`/`seq` delivery metadata and an entity routing key.
//! * **[`IngestPipeline`]** — bounded per-partition queues (backpressure)
//!   drained by **partition-parallel appliers** running on each machine's
//!   [`a1_farm::WorkerPool`]. Each applier groups many mutations into one
//!   FaRM transaction (**group commit**, [`IngestConfig::batch_size`] /
//!   [`IngestConfig::flush_interval`]), retries conflicted batches with
//!   bounded jittered backoff, and bisects batches that keep failing.
//! * **[`WatermarkTable`]** — per-⟨source, partition⟩ sequence watermarks
//!   persisted in a FaRM B-tree and advanced inside the batch's own
//!   transaction, making redelivery idempotent: replaying a stream (or a
//!   suffix of it) changes nothing.
//! * **[`IngestStats`]** — records/sec, batch/retry/split/dedup counters
//!   and the stream's durability lag.
//!
//! Writes ingested here still land in the replication log when the cluster
//! runs with `dr_enabled` (§4) — the pipeline applies mutations through
//! [`a1_core::BatchApplier`], the same hook `A1Client::apply_batch` uses.
//!
//! Ordering contract: streams are FIFO per `source` (pub/sub partition
//! ordering), and all mutations of one entity share a routing key. Phases
//! with cross-entity dependencies (edges referencing vertices) order
//! themselves with [`IngestPipeline::flush`] barriers.

pub mod metrics;
pub mod pipeline;
pub mod record;
pub mod watermark;

pub use metrics::IngestStats;
pub use pipeline::{IngestConfig, IngestPipeline, Partitioner};
pub use record::MutationRecord;
pub use watermark::WatermarkTable;
