//! Per-source sequence watermarks — the dedup state for at-least-once
//! streams.
//!
//! The bus feeding A1 redelivers: a consumer crash replays every record
//! since the last acknowledged offset. The pipeline makes replay idempotent
//! by remembering, per ⟨source, partition⟩, the highest sequence number
//! whose effects have **committed** — persisted in FaRM B-trees (3-way
//! replicated like all data) and advanced *inside the same transaction* as
//! the batch it covers, so a record is applied exactly once no matter how
//! often the stream delivers it.
//!
//! Layout: a small directory B-tree maps each partition to its own
//! watermark subtree (keyed by source). Partitions never write each other's
//! subtrees, so concurrent group commits cannot conflict on watermark
//! state — with a single shared tree, every partition's per-batch watermark
//! write would land in the same leaf and serialize the whole pipeline.
//! Subtrees are created lazily with `Hint::Local`, keeping the hot
//! per-batch watermark write on the applier's own machine.
//!
//! Watermarks are keyed per partition because one source's records fan out
//! across partitions and commit independently; within a partition the
//! applier is single-threaded, which is what makes "seq ≤ watermark ⇒
//! already applied" sound (streams are FIFO per source, as pub/sub
//! partition ordering guarantees).

use a1_core::{A1Error, A1Result};
use a1_farm::{BTree, BTreeConfig, FarmCluster, Hint, MachineId, Ptr, Txn};
use std::sync::Arc;

/// Longest accepted source name.
pub const MAX_SOURCE_LEN: usize = 48;

/// Reserved directory slot holding the partitioning configuration the
/// watermarks were written under (partition ids are queue indexes, far below
/// `u32::MAX`).
const META_KEY: [u8; 4] = u32::MAX.to_be_bytes();

/// Handle to the watermark state: directory tree ⟨partition_be⟩ → subtree
/// pointer; subtree ⟨source⟩ → seq_be.
#[derive(Clone)]
pub struct WatermarkTable {
    dir: BTree,
}

fn source_key(source: &str) -> A1Result<&[u8]> {
    if source.len() > MAX_SOURCE_LEN {
        return Err(A1Error::Schema(format!(
            "ingest source name longer than {MAX_SOURCE_LEN} bytes"
        )));
    }
    Ok(source.as_bytes())
}

impl WatermarkTable {
    fn dir_config() -> BTreeConfig {
        BTreeConfig {
            max_keys: 32,
            max_key_len: 4,
            max_val_len: 16,
        }
    }

    fn subtree_config() -> BTreeConfig {
        BTreeConfig {
            max_keys: 32,
            max_key_len: MAX_SOURCE_LEN,
            max_val_len: 8,
        }
    }

    pub fn create(farm: &Arc<FarmCluster>) -> A1Result<WatermarkTable> {
        let dir = farm.run(MachineId(0), |tx| {
            BTree::create(tx, Self::dir_config(), Hint::Machine(MachineId(0)))
        })?;
        Ok(WatermarkTable { dir })
    }

    /// Re-attach to an existing table (resuming a stream after a pipeline
    /// restart — the whole point of persisting watermarks).
    pub fn open(farm: &Arc<FarmCluster>, header: Ptr) -> A1Result<WatermarkTable> {
        let mut tx = farm.begin_read_only(MachineId(0));
        Ok(WatermarkTable {
            dir: BTree::open(&mut tx, header)?,
        })
    }

    /// Durable handle for [`WatermarkTable::open`].
    pub fn header(&self) -> Ptr {
        self.dir.header
    }

    /// Bind the table to a partitioning configuration, or verify a resumed
    /// table was written under the **same** one. Watermarks are only
    /// meaningful relative to the record→partition mapping: resuming with a
    /// different partition count or partitioner would route records to
    /// partitions whose watermarks cover *other* records' sequences, and
    /// silently drop never-applied records as "redeliveries".
    pub fn bind_config(
        &self,
        farm: &Arc<FarmCluster>,
        partitions: u32,
        partitioner_fingerprint: u64,
    ) -> A1Result<()> {
        let dir = self.dir.clone();
        a1_core::store::run_a1(farm, MachineId(0), move |tx| {
            let mut want = Vec::with_capacity(12);
            want.extend_from_slice(&partitions.to_be_bytes());
            want.extend_from_slice(&partitioner_fingerprint.to_be_bytes());
            match dir.get(tx, &META_KEY)? {
                None => {
                    dir.insert(tx, &META_KEY, &want)?;
                    Ok(())
                }
                Some(v) if v == want => Ok(()),
                Some(v) => {
                    let stored = v
                        .get(..4)
                        .map(|b| u32::from_be_bytes(b.try_into().unwrap()));
                    Err(A1Error::Schema(format!(
                        "resumed watermarks were written under a different partitioning \
                         (stored partitions={stored:?}, requested {partitions}); \
                         dedup state is only valid for the original partition layout"
                    )))
                }
            }
        })
    }

    /// The partition's subtree; when `create` is set, missing subtrees are
    /// created inside the caller's transaction (rolled back with it on
    /// abort, so the directory never points at a phantom tree).
    fn subtree(&self, tx: &mut Txn, partition: u32, create: bool) -> A1Result<Option<BTree>> {
        let key = partition.to_be_bytes();
        match self.dir.get(tx, &key)? {
            Some(v) => {
                let ptr = Ptr::decode(&v)
                    .ok_or_else(|| A1Error::Internal("bad watermark directory value".into()))?;
                Ok(Some(BTree::open(tx, ptr)?))
            }
            None if !create => Ok(None),
            None => {
                let tree = BTree::create(tx, Self::subtree_config(), Hint::Local)?;
                let mut val = Vec::with_capacity(Ptr::ENCODED_LEN);
                tree.header.encode_to(&mut val);
                self.dir.insert(tx, &key, &val)?;
                Ok(Some(tree))
            }
        }
    }

    /// Highest committed sequence for ⟨source, partition⟩, or `None` if the
    /// source has never committed there.
    pub fn get(&self, tx: &mut Txn, source: &str, partition: u32) -> A1Result<Option<u64>> {
        let key = source_key(source)?;
        let Some(tree) = self.subtree(tx, partition, false)? else {
            return Ok(None);
        };
        match tree.get(tx, key)? {
            Some(v) if v.len() == 8 => Ok(Some(u64::from_be_bytes(v[..8].try_into().unwrap()))),
            Some(_) => Err(A1Error::Internal("malformed watermark value".into())),
            None => Ok(None),
        }
    }

    /// Advance the watermark within the caller's (batch) transaction.
    pub fn set(&self, tx: &mut Txn, source: &str, partition: u32, seq: u64) -> A1Result<()> {
        let key = source_key(source)?;
        let tree = self
            .subtree(tx, partition, true)?
            .expect("create=true always yields a subtree");
        tree.insert(tx, key, &seq.to_be_bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a1_farm::FarmConfig;

    #[test]
    fn set_get_roundtrip_and_reopen() {
        let farm = FarmCluster::start(FarmConfig::small(2));
        let wm = WatermarkTable::create(&farm).unwrap();
        farm.run(MachineId(0), |tx| {
            wm.set(tx, "bus-a", 0, 41)
                .map_err(|_| a1_farm::FarmError::Conflict)?;
            wm.set(tx, "bus-a", 1, 7)
                .map_err(|_| a1_farm::FarmError::Conflict)?;
            wm.set(tx, "bus-b", 0, 1)
                .map_err(|_| a1_farm::FarmError::Conflict)
        })
        .unwrap();
        // Overwrite advances.
        farm.run(MachineId(1), |tx| {
            wm.set(tx, "bus-a", 0, 42)
                .map_err(|_| a1_farm::FarmError::Conflict)
        })
        .unwrap();

        let reopened = WatermarkTable::open(&farm, wm.header()).unwrap();
        let mut tx = farm.begin_read_only(MachineId(1));
        assert_eq!(reopened.get(&mut tx, "bus-a", 0).unwrap(), Some(42));
        assert_eq!(reopened.get(&mut tx, "bus-a", 1).unwrap(), Some(7));
        assert_eq!(reopened.get(&mut tx, "bus-b", 0).unwrap(), Some(1));
        assert_eq!(reopened.get(&mut tx, "bus-b", 9).unwrap(), None);
        assert_eq!(reopened.get(&mut tx, "never", 0).unwrap(), None);
    }

    #[test]
    fn aborted_subtree_creation_rolls_back() {
        let farm = FarmCluster::start(FarmConfig::small(1));
        let wm = WatermarkTable::create(&farm).unwrap();
        let mut tx = farm.begin(MachineId(0));
        wm.set(&mut tx, "bus", 3, 10).unwrap();
        tx.abort();
        // Neither the subtree nor the watermark survived the abort.
        let mut tx = farm.begin_read_only(MachineId(0));
        assert_eq!(wm.get(&mut tx, "bus", 3).unwrap(), None);
    }

    #[test]
    fn rejects_bad_source_names() {
        let farm = FarmCluster::start(FarmConfig::small(1));
        let wm = WatermarkTable::create(&farm).unwrap();
        let mut tx = farm.begin_read_only(MachineId(0));
        let long = "s".repeat(MAX_SOURCE_LEN + 1);
        assert!(wm.get(&mut tx, &long, 0).is_err());
    }
}
