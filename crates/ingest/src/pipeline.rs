//! The ingestion pipeline: partitioned queues → group-commit appliers.
//!
//! ```text
//!   submit(record)                       (bounded queues = backpressure)
//!        │ route by entity key
//!        ▼
//!   ┌─────────┐  ┌─────────┐     ┌─────────┐
//!   │ queue 0 │  │ queue 1 │  …  │ queue P │     one per partition
//!   └────┬────┘  └────┬────┘     └────┬────┘
//!        ▼            ▼               ▼
//!    applier 0    applier 1       applier P       dedicated drain threads
//!        │ batch ≤ batch_size or flush_interval
//!        ▼
//!    one FaRM txn, run as an Ingest-class job on the machine's WorkerPool:
//!    dedup check → apply mutations → replog entries →
//!    advance ⟨source, partition⟩ watermarks → commit
//! ```
//!
//! Batches that hit an optimistic conflict retry whole with bounded jittered
//! backoff, then bisect — splitting shrinks the conflict footprint until the
//! contended records commit alone, and isolates poison records (which are
//! dropped and counted after the final split).

use crate::metrics::{IngestMetrics, IngestStats};
use crate::record::MutationRecord;
use crate::watermark::WatermarkTable;
use a1_core::server::A1Inner;
use a1_core::store::conflict_backoff;
use a1_core::{A1Cluster, A1Error, A1Result, BatchApplier};
use a1_farm::{Addr, JobClass, MachineId, Ptr, Txn};
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How records map to partitions.
#[derive(Debug, Clone)]
pub enum Partitioner {
    /// Stable hash of the routing key (FNV-1a). The default: balanced with
    /// no tuning, at the cost of interleaving key ranges across partitions.
    KeyHash,
    /// Range partitioning by `partitions - 1` sorted split points:
    /// partition `i` takes keys in `[splits[i-1], splits[i])`. Bulk loads
    /// with sortable keys prefer this — each partition's inserts land in a
    /// contiguous index range, so parallel group commits rarely collide on
    /// B-tree leaves.
    KeyRange(Vec<String>),
}

/// Pipeline tuning knobs.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Applier partitions; `0` = one per cluster machine (each pinned to its
    /// machine, so fresh vertices allocate locally).
    pub partitions: usize,
    /// Group-commit factor: max mutations per FaRM transaction.
    pub batch_size: usize,
    /// Max time a partial batch waits for more records before committing.
    pub flush_interval: Duration,
    /// Bounded per-partition queue depth, in records. `submit` blocks when
    /// the target queue is full — the pipeline's backpressure.
    pub queue_depth: usize,
    /// Whole-batch retries on optimistic conflict before bisecting.
    pub max_batch_retries: usize,
    /// At-least-once dedup via persisted sequence watermarks.
    pub dedup: bool,
    /// Resume an earlier stream's watermarks ([`IngestPipeline::watermarks`]).
    pub resume_watermarks: Option<Ptr>,
    pub partitioner: Partitioner,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            partitions: 0,
            batch_size: 64,
            flush_interval: Duration::from_millis(2),
            queue_depth: 256,
            max_batch_retries: 8,
            dedup: true,
            resume_watermarks: None,
            partitioner: Partitioner::KeyHash,
        }
    }
}

struct Shared {
    inner: Arc<A1Inner>,
    cfg: IngestConfig,
    wm: WatermarkTable,
    metrics: IngestMetrics,
    /// Records accepted but not yet applied/deduped/failed.
    pending: AtomicU64,
    live_appliers: AtomicUsize,
    last_error: Mutex<Option<String>>,
}

/// A running ingestion pipeline bound to one cluster.
pub struct IngestPipeline {
    shared: Arc<Shared>,
    senders: Vec<Sender<MutationRecord>>,
    partitions: usize,
}

impl IngestPipeline {
    /// Boot the pipeline: create (or reopen) the watermark table and start
    /// one applier per partition on its machine's worker pool.
    pub fn start(cluster: &A1Cluster, cfg: IngestConfig) -> A1Result<IngestPipeline> {
        let inner = cluster.inner().clone();
        let machines = inner.farm.num_machines().max(1);
        let partitions = if cfg.partitions == 0 {
            machines as usize
        } else {
            cfg.partitions
        };
        if let Partitioner::KeyRange(splits) = &cfg.partitioner {
            if splits.len() + 1 != partitions {
                return Err(A1Error::Schema(format!(
                    "range partitioner needs {} split points for {partitions} partitions, got {}",
                    partitions - 1,
                    splits.len()
                )));
            }
            if !splits.windows(2).all(|w| w[0] < w[1]) {
                return Err(A1Error::Schema(
                    "range partitioner split points must be strictly sorted".into(),
                ));
            }
        }
        let wm = match cfg.resume_watermarks {
            Some(header) => WatermarkTable::open(&inner.farm, header)?,
            None => WatermarkTable::create(&inner.farm)?,
        };
        // Watermarks are only meaningful relative to the record→partition
        // mapping: stamp it on a fresh table, verify it on a resumed one.
        wm.bind_config(
            &inner.farm,
            partitions as u32,
            partitioner_fingerprint(&cfg.partitioner),
        )?;
        let shared = Arc::new(Shared {
            cfg,
            wm,
            metrics: IngestMetrics::new(),
            pending: AtomicU64::new(0),
            live_appliers: AtomicUsize::new(partitions),
            last_error: Mutex::new(None),
            inner,
        });
        let mut senders = Vec::with_capacity(partitions);
        for part in 0..partitions {
            let (tx, rx) = bounded(shared.cfg.queue_depth.max(1));
            let machine = MachineId((part % machines as usize) as u32);
            // Validate the partition's machine up front (the applier thread
            // resolves it again per batch).
            shared
                .inner
                .farm
                .fabric()
                .machine(machine)
                .map_err(|e| A1Error::Internal(format!("ingest partition machine: {e}")))?;
            // The drain loop lives on its own dedicated thread, NOT on the
            // machine's worker pool: a blocking recv loop parked on a pool
            // thread would occupy a simulated core forever (and a pool-wide
            // ingest quota would deadlock against it). Only the finite
            // per-batch commits run on the pool, in the Ingest class, where
            // the front door's quota and priority lane can bound them.
            let shared2 = shared.clone();
            std::thread::Builder::new()
                .name(format!("ingest-p{part}"))
                .spawn(move || applier_loop(shared2, part as u32, machine, rx))
                .map_err(|e| A1Error::Internal(format!("spawn ingest applier: {e}")))?;
            senders.push(tx);
        }
        Ok(IngestPipeline {
            shared,
            senders,
            partitions,
        })
    }

    /// Enqueue one record. Blocks while the target partition's queue is full
    /// (backpressure); returns once the record is queued, **not** committed —
    /// use [`IngestPipeline::flush`] for a durability barrier.
    pub fn submit(&self, rec: MutationRecord) -> A1Result<()> {
        let part = self.partition_of(&rec.key);
        self.shared
            .metrics
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        if self.senders[part].send(rec).is_err() {
            self.shared.pending.fetch_sub(1, Ordering::SeqCst);
            return Err(A1Error::Internal("ingest applier has shut down".into()));
        }
        Ok(())
    }

    /// Parse and enqueue a JSON wire record (the bus format).
    pub fn submit_json(&self, text: &str) -> A1Result<()> {
        self.submit(MutationRecord::parse(text)?)
    }

    /// Synchronously group-commit a batch on the calling thread: the same
    /// dedup → apply → watermark-advance → commit transaction the applier
    /// threads run, minus the queueing. One attempt, no retry/bisect — the
    /// caller owns the retry policy. The simulation harness drives ingest
    /// through this so batch boundaries and commit order are deterministic;
    /// records passed here must not also be `submit`ted.
    pub fn commit_batch(
        &self,
        machine: MachineId,
        part: u32,
        recs: &[MutationRecord],
    ) -> A1Result<(u64, u64)> {
        let (applied, deduped) = self.shared.try_commit(machine, part, recs)?;
        self.shared
            .metrics
            .applied
            .fetch_add(applied, Ordering::Relaxed);
        self.shared
            .metrics
            .deduped
            .fetch_add(deduped, Ordering::Relaxed);
        if applied > 0 {
            self.shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
        }
        Ok((applied, deduped))
    }

    /// Which partition a routing key maps to.
    pub fn partition_of(&self, key: &str) -> usize {
        match &self.shared.cfg.partitioner {
            Partitioner::KeyHash => (fnv1a(key.as_bytes()) % self.partitions as u64) as usize,
            Partitioner::KeyRange(splits) => splits.partition_point(|s| key >= s.as_str()),
        }
    }

    /// Block until every submitted record has reached a terminal state
    /// (committed, deduplicated, or dropped as poison) — the group-commit
    /// durability barrier. Also the ordering fence between dependent stream
    /// phases (e.g. vertices before the edges that reference them).
    pub fn flush(&self) -> A1Result<()> {
        while self.shared.pending.load(Ordering::SeqCst) > 0 {
            if self.shared.live_appliers.load(Ordering::SeqCst) == 0 {
                return Err(A1Error::Internal(
                    "ingest appliers exited with records pending".into(),
                ));
            }
            // Wall-clock on purpose: this polls *real* applier threads, so
            // a virtual-clock sleep (which returns instantly and advances
            // sim time) would spin. Simulation drives commits via
            // `commit_batch_in` on its own thread instead of flush().
            std::thread::sleep(Duration::from_micros(100));
        }
        Ok(())
    }

    /// Current pipeline counters.
    pub fn stats(&self) -> IngestStats {
        self.shared
            .metrics
            .snapshot(self.shared.pending.load(Ordering::SeqCst))
    }

    /// The most recent poison-record error, if any record has been dropped.
    pub fn last_error(&self) -> Option<String> {
        self.shared.last_error.lock().clone()
    }

    /// Durable handle to this stream's watermarks; pass as
    /// [`IngestConfig::resume_watermarks`] to make a later pipeline resume
    /// (and deduplicate) the same stream.
    pub fn watermarks(&self) -> Ptr {
        self.shared.wm.header()
    }

    /// Drain the queues, stop the appliers, and return final stats.
    pub fn shutdown(mut self) -> A1Result<IngestStats> {
        self.senders.clear(); // disconnect: appliers drain then exit
        while self.shared.live_appliers.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        Ok(self
            .shared
            .metrics
            .snapshot(self.shared.pending.load(Ordering::SeqCst)))
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Stable fingerprint of the routing function, persisted next to the
/// watermarks so a resume with a different partitioner is rejected.
fn partitioner_fingerprint(p: &Partitioner) -> u64 {
    match p {
        Partitioner::KeyHash => fnv1a(b"hash"),
        Partitioner::KeyRange(splits) => {
            let mut repr = b"range".to_vec();
            for s in splits {
                repr.push(0);
                repr.extend_from_slice(s.as_bytes());
            }
            fnv1a(&repr)
        }
    }
}

/// One partition's applier: drain the queue into batches, group-commit each
/// on the partition machine's worker pool.
fn applier_loop(shared: Arc<Shared>, part: u32, machine: MachineId, rx: Receiver<MutationRecord>) {
    // Block for work — an idle applier costs nothing. The loop ends on
    // Disconnected: the queue is fully drained *and* the pipeline handle is
    // gone.
    while let Ok(first) = rx.recv() {
        let mut batch = Vec::with_capacity(shared.cfg.batch_size);
        batch.push(first);
        // Group commit: gather up to batch_size records, waiting at most
        // flush_interval past the first so a trickle still commits promptly.
        // The deadline comes from the cluster clock; under a virtual clock
        // an empty queue commits the partial batch immediately instead of
        // blocking on wall time, so batch boundaries are deterministic.
        let clock = shared.inner.farm.fabric().clock().clone();
        let deadline_ns = clock.now_ns() + shared.cfg.flush_interval.as_nanos() as u64;
        while batch.len() < shared.cfg.batch_size {
            match rx.try_recv() {
                Ok(r) => {
                    batch.push(r);
                    continue;
                }
                Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => {}
            }
            let now_ns = clock.now_ns();
            if now_ns >= deadline_ns || clock.is_virtual() {
                break;
            }
            match rx.recv_timeout(Duration::from_nanos(deadline_ns - now_ns)) {
                Ok(r) => batch.push(r),
                Err(_) => break,
            }
        }
        // The batch commits on the machine's worker pool in the Ingest
        // class, so it competes for simulated cores under the front door's
        // per-class quota and never outranks query work (this drain thread
        // itself stays off the pool — see `start`). If the pool is gone or
        // drops the job (cluster teardown racing a live pipeline), commit
        // inline on this thread so `pending` still reaches zero.
        let batch = Arc::new(batch);
        let ran_on_pool = match shared.inner.farm.fabric().machine(machine) {
            Ok(m) => {
                let shared2 = shared.clone();
                let b = batch.clone();
                m.pool()
                    .try_execute_wait_class(JobClass::Ingest, move || {
                        shared2.run_chunk(machine, part, &b)
                    })
                    .is_some()
            }
            Err(_) => false,
        };
        if !ran_on_pool {
            shared.run_chunk(machine, part, &batch);
        }
    }
    shared.live_appliers.fetch_sub(1, Ordering::SeqCst);
}

impl Shared {
    /// Commit a chunk of records, retrying conflicts and bisecting on
    /// persistent failure.
    fn run_chunk(&self, machine: MachineId, part: u32, recs: &[MutationRecord]) {
        let mut attempt = 0;
        // Bisected chunks are cheap to replay, so they earn a bigger retry
        // budget — a lone contended record should never be dropped just
        // because its neighbours' conflicts burned the batch budget.
        let max_retries = if recs.len() == 1 {
            self.cfg.max_batch_retries * 4
        } else {
            self.cfg.max_batch_retries
        };
        loop {
            match self.try_commit(machine, part, recs) {
                Ok((applied, deduped)) => {
                    self.metrics.applied.fetch_add(applied, Ordering::Relaxed);
                    self.metrics.deduped.fetch_add(deduped, Ordering::Relaxed);
                    if applied > 0 {
                        self.metrics.batches.fetch_add(1, Ordering::Relaxed);
                    }
                    self.pending.fetch_sub(recs.len() as u64, Ordering::SeqCst);
                    return;
                }
                Err(e) if e.is_retryable() && attempt < max_retries => {
                    attempt += 1;
                    self.metrics.batch_retries.fetch_add(1, Ordering::Relaxed);
                    conflict_backoff(&self.inner.farm, attempt, 10_000);
                }
                Err(e) => {
                    if recs.len() > 1 {
                        // Bisect: shrinks the conflict footprint and corners
                        // poison records.
                        self.metrics.batch_splits.fetch_add(1, Ordering::Relaxed);
                        let mid = recs.len() / 2;
                        self.run_chunk(machine, part, &recs[..mid]);
                        self.run_chunk(machine, part, &recs[mid..]);
                    } else {
                        *self.last_error.lock() = Some(e.to_string());
                        self.metrics.failed.fetch_add(1, Ordering::Relaxed);
                        self.pending.fetch_sub(1, Ordering::SeqCst);
                    }
                    return;
                }
            }
        }
    }

    /// One group-commit attempt: dedup against the watermarks, apply the
    /// fresh records, advance the watermarks, commit — all in one txn, so a
    /// record's effects and its dedup marker are atomic.
    fn try_commit(
        &self,
        machine: MachineId,
        part: u32,
        recs: &[MutationRecord],
    ) -> A1Result<(u64, u64)> {
        let mut tx = self.inner.farm.begin(machine);
        match self.try_commit_in(&mut tx, machine, part, recs) {
            Ok((applied, deduped, touched)) => {
                if applied > 0 {
                    tx.commit().map_err(A1Error::from)?;
                    // Drop read-cache entries for rewritten vertices only
                    // once the batch is durable (stale entries are caught by
                    // revalidation either way; this frees the capacity).
                    self.inner.invalidate_cached_vertices(&touched);
                } else {
                    tx.abort(); // everything was a redelivery: nothing to write
                }
                Ok((applied, deduped))
            }
            Err(e) => {
                tx.abort();
                Err(e)
            }
        }
    }

    fn try_commit_in(
        &self,
        tx: &mut Txn,
        machine: MachineId,
        part: u32,
        recs: &[MutationRecord],
    ) -> A1Result<(u64, u64, Vec<Addr>)> {
        let mut applier = BatchApplier::new(&self.inner, machine);
        // Committed watermark per source (read once per batch) and the
        // batch's own running max, for intra-batch duplicates.
        let mut committed: HashMap<&str, Option<u64>> = HashMap::new();
        // BTreeMap: the watermark writes below iterate this map, and their
        // order must be stable for deterministic replay under simulation.
        let mut planned: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        let (mut applied, mut deduped) = (0u64, 0u64);
        for r in recs {
            if self.cfg.dedup {
                let floor = match committed.get(r.source.as_str()) {
                    Some(w) => *w,
                    None => {
                        let w = self.wm.get(tx, &r.source, part)?;
                        committed.insert(r.source.as_str(), w);
                        w
                    }
                };
                let floor = planned.get(r.source.as_str()).copied().or(floor);
                if floor.is_some_and(|f| r.seq <= f) {
                    deduped += 1;
                    continue;
                }
                planned.insert(r.source.as_str(), r.seq);
            }
            applier.apply(tx, &r.op)?;
            applied += 1;
        }
        for (source, seq) in &planned {
            self.wm.set(tx, source, part, *seq)?;
        }
        Ok((applied, deduped, applier.take_touched()))
    }
}
