//! Pipeline observability counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Shared atomic counters, updated by appliers and the submit path.
#[derive(Debug)]
pub struct IngestMetrics {
    pub(crate) submitted: AtomicU64,
    pub(crate) applied: AtomicU64,
    pub(crate) deduped: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batch_retries: AtomicU64,
    pub(crate) batch_splits: AtomicU64,
    pub(crate) started: Instant,
}

impl IngestMetrics {
    pub(crate) fn new() -> IngestMetrics {
        IngestMetrics {
            submitted: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_retries: AtomicU64::new(0),
            batch_splits: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// `in_flight` is the pipeline's pending counter — passed in rather than
    /// derived from the other (independently updated) counters, which could
    /// transiently disagree under concurrent appliers.
    pub(crate) fn snapshot(&self, in_flight: u64) -> IngestStats {
        let submitted = self.submitted.load(Ordering::Relaxed);
        let applied = self.applied.load(Ordering::Relaxed);
        let deduped = self.deduped.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed();
        IngestStats {
            submitted,
            applied,
            deduped,
            failed,
            batches: self.batches.load(Ordering::Relaxed),
            batch_retries: self.batch_retries.load(Ordering::Relaxed),
            batch_splits: self.batch_splits.load(Ordering::Relaxed),
            watermark_lag: in_flight,
            elapsed_ns: elapsed.as_nanos() as u64,
            records_per_sec: if elapsed.as_secs_f64() > 0.0 {
                applied as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
        }
    }
}

/// A point-in-time view of pipeline progress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestStats {
    /// Records accepted by `submit`.
    pub submitted: u64,
    /// Records whose effects have committed.
    pub applied: u64,
    /// Redelivered records skipped by the watermark check.
    pub deduped: u64,
    /// Poison records dropped after exhausting retries/splits.
    pub failed: u64,
    /// Group commits that succeeded.
    pub batches: u64,
    /// Whole-batch retries after an optimistic conflict.
    pub batch_retries: u64,
    /// Conflict-driven batch bisections.
    pub batch_splits: u64,
    /// Records accepted but not yet covered by a committed watermark
    /// (queued or mid-batch) — the stream's durability lag.
    pub watermark_lag: u64,
    /// Time since the pipeline started.
    pub elapsed_ns: u64,
    /// Applied records per wall-clock second since start.
    pub records_per_sec: f64,
}

impl IngestStats {
    /// Mean committed batch size — the group-commit factor actually achieved.
    pub fn avg_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.applied as f64 / self.batches as f64
        }
    }
}
