//! Property tests: the binary and JSON encodings of ingest stream records
//! are equivalent — a consumer decodes the same [`MutationRecord`] from
//! either wire, and a mixed-era bus (JSON-era producers alongside binary
//! ones) drains through one entry point.

use a1_core::{Json, Mutation, WireFormat};
use a1_ingest::MutationRecord;
use proptest::prelude::*;

/// JSON attribute objects with exactly-representable numbers (so the text
/// wire is lossless and both formats can be compared for equality).
fn arb_attrs() -> impl Strategy<Value = Json> {
    prop::collection::vec(
        (
            "\\PC{1,8}",
            prop_oneof![
                Just(Json::Null),
                any::<bool>().prop_map(Json::Bool),
                any::<i32>().prop_map(|n| Json::Num(n as f64)),
                "\\PC{0,10}".prop_map(Json::Str),
            ],
        ),
        0..4,
    )
    .prop_map(|pairs| Json::Obj(pairs.into_iter().collect()))
}

fn arb_key() -> impl Strategy<Value = Json> {
    prop_oneof![
        "\\PC{0,10}".prop_map(Json::Str),
        any::<i32>().prop_map(|n| Json::Num(n as f64)),
    ]
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    let s = "\\PC{1,8}";
    prop_oneof![
        (s, s, s, arb_attrs()).prop_map(|(tenant, graph, ty, attrs)| Mutation::UpsertVertex {
            tenant,
            graph,
            ty,
            attrs,
        }),
        (s, s, s, arb_key()).prop_map(|(tenant, graph, ty, id)| Mutation::DeleteVertex {
            tenant,
            graph,
            ty,
            id,
        }),
        ((s, s), (s, arb_key()), (s, s, arb_key()), arb_attrs()).prop_map(
            |((tenant, graph), (src_type, src_id), (edge_type, dst_type, dst_id), data)| {
                Mutation::UpsertEdge {
                    tenant,
                    graph,
                    src_type,
                    src_id,
                    edge_type,
                    dst_type,
                    dst_id,
                    data: if matches!(&data, Json::Obj(p) if p.is_empty()) {
                        None
                    } else {
                        Some(data)
                    },
                }
            }
        ),
        ((s, s), (s, arb_key()), (s, s, arb_key())).prop_map(
            |((tenant, graph), (src_type, src_id), (edge_type, dst_type, dst_id))| {
                Mutation::DeleteEdge {
                    tenant,
                    graph,
                    src_type,
                    src_id,
                    edge_type,
                    dst_type,
                    dst_id,
                }
            }
        ),
    ]
}

fn arb_record() -> impl Strategy<Value = MutationRecord> {
    ("\\PC{1,8}", any::<u32>(), "\\PC{0,10}", arb_mutation())
        .prop_map(|(source, seq, key, op)| MutationRecord::keyed(&source, seq as u64, &key, op))
}

proptest! {
    /// The same record decodes from both wires, through both the format-
    /// specific and the auto-detecting entry points.
    #[test]
    fn record_codec_equivalence(r in arb_record()) {
        let bin = r.to_wire(WireFormat::Binary);
        let json = r.to_wire(WireFormat::Json);
        prop_assert_eq!(&MutationRecord::from_wire(&bin).unwrap(), &r);
        prop_assert_eq!(&MutationRecord::from_wire(&json).unwrap(), &r);
        // The JSON wire is still exactly the legacy text format.
        let text = std::str::from_utf8(&json).unwrap();
        prop_assert_eq!(&MutationRecord::parse(text).unwrap(), &r);
        // The binary wire is never bigger for real record shapes.
        prop_assert!(bin.len() <= json.len(), "binary {} > json {}", bin.len(), json.len());
    }

    /// Bare mutations (no envelope) are equivalent across wires too — this
    /// is the replog-entry body path ingest shares with DR replay.
    #[test]
    fn mutation_codec_equivalence(m in arb_mutation()) {
        let bin = m.to_wire(WireFormat::Binary);
        let json = m.to_wire(WireFormat::Json);
        prop_assert_eq!(&Mutation::from_wire(&bin).unwrap(), &m);
        prop_assert_eq!(&Mutation::from_wire(&json).unwrap(), &m);
    }

    /// Garbage never panics the record decoder.
    #[test]
    fn record_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = MutationRecord::from_wire(&bytes);
        let mut framed = vec![0xA1, 0x01, 0x07];
        framed.extend(&bytes);
        let _ = MutationRecord::from_wire(&framed);
    }
}
