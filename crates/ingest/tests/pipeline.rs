//! Pipeline-level integration: partition-parallel ingest on a real cluster,
//! backpressure-bounded queues, and watermark dedup across pipeline
//! restarts. (Workspace-level equivalence/throughput acceptance lives in
//! the root `tests/ingest.rs`.)

use a1_core::{A1Client, A1Cluster, A1Config, Json, MachineId, Mutation};
use a1_ingest::{IngestConfig, IngestPipeline, MutationRecord, Partitioner};
use std::time::Duration;

const SCHEMA: &str = r#"{
    "name": "entity",
    "fields": [
        {"id": 0, "name": "id", "type": "string", "required": true},
        {"id": 1, "name": "rank", "type": "int64"}
    ]
}"#;

fn cluster(machines: u32, dr: bool) -> (A1Cluster, A1Client) {
    let mut cfg = A1Config::small(machines);
    cfg.dr_enabled = dr;
    let cluster = A1Cluster::start(cfg).unwrap();
    let client = cluster.client();
    client.create_tenant("t").unwrap();
    client.create_graph("t", "g").unwrap();
    client
        .create_vertex_type("t", "g", SCHEMA, "id", &["rank"])
        .unwrap();
    client
        .create_edge_type("t", "g", r#"{"name": "link", "fields": []}"#)
        .unwrap();
    (cluster, client)
}

fn vertex_rec(seq: u64, id: &str) -> MutationRecord {
    MutationRecord::keyed(
        "bus",
        seq,
        id,
        Mutation::UpsertVertex {
            tenant: "t".into(),
            graph: "g".into(),
            ty: "entity".into(),
            attrs: Json::obj(vec![("id", Json::str(id)), ("rank", Json::Num(seq as f64))]),
        },
    )
}

fn edge_rec(seq: u64, src: &str, dst: &str) -> MutationRecord {
    MutationRecord::new(
        "bus",
        seq,
        Mutation::UpsertEdge {
            tenant: "t".into(),
            graph: "g".into(),
            src_type: "entity".into(),
            src_id: Json::str(src),
            edge_type: "link".into(),
            dst_type: "entity".into(),
            dst_id: Json::str(dst),
            data: None,
        },
    )
    .unwrap()
}

#[test]
fn parallel_ingest_applies_everything_then_dedups_replay() {
    let (cluster, client) = cluster(3, false);
    let n = 24u64;
    let stream: Vec<MutationRecord> = (0..n)
        .map(|i| vertex_rec(i + 1, &format!("v{i:03}")))
        .chain(
            (0..n - 1).map(|i| edge_rec(n + i + 1, &format!("v{i:03}"), &format!("v{:03}", i + 1))),
        )
        .collect();

    let cfg = IngestConfig {
        partitions: 3,
        batch_size: 4,
        queue_depth: 8, // small: exercises backpressure blocking
        flush_interval: Duration::from_millis(1),
        ..IngestConfig::default()
    };
    let pipe = IngestPipeline::start(&cluster, cfg.clone()).unwrap();
    // Vertices first, then a flush barrier, then the edges that reference
    // them (possibly across partitions).
    for r in &stream[..n as usize] {
        pipe.submit(r.clone()).unwrap();
    }
    pipe.flush().unwrap();
    for r in &stream[n as usize..] {
        pipe.submit(r.clone()).unwrap();
    }
    pipe.flush().unwrap();

    let stats = pipe.stats();
    assert_eq!(stats.submitted, 2 * n - 1);
    assert_eq!(stats.applied, 2 * n - 1);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.watermark_lag, 0);
    assert!(stats.batches >= 1);
    assert!(
        stats.avg_batch() > 1.0,
        "group commit never batched (avg {})",
        stats.avg_batch()
    );

    // The graph is really there: chain traversal from v000.
    let out = client
        .query(
            "t",
            "g",
            r#"{ "id": "v000", "_out_edge": { "_type": "link",
                 "_vertex": { "_out_edge": { "_type": "link",
                 "_vertex": { "_select": ["_count(*)"] }}}}}"#,
        )
        .unwrap();
    assert_eq!(out.count, Some(1));

    // At-least-once redelivery: replay the whole stream through a NEW
    // pipeline resuming the same watermarks — every record must dedup.
    let wm = pipe.watermarks();
    pipe.shutdown().unwrap();
    let pipe2 = IngestPipeline::start(
        &cluster,
        IngestConfig {
            resume_watermarks: Some(wm),
            ..cfg
        },
    )
    .unwrap();
    for r in &stream {
        pipe2.submit(r.clone()).unwrap();
    }
    pipe2.flush().unwrap();
    let stats2 = pipe2.shutdown().unwrap();
    assert_eq!(stats2.deduped, 2 * n - 1, "replay must be fully deduped");
    assert_eq!(stats2.applied, 0);
    // Vertex attributes unchanged (rank still the original seq).
    let v = client
        .get_vertex("t", "g", "entity", &Json::str("v003"))
        .unwrap()
        .unwrap();
    assert_eq!(v.get("rank").and_then(Json::as_f64), Some(4.0));
}

#[test]
fn poison_records_are_isolated_not_fatal() {
    let (cluster, client) = cluster(2, false);
    let pipe = IngestPipeline::start(
        &cluster,
        IngestConfig {
            partitions: 2,
            batch_size: 8,
            ..IngestConfig::default()
        },
    )
    .unwrap();
    // Mix good vertices with an edge whose endpoints will never exist: the
    // batch bisects until the poison record fails alone.
    for i in 0..8u64 {
        pipe.submit(vertex_rec(i + 1, &format!("ok{i}"))).unwrap();
    }
    pipe.submit(edge_rec(100, "ghost-a", "ghost-b")).unwrap();
    pipe.flush().unwrap();
    let stats = pipe.shutdown().unwrap();
    assert_eq!(stats.applied, 8);
    assert_eq!(stats.failed, 1);
    // The good records all landed.
    for i in 0..8u64 {
        assert!(client
            .get_vertex("t", "g", "entity", &Json::str(&format!("ok{i}")))
            .unwrap()
            .is_some());
    }
}

#[test]
fn range_partitioner_routes_contiguously_and_validates() {
    let (cluster, _client) = cluster(2, false);
    let pipe = IngestPipeline::start(
        &cluster,
        IngestConfig {
            partitions: 2,
            partitioner: Partitioner::KeyRange(vec!["m".into()]),
            ..IngestConfig::default()
        },
    )
    .unwrap();
    assert_eq!(pipe.partition_of("alpha"), 0);
    assert_eq!(pipe.partition_of("m"), 1);
    assert_eq!(pipe.partition_of("zed"), 1);
    pipe.shutdown().unwrap();

    // Wrong split-point arity is rejected up front.
    assert!(IngestPipeline::start(
        &cluster,
        IngestConfig {
            partitions: 3,
            partitioner: Partitioner::KeyRange(vec!["m".into()]),
            ..IngestConfig::default()
        },
    )
    .is_err());
}

#[test]
fn resume_with_different_partitioning_is_rejected() {
    // Watermarks are only meaningful relative to the record→partition
    // mapping: a resume under a different layout would treat never-applied
    // records as redeliveries. Must fail loudly, not drop data.
    let (cluster, _client) = cluster(4, false);
    let cfg = IngestConfig {
        partitions: 4,
        ..IngestConfig::default()
    };
    let pipe = IngestPipeline::start(&cluster, cfg).unwrap();
    pipe.submit(vertex_rec(1, "v0")).unwrap();
    pipe.flush().unwrap();
    let wm = pipe.watermarks();
    pipe.shutdown().unwrap();

    // Different partition count: rejected.
    assert!(IngestPipeline::start(
        &cluster,
        IngestConfig {
            partitions: 2,
            resume_watermarks: Some(wm),
            ..IngestConfig::default()
        },
    )
    .is_err());
    // Different partitioner at the same count: rejected.
    assert!(IngestPipeline::start(
        &cluster,
        IngestConfig {
            partitions: 4,
            partitioner: Partitioner::KeyRange(vec!["b".into(), "m".into(), "t".into()]),
            resume_watermarks: Some(wm),
            ..IngestConfig::default()
        },
    )
    .is_err());
    // The original layout still resumes fine.
    let pipe2 = IngestPipeline::start(
        &cluster,
        IngestConfig {
            partitions: 4,
            resume_watermarks: Some(wm),
            ..IngestConfig::default()
        },
    )
    .unwrap();
    pipe2.submit(vertex_rec(1, "v0")).unwrap();
    pipe2.flush().unwrap();
    let stats = pipe2.shutdown().unwrap();
    assert_eq!(stats.deduped, 1);
}

#[test]
fn ingested_writes_land_in_the_replication_log() {
    // The §4 DR hook: with dr_enabled, every applied mutation appends a log
    // entry; deduped replays append nothing.
    let (cluster, _client) = cluster(2, true);
    let cfg = IngestConfig {
        partitions: 2,
        batch_size: 4,
        ..IngestConfig::default()
    };
    let pipe = IngestPipeline::start(&cluster, cfg.clone()).unwrap();
    for i in 0..6u64 {
        pipe.submit(vertex_rec(i + 1, &format!("d{i}"))).unwrap();
    }
    pipe.flush().unwrap();
    let inner = cluster.inner();
    let log = inner.replog.as_ref().expect("dr enabled");
    let len_after_ingest = log.len(&inner.farm, MachineId(0)).unwrap();
    assert_eq!(len_after_ingest, 6, "one log entry per applied mutation");

    // Replay: dedup means no new log entries.
    let wm = pipe.watermarks();
    pipe.shutdown().unwrap();
    let pipe2 = IngestPipeline::start(
        &cluster,
        IngestConfig {
            resume_watermarks: Some(wm),
            ..cfg
        },
    )
    .unwrap();
    for i in 0..6u64 {
        pipe2.submit(vertex_rec(i + 1, &format!("d{i}"))).unwrap();
    }
    pipe2.flush().unwrap();
    pipe2.shutdown().unwrap();
    assert_eq!(
        log.len(&inner.farm, MachineId(0)).unwrap(),
        len_after_ingest
    );
}
