//! Fabric-wide operation counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters for everything the fabric does. The query engine reads
/// deltas around operations to report per-query locality (the paper's "95%
/// local reads" statistic, §6).
#[derive(Debug, Default)]
pub struct Metrics {
    pub local_reads: AtomicU64,
    pub remote_reads: AtomicU64,
    pub local_writes: AtomicU64,
    pub remote_writes: AtomicU64,
    pub cas_ops: AtomicU64,
    pub rpcs: AtomicU64,
    /// Total RPC request payload bytes put on the wire.
    pub rpc_req_bytes: AtomicU64,
    /// Total RPC reply payload bytes returned over the wire.
    pub rpc_reply_bytes: AtomicU64,
    pub ud_sent: AtomicU64,
    pub ud_dropped: AtomicU64,
    pub bytes_read: AtomicU64,
    pub bytes_written: AtomicU64,
    /// One-sided read *posts*: every scalar read rings one doorbell; a
    /// batched [`read_many`](crate::Fabric::read_many) rings one for the
    /// whole batch. `total_reads / doorbells` is the coalescing factor.
    pub doorbells: AtomicU64,
    /// Reads that travelled inside a batched `read_many` post.
    pub reads_batched: AtomicU64,
    /// Total simulated network nanoseconds charged.
    pub sim_ns: AtomicU64,
    /// Read-cache hits served by the a1-core hot-vertex cache.
    pub cache_hits: AtomicU64,
    /// Read-cache lookups that fell through to a FaRM read.
    pub cache_misses: AtomicU64,
    /// Read-cache entries evicted under capacity pressure.
    pub cache_evictions: AtomicU64,
}

/// A point-in-time copy of [`Metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub local_reads: u64,
    pub remote_reads: u64,
    pub local_writes: u64,
    pub remote_writes: u64,
    pub cas_ops: u64,
    pub rpcs: u64,
    pub rpc_req_bytes: u64,
    pub rpc_reply_bytes: u64,
    pub ud_sent: u64,
    pub ud_dropped: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub doorbells: u64,
    pub reads_batched: u64,
    pub sim_ns: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
}

impl Metrics {
    pub fn add(&self, field: &AtomicU64, v: u64) {
        field.fetch_add(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            local_reads: self.local_reads.load(Ordering::Relaxed),
            remote_reads: self.remote_reads.load(Ordering::Relaxed),
            local_writes: self.local_writes.load(Ordering::Relaxed),
            remote_writes: self.remote_writes.load(Ordering::Relaxed),
            cas_ops: self.cas_ops.load(Ordering::Relaxed),
            rpcs: self.rpcs.load(Ordering::Relaxed),
            rpc_req_bytes: self.rpc_req_bytes.load(Ordering::Relaxed),
            rpc_reply_bytes: self.rpc_reply_bytes.load(Ordering::Relaxed),
            ud_sent: self.ud_sent.load(Ordering::Relaxed),
            ud_dropped: self.ud_dropped.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            doorbells: self.doorbells.load(Ordering::Relaxed),
            reads_batched: self.reads_batched.load(Ordering::Relaxed),
            sim_ns: self.sim_ns.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
        }
    }
}

impl MetricsSnapshot {
    /// Difference since an earlier snapshot.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            local_reads: self.local_reads - earlier.local_reads,
            remote_reads: self.remote_reads - earlier.remote_reads,
            local_writes: self.local_writes - earlier.local_writes,
            remote_writes: self.remote_writes - earlier.remote_writes,
            cas_ops: self.cas_ops - earlier.cas_ops,
            rpcs: self.rpcs - earlier.rpcs,
            rpc_req_bytes: self.rpc_req_bytes - earlier.rpc_req_bytes,
            rpc_reply_bytes: self.rpc_reply_bytes - earlier.rpc_reply_bytes,
            ud_sent: self.ud_sent - earlier.ud_sent,
            ud_dropped: self.ud_dropped - earlier.ud_dropped,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            doorbells: self.doorbells - earlier.doorbells,
            reads_batched: self.reads_batched - earlier.reads_batched,
            sim_ns: self.sim_ns - earlier.sim_ns,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            cache_evictions: self.cache_evictions - earlier.cache_evictions,
        }
    }

    pub fn total_reads(&self) -> u64 {
        self.local_reads + self.remote_reads
    }

    /// Total RPC payload bytes (request + reply) — the bytes-on-wire figure
    /// the wire-protocol benchmarks gate on.
    pub fn rpc_bytes(&self) -> u64 {
        self.rpc_req_bytes + self.rpc_reply_bytes
    }

    /// Read-cache hit rate (hits / lookups). `0.0` when the cache saw no
    /// traffic — a quiet cache must not satisfy a minimum-hit-rate gate.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// Fraction of reads that were local (paper §6 reports ≥95% for shipped
    /// query execution).
    pub fn local_read_fraction(&self) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            return 1.0;
        }
        self.local_reads as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let m = Metrics::default();
        m.add(&m.local_reads, 3);
        let a = m.snapshot();
        m.add(&m.local_reads, 2);
        m.add(&m.remote_reads, 1);
        let b = m.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.local_reads, 2);
        assert_eq!(d.remote_reads, 1);
        assert_eq!(d.total_reads(), 3);
        assert!((d.local_read_fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_fraction_is_one() {
        assert_eq!(MetricsSnapshot::default().local_read_fraction(), 1.0);
    }
}
