//! The fabric: one-sided verbs, RPC and datagrams between machines.

use crate::clock::ClockSource;
use crate::fault::{FaultDecision, FaultInjector, NetOp};
#[cfg(test)]
use crate::machine::Segment;
use crate::machine::{Machine, RpcHandler, UdHandler};
use crate::metrics::Metrics;
use crate::rng::ClusterRng;
use crate::{FabricConfig, MachineId};
use bytes::Bytes;
use parking_lot::RwLock;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Network-level failures. These model NIC/communication errors; the storage
/// layers above translate them into retries or reconfiguration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Target machine is dead (timeout in a real deployment).
    MachineUnreachable(MachineId),
    /// No such machine id in the fabric.
    UnknownMachine(MachineId),
    /// The target machine has no segment registered under that id.
    NoSuchSegment(u64),
    /// One-sided access outside the segment bounds.
    OutOfBounds,
    /// RPC sent to a machine with no registered handler.
    NoHandler(MachineId),
    /// The RPC was accepted but the reply never arrived (machine died).
    RpcDropped,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::MachineUnreachable(m) => write!(f, "machine {m} unreachable"),
            NetError::UnknownMachine(m) => write!(f, "unknown machine {m}"),
            NetError::NoSuchSegment(s) => write!(f, "no segment {s}"),
            NetError::OutOfBounds => write!(f, "one-sided access out of bounds"),
            NetError::NoHandler(m) => write!(f, "no rpc handler on {m}"),
            NetError::RpcDropped => write!(f, "rpc reply lost"),
        }
    }
}

impl std::error::Error for NetError {}

/// The simulated RDMA network. See the crate docs for the model.
pub struct Fabric {
    cfg: FabricConfig,
    machines: Vec<Arc<Machine>>,
    metrics: Metrics,
    clock: Arc<dyn ClockSource>,
    rng: ClusterRng,
    fault: RwLock<Option<Arc<dyn FaultInjector>>>,
    inject: std::sync::atomic::AtomicBool,
}

impl Fabric {
    pub fn new(cfg: FabricConfig) -> Arc<Fabric> {
        assert!(cfg.machines >= 1);
        assert!(cfg.racks >= 1);
        let machines = (0..cfg.machines)
            .map(|i| {
                Arc::new(Machine::new(
                    MachineId(i),
                    i % cfg.racks,
                    cfg.threads_per_machine,
                    cfg.max_threads_per_machine,
                ))
            })
            .collect();
        Arc::new(Fabric {
            machines,
            metrics: Metrics::default(),
            clock: cfg.clock.clone(),
            rng: ClusterRng::new(cfg.seed),
            fault: RwLock::new(None),
            inject: std::sync::atomic::AtomicBool::new(cfg.inject_latency),
            cfg,
        })
    }

    /// Toggle wall-clock latency injection at runtime. Benchmarks bulk-load
    /// with injection off, then flip it on for the measured phase. Under a
    /// virtual [`ClockSource`] the injected "sleeps" advance simulated time
    /// instead of spinning, so injection costs no wall clock.
    pub fn set_inject_latency(&self, on: bool) {
        self.inject.store(on, Ordering::Relaxed);
    }

    /// The fabric's time source (the cluster-wide injectable clock).
    pub fn clock(&self) -> &Arc<dyn ClockSource> {
        &self.clock
    }

    /// The cluster's seedable RNG handle (jitter, drop decisions).
    pub fn rng(&self) -> &ClusterRng {
        &self.rng
    }

    /// Install (or clear) the fault injector consulted on every operation.
    pub fn set_fault_injector(&self, injector: Option<Arc<dyn FaultInjector>>) {
        *self.fault.write() = injector;
    }

    /// Consult the fault injector. Returns extra delay ns, or the error a
    /// dropped op must surface (`None` in `Err` means "silently vanish",
    /// used for datagrams).
    fn fault_gate(
        &self,
        op: NetOp,
        from: MachineId,
        to: MachineId,
        len: usize,
    ) -> Result<u64, Option<NetError>> {
        let guard = self.fault.read();
        let Some(inj) = guard.as_ref() else {
            return Ok(0);
        };
        match inj.decide(op, from, to, len) {
            FaultDecision::Deliver => Ok(0),
            FaultDecision::Delay(ns) => Ok(ns),
            FaultDecision::Drop => Err(match op {
                NetOp::Ud => None,
                NetOp::RpcReply => Some(NetError::RpcDropped),
                _ => Some(NetError::MachineUnreachable(to)),
            }),
        }
    }

    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    pub fn num_machines(&self) -> u32 {
        self.cfg.machines
    }

    pub fn machine(&self, id: MachineId) -> Result<&Arc<Machine>, NetError> {
        self.machines
            .get(id.0 as usize)
            .ok_or(NetError::UnknownMachine(id))
    }

    pub fn machines(&self) -> &[Arc<Machine>] {
        &self.machines
    }

    pub fn rack_of(&self, id: MachineId) -> u32 {
        id.0 % self.cfg.racks
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mark a machine dead; subsequent operations against it fail.
    pub fn kill(&self, id: MachineId) {
        if let Ok(m) = self.machine(id) {
            m.alive.store(false, Ordering::Release);
        }
    }

    /// Bring a machine back (fast restart / redeployment).
    pub fn revive(&self, id: MachineId) {
        if let Ok(m) = self.machine(id) {
            m.alive.store(true, Ordering::Release);
        }
    }

    pub fn is_alive(&self, id: MachineId) -> bool {
        self.machine(id).map(|m| m.is_alive()).unwrap_or(false)
    }

    fn target(&self, to: MachineId) -> Result<&Arc<Machine>, NetError> {
        let m = self.machine(to)?;
        if !m.is_alive() {
            return Err(NetError::MachineUnreachable(to));
        }
        Ok(m)
    }

    fn charge(&self, ns: u64) {
        self.metrics.sim_ns.fetch_add(ns, Ordering::Relaxed);
        if self.inject.load(Ordering::Relaxed) {
            // RealClock spins/sleeps for wall-clock fidelity; VirtualClock
            // advances simulated time instantly.
            self.clock.sleep(Duration::from_nanos(ns));
        }
    }

    /// Charge simulated time for work the simulation performs in-process but
    /// that would cross the wire in a real deployment (e.g. bulk region
    /// copies during re-replication, remote allocation requests).
    pub fn charge_ns(&self, ns: u64) {
        self.charge(ns);
    }

    /// One-sided RDMA read: copy `len` bytes from a remote segment without
    /// involving the remote CPU.
    pub fn read(
        &self,
        from: MachineId,
        to: MachineId,
        seg_id: u64,
        off: usize,
        len: usize,
    ) -> Result<Bytes, NetError> {
        let delay = self
            .fault_gate(NetOp::Read, from, to, len)
            .map_err(|e| e.expect("one-sided drops carry an error"))?;
        let target = self.target(to)?;
        let seg = target
            .segment(seg_id)
            .ok_or(NetError::NoSuchSegment(seg_id))?;
        let local = from == to;
        if local {
            self.metrics.local_reads.fetch_add(1, Ordering::Relaxed);
        } else {
            self.metrics.remote_reads.fetch_add(1, Ordering::Relaxed);
        }
        self.metrics
            .bytes_read
            .fetch_add(len as u64, Ordering::Relaxed);
        self.metrics.doorbells.fetch_add(1, Ordering::Relaxed);
        self.charge(
            delay
                + self
                    .cfg
                    .latency
                    .one_sided_ns(local, self.rack_of(from) == self.rack_of(to), len),
        );
        seg.read(off, len).ok_or(NetError::OutOfBounds)
    }

    /// Doorbell-batched one-sided reads: post every `(seg_id, off, len)` in
    /// `reads` against the same destination with a **single** doorbell ring,
    /// so the batch pays one round-trip base plus per-byte costs (§3.4).
    ///
    /// Fault semantics match a single one-sided verb: the injector rules
    /// once on the whole post (a partition drops the entire batch, and —
    /// like scalar reads — random message loss never applies to one-sided
    /// ops, so batching consumes no fault RNG and replay determinism is
    /// preserved). Per-entry failures (bad segment, out of bounds) are
    /// returned in-slot so one bad address does not poison its batchmates.
    pub fn read_many(
        &self,
        from: MachineId,
        to: MachineId,
        reads: &[(u64, usize, usize)],
    ) -> Result<Vec<Result<Bytes, NetError>>, NetError> {
        if reads.is_empty() {
            return Ok(Vec::new());
        }
        let total: usize = reads.iter().map(|&(_, _, len)| len).sum();
        let delay = self
            .fault_gate(NetOp::Read, from, to, total)
            .map_err(|e| e.expect("one-sided drops carry an error"))?;
        let target = self.target(to)?;
        let local = from == to;
        if local {
            self.metrics
                .local_reads
                .fetch_add(reads.len() as u64, Ordering::Relaxed);
        } else {
            self.metrics
                .remote_reads
                .fetch_add(reads.len() as u64, Ordering::Relaxed);
        }
        self.metrics
            .bytes_read
            .fetch_add(total as u64, Ordering::Relaxed);
        self.metrics.doorbells.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .reads_batched
            .fetch_add(reads.len() as u64, Ordering::Relaxed);
        self.charge(
            delay
                + self.cfg.latency.one_sided_batch_ns(
                    local,
                    self.rack_of(from) == self.rack_of(to),
                    reads.len(),
                    total,
                ),
        );
        Ok(reads
            .iter()
            .map(|&(seg_id, off, len)| {
                let seg = target
                    .segment(seg_id)
                    .ok_or(NetError::NoSuchSegment(seg_id))?;
                seg.read(off, len).ok_or(NetError::OutOfBounds)
            })
            .collect())
    }

    /// One-sided RDMA write.
    pub fn write(
        &self,
        from: MachineId,
        to: MachineId,
        seg_id: u64,
        off: usize,
        data: &[u8],
    ) -> Result<(), NetError> {
        let delay = self
            .fault_gate(NetOp::Write, from, to, data.len())
            .map_err(|e| e.expect("one-sided drops carry an error"))?;
        let target = self.target(to)?;
        let seg = target
            .segment(seg_id)
            .ok_or(NetError::NoSuchSegment(seg_id))?;
        let local = from == to;
        if local {
            self.metrics.local_writes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.metrics.remote_writes.fetch_add(1, Ordering::Relaxed);
        }
        self.metrics
            .bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.charge(
            delay
                + self.cfg.latency.one_sided_ns(
                    local,
                    self.rack_of(from) == self.rack_of(to),
                    data.len(),
                ),
        );
        seg.write(off, data).ok_or(NetError::OutOfBounds)
    }

    /// One-sided atomic compare-and-swap on an 8-byte word (lock words in the
    /// FaRM commit protocol).
    pub fn cas64(
        &self,
        from: MachineId,
        to: MachineId,
        seg_id: u64,
        off: usize,
        expect: u64,
        new: u64,
    ) -> Result<u64, NetError> {
        let delay = self
            .fault_gate(NetOp::Cas, from, to, 8)
            .map_err(|e| e.expect("one-sided drops carry an error"))?;
        let target = self.target(to)?;
        let seg = target
            .segment(seg_id)
            .ok_or(NetError::NoSuchSegment(seg_id))?;
        self.metrics.cas_ops.fetch_add(1, Ordering::Relaxed);
        self.charge(
            delay
                + self.cfg.latency.one_sided_ns(
                    from == to,
                    self.rack_of(from) == self.rack_of(to),
                    8,
                ),
        );
        seg.cas64(off, expect, new).ok_or(NetError::OutOfBounds)
    }

    /// Install machine `on`'s RPC handler.
    pub fn set_rpc_handler(&self, on: MachineId, handler: Arc<RpcHandler>) {
        if let Ok(m) = self.machine(on) {
            m.set_rpc_handler(handler);
        }
    }

    pub fn set_ud_handler(&self, on: MachineId, handler: Arc<UdHandler>) {
        if let Ok(m) = self.machine(on) {
            m.set_ud_handler(handler);
        }
    }

    /// Synchronous RPC: enqueue on the target's worker pool, block for the
    /// reply. This is the slow path A1 uses for query shipping; latency is
    /// charged in both directions.
    pub fn rpc(&self, from: MachineId, to: MachineId, request: Bytes) -> Result<Bytes, NetError> {
        let delay = self
            .fault_gate(NetOp::Rpc, from, to, request.len())
            .map_err(|e| e.expect("rpc drops carry an error"))?;
        let target = self.target(to)?;
        let handler = target
            .rpc_handler
            .read()
            .clone()
            .ok_or(NetError::NoHandler(to))?;
        self.metrics.rpcs.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .rpc_req_bytes
            .fetch_add(request.len() as u64, Ordering::Relaxed);
        let same_rack = self.rack_of(from) == self.rack_of(to);
        self.charge(delay + self.cfg.latency.rpc_ns(same_rack, request.len()));
        // A pool that shut down mid-call (cluster teardown race) or a
        // panicking handler both surface as a lost reply, like a machine
        // dying after accepting the request. The or-inline variant runs the
        // handler on this (already-blocked) thread when the target pool is
        // saturated, so cycles of machines whose workers are all blocked on
        // each other's RPCs cannot deadlock.
        let reply = target
            .pool
            .try_execute_wait_or_inline(move || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(from, request)))
            })
            .and_then(Result::ok)
            .ok_or(NetError::RpcDropped)?;
        // The reply crosses the wire separately: dropping it here models a
        // request whose side effects landed but whose ack was lost.
        let reply_delay = self
            .fault_gate(NetOp::RpcReply, to, from, reply.len())
            .map_err(|e| e.expect("rpc-reply drops carry an error"))?;
        self.metrics
            .rpc_reply_bytes
            .fetch_add(reply.len() as u64, Ordering::Relaxed);
        self.charge(reply_delay + self.cfg.latency.rpc_ns(same_rack, reply.len()));
        Ok(reply)
    }

    /// Fire-and-forget unreliable datagram (leases, clock beacons §5.1).
    /// May be silently dropped per `ud_drop_rate`.
    pub fn send_ud(&self, from: MachineId, to: MachineId, payload: Bytes) {
        self.metrics.ud_sent.fetch_add(1, Ordering::Relaxed);
        let delay = match self.fault_gate(NetOp::Ud, from, to, payload.len()) {
            Ok(d) => d,
            Err(_) => {
                self.metrics.ud_dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        if self.cfg.ud_drop_rate > 0.0 && self.rng.next_f64() < self.cfg.ud_drop_rate {
            self.metrics.ud_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let Ok(target) = self.target(to) else {
            self.metrics.ud_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let Some(handler) = target.ud_handler.read().clone() else {
            self.metrics.ud_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let same_rack = self.rack_of(from) == self.rack_of(to);
        self.charge(delay + self.cfg.latency.rpc_ns(same_rack, payload.len()) / 2);
        target.pool.execute(move || handler(from, payload));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use std::time::Instant;

    fn fabric() -> Arc<Fabric> {
        Fabric::new(FabricConfig::default())
    }

    #[test]
    fn one_sided_read_write() {
        let f = fabric();
        let seg = Segment::new(128);
        f.machine(MachineId(1)).unwrap().register_segment(7, seg);
        f.write(MachineId(0), MachineId(1), 7, 16, &[9, 9]).unwrap();
        let b = f.read(MachineId(0), MachineId(1), 7, 16, 2).unwrap();
        assert_eq!(&b[..], &[9, 9]);
        let snap = f.metrics().snapshot();
        assert_eq!(snap.remote_reads, 1);
        assert_eq!(snap.remote_writes, 1);
        assert!(snap.sim_ns > 0);
    }

    #[test]
    fn local_vs_remote_accounting() {
        let f = fabric();
        let seg = Segment::new(64);
        f.machine(MachineId(0)).unwrap().register_segment(1, seg);
        f.read(MachineId(0), MachineId(0), 1, 0, 8).unwrap();
        f.read(MachineId(2), MachineId(0), 1, 0, 8).unwrap();
        let snap = f.metrics().snapshot();
        assert_eq!(snap.local_reads, 1);
        assert_eq!(snap.remote_reads, 1);
    }

    #[test]
    fn errors() {
        let f = fabric();
        assert_eq!(
            f.read(MachineId(0), MachineId(9), 1, 0, 8),
            Err(NetError::UnknownMachine(MachineId(9)))
        );
        assert_eq!(
            f.read(MachineId(0), MachineId(1), 1, 0, 8),
            Err(NetError::NoSuchSegment(1))
        );
        let seg = Segment::new(8);
        f.machine(MachineId(1)).unwrap().register_segment(1, seg);
        assert_eq!(
            f.read(MachineId(0), MachineId(1), 1, 4, 8),
            Err(NetError::OutOfBounds)
        );
        f.kill(MachineId(1));
        assert_eq!(
            f.read(MachineId(0), MachineId(1), 1, 0, 4),
            Err(NetError::MachineUnreachable(MachineId(1)))
        );
        f.revive(MachineId(1));
        assert!(f.read(MachineId(0), MachineId(1), 1, 0, 4).is_ok());
    }

    #[test]
    fn read_many_batches_one_doorbell() {
        let f = fabric();
        let seg = Segment::new(256);
        f.machine(MachineId(1)).unwrap().register_segment(7, seg);
        for i in 0..8 {
            f.write(MachineId(1), MachineId(1), 7, i * 8, &[i as u8; 8])
                .unwrap();
        }
        let before = f.metrics().snapshot();
        let specs: Vec<(u64, usize, usize)> = (0..8).map(|i| (7u64, i * 8, 8)).collect();
        let got = f.read_many(MachineId(0), MachineId(1), &specs).unwrap();
        assert_eq!(got.len(), 8);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(&r.as_ref().unwrap()[..], &[i as u8; 8]);
        }
        let d = f.metrics().snapshot().delta_since(&before);
        assert_eq!(d.remote_reads, 8, "object-level read count is preserved");
        assert_eq!(d.doorbells, 1, "one post for the whole batch");
        assert_eq!(d.reads_batched, 8);
        assert_eq!(d.bytes_read, 64);
    }

    #[test]
    fn read_many_charges_one_round_trip() {
        let clock = VirtualClock::new();
        let cfg = FabricConfig {
            inject_latency: true,
            clock: clock.clone(),
            ..Default::default()
        };
        let f = Fabric::new(cfg);
        f.machine(MachineId(1))
            .unwrap()
            .register_segment(1, Segment::new(1024));
        let t0 = clock.now_ns();
        let specs: Vec<(u64, usize, usize)> = (0..8).map(|i| (1u64, i * 64, 64)).collect();
        f.read_many(MachineId(0), MachineId(1), &specs).unwrap();
        let batched_ns = clock.now_ns() - t0;
        let t1 = clock.now_ns();
        for &(s, o, l) in &specs {
            f.read(MachineId(0), MachineId(1), s, o, l).unwrap();
        }
        let scalar_ns = clock.now_ns() - t1;
        assert!(
            batched_ns * 4 < scalar_ns,
            "batched {batched_ns}ns vs scalar {scalar_ns}ns"
        );
    }

    #[test]
    fn read_many_per_entry_errors() {
        let f = fabric();
        f.machine(MachineId(1))
            .unwrap()
            .register_segment(1, Segment::new(64));
        let got = f
            .read_many(
                MachineId(0),
                MachineId(1),
                &[(1, 0, 8), (9, 0, 8), (1, 60, 8)],
            )
            .unwrap();
        assert!(got[0].is_ok());
        assert_eq!(got[1], Err(NetError::NoSuchSegment(9)));
        assert_eq!(got[2], Err(NetError::OutOfBounds));
        // Batch-level failures: dead machine, empty batch.
        f.kill(MachineId(1));
        assert_eq!(
            f.read_many(MachineId(0), MachineId(1), &[(1, 0, 8)]),
            Err(NetError::MachineUnreachable(MachineId(1)))
        );
        assert_eq!(f.read_many(MachineId(0), MachineId(2), &[]), Ok(vec![]));
    }

    #[test]
    fn read_many_respects_fault_injector() {
        let f = fabric();
        f.machine(MachineId(1))
            .unwrap()
            .register_segment(1, Segment::new(64));
        f.machine(MachineId(0))
            .unwrap()
            .register_segment(2, Segment::new(64));
        f.set_fault_injector(Some(Arc::new(DropAll)));
        assert_eq!(
            f.read_many(MachineId(0), MachineId(1), &[(1, 0, 8)]),
            Err(NetError::MachineUnreachable(MachineId(1))),
            "the injector rules once on the whole doorbell"
        );
        assert!(f
            .read_many(MachineId(0), MachineId(0), &[(2, 0, 8)])
            .is_ok());
    }

    #[test]
    fn rpc_roundtrip() {
        let f = fabric();
        f.set_rpc_handler(
            MachineId(2),
            Arc::new(|from: MachineId, req: Bytes| {
                let mut v = req.to_vec();
                v.push(from.0 as u8);
                Bytes::from(v)
            }),
        );
        let reply = f
            .rpc(MachineId(1), MachineId(2), Bytes::from_static(&[5]))
            .unwrap();
        assert_eq!(&reply[..], &[5, 1]);
        let snap = f.metrics().snapshot();
        assert_eq!(snap.rpcs, 1);
        assert_eq!(snap.rpc_req_bytes, 1);
        assert_eq!(snap.rpc_reply_bytes, 2);
        assert_eq!(snap.rpc_bytes(), 3);
    }

    #[test]
    fn rpc_to_dead_machine_fails() {
        let f = fabric();
        f.kill(MachineId(3));
        assert_eq!(
            f.rpc(MachineId(0), MachineId(3), Bytes::new()),
            Err(NetError::MachineUnreachable(MachineId(3)))
        );
        assert_eq!(
            f.rpc(MachineId(0), MachineId(1), Bytes::new()),
            Err(NetError::NoHandler(MachineId(1)))
        );
    }

    #[test]
    fn ud_delivery_and_drops() {
        let cfg = FabricConfig {
            ud_drop_rate: 0.0,
            ..Default::default()
        };
        let f = Fabric::new(cfg);
        let (tx, rx) = crossbeam::channel::bounded(1);
        f.set_ud_handler(
            MachineId(1),
            Arc::new(move |_from, payload: Bytes| {
                let _ = tx.send(payload);
            }),
        );
        f.send_ud(MachineId(0), MachineId(1), Bytes::from_static(b"hb"));
        let got = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&got[..], b"hb");

        // With 100% drop rate nothing arrives.
        let cfg = FabricConfig {
            ud_drop_rate: 1.0,
            ..Default::default()
        };
        let f = Fabric::new(cfg);
        f.send_ud(MachineId(0), MachineId(1), Bytes::from_static(b"x"));
        assert_eq!(f.metrics().snapshot().ud_dropped, 1);
    }

    #[test]
    fn rack_assignment_spreads() {
        let f = Fabric::new(FabricConfig {
            machines: 6,
            racks: 3,
            ..Default::default()
        });
        assert_eq!(f.rack_of(MachineId(0)), 0);
        assert_eq!(f.rack_of(MachineId(1)), 1);
        assert_eq!(f.rack_of(MachineId(2)), 2);
        assert_eq!(f.rack_of(MachineId(3)), 0);
    }

    #[test]
    fn injected_latency_is_virtual_under_sim_clock() {
        let clock = VirtualClock::new();
        let cfg = FabricConfig {
            inject_latency: true,
            clock: clock.clone(),
            ..Default::default()
        };
        let f = Fabric::new(cfg);
        let seg = Segment::new(64);
        f.machine(MachineId(1)).unwrap().register_segment(1, seg);
        let t0 = Instant::now();
        for _ in 0..10 {
            f.read(MachineId(0), MachineId(1), 1, 0, 8).unwrap();
        }
        // The modeled ~50 µs land on the virtual clock, not the wall clock.
        assert!(clock.now_ns() >= 40_000, "virtual time advanced");
        assert!(t0.elapsed() < Duration::from_millis(50));
        assert_eq!(f.metrics().snapshot().sim_ns, clock.now_ns());
    }

    /// A drop-everything injector partitions the fabric; clearing it heals.
    struct DropAll;
    impl FaultInjector for DropAll {
        fn decide(&self, _: NetOp, from: MachineId, to: MachineId, _: usize) -> FaultDecision {
            if from == to {
                FaultDecision::Deliver
            } else {
                FaultDecision::Drop
            }
        }
    }

    #[test]
    fn fault_injector_drops_and_heals() {
        let f = fabric();
        let seg = Segment::new(64);
        f.machine(MachineId(1)).unwrap().register_segment(1, seg);
        f.machine(MachineId(0))
            .unwrap()
            .register_segment(2, Segment::new(64));
        f.set_fault_injector(Some(Arc::new(DropAll)));
        assert_eq!(
            f.read(MachineId(0), MachineId(1), 1, 0, 8),
            Err(NetError::MachineUnreachable(MachineId(1)))
        );
        assert_eq!(
            f.rpc(MachineId(0), MachineId(1), Bytes::new()),
            Err(NetError::MachineUnreachable(MachineId(1)))
        );
        // Local ops are untouched.
        assert!(f.read(MachineId(0), MachineId(0), 2, 0, 8).is_ok());
        f.set_fault_injector(None);
        assert!(f.read(MachineId(0), MachineId(1), 1, 0, 8).is_ok());
    }

    /// Reply-drop: the handler runs (side effects land) but the caller sees
    /// a lost reply — the classic commit-ambiguity fault.
    struct DropReplies;
    impl FaultInjector for DropReplies {
        fn decide(&self, op: NetOp, _: MachineId, _: MachineId, _: usize) -> FaultDecision {
            if op == NetOp::RpcReply {
                FaultDecision::Drop
            } else {
                FaultDecision::Deliver
            }
        }
    }

    #[test]
    fn fault_injector_reply_drop_after_side_effects() {
        let f = fabric();
        let hits = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let hits2 = hits.clone();
        f.set_rpc_handler(
            MachineId(2),
            Arc::new(move |_, req: Bytes| {
                hits2.fetch_add(1, Ordering::SeqCst);
                req
            }),
        );
        f.set_fault_injector(Some(Arc::new(DropReplies)));
        assert_eq!(
            f.rpc(MachineId(1), MachineId(2), Bytes::from_static(&[1])),
            Err(NetError::RpcDropped)
        );
        assert_eq!(hits.load(Ordering::SeqCst), 1, "handler ran before drop");
    }

    #[test]
    fn injected_latency_is_wall_clock() {
        let cfg = FabricConfig {
            inject_latency: true,
            ..Default::default()
        };
        let f = Fabric::new(cfg);
        let seg = Segment::new(64);
        f.machine(MachineId(1)).unwrap().register_segment(1, seg);
        let t0 = Instant::now();
        for _ in 0..10 {
            f.read(MachineId(0), MachineId(1), 1, 0, 8).unwrap();
        }
        // 10 in-rack reads ≈ 50 µs minimum.
        assert!(t0.elapsed() >= Duration::from_micros(40));
    }
}
