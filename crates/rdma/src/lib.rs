//! Simulated RDMA fabric.
//!
//! The paper's A1/FaRM stack is gated on RDMA hardware (Mellanox NICs,
//! RoCEv2 + DCQCN, §5.1). This crate substitutes an in-process simulated
//! fabric that preserves what the layers above actually observe:
//!
//! * **One-sided verbs** ([`Fabric::read`], [`Fabric::write`],
//!   [`Fabric::cas64`]) that access a remote machine's registered memory
//!   segments without involving that machine's "CPU" (worker pool).
//! * **A latency model** — local ≈100 ns vs in-rack ≈5 µs vs cross-rack
//!   ≈17 µs plus a per-byte bandwidth term — so the 20–100× local/remote gap
//!   that drives A1's data-placement decisions (§2.2) is visible. Latency is
//!   always *accounted* (simulated nanosecond counters) and can optionally be
//!   *injected* (spin-waits) so wall-clock measurements are µs-realistic.
//! * **RPC** with per-machine elastic worker pools and real queueing — the
//!   transport for A1's query shipping (§3.4).
//! * **Unreliable datagrams** with loss injection — used for leases and clock
//!   beacons (§5.1).
//! * **Failure injection** — machines can be killed and revived; operations
//!   against dead machines fail like a NIC timeout would.
//!
//! Machines are assigned round-robin to `racks` fault domains; rack
//! membership feeds both the latency model and FaRM's replica placement.

mod clock;
mod fabric;
mod fault;
mod latency;
mod machine;
mod metrics;
mod pool;
mod rng;

pub use clock::{ClockSource, RealClock, VirtualClock};
pub use fabric::{Fabric, NetError};
pub use fault::{FaultDecision, FaultInjector, NetOp};
pub use latency::LatencyModel;
pub use machine::{Machine, Segment};
pub use metrics::{Metrics, MetricsSnapshot};
pub use pool::{JobClass, ScopedJob, WorkerPool};
pub use rng::ClusterRng;

/// Identifies a machine in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineId(pub u32);

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Fabric-wide configuration.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of simulated machines.
    pub machines: u32,
    /// Number of fault domains (racks). Machines are spread round-robin.
    pub racks: u32,
    /// Base worker threads per machine (the paper pins a fixed thread count
    /// per FaRM process, §2.2).
    pub threads_per_machine: usize,
    /// Elastic ceiling for worker threads; extra threads are spawned when the
    /// base set is saturated and expire when idle. This keeps the in-process
    /// simulation deadlock-free under nested RPC while preserving queueing.
    pub max_threads_per_machine: usize,
    /// The latency model used for accounting (and optional injection).
    pub latency: LatencyModel,
    /// When true, every simulated network operation spin-waits for its
    /// modeled latency so wall-clock timings are microsecond-faithful.
    pub inject_latency: bool,
    /// Probability in `[0,1]` that an unreliable datagram is dropped.
    pub ud_drop_rate: f64,
    /// Seed for the cluster's [`ClusterRng`] (datagram drops, backoff
    /// jitter). Fixing it makes every random decision replayable.
    pub seed: u64,
    /// The time source every timer in the stack reads and sleeps on.
    /// [`RealClock`] (the default) reproduces pre-existing behavior; the
    /// simulation harness injects a [`VirtualClock`] here.
    pub clock: std::sync::Arc<dyn ClockSource>,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            machines: 4,
            racks: 3,
            threads_per_machine: 2,
            max_threads_per_machine: 64,
            latency: LatencyModel::default(),
            inject_latency: false,
            ud_drop_rate: 0.0,
            seed: 0xA1,
            clock: RealClock::shared(),
        }
    }
}

impl FabricConfig {
    pub fn with_machines(mut self, n: u32) -> Self {
        self.machines = n;
        self
    }

    pub fn with_injected_latency(mut self, on: bool) -> Self {
        self.inject_latency = on;
        self
    }
}
