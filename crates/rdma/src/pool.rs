//! Elastic worker pool — the simulated per-machine thread set.
//!
//! FaRM pins a fixed number of threads per machine and coprocessors share
//! them cooperatively via fibers (§2.2). In this simulation each machine has
//! `base` always-on OS threads; when all are busy and more work arrives,
//! temporary threads are spawned (up to `max`) and retire after an idle
//! period. The elasticity stands in for fibers: a fiber blocked on a remote
//! operation yields its thread, which we model by letting another thread run.
//!
//! Jobs carry a [`JobClass`] so the pool can be shared fairly between the
//! request classes that compete for a machine's "CPU": query-serving work
//! (coordinator fan-out, RPC dispatch), intra-machine morsels, and ingest
//! batch application. Two mechanisms combine:
//!
//! * **Priority lane** — when a worker frees up it dequeues `Query` jobs
//!   before `Morsel` jobs before `Ingest` jobs, so a backlog of ingest
//!   batches can never starve the serving path.
//! * **Per-class in-flight quotas** — each class can be capped to a number
//!   of concurrently *running* jobs ([`WorkerPool::set_class_quota`]).
//!   Over-quota jobs wait in a per-class backlog and are promoted as their
//!   class drains, bounding how many worker threads a greedy class (e.g.
//!   ingest appliers under a bulk load) may occupy at once.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A borrowing job for [`WorkerPool::run_all`]: may capture references into
/// the caller's stack because `run_all` joins every job before returning.
pub type ScopedJob<'env, R> = Box<dyn FnOnce() -> R + Send + 'env>;

const TEMP_THREAD_IDLE: Duration = Duration::from_millis(200);

/// Scheduling class of a pool job. Declaration order is dequeue priority:
/// workers drain `Query` before `Morsel` before `Ingest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// Request-serving work: RPC dispatch, coordinator fan-out waves.
    Query,
    /// Intra-machine morsels of a work-op batch.
    Morsel,
    /// Ingest batch application (group commits).
    Ingest,
}

const NUM_CLASSES: usize = 3;

impl JobClass {
    fn idx(self) -> usize {
        match self {
            JobClass::Query => 0,
            JobClass::Morsel => 1,
            JobClass::Ingest => 2,
        }
    }
}

/// Class-aware scheduler state: per-class ready queues (dequeued by
/// priority), per-class backlogs (over-quota jobs awaiting promotion), and
/// the in-flight accounting that gates promotion.
struct Sched {
    ready: [VecDeque<Job>; NUM_CLASSES],
    backlog: [VecDeque<Job>; NUM_CLASSES],
    /// Jobs of each class admitted (ready or running) right now.
    in_flight: [usize; NUM_CLASSES],
    /// Max in-flight per class; `0` = unlimited.
    quota: [usize; NUM_CLASSES],
}

impl Sched {
    fn can_admit(&self, c: usize) -> bool {
        self.quota[c] == 0 || self.in_flight[c] < self.quota[c]
    }
}

struct PoolShared {
    /// Wake tokens: one per ready job. Jobs themselves live in `sched` so
    /// dequeue order is priority-aware, not FIFO-across-classes.
    tx: Mutex<Option<Sender<()>>>,
    rx: Receiver<()>,
    sched: Mutex<Sched>,
    idle: AtomicUsize,
    threads: AtomicUsize,
    max: usize,
    name: String,
}

impl PoolShared {
    /// One job finished (or was dropped): release its quota slot and promote
    /// backlog jobs that now fit. Lock order: `sched` is released before
    /// `tx` is taken (the submit path nests them the other way around).
    fn on_complete(&self, queued: &AtomicUsize, class: usize) {
        let promoted = {
            let mut s = self.sched.lock();
            s.in_flight[class] -= 1;
            let mut n = 0;
            while s.can_admit(class) {
                let Some(job) = s.backlog[class].pop_front() else {
                    break;
                };
                s.in_flight[class] += 1;
                s.ready[class].push_back(job);
                n += 1;
            }
            n
        };
        if promoted > 0 {
            queued.fetch_add(promoted, Ordering::Relaxed);
            let guard = self.tx.lock();
            if let Some(tx) = guard.as_ref() {
                for _ in 0..promoted {
                    let _ = tx.send(());
                }
            }
        }
    }

    /// Dequeue the highest-priority ready job. Every wake token corresponds
    /// to a pushed ready job, so this only returns `None` under teardown
    /// races.
    fn take_job(&self) -> Option<(Job, usize)> {
        let mut s = self.sched.lock();
        for c in 0..NUM_CLASSES {
            if let Some(job) = s.ready[c].pop_front() {
                return Some((job, c));
            }
        }
        None
    }
}

/// Releases a running job's quota slot even if the job panics.
struct RunningGuard<'a> {
    shared: &'a PoolShared,
    queued: &'a AtomicUsize,
    class: usize,
}

impl Drop for RunningGuard<'_> {
    fn drop(&mut self) {
        self.shared.on_complete(self.queued, self.class);
    }
}

/// An elastic thread pool with class-aware scheduling.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    queued: Arc<AtomicUsize>,
}

impl WorkerPool {
    pub fn new(name: &str, base: usize, max: usize) -> WorkerPool {
        assert!(base >= 1, "pool needs at least one thread");
        assert!(max >= base);
        let (tx, rx) = unbounded::<()>();
        let shared = Arc::new(PoolShared {
            tx: Mutex::new(Some(tx)),
            rx,
            sched: Mutex::new(Sched {
                ready: std::array::from_fn(|_| VecDeque::new()),
                backlog: std::array::from_fn(|_| VecDeque::new()),
                in_flight: [0; NUM_CLASSES],
                quota: [0; NUM_CLASSES],
            }),
            idle: AtomicUsize::new(0),
            threads: AtomicUsize::new(0),
            max,
            name: name.to_string(),
        });
        let pool = WorkerPool {
            shared: shared.clone(),
            queued: Arc::new(AtomicUsize::new(0)),
        };
        for i in 0..base {
            spawn_worker(shared.clone(), pool.queued.clone(), i, true);
        }
        pool
    }

    /// Enqueue a job in the default [`JobClass::Query`] lane. Spawns a
    /// temporary worker when the pool is saturated.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.execute_class(JobClass::Query, job);
    }

    /// Enqueue a job in a specific class lane. Jobs over the class's
    /// in-flight quota wait in the class backlog and are promoted as earlier
    /// jobs of that class complete.
    pub fn execute_class(&self, class: JobClass, job: impl FnOnce() + Send + 'static) {
        let guard = self.shared.tx.lock();
        let Some(tx) = guard.as_ref() else {
            return; // pool shut down; drop the job
        };
        let c = class.idx();
        {
            let mut s = self.shared.sched.lock();
            if !s.can_admit(c) {
                s.backlog[c].push_back(Box::new(job));
                return;
            }
            s.in_flight[c] += 1;
            s.ready[c].push_back(Box::new(job));
        }
        let queued = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        tx.send(()).expect("receiver held by shared state");
        // Grow when demand outruns the idle set, not only when it hits zero:
        // a burst of enqueues can land before any idle worker wakes up, and
        // jobs that block (the fiber stand-in) would then starve the queue.
        if queued > self.shared.idle.load(Ordering::Relaxed) {
            let n = self.shared.threads.load(Ordering::Relaxed);
            if n < self.shared.max {
                spawn_worker(self.shared.clone(), self.queued.clone(), n, false);
            }
        }
    }

    /// Cap `class` to `quota` concurrently in-flight jobs (`0` = unlimited).
    /// Raising the quota promotes waiting backlog jobs immediately.
    pub fn set_class_quota(&self, class: JobClass, quota: usize) {
        let c = class.idx();
        let promoted = {
            let mut s = self.shared.sched.lock();
            s.quota[c] = quota;
            let mut n = 0;
            while s.can_admit(c) {
                let Some(job) = s.backlog[c].pop_front() else {
                    break;
                };
                s.in_flight[c] += 1;
                s.ready[c].push_back(job);
                n += 1;
            }
            n
        };
        if promoted > 0 {
            self.queued.fetch_add(promoted, Ordering::Relaxed);
            let guard = self.shared.tx.lock();
            if let Some(tx) = guard.as_ref() {
                for _ in 0..promoted {
                    let _ = tx.send(());
                }
            }
        }
    }

    /// Jobs of `class` currently admitted (ready or running).
    pub fn class_in_flight(&self, class: JobClass) -> usize {
        self.shared.sched.lock().in_flight[class.idx()]
    }

    /// Jobs of `class` waiting in the over-quota backlog.
    pub fn class_backlog(&self, class: JobClass) -> usize {
        self.shared.sched.lock().backlog[class.idx()].len()
    }

    /// Enqueue a job and block until it completes, returning its result.
    /// A panic inside the job is caught on the worker (keeping the thread
    /// alive) and resumed here on the caller. Panics if the pool has shut
    /// down; use [`WorkerPool::try_execute_wait`] to observe that instead.
    pub fn execute_wait<R: Send + 'static>(&self, job: impl FnOnce() -> R + Send + 'static) -> R {
        self.try_execute_wait(job).expect("pool dropped the job")
    }

    /// [`WorkerPool::execute_wait`], but returns `None` when the pool has
    /// shut down and dropped the job (e.g. a caller racing cluster
    /// teardown).
    pub fn try_execute_wait<R: Send + 'static>(
        &self,
        job: impl FnOnce() -> R + Send + 'static,
    ) -> Option<R> {
        self.try_execute_wait_class(JobClass::Query, job)
    }

    /// [`WorkerPool::try_execute_wait`] in a specific class lane — the
    /// blocking submit for quota-bounded work (e.g. ingest batch
    /// application).
    pub fn try_execute_wait_class<R: Send + 'static>(
        &self,
        class: JobClass,
        job: impl FnOnce() -> R + Send + 'static,
    ) -> Option<R> {
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.execute_class(class, move || {
            let _ = tx.send(std::panic::catch_unwind(AssertUnwindSafe(job)));
        });
        match rx.recv().ok()? {
            Ok(r) => Some(r),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// [`WorkerPool::try_execute_wait`], except that when the pool is
    /// saturated — no idle worker and no room to grow — the job runs inline
    /// on the calling thread instead of queueing. The caller was about to
    /// block on the result anyway, so lending its thread (the fiber model:
    /// a blocked thread yields) costs nothing and guarantees progress when
    /// every pool thread in a cycle of machines is blocked on another
    /// machine's pool.
    pub fn try_execute_wait_or_inline<R: Send + 'static>(
        &self,
        job: impl FnOnce() -> R + Send + 'static,
    ) -> Option<R> {
        if self.is_saturated() {
            return Some(job());
        }
        self.try_execute_wait(job)
    }

    /// True when no worker is idle and the pool cannot grow. A caller about
    /// to block on queued work (e.g. a scoped [`WorkerPool::run_all`] batch)
    /// should degrade to inline execution instead: lending the calling
    /// thread guarantees progress when every pool thread is itself blocked
    /// waiting on queued jobs.
    pub fn is_saturated(&self) -> bool {
        self.shared.idle.load(Ordering::Relaxed) == 0
            && self.shared.threads.load(Ordering::Relaxed) >= self.shared.max
    }

    /// Scoped batch execution in the default [`JobClass::Query`] lane; see
    /// [`WorkerPool::run_all_class`].
    pub fn run_all<'env, R: Send + 'env>(&self, jobs: Vec<ScopedJob<'env, R>>) -> Vec<R> {
        self.run_all_class(JobClass::Query, jobs)
    }

    /// Scoped batch execution: run every job on the pool concurrently and
    /// return their results **in input order**. Blocks until all jobs have
    /// finished, which is what makes it sound for jobs that borrow from the
    /// caller's stack (the classic scoped-pool pattern).
    ///
    /// Each job lives in a *claimable slot*: whoever takes it out — a pool
    /// worker running the enqueued wrapper, or the calling thread — runs it.
    /// The caller behaves like an extra worker pinned to its own batch: it
    /// claims and runs unstarted jobs inline (**self-help**) and only then
    /// blocks for the executions workers claimed. That makes nested-join
    /// progress structural: even when every pool thread is itself blocked in
    /// another `run_all` join and the pool cannot grow — or the batch's
    /// class is quota-capped and its wrappers sit in the backlog — each
    /// blocked caller completes its own batch on its own thread (the fiber
    /// stand-in: a blocked thread lends itself out). The caller never
    /// executes foreign queue entries, so a long-running unrelated job
    /// (e.g. a streaming applier loop) can never be pulled onto a joining
    /// thread.
    ///
    /// If any job panics, the panic is re-raised on the caller *after* every
    /// other job has completed (so borrowed state is never unwound while
    /// still shared).
    // The one unsafe block in the workspace: lifetime erasure for scoped
    // jobs, justified by the emptied-slot invariant documented at the
    // transmute.
    #[allow(unsafe_code)]
    pub fn run_all_class<'env, R: Send + 'env>(
        &self,
        class: JobClass,
        jobs: Vec<ScopedJob<'env, R>>,
    ) -> Vec<R> {
        let n = jobs.len();
        match n {
            0 => return Vec::new(),
            1 => {
                let mut jobs = jobs;
                return vec![jobs.pop().expect("one job")()];
            }
            _ => {}
        }
        let (tx, rx) = crossbeam::channel::bounded::<(usize, std::thread::Result<R>)>(n);
        let job_slots: Vec<Arc<Mutex<Option<ScopedJob<'env, R>>>>> = jobs
            .into_iter()
            .map(|job| Arc::new(Mutex::new(Some(job))))
            .collect();
        // The join guard restores the emptied-slot invariant on an
        // unexpected unwind between dispatch and join: it claims-and-drops
        // every unstarted job (sound — the drop happens inside this frame)
        // and waits out worker-claimed executions, so no lifetime-erased
        // job can run after the caller's frame is gone. On the happy path
        // every slot is already empty and it does nothing.
        struct JoinGuard<'a, 'env, R> {
            rx: &'a Receiver<(usize, std::thread::Result<R>)>,
            job_slots: &'a [Arc<Mutex<Option<ScopedJob<'env, R>>>>],
            /// Results received plus jobs run inline or discarded.
            consumed: usize,
        }
        impl<R> Drop for JoinGuard<'_, '_, R> {
            fn drop(&mut self) {
                for slot in self.job_slots {
                    if slot.lock().take().is_some() {
                        self.consumed += 1; // never started; dropped here
                    }
                }
                while self.consumed < self.job_slots.len() {
                    match self.rx.recv() {
                        Ok(_) => self.consumed += 1,
                        Err(_) => break, // all senders gone: nothing pending
                    }
                }
            }
        }
        let mut guard = JoinGuard {
            rx: &rx,
            job_slots: &job_slots,
            consumed: 0,
        };
        for (idx, slot) in job_slots.iter().enumerate() {
            let tx = tx.clone();
            let slot = slot.clone();
            let wrapper: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                // Claim-or-skip: an emptied slot means the caller (or an
                // earlier dequeue) already ran this job — the wrapper is
                // then an inert no-op, safe to run or drop at any time.
                let Some(job) = slot.lock().take() else {
                    return;
                };
                let _ = tx.send((idx, std::panic::catch_unwind(AssertUnwindSafe(job))));
            });
            // SAFETY: lifetime erasure is sound because no wrapper can
            // observe 'env data after this frame returns. Every job is
            // consumed *within* this call — claimed inline by the self-help
            // loop below or by a worker-run wrapper (whose result we then
            // block on) — so by the time run_all returns, every slot is
            // empty and the result channel is drained. A wrapper that runs
            // (or is dropped with the pool) later touches only the Arc'd
            // empty slot and a disconnected Sender, never 'env borrows.
            let wrapper: Job = unsafe { std::mem::transmute(wrapper) };
            self.execute_class(class, wrapper);
        }
        drop(tx);

        let mut slots: Vec<Option<std::thread::Result<R>>> = Vec::new();
        slots.resize_with(n, || None);
        // Self-help: claim and run this batch's unstarted jobs inline, like
        // a worker dedicated to the batch (workers claim the rest
        // concurrently). Drain ready results between jobs.
        for (idx, slot) in job_slots.iter().enumerate() {
            while let Ok((i, r)) = rx.try_recv() {
                slots[i] = Some(r);
                guard.consumed += 1;
            }
            let Some(job) = slot.lock().take() else {
                continue; // a worker got there first
            };
            slots[idx] = Some(std::panic::catch_unwind(AssertUnwindSafe(job)));
            guard.consumed += 1;
        }
        // Join: every remaining job was claimed by a live worker whose
        // wrapper always sends (even on panic), so a plain blocking recv
        // suffices — no polling, no foreign work.
        while guard.consumed < n {
            let (idx, result) = rx.recv().expect("claimed executions always send");
            slots[idx] = Some(result);
            guard.consumed += 1;
        }
        slots
            .into_iter()
            .map(|slot| match slot.expect("every slot filled") {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }

    /// Jobs queued and not yet started (class backlogs not included).
    pub fn queue_depth(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Current live thread count (base + temporary).
    pub fn thread_count(&self) -> usize {
        self.shared.threads.load(Ordering::Relaxed)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel lets permanent workers observe disconnection.
        *self.shared.tx.lock() = None;
    }
}

fn spawn_worker(shared: Arc<PoolShared>, queued: Arc<AtomicUsize>, idx: usize, permanent: bool) {
    shared.threads.fetch_add(1, Ordering::Relaxed);
    let name = format!(
        "{}-w{}{}",
        shared.name,
        idx,
        if permanent { "" } else { "t" }
    );
    let worker = {
        let shared = shared.clone();
        move || {
            loop {
                shared.idle.fetch_add(1, Ordering::Relaxed);
                let token = if permanent {
                    shared.rx.recv().map_err(|_| RecvTimeoutError::Disconnected)
                } else {
                    shared.rx.recv_timeout(TEMP_THREAD_IDLE)
                };
                shared.idle.fetch_sub(1, Ordering::Relaxed);
                match token {
                    Ok(()) => {
                        let Some((job, class)) = shared.take_job() else {
                            continue; // teardown race; token without a job
                        };
                        queued.fetch_sub(1, Ordering::Relaxed);
                        // The guard releases the quota slot (and promotes
                        // backlog) even if the job panics.
                        let _running = RunningGuard {
                            shared: &shared,
                            queued: &queued,
                            class,
                        };
                        job();
                    }
                    Err(_) => break, // disconnected, or temp thread idled out
                }
            }
            shared.threads.fetch_sub(1, Ordering::Relaxed);
        }
    };
    if let Err(e) = std::thread::Builder::new().name(name).spawn(worker) {
        // Elastic growth is best-effort: under OS thread pressure the job
        // stays queued for the existing workers. A pool that cannot spawn
        // even its base threads is unusable, though — fail loudly then.
        shared.threads.fetch_sub(1, Ordering::Relaxed);
        if permanent {
            panic!("spawn base worker thread: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_jobs() {
        let pool = WorkerPool::new("t", 2, 8);
        let counter = Arc::new(AtomicU64::new(0));
        let (tx, rx) = crossbeam::channel::bounded(0);
        for _ in 0..100 {
            let c = counter.clone();
            let tx = tx.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(());
            });
        }
        for _ in 0..100 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn grows_under_blocking_load() {
        let pool = WorkerPool::new("t", 1, 16);
        let (release_tx, release_rx) = crossbeam::channel::bounded::<()>(0);
        let (done_tx, done_rx) = crossbeam::channel::bounded(16);
        // 8 jobs that all block: with 1 base thread, progress requires growth.
        for _ in 0..8 {
            let rx = release_rx.clone();
            let done = done_tx.clone();
            pool.execute(move || {
                rx.recv().unwrap();
                done.send(()).unwrap();
            });
        }
        // Give the pool a moment to start workers, then release all jobs.
        std::thread::sleep(Duration::from_millis(50));
        assert!(pool.thread_count() > 1);
        for _ in 0..8 {
            release_tx.send(()).unwrap();
        }
        for _ in 0..8 {
            done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
    }

    #[test]
    fn execute_wait_returns_result() {
        let pool = WorkerPool::new("t", 2, 8);
        assert_eq!(pool.execute_wait(|| 6 * 7), 42);
        let s = pool.execute_wait(|| "hello".to_string());
        assert_eq!(s, "hello");
    }

    #[test]
    fn execute_wait_propagates_panic_and_keeps_worker() {
        let pool = WorkerPool::new("t", 1, 4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.execute_wait(|| panic!("boom"));
        }));
        assert!(caught.is_err());
        // The worker survived the panic and still runs jobs.
        assert_eq!(pool.execute_wait(|| 1 + 1), 2);
    }

    #[test]
    fn saturated_pool_runs_inline() {
        // 1 thread, no growth: occupy it with a blocked job, then a waiting
        // call must complete by running inline on the caller.
        let pool = WorkerPool::new("t", 1, 1);
        let (release_tx, release_rx) = crossbeam::channel::bounded::<()>(0);
        pool.execute(move || {
            release_rx.recv().unwrap();
        });
        // Give the lone worker a moment to pick the blocking job up.
        std::thread::sleep(Duration::from_millis(20));
        let got = pool.try_execute_wait_or_inline(|| 7).unwrap();
        assert_eq!(got, 7);
        release_tx.send(()).unwrap();
    }

    #[test]
    fn class_quota_bounds_in_flight() {
        let pool = WorkerPool::new("t", 4, 16);
        pool.set_class_quota(JobClass::Ingest, 1);
        let (release_tx, release_rx) = crossbeam::channel::bounded::<()>(0);
        let running = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        let (done_tx, done_rx) = crossbeam::channel::bounded(8);
        for _ in 0..4 {
            let (rx, running, peak, done) = (
                release_rx.clone(),
                running.clone(),
                peak.clone(),
                done_tx.clone(),
            );
            pool.execute_class(JobClass::Ingest, move || {
                let cur = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(cur, Ordering::SeqCst);
                rx.recv().unwrap();
                running.fetch_sub(1, Ordering::SeqCst);
                done.send(()).unwrap();
            });
        }
        std::thread::sleep(Duration::from_millis(30));
        // Quota 1: exactly one job admitted, three in the backlog.
        assert_eq!(pool.class_in_flight(JobClass::Ingest), 1);
        assert_eq!(pool.class_backlog(JobClass::Ingest), 3);
        for _ in 0..4 {
            release_tx.send(()).unwrap();
            done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1, "quota exceeded");
        assert_eq!(pool.class_in_flight(JobClass::Ingest), 0);
    }

    #[test]
    fn raising_quota_promotes_backlog() {
        let pool = WorkerPool::new("t", 4, 16);
        pool.set_class_quota(JobClass::Ingest, 1);
        let (release_tx, release_rx) = crossbeam::channel::bounded::<()>(0);
        let (done_tx, done_rx) = crossbeam::channel::bounded(8);
        for _ in 0..3 {
            let (rx, done) = (release_rx.clone(), done_tx.clone());
            pool.execute_class(JobClass::Ingest, move || {
                rx.recv().unwrap();
                done.send(()).unwrap();
            });
        }
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(pool.class_backlog(JobClass::Ingest), 2);
        pool.set_class_quota(JobClass::Ingest, 0); // unlimited
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(pool.class_backlog(JobClass::Ingest), 0);
        for _ in 0..3 {
            release_tx.send(()).unwrap();
            done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
    }

    #[test]
    fn query_lane_preempts_ingest_backlog() {
        // One worker, no growth. Occupy it, queue ingest jobs, then a query
        // job: when the worker frees, the query must dequeue before any of
        // the earlier-queued ingest jobs (priority lane, not FIFO).
        let pool = WorkerPool::new("t", 1, 1);
        let (release_tx, release_rx) = crossbeam::channel::bounded::<()>(0);
        pool.execute_class(JobClass::Ingest, move || {
            release_rx.recv().unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        let order = Arc::new(Mutex::new(Vec::new()));
        let (done_tx, done_rx) = crossbeam::channel::bounded(8);
        for i in 0..3 {
            let (order, done) = (order.clone(), done_tx.clone());
            pool.execute_class(JobClass::Ingest, move || {
                order.lock().push(format!("ingest{i}"));
                done.send(()).unwrap();
            });
        }
        let (order2, done2) = (order.clone(), done_tx.clone());
        pool.execute_class(JobClass::Query, move || {
            order2.lock().push("query".into());
            done2.send(()).unwrap();
        });
        release_tx.send(()).unwrap();
        for _ in 0..4 {
            done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(
            order.lock().first().map(String::as_str),
            Some("query"),
            "query job did not jump the ingest backlog: {:?}",
            order.lock()
        );
    }

    #[test]
    fn run_all_collects_in_order() {
        let pool = WorkerPool::new("t", 2, 16);
        let jobs: Vec<ScopedJob<usize>> = (0..32usize)
            .map(|i| Box::new(move || i * 2) as ScopedJob<usize>)
            .collect();
        let results = pool.run_all(jobs);
        assert_eq!(results, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_all_borrows_from_stack() {
        let pool = WorkerPool::new("t", 2, 16);
        let data: Vec<u64> = (0..100).collect();
        let chunks: Vec<&[u64]> = data.chunks(10).collect();
        let jobs: Vec<ScopedJob<u64>> = chunks
            .iter()
            .map(|chunk| {
                let chunk: &[u64] = chunk;
                Box::new(move || chunk.iter().sum::<u64>()) as ScopedJob<u64>
            })
            .collect();
        let sums = pool.run_all(jobs);
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn run_all_is_concurrent() {
        // With jobs that rendezvous with each other, completion requires all
        // of them to be in flight at once.
        let pool = WorkerPool::new("t", 1, 16);
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let jobs: Vec<ScopedJob<()>> = (0..4)
            .map(|_| {
                let b = barrier.clone();
                Box::new(move || {
                    b.wait();
                }) as ScopedJob<()>
            })
            .collect();
        pool.run_all(jobs); // would hang if jobs ran one at a time
    }

    #[test]
    fn run_all_completes_under_zero_headroom_quota() {
        // Morsel quota 1 with the lone slot held by a blocked job: the
        // batch's wrappers all land in the backlog and no worker will ever
        // run them. Self-help must complete the batch on the caller.
        let pool = WorkerPool::new("t", 2, 8);
        pool.set_class_quota(JobClass::Morsel, 1);
        let (release_tx, release_rx) = crossbeam::channel::bounded::<()>(0);
        pool.execute_class(JobClass::Morsel, move || {
            release_rx.recv().unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        let jobs: Vec<ScopedJob<u64>> = (0..4)
            .map(|i| Box::new(move || i as u64) as ScopedJob<u64>)
            .collect();
        let total: u64 = pool.run_all_class(JobClass::Morsel, jobs).into_iter().sum();
        assert_eq!(total, 6);
        release_tx.send(()).unwrap();
    }

    #[test]
    fn run_all_propagates_panic_after_join() {
        let pool = WorkerPool::new("t", 2, 8);
        let done = Arc::new(AtomicU64::new(0));
        let jobs: Vec<ScopedJob<()>> = (0..4)
            .map(|i| {
                let done = done.clone();
                Box::new(move || {
                    if i == 2 {
                        panic!("job 2 failed");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                }) as ScopedJob<()>
            })
            .collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run_all(jobs)));
        assert!(caught.is_err());
        // All non-panicking jobs completed before the panic surfaced.
        assert_eq!(done.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn run_all_nested_when_pool_cannot_grow() {
        // One thread, no growth: the lone worker runs a job that itself
        // calls run_all. The batch's wrappers queue with no worker ever free
        // to take them — only the help-first join (the caller draining the
        // queue onto its own thread) can complete this.
        let pool = Arc::new(WorkerPool::new("t", 1, 1));
        let p = pool.clone();
        let total = pool.execute_wait(move || {
            let jobs: Vec<ScopedJob<u64>> = (0..4)
                .map(|i| Box::new(move || i as u64) as ScopedJob<u64>)
                .collect();
            p.run_all(jobs).into_iter().sum::<u64>()
        });
        assert_eq!(total, 6);
    }

    #[test]
    fn run_all_nested_from_pool_thread() {
        // A pool job that itself calls run_all on the same pool (the
        // coordinator-on-a-backend case) must not deadlock: the inline job
        // plus elastic growth guarantee progress.
        let pool = Arc::new(WorkerPool::new("t", 1, 16));
        let p = pool.clone();
        let total = pool.execute_wait(move || {
            let jobs: Vec<ScopedJob<u64>> = (0..8)
                .map(|i| Box::new(move || i as u64) as ScopedJob<u64>)
                .collect();
            p.run_all(jobs).into_iter().sum::<u64>()
        });
        assert_eq!(total, 28);
    }

    #[test]
    fn drop_stops_workers() {
        let pool = WorkerPool::new("t", 2, 4);
        pool.execute(|| {});
        drop(pool);
        // Nothing to assert beyond "no hang/panic" — workers exit on disconnect.
    }
}
