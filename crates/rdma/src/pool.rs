//! Elastic worker pool — the simulated per-machine thread set.
//!
//! FaRM pins a fixed number of threads per machine and coprocessors share
//! them cooperatively via fibers (§2.2). In this simulation each machine has
//! `base` always-on OS threads; when all are busy and more work arrives,
//! temporary threads are spawned (up to `max`) and retire after an idle
//! period. The elasticity stands in for fibers: a fiber blocked on a remote
//! operation yields its thread, which we model by letting another thread run.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

const TEMP_THREAD_IDLE: Duration = Duration::from_millis(200);

struct PoolShared {
    rx: Receiver<Job>,
    idle: AtomicUsize,
    threads: AtomicUsize,
    max: usize,
    name: String,
}

/// An elastic thread pool.
pub struct WorkerPool {
    tx: Mutex<Option<Sender<Job>>>,
    shared: Arc<PoolShared>,
    queued: Arc<AtomicUsize>,
}

impl WorkerPool {
    pub fn new(name: &str, base: usize, max: usize) -> WorkerPool {
        assert!(base >= 1, "pool needs at least one thread");
        assert!(max >= base);
        let (tx, rx) = unbounded::<Job>();
        let shared = Arc::new(PoolShared {
            rx,
            idle: AtomicUsize::new(0),
            threads: AtomicUsize::new(0),
            max,
            name: name.to_string(),
        });
        let pool = WorkerPool {
            tx: Mutex::new(Some(tx)),
            shared: shared.clone(),
            queued: Arc::new(AtomicUsize::new(0)),
        };
        for i in 0..base {
            spawn_worker(shared.clone(), pool.queued.clone(), i, true);
        }
        pool
    }

    /// Enqueue a job. Spawns a temporary worker when the pool is saturated.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let guard = self.tx.lock();
        let Some(tx) = guard.as_ref() else {
            return; // pool shut down; drop the job
        };
        let queued = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        tx.send(Box::new(job))
            .expect("receiver held by shared state");
        // Grow when demand outruns the idle set, not only when it hits zero:
        // a burst of enqueues can land before any idle worker wakes up, and
        // jobs that block (the fiber stand-in) would then starve the queue.
        if queued > self.shared.idle.load(Ordering::Relaxed) {
            let n = self.shared.threads.load(Ordering::Relaxed);
            if n < self.shared.max {
                spawn_worker(self.shared.clone(), self.queued.clone(), n, false);
            }
        }
    }

    /// Jobs queued and not yet started.
    pub fn queue_depth(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Current live thread count (base + temporary).
    pub fn thread_count(&self) -> usize {
        self.shared.threads.load(Ordering::Relaxed)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel lets permanent workers observe disconnection.
        *self.tx.lock() = None;
    }
}

fn spawn_worker(shared: Arc<PoolShared>, queued: Arc<AtomicUsize>, idx: usize, permanent: bool) {
    shared.threads.fetch_add(1, Ordering::Relaxed);
    let name = format!(
        "{}-w{}{}",
        shared.name,
        idx,
        if permanent { "" } else { "t" }
    );
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            loop {
                shared.idle.fetch_add(1, Ordering::Relaxed);
                let job = if permanent {
                    shared.rx.recv().map_err(|_| RecvTimeoutError::Disconnected)
                } else {
                    shared.rx.recv_timeout(TEMP_THREAD_IDLE)
                };
                shared.idle.fetch_sub(1, Ordering::Relaxed);
                match job {
                    Ok(job) => {
                        queued.fetch_sub(1, Ordering::Relaxed);
                        job();
                    }
                    Err(_) => break, // disconnected, or temp thread idled out
                }
            }
            shared.threads.fetch_sub(1, Ordering::Relaxed);
        })
        .expect("spawn worker thread");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_jobs() {
        let pool = WorkerPool::new("t", 2, 8);
        let counter = Arc::new(AtomicU64::new(0));
        let (tx, rx) = crossbeam::channel::bounded(0);
        for _ in 0..100 {
            let c = counter.clone();
            let tx = tx.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(());
            });
        }
        for _ in 0..100 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn grows_under_blocking_load() {
        let pool = WorkerPool::new("t", 1, 16);
        let (release_tx, release_rx) = crossbeam::channel::bounded::<()>(0);
        let (done_tx, done_rx) = crossbeam::channel::bounded(16);
        // 8 jobs that all block: with 1 base thread, progress requires growth.
        for _ in 0..8 {
            let rx = release_rx.clone();
            let done = done_tx.clone();
            pool.execute(move || {
                rx.recv().unwrap();
                done.send(()).unwrap();
            });
        }
        // Give the pool a moment to start workers, then release all jobs.
        std::thread::sleep(Duration::from_millis(50));
        assert!(pool.thread_count() > 1);
        for _ in 0..8 {
            release_tx.send(()).unwrap();
        }
        for _ in 0..8 {
            done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
    }

    #[test]
    fn drop_stops_workers() {
        let pool = WorkerPool::new("t", 2, 4);
        pool.execute(|| {});
        drop(pool);
        // Nothing to assert beyond "no hang/panic" — workers exit on disconnect.
    }
}
