//! Simulated machines and their registered memory segments.

use crate::pool::WorkerPool;
use crate::MachineId;
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// An RPC handler: `(caller, request) -> reply`.
pub type RpcHandler = dyn Fn(MachineId, Bytes) -> Bytes + Send + Sync;

/// An unreliable-datagram handler: `(caller, payload)`.
pub type UdHandler = dyn Fn(MachineId, Bytes) + Send + Sync;

/// A registered memory segment — the target of one-sided verbs. In real FaRM
/// these are the 2 GB regions pinned and registered with the NIC.
pub struct Segment {
    data: RwLock<Vec<u8>>,
}

impl Segment {
    pub fn new(len: usize) -> Arc<Segment> {
        Arc::new(Segment {
            data: RwLock::new(vec![0; len]),
        })
    }

    /// Wrap existing bytes (used when re-attaching PyCo memory, §5.3).
    pub fn from_bytes(bytes: Vec<u8>) -> Arc<Segment> {
        Arc::new(Segment {
            data: RwLock::new(bytes),
        })
    }

    pub fn len(&self) -> usize {
        self.data.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Atomic (with respect to writes) copy of `[off, off+len)`.
    pub fn read(&self, off: usize, len: usize) -> Option<Bytes> {
        let data = self.data.read();
        let end = off.checked_add(len)?;
        data.get(off..end).map(Bytes::copy_from_slice)
    }

    pub fn write(&self, off: usize, src: &[u8]) -> Option<()> {
        let mut data = self.data.write();
        let end = off.checked_add(src.len())?;
        data.get_mut(off..end)?.copy_from_slice(src);
        Some(())
    }

    /// Compare-and-swap an 8-byte little-endian word. Returns the previous
    /// value; the swap happened iff the return equals `expect`.
    pub fn cas64(&self, off: usize, expect: u64, new: u64) -> Option<u64> {
        let mut data = self.data.write();
        let end = off.checked_add(8)?;
        let slot = data.get_mut(off..end)?;
        let prev = u64::from_le_bytes(slot.try_into().expect("8 bytes"));
        if prev == expect {
            slot.copy_from_slice(&new.to_le_bytes());
        }
        Some(prev)
    }

    /// Read an 8-byte little-endian word.
    pub fn read_u64(&self, off: usize) -> Option<u64> {
        let data = self.data.read();
        let end = off.checked_add(8)?;
        data.get(off..end)
            .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    /// Full copy of the segment's bytes (re-replication after failures).
    pub fn clone_bytes(&self) -> Vec<u8> {
        self.data.read().clone()
    }
}

/// One simulated machine: registered segments, an RPC handler and its worker
/// pool, and an alive flag for failure injection.
pub struct Machine {
    pub(crate) id: MachineId,
    pub(crate) rack: u32,
    pub(crate) alive: AtomicBool,
    pub(crate) segments: RwLock<HashMap<u64, Arc<Segment>>>,
    pub(crate) rpc_handler: RwLock<Option<Arc<RpcHandler>>>,
    pub(crate) ud_handler: RwLock<Option<Arc<UdHandler>>>,
    pub(crate) pool: WorkerPool,
}

impl Machine {
    pub(crate) fn new(id: MachineId, rack: u32, threads: usize, max_threads: usize) -> Machine {
        Machine {
            id,
            rack,
            alive: AtomicBool::new(true),
            segments: RwLock::new(HashMap::new()),
            rpc_handler: RwLock::new(None),
            ud_handler: RwLock::new(None),
            pool: WorkerPool::new(&format!("m{}", id.0), threads, max_threads),
        }
    }

    pub fn id(&self) -> MachineId {
        self.id
    }

    pub fn rack(&self) -> u32 {
        self.rack
    }

    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Register (or replace) a memory segment under `seg_id`.
    pub fn register_segment(&self, seg_id: u64, seg: Arc<Segment>) {
        self.segments.write().insert(seg_id, seg);
    }

    pub fn unregister_segment(&self, seg_id: u64) -> Option<Arc<Segment>> {
        self.segments.write().remove(&seg_id)
    }

    pub fn segment(&self, seg_id: u64) -> Option<Arc<Segment>> {
        self.segments.read().get(&seg_id).cloned()
    }

    pub fn segment_ids(&self) -> Vec<u64> {
        self.segments.read().keys().copied().collect()
    }

    /// Install the RPC handler (A1's coprocessor dispatch, §2.2).
    pub fn set_rpc_handler(&self, h: Arc<RpcHandler>) {
        *self.rpc_handler.write() = Some(h);
    }

    pub fn set_ud_handler(&self, h: Arc<UdHandler>) {
        *self.ud_handler.write() = Some(h);
    }

    /// Worker queue depth — the paper's capacity limit shows up here.
    pub fn queue_depth(&self) -> usize {
        self.pool.queue_depth()
    }

    /// This machine's worker pool. Coordinators use it to fan work out
    /// across a hop's target machines concurrently (§3.4).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_read_write() {
        let seg = Segment::new(64);
        assert_eq!(seg.len(), 64);
        seg.write(8, &[1, 2, 3]).unwrap();
        assert_eq!(&seg.read(8, 3).unwrap()[..], &[1, 2, 3]);
        assert_eq!(&seg.read(7, 3).unwrap()[..], &[0, 1, 2]);
        assert!(seg.read(62, 4).is_none());
        assert!(seg.write(63, &[1, 2]).is_none());
        assert!(seg.read(usize::MAX, 2).is_none());
    }

    #[test]
    fn segment_cas() {
        let seg = Segment::new(64);
        assert_eq!(seg.cas64(0, 0, 7).unwrap(), 0);
        assert_eq!(seg.read_u64(0).unwrap(), 7);
        // Failed CAS returns current value and leaves the word unchanged.
        assert_eq!(seg.cas64(0, 0, 9).unwrap(), 7);
        assert_eq!(seg.read_u64(0).unwrap(), 7);
        assert!(seg.cas64(60, 0, 1).is_none());
    }

    #[test]
    fn machine_segments() {
        let m = Machine::new(MachineId(0), 0, 1, 2);
        assert!(m.is_alive());
        let seg = Segment::new(16);
        m.register_segment(5, seg.clone());
        assert!(m.segment(5).is_some());
        assert!(m.segment(6).is_none());
        assert_eq!(m.segment_ids(), vec![5]);
        m.unregister_segment(5).unwrap();
        assert!(m.segment(5).is_none());
    }
}
