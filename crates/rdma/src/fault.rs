//! Fault injection hooks: per-operation delivery decisions.
//!
//! A [`FaultInjector`] installed on the fabric sees every network-level
//! operation before (and, for RPC replies, after) it executes and rules on
//! its fate. The production fabric carries no injector and pays one relaxed
//! atomic load per op. The `a1-sim` harness installs one whose decisions are
//! a pure function of `(seed, scenario, op sequence)`, which is what makes
//! partitions, message loss, and delay spikes replayable.

use crate::MachineId;

/// Which network-level operation is being decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetOp {
    /// One-sided RDMA read.
    Read,
    /// One-sided RDMA write.
    Write,
    /// One-sided atomic compare-and-swap.
    Cas,
    /// RPC request delivery (decided before the handler runs).
    Rpc,
    /// RPC reply delivery (decided *after* the handler ran — dropping it
    /// models the classic "request applied, ack lost" ambiguity).
    RpcReply,
    /// Unreliable datagram.
    Ud,
}

impl NetOp {
    /// Stable short name, used in simulation traces.
    pub fn name(self) -> &'static str {
        match self {
            NetOp::Read => "read",
            NetOp::Write => "write",
            NetOp::Cas => "cas",
            NetOp::Rpc => "rpc",
            NetOp::RpcReply => "rpc-reply",
            NetOp::Ud => "ud",
        }
    }
}

/// The injector's ruling on one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Let the operation through unchanged.
    Deliver,
    /// Lose it: one-sided ops and RPC requests fail like a NIC timeout
    /// (`MachineUnreachable`), RPC replies like a lost ack (`RpcDropped`),
    /// datagrams vanish silently.
    Drop,
    /// Deliver after charging `ns` extra simulated latency.
    Delay(u64),
}

/// Rules on the fate of each network operation. Implementations must be
/// cheap: this runs on every simulated verb.
pub trait FaultInjector: Send + Sync {
    fn decide(&self, op: NetOp, from: MachineId, to: MachineId, len: usize) -> FaultDecision;
}
