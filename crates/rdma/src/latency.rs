//! The network latency model.

/// Models the latency asymmetry the paper reports (§2.1, §5.1, §6): local
/// memory ≈ hundreds of ns; one-sided RDMA reads <10 µs in-rack and <20 µs
/// across oversubscribed rack links; observed average 17 µs under load
/// (Fig. 11). Bandwidth is 40 Gb/s per NIC, expressed as a per-KB term.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Local memory access (same machine), per operation.
    pub local_read_ns: u64,
    /// One-sided operation round trip within a rack.
    pub rack_rtt_ns: u64,
    /// One-sided operation round trip across racks (oversubscribed T1 links).
    pub cross_rack_rtt_ns: u64,
    /// Additional cost per KiB transferred (≈40 Gb/s ⇒ ~200 ns/KiB).
    pub per_kib_ns: u64,
    /// RPC send/dispatch overhead on top of the wire round trip.
    pub rpc_overhead_ns: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            local_read_ns: 100,
            rack_rtt_ns: 5_000,
            cross_rack_rtt_ns: 17_000,
            per_kib_ns: 200,
            rpc_overhead_ns: 10_000,
        }
    }
}

impl LatencyModel {
    /// Cost of a one-sided read/write/CAS of `bytes` bytes.
    pub fn one_sided_ns(&self, local: bool, same_rack: bool, bytes: usize) -> u64 {
        if local {
            return self.local_read_ns + self.size_ns(bytes) / 4;
        }
        let base = if same_rack {
            self.rack_rtt_ns
        } else {
            self.cross_rack_rtt_ns
        };
        base + self.size_ns(bytes)
    }

    /// Cost of a doorbell-batched post of `count` one-sided reads totalling
    /// `total_bytes`. The NIC rings one doorbell for the whole batch, so a
    /// remote batch pays **one** round-trip base plus the per-byte term for
    /// every read in it — this is exactly why coalescing same-destination
    /// reads wins (§3.4). A local batch is just `count` memory accesses.
    pub fn one_sided_batch_ns(
        &self,
        local: bool,
        same_rack: bool,
        count: usize,
        total_bytes: usize,
    ) -> u64 {
        if count == 0 {
            return 0;
        }
        if local {
            return self.local_read_ns * count as u64 + self.size_ns(total_bytes) / 4;
        }
        let base = if same_rack {
            self.rack_rtt_ns
        } else {
            self.cross_rack_rtt_ns
        };
        base + self.size_ns(total_bytes)
    }

    /// Cost of one direction of an RPC carrying `bytes` bytes.
    pub fn rpc_ns(&self, same_rack: bool, bytes: usize) -> u64 {
        let base = if same_rack {
            self.rack_rtt_ns
        } else {
            self.cross_rack_rtt_ns
        };
        self.rpc_overhead_ns / 2 + base / 2 + self.size_ns(bytes)
    }

    fn size_ns(&self, bytes: usize) -> u64 {
        (bytes as u64 * self.per_kib_ns) / 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_remote_gap() {
        let m = LatencyModel::default();
        let local = m.one_sided_ns(true, true, 256);
        let rack = m.one_sided_ns(false, true, 256);
        let cross = m.one_sided_ns(false, false, 256);
        // The paper's 20x-100x local/remote gap (§2.2).
        assert!(rack / local >= 20, "rack {rack} local {local}");
        assert!(cross > rack);
    }

    #[test]
    fn bandwidth_term_scales() {
        let m = LatencyModel::default();
        let small = m.one_sided_ns(false, true, 64);
        let big = m.one_sided_ns(false, true, 1 << 20);
        assert!(big > small + 100_000); // 1 MiB at ~200ns/KiB ≈ 200 µs
    }

    #[test]
    fn batch_amortizes_round_trip() {
        let m = LatencyModel::default();
        let scalar = 8 * m.one_sided_ns(false, true, 256);
        let batched = m.one_sided_batch_ns(false, true, 8, 8 * 256);
        // One RTT instead of eight; only the per-byte term survives.
        assert!(batched * 4 < scalar, "batched {batched} scalar {scalar}");
        // A batch of one costs the same as a scalar read.
        assert_eq!(
            m.one_sided_batch_ns(false, false, 1, 256),
            m.one_sided_ns(false, false, 256)
        );
        assert_eq!(m.one_sided_batch_ns(false, true, 0, 0), 0);
        // Local batches are N memory accesses, not one.
        assert_eq!(
            m.one_sided_batch_ns(true, true, 4, 1024),
            4 * m.local_read_ns + (1024 * m.per_kib_ns / 1024) / 4
        );
    }

    #[test]
    fn rpc_cost_positive() {
        let m = LatencyModel::default();
        assert!(m.rpc_ns(true, 0) > 0);
        assert!(m.rpc_ns(false, 0) > m.rpc_ns(true, 0));
    }
}
