//! Injectable time: the one place the stack reads a clock or sleeps.
//!
//! Every timer in the system — latency injection, conflict backoff,
//! continuation TTLs, ingest flush intervals, lease expiry — goes through a
//! [`ClockSource`] so that the deterministic simulation harness (`a1-sim`)
//! can substitute a [`VirtualClock`] and own the passage of time. Real
//! deployments use [`RealClock`], whose behavior is byte-identical to the
//! direct `Instant::now()` / `thread::sleep` calls it replaced.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of monotonic time and (possibly virtual) sleeps.
///
/// `now_ns` is nanoseconds since an arbitrary per-clock epoch (the clock's
/// creation), **not** wall-clock time — callers may only compare readings
/// from the same clock. `sleep` blocks the caller under a real clock and
/// merely advances time under a virtual one.
pub trait ClockSource: Send + Sync + std::fmt::Debug {
    /// Monotonic nanoseconds since this clock's epoch.
    fn now_ns(&self) -> u64;

    /// Wait for `d` to pass. Real clocks block the calling thread; virtual
    /// clocks advance `now_ns` by `d` and return immediately.
    fn sleep(&self, d: Duration);

    /// True when sleeps cost no wall-clock time (simulation).
    fn is_virtual(&self) -> bool {
        false
    }
}

/// The default clock: monotonic `Instant` readings, real sleeps.
#[derive(Debug)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    pub fn new() -> RealClock {
        RealClock {
            epoch: Instant::now(),
        }
    }

    /// A fresh shared handle (each clock has its own epoch).
    pub fn shared() -> Arc<RealClock> {
        Arc::new(RealClock::new())
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ClockSource for RealClock {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn sleep(&self, d: Duration) {
        spin_for(d);
    }
}

/// Simulated time: an atomic nanosecond counter that only moves when someone
/// advances it. `sleep` advances the counter, so code that "waits" under a
/// virtual clock costs no wall-clock time — the basis for both deterministic
/// scenario replay and running latency-injected perf suites instantly.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    pub fn new() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::default())
    }

    pub fn starting_at(ns: u64) -> Arc<VirtualClock> {
        Arc::new(VirtualClock {
            now: AtomicU64::new(ns),
        })
    }

    /// Advance time by `ns` and return the new now.
    pub fn advance(&self, ns: u64) -> u64 {
        self.now.fetch_add(ns, Ordering::SeqCst) + ns
    }

    /// Advance time to at least `ns` (no-op if already past).
    pub fn advance_to(&self, ns: u64) {
        self.now.fetch_max(ns, Ordering::SeqCst);
    }
}

impl ClockSource for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep(&self, d: Duration) {
        self.advance(d.as_nanos() as u64);
    }

    fn is_virtual(&self) -> bool {
        true
    }
}

/// Busy-wait for very short durations; sleep for long ones. Spinning keeps
/// microsecond injections accurate (OS sleep granularity is ~50 µs+).
pub(crate) fn spin_for(d: Duration) {
    if d >= Duration::from_micros(200) {
        std::thread::sleep(d);
        return;
    }
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_monotonic() {
        let c = RealClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        assert!(!c.is_virtual());
    }

    #[test]
    fn real_clock_sleep_passes_time() {
        let c = RealClock::new();
        let t0 = c.now_ns();
        c.sleep(Duration::from_micros(300));
        assert!(c.now_ns() - t0 >= 250_000);
    }

    #[test]
    fn virtual_clock_only_moves_when_advanced() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(c.now_ns(), 0, "wall time must not leak in");
        assert_eq!(c.advance(50), 50);
        c.advance_to(40); // no-op backwards
        assert_eq!(c.now_ns(), 50);
        c.advance_to(70);
        assert_eq!(c.now_ns(), 70);
        assert!(c.is_virtual());
    }

    #[test]
    fn virtual_sleep_advances_instantly() {
        let c = VirtualClock::new();
        let t0 = Instant::now();
        c.sleep(Duration::from_secs(3600));
        assert!(t0.elapsed() < Duration::from_millis(100));
        assert_eq!(c.now_ns(), 3_600_000_000_000);
    }
}
