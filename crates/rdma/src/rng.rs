//! The cluster's one seedable randomness handle.
//!
//! Before this module, randomness was scattered: the fabric kept a private
//! xorshift for datagram drops, conflict backoff derived jitter from thread
//! ids, ingest retries hashed whatever was handy. None of that is
//! replayable. [`ClusterRng`] centralizes every random decision behind one
//! seed: real runs behave exactly as before (the jitter is still uniform),
//! but a simulation run that fixes the seed gets the identical decision
//! sequence every time — provided calls happen in a deterministic order,
//! which the `a1-sim` harness guarantees by driving the cluster from a
//! single logical thread.

use std::sync::atomic::{AtomicU64, Ordering};

/// Seedable splittable RNG (xorshift64* core, splitmix64 seeding).
///
/// Thread-safe and lock-free; under concurrent use the *set* of outputs is
/// still a deterministic function of the seed but their assignment to
/// threads is not — determinism of observable behavior therefore requires
/// serial use, which is exactly what the simulation harness enforces.
#[derive(Debug)]
pub struct ClusterRng {
    seed: u64,
    state: AtomicU64,
}

/// splitmix64: turns any seed (including 0) into a well-mixed nonzero state.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ClusterRng {
    pub fn new(seed: u64) -> ClusterRng {
        ClusterRng {
            seed,
            state: AtomicU64::new(splitmix64(seed) | 1),
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent stream, e.g. one per machine or per subsystem,
    /// so interleaved consumers don't perturb each other's sequences.
    pub fn fork(&self, tag: u64) -> ClusterRng {
        ClusterRng::new(splitmix64(
            self.seed ^ tag.wrapping_mul(0xa1a1_a1a1_a1a1_a1a1),
        ))
    }

    /// Next 64 uniform bits (xorshift64*).
    pub fn next_u64(&self) -> u64 {
        let mut cur = self.state.load(Ordering::Relaxed);
        loop {
            let mut x = cur;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match self
                .state
                .compare_exchange_weak(cur, x, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return x.wrapping_mul(0x2545_f491_4f6c_dd1d),
                Err(now) => cur = now,
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`; `n = 0` returns 0.
    pub fn gen_range(&self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            // Multiply-shift: unbiased enough for jitter/fault decisions.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

impl Clone for ClusterRng {
    /// Clones restart the stream from the seed (a clone is a replay handle,
    /// not a fork — use [`ClusterRng::fork`] for an independent stream).
    fn clone(&self) -> Self {
        ClusterRng::new(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let a = ClusterRng::new(42);
        let b = ClusterRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = ClusterRng::new(1);
        let b = ClusterRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let root = ClusterRng::new(7);
        let f1 = root.fork(1);
        let f2 = root.fork(2);
        let f1b = ClusterRng::new(7).fork(1);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn ranges_and_floats_in_bounds() {
        let r = ClusterRng::new(3);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(r.gen_range(10) < 10);
        }
        assert_eq!(r.gen_range(0), 0);
    }

    #[test]
    fn zero_seed_is_fine() {
        let r = ClusterRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn clone_replays_from_seed() {
        let r = ClusterRng::new(9);
        let first = r.next_u64();
        let c = r.clone();
        assert_eq!(c.next_u64(), first);
    }
}
