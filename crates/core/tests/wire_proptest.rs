//! Property tests for the inter-machine wire protocol: the binary and JSON
//! codecs must be *equivalent* — any message decodes to the same value from
//! either format — and the binary decoder must never panic on garbage.

use a1_core::edges::Dir;
use a1_core::query::exec::{
    CompiledMatch, CompiledStep, CompiledTraverse, QueryMetrics, QueryOutcome, WorkOp, WorkResult,
};
use a1_core::query::plan::{AttrPredicate, CmpOp, FieldSel, Select};
use a1_core::replog::entry;
use a1_core::wire::{self, Request, WireFormat};
use a1_core::{Json, TypeId};
use a1_farm::{Addr, RegionId};
use proptest::prelude::*;

/// `Option` strategy (the vendored proptest has no `prop::option` module).
fn opt<S>(s: S) -> impl Strategy<Value = Option<S::Value>>
where
    S: Strategy + Send + Sync + 'static,
    S::Value: std::fmt::Debug + Clone + Send + Sync + 'static,
{
    prop_oneof![Just(None), s.prop_map(Some)]
}

// ----------------------------------------------------------------- strategies

/// Addresses whose raw form stays well under 2^53, so the legacy JSON wire
/// (f64 numbers) is lossless and the two formats can be compared exactly.
fn arb_addr() -> impl Strategy<Value = Addr> {
    (0u32..1024, any::<u32>()).prop_map(|(r, off)| Addr::new(RegionId(r), off))
}

/// JSON values whose text form round-trips exactly (integral or short
/// dyadic-fraction numbers; arbitrary printable strings incl. non-ASCII).
fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<i32>().prop_map(|n| Json::Num(n as f64)),
        (any::<i16>(), 0u32..4).prop_map(|(n, d)| Json::Num(n as f64 / (1u64 << d) as f64)),
        "\\PC{0,12}".prop_map(Json::Str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Json::Arr),
            prop::collection::vec(("\\PC{0,8}", inner), 0..4)
                .prop_map(|pairs| Json::Obj(pairs.into_iter().collect())),
        ]
    })
}

fn arb_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
    ]
}

fn arb_dir() -> impl Strategy<Value = Dir> {
    prop_oneof![Just(Dir::Out), Just(Dir::In)]
}

fn arb_pred() -> impl Strategy<Value = AttrPredicate> {
    ("\\PC{1,10}", opt("\\PC{1,6}"), arb_cmp_op(), arb_json()).prop_map(
        |(attr, map_key, op, value)| AttrPredicate {
            attr,
            map_key,
            op,
            value,
        },
    )
}

fn arb_match() -> impl Strategy<Value = CompiledMatch> {
    (
        arb_dir(),
        any::<u32>(),
        opt(arb_addr()),
        opt(any::<u32>()),
        prop::collection::vec(arb_pred(), 0..3),
    )
        .prop_map(|(dir, et, target, tt, preds)| CompiledMatch {
            dir,
            edge_type: TypeId(et),
            target,
            target_type: tt.map(TypeId),
            preds,
        })
}

fn arb_step() -> impl Strategy<Value = CompiledStep> {
    (
        opt(any::<u32>()),
        opt(arb_addr()),
        prop::collection::vec(arb_pred(), 0..3),
        prop::collection::vec(arb_match(), 0..3),
        opt((
            arb_dir(),
            any::<u32>(),
            prop::collection::vec(arb_pred(), 0..2),
        )),
    )
        .prop_map(|(tf, idf, preds, matches, traverse)| CompiledStep {
            type_filter: tf.map(TypeId),
            id_filter: idf,
            preds,
            matches,
            traverse: traverse.map(|(dir, et, edge_preds)| CompiledTraverse {
                dir,
                edge_type: TypeId(et),
                edge_preds,
            }),
        })
}

fn arb_select() -> impl Strategy<Value = Select> {
    prop_oneof![
        Just(Select::All),
        Just(Select::Count),
        // Bare identifiers: `a[1]`-style attrs would collide with the
        // list-index selector syntax in both wire formats.
        prop::collection::vec(("[a-z_]{1,8}", opt(0usize..16)), 0..4).prop_map(
            |fs| Select::Fields(
                fs.into_iter()
                    .map(|(attr, index)| FieldSel { attr, index })
                    .collect()
            )
        ),
    ]
}

fn arb_work_op() -> impl Strategy<Value = WorkOp> {
    (
        ("\\PC{0,10}", "\\PC{0,10}", any::<u32>()),
        prop::collection::vec(arb_addr(), 0..32), // includes empty batches
        arb_step(),
        any::<bool>(),
        arb_select(),
    )
        .prop_map(
            |((tenant, graph, ts), vertices, step, emit_rows, select)| WorkOp {
                tenant,
                graph,
                snapshot_ts: ts as u64,
                vertices,
                step,
                emit_rows,
                select,
                cache_bypass: emit_rows, // exercised without widening the tuple
            },
        )
}

fn arb_work_result() -> impl Strategy<Value = WorkResult> {
    (
        prop::collection::vec(arb_addr(), 0..32),
        prop::collection::vec((arb_addr(), arb_json()), 0..8),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
        (any::<u16>(), any::<u16>(), any::<u16>(), any::<u16>()),
    )
        .prop_map(
            |(next, rows, (vr, ev, lr, rr), (mo, pm, ch, cm))| WorkResult {
                next,
                rows,
                metrics: QueryMetrics {
                    vertices_read: vr as u64,
                    edges_visited: ev as u64,
                    local_reads: lr as u64,
                    remote_reads: rr as u64,
                    cache_hits: ch as u64,
                    cache_misses: cm as u64,
                    ..QueryMetrics::default()
                },
                morsels: mo as u64,
                max_concurrent_morsels: pm as u64,
            },
        )
}

/// Replication-log entry bodies as produced by the `replog::entry`
/// constructors (the only shapes A1 writes).
fn arb_entry_body() -> impl Strategy<Value = Json> {
    let s = "\\PC{0,10}";
    prop_oneof![
        (s, s, s, arb_json(), arb_json())
            .prop_map(|(t, g, ty, pk, data)| entry::vertex_upsert(&t, &g, &ty, &pk, &data)),
        (s, s, s, arb_json()).prop_map(|(t, g, ty, pk)| entry::vertex_delete(&t, &g, &ty, &pk)),
        ((s, s), (s, arb_json()), (s, s, arb_json()), arb_json()).prop_map(
            |((t, g), (st, src), (et, dt, dst), data)| {
                entry::edge_upsert(&t, &g, &st, &src, &et, &dt, &dst, &data)
            }
        ),
        ((s, s), (s, arb_json()), (s, s, arb_json())).prop_map(
            |((t, g), (st, src), (et, dt, dst))| {
                entry::edge_delete(&t, &g, &st, &src, &et, &dt, &dst)
            }
        ),
    ]
}

// ------------------------------------------------------------------ roundtrip

proptest! {
    /// Binary and JSON wires decode a shipped work op to the same value.
    #[test]
    fn work_op_codec_equivalence(op in arb_work_op()) {
        for fmt in [WireFormat::Binary, WireFormat::Json] {
            let encoded = wire::encode_work_op(&op, fmt);
            let Request::Work(back) = wire::decode_request(&encoded).unwrap() else {
                panic!("decoded to a non-work request");
            };
            prop_assert_eq!(&back, &op);
        }
    }

    #[test]
    fn work_result_codec_equivalence(r in arb_work_result()) {
        for fmt in [WireFormat::Binary, WireFormat::Json] {
            let encoded = wire::encode_work_result(&Ok(r.clone()), fmt);
            let back = wire::decode_work_result(&encoded).unwrap();
            prop_assert_eq!(&back, &r);
        }
    }

    /// Outcomes (rows + metrics + continuation) survive both wires.
    #[test]
    fn outcome_codec_equivalence(
        rows in prop::collection::vec(arb_json(), 0..8),
        count in opt(any::<u32>()),
        cont in opt("\\PC{1,12}"),
    ) {
        let o = QueryOutcome {
            rows,
            count: count.map(|c| c as u64),
            continuation: cont,
            metrics: QueryMetrics::default(),
            per_hop: Vec::new(),
        };
        for fmt in [WireFormat::Binary, WireFormat::Json] {
            let encoded = wire::encode_outcome(&Ok(o.clone()), fmt);
            let back = wire::decode_outcome(&encoded).unwrap();
            prop_assert_eq!(&back.rows, &o.rows);
            prop_assert_eq!(back.count, o.count);
            prop_assert_eq!(&back.continuation, &o.continuation);
        }
    }

    /// Replication-log entry bodies round-trip key-order-exact through the
    /// binary frame, and legacy JSON text decodes identically through the
    /// same entry point (the DR replay path).
    #[test]
    fn replog_entry_codec_equivalence(body in arb_entry_body()) {
        let bin = wire::mutation_body_to_binary(&body);
        prop_assert_eq!(&wire::decode_mutation_body(&bin).unwrap(), &body);
        let text = body.to_string().into_bytes();
        prop_assert_eq!(&wire::decode_mutation_body(&text).unwrap(), &body);
    }

    /// The binary JSON-value codec round-trips arbitrary values (incl.
    /// non-ASCII strings and deep nesting with repeated keys).
    #[test]
    fn json_value_codec_roundtrip(j in arb_json()) {
        let mut buf = Vec::new();
        wire::encode_json(&j, &mut buf);
        let mut pos = 0;
        let back = wire::decode_json(&buf, &mut pos).unwrap();
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(back, j);
    }

    /// No decoder panics on arbitrary garbage — malformed frames surface as
    /// errors (the RPC layer replies with a structured error).
    #[test]
    fn decoders_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let _ = wire::decode_request(&bytes);
        let _ = wire::decode_work_result(&bytes);
        let _ = wire::decode_outcome(&bytes);
        let _ = wire::decode_mutation_body(&bytes);
        let mut pos = 0;
        let _ = wire::decode_json(&bytes, &mut pos);
    }

    /// Same, with a valid magic byte so the binary branch is exercised.
    #[test]
    fn framed_decoders_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let mut framed = vec![0xA1, 0x01];
        framed.extend(bytes);
        let _ = wire::decode_request(&framed);
        let _ = wire::decode_work_result(&framed);
        let _ = wire::decode_outcome(&framed);
        let _ = wire::decode_mutation_body(&framed);
    }
}

/// Every `CmpOp` variant crosses both wires (deterministic complement to the
/// proptest coverage above).
#[test]
fn all_cmp_ops_cross_both_wires() {
    for op in [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Lt,
        CmpOp::Le,
    ] {
        let work = WorkOp {
            tenant: "t".into(),
            graph: "g".into(),
            snapshot_ts: 1,
            vertices: vec![],
            step: CompiledStep {
                type_filter: None,
                id_filter: None,
                preds: vec![AttrPredicate {
                    attr: "rank".into(),
                    map_key: None,
                    op,
                    value: Json::Num(5.0),
                }],
                matches: vec![],
                traverse: None,
            },
            emit_rows: false,
            select: Select::Count,
            cache_bypass: false,
        };
        for fmt in [WireFormat::Binary, WireFormat::Json] {
            let Request::Work(back) =
                wire::decode_request(&wire::encode_work_op(&work, fmt)).unwrap()
            else {
                panic!("not a work request");
            };
            assert_eq!(back.step.preds[0].op, op, "{fmt:?}");
        }
    }
}
