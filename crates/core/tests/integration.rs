//! End-to-end tests: full A1 stack (client → frontend → coordinator →
//! workers) on a small film knowledge graph, exercising the paper's query
//! shapes (Table 2) and the async deletion workflow (§3.3).

use a1_core::{A1Client, A1Cluster, A1Config, Json};

const TENANT: &str = "bing";
const GRAPH: &str = "kg";

const ENTITY_SCHEMA: &str = r#"{
    "name": "entity",
    "fields": [
        {"id": 0, "name": "id", "type": "string", "required": true},
        {"id": 1, "name": "name", "type": "list<string>"},
        {"id": 2, "name": "str_str_map", "type": "map<string,string>"},
        {"id": 3, "name": "rank", "type": "int64"}
    ]
}"#;

fn edge_schema(name: &str) -> String {
    format!(r#"{{"name": "{name}", "fields": []}}"#)
}

/// Build the §5/§6 mini knowledge graph: directors, films, actors, genres,
/// performances.
fn film_cluster() -> (A1Cluster, A1Client) {
    let cluster = A1Cluster::start(A1Config::small(4)).unwrap();
    let client = cluster.client();
    client.create_tenant(TENANT).unwrap();
    client.create_graph(TENANT, GRAPH).unwrap();
    client
        .create_vertex_type(TENANT, GRAPH, ENTITY_SCHEMA, "id", &["rank"])
        .unwrap();
    for et in [
        "director.film",
        "film.actor",
        "actor.film",
        "film.genre",
        "character.film",
        "film.performance",
        "performance.actor",
    ] {
        client
            .create_edge_type(TENANT, GRAPH, &edge_schema(et))
            .unwrap();
    }

    let v = |id: &str, name: &str| format!(r#"{{"id": "{id}", "name": ["{name}"]}}"#);
    // Entities.
    for (id, name) in [
        ("steven.spielberg", "Steven Spielberg"),
        ("tom.hanks", "Tom Hanks"),
        ("meg.ryan", "Meg Ryan"),
        ("michael.keaton", "Michael Keaton"),
        ("christian.bale", "Christian Bale"),
        ("film.saving.private.ryan", "Saving Private Ryan"),
        ("film.the.post", "The Post"),
        ("film.batman.1989", "Batman"),
        ("film.the.dark.knight", "The Dark Knight"),
        ("character.batman", "Batman"),
        ("genre.war", "War"),
        ("genre.action", "Action"),
    ] {
        client
            .create_vertex(TENANT, GRAPH, "entity", &v(id, name))
            .unwrap();
    }
    // Performances carry the character name in str_str_map (Q2's predicate).
    client
        .create_vertex(
            TENANT,
            GRAPH,
            "entity",
            r#"{"id": "perf.keaton.batman89", "str_str_map": {"character": "Batman"}}"#,
        )
        .unwrap();
    client
        .create_vertex(
            TENANT,
            GRAPH,
            "entity",
            r#"{"id": "perf.bale.tdk", "str_str_map": {"character": "Batman"}}"#,
        )
        .unwrap();
    client
        .create_vertex(
            TENANT,
            GRAPH,
            "entity",
            r#"{"id": "perf.hanks.spr", "str_str_map": {"character": "Capt. Miller"}}"#,
        )
        .unwrap();

    let e = |src: &str, et: &str, dst: &str| {
        client
            .create_edge(
                TENANT,
                GRAPH,
                "entity",
                &Json::str(src),
                et,
                "entity",
                &Json::str(dst),
                None,
            )
            .unwrap();
    };
    // Spielberg directed two films with Tom Hanks.
    e(
        "steven.spielberg",
        "director.film",
        "film.saving.private.ryan",
    );
    e("steven.spielberg", "director.film", "film.the.post");
    e("film.saving.private.ryan", "film.actor", "tom.hanks");
    e("film.the.post", "film.actor", "tom.hanks");
    e("film.the.post", "film.actor", "meg.ryan");
    e("film.saving.private.ryan", "film.genre", "genre.war");
    e("film.the.post", "film.genre", "genre.war");
    // Batman films, characters, performances.
    e("character.batman", "character.film", "film.batman.1989");
    e("character.batman", "character.film", "film.the.dark.knight");
    e(
        "film.batman.1989",
        "film.performance",
        "perf.keaton.batman89",
    );
    e("film.the.dark.knight", "film.performance", "perf.bale.tdk");
    e(
        "film.saving.private.ryan",
        "film.performance",
        "perf.hanks.spr",
    );
    e(
        "perf.keaton.batman89",
        "performance.actor",
        "michael.keaton",
    );
    e("perf.bale.tdk", "performance.actor", "christian.bale");
    e("film.batman.1989", "film.genre", "genre.action");
    e("film.the.dark.knight", "film.genre", "genre.action");
    // actor.film back-edges (for Q4-style traversals).
    e("tom.hanks", "actor.film", "film.saving.private.ryan");
    e("tom.hanks", "actor.film", "film.the.post");
    e("meg.ryan", "actor.film", "film.the.post");

    (cluster, client)
}

#[test]
fn q1_two_hop_count() {
    let (_cluster, client) = film_cluster();
    // Table 2 Q1: actors who worked with Spielberg.
    let out = client
        .query(
            TENANT,
            GRAPH,
            r#"{ "id" : "steven.spielberg",
                "_out_edge" : { "_type" : "director.film",
                "_vertex" : {
                "_out_edge" : { "_type" : "film.actor",
                "_vertex" : {
                "_select" : ["_count(*)"] }}}}}"#,
        )
        .unwrap();
    // Tom Hanks + Meg Ryan, deduplicated (Hanks appears via two films).
    assert_eq!(out.count, Some(2));
    assert_eq!(out.metrics.hops, 2);
    assert!(out.metrics.vertices_read >= 5);
    assert!(out.metrics.edges_visited >= 4);
}

#[test]
fn q1_rows_with_select_star() {
    let (_cluster, client) = film_cluster();
    let out = client
        .query(
            TENANT,
            GRAPH,
            r#"{ "id" : "steven.spielberg",
                "_out_edge" : { "_type" : "director.film",
                "_vertex" : {
                "_out_edge" : { "_type" : "film.actor",
                "_vertex" : { "_select" : ["*"] }}}}}"#,
        )
        .unwrap();
    assert_eq!(out.rows.len(), 2);
    let ids: Vec<&str> = out
        .rows
        .iter()
        .filter_map(|r| r.get("id").and_then(Json::as_str))
        .collect();
    assert!(ids.contains(&"tom.hanks"));
    assert!(ids.contains(&"meg.ryan"));
    assert!(out.rows[0].get("_type").is_some());
}

#[test]
fn q2_three_hop_with_map_predicate() {
    let (_cluster, client) = film_cluster();
    // Table 2 Q2: actors who have played Batman.
    let out = client
        .query(
            TENANT,
            GRAPH,
            r#"{ "id" : "character.batman",
                "_out_edge" : { "_type" : "character.film",
                "_vertex" : {
                "_out_edge" : { "_type" : "film.performance",
                "_vertex" : {
                "str_str_map[character]" : "Batman",
                "_out_edge" : { "_type" : "performance.actor",
                "_vertex" : {
                "_select" : ["_count(*)"] }}}}}}}"#,
        )
        .unwrap();
    assert_eq!(out.count, Some(2), "Keaton and Bale played Batman");
}

#[test]
fn q3_star_match_pattern() {
    let (_cluster, client) = film_cluster();
    // Table 2 Q3: war films directed by Spielberg starring Tom Hanks.
    let out = client
        .query(
            TENANT,
            GRAPH,
            r#"{ "id" : "steven.spielberg",
                "_out_edge" : { "_type" : "director.film",
                "_vertex" : { "_type" : "entity",
                "_select" : ["name[0]"],
                "_match" : [{
                "_out_edge" : { "_type" : "film.actor",
                "_vertex" : { "id" : "tom.hanks" }}},
                { "_out_edge" : { "_type" : "film.genre",
                "_vertex" : { "id" : "genre.war" }}}] }}}"#,
        )
        .unwrap();
    assert_eq!(out.rows.len(), 2, "both Spielberg films are War + Hanks");
    let names: Vec<&str> = out
        .rows
        .iter()
        .filter_map(|r| r.get("name[0]").and_then(Json::as_str))
        .collect();
    assert!(names.contains(&"Saving Private Ryan"));
    assert!(names.contains(&"The Post"));

    // Narrow the match: genre.action excludes both films.
    let out = client
        .query(
            TENANT,
            GRAPH,
            r#"{ "id" : "steven.spielberg",
                "_out_edge" : { "_type" : "director.film",
                "_vertex" : {
                "_match" : [{ "_out_edge" : { "_type" : "film.genre",
                "_vertex" : { "id" : "genre.action" }}}],
                "_select" : ["_count(*)"] }}}"#,
        )
        .unwrap();
    assert_eq!(out.count, Some(0));
}

#[test]
fn q4_three_hop_fanout() {
    let (_cluster, client) = film_cluster();
    // Q4 shape: films of actors who worked with Tom Hanks.
    let out = client
        .query(
            TENANT,
            GRAPH,
            r#"{ "id" : "tom.hanks",
                "_out_edge" : { "_type" : "actor.film",
                "_vertex" : {
                "_out_edge" : { "_type" : "film.actor",
                "_vertex" : {
                "_out_edge" : { "_type" : "actor.film",
                "_vertex" : {
                "_select" : ["_count(*)"] }}}}}}}"#,
        )
        .unwrap();
    // Co-stars of Hanks: hanks + meg.ryan → their films: SPR + The Post.
    assert_eq!(out.count, Some(2));
}

#[test]
fn empty_start_and_missing_vertex() {
    let (_cluster, client) = film_cluster();
    let out = client
        .query(
            TENANT,
            GRAPH,
            r#"{ "id": "nobody", "_out_edge": { "_type": "director.film",
                 "_vertex": {"_select": ["_count(*)"]}}}"#,
        )
        .unwrap();
    assert_eq!(out.count, Some(0));
    assert!(client
        .get_vertex(TENANT, GRAPH, "entity", &Json::str("nobody"))
        .unwrap()
        .is_none());
}

#[test]
fn vertex_crud_roundtrip() {
    let (_cluster, client) = film_cluster();
    let got = client
        .get_vertex(TENANT, GRAPH, "entity", &Json::str("tom.hanks"))
        .unwrap()
        .unwrap();
    assert_eq!(got.get("id").unwrap().as_str(), Some("tom.hanks"));
    assert_eq!(
        got.get("name").unwrap().at(0).unwrap().as_str(),
        Some("Tom Hanks")
    );

    // Update.
    client
        .update_vertex(
            TENANT,
            GRAPH,
            "entity",
            r#"{"id": "tom.hanks", "name": ["Thomas Hanks"], "rank": 1}"#,
        )
        .unwrap();
    let got = client
        .get_vertex(TENANT, GRAPH, "entity", &Json::str("tom.hanks"))
        .unwrap()
        .unwrap();
    assert_eq!(
        got.get("name").unwrap().at(0).unwrap().as_str(),
        Some("Thomas Hanks")
    );
    assert_eq!(got.get("rank").unwrap().as_i64(), Some(1));

    // Duplicate create rejected.
    assert!(client
        .create_vertex(TENANT, GRAPH, "entity", r#"{"id": "tom.hanks"}"#)
        .is_err());

    // Delete removes vertex and its edges (no dangling half-edges).
    client
        .delete_vertex(TENANT, GRAPH, "entity", &Json::str("meg.ryan"))
        .unwrap();
    assert!(client
        .get_vertex(TENANT, GRAPH, "entity", &Json::str("meg.ryan"))
        .unwrap()
        .is_none());
    let out = client
        .query(
            TENANT,
            GRAPH,
            r#"{ "id" : "film.the.post",
                "_out_edge" : { "_type" : "film.actor",
                "_vertex" : { "_select" : ["_count(*)"] }}}"#,
        )
        .unwrap();
    assert_eq!(out.count, Some(1), "only Hanks remains on The Post");
}

#[test]
fn transactional_multi_op_atomicity() {
    let (_cluster, client) = film_cluster();
    // Group vertex + edge creation; paper's partial-edge anomaly is
    // impossible because both half-edges commit atomically.
    let mut txn = client.transaction();
    txn.create_vertex(
        TENANT,
        GRAPH,
        "entity",
        &Json::parse(r#"{"id": "film.bridge.of.spies", "name": ["Bridge of Spies"]}"#).unwrap(),
    )
    .unwrap();
    txn.create_edge(
        TENANT,
        GRAPH,
        "entity",
        &Json::str("steven.spielberg"),
        "director.film",
        "entity",
        &Json::str("film.bridge.of.spies"),
        None,
    )
    .unwrap();
    // Read-your-writes inside the transaction.
    assert!(txn
        .get_vertex(TENANT, GRAPH, "entity", &Json::str("film.bridge.of.spies"))
        .unwrap()
        .is_some());
    txn.commit_with_retry().unwrap();

    let out = client
        .query(
            TENANT,
            GRAPH,
            r#"{ "id" : "steven.spielberg",
                "_out_edge" : { "_type" : "director.film",
                "_vertex" : { "_select" : ["_count(*)"] }}}"#,
        )
        .unwrap();
    assert_eq!(out.count, Some(3));

    // Aborted transactions leave no trace.
    let mut txn = client.transaction();
    txn.create_vertex(
        TENANT,
        GRAPH,
        "entity",
        &Json::parse(r#"{"id": "ghost"}"#).unwrap(),
    )
    .unwrap();
    txn.abort();
    assert!(client
        .get_vertex(TENANT, GRAPH, "entity", &Json::str("ghost"))
        .unwrap()
        .is_none());
}

#[test]
fn duplicate_edge_rejected() {
    let (_cluster, client) = film_cluster();
    // §3: "given two vertexes, there can only be a single edge of a given
    // type".
    let r = client.create_edge(
        TENANT,
        GRAPH,
        "entity",
        &Json::str("steven.spielberg"),
        "director.film",
        "entity",
        &Json::str("film.the.post"),
        None,
    );
    assert!(r.is_err());
    // A different type between the same endpoints is fine.
    client
        .create_edge(
            TENANT,
            GRAPH,
            "entity",
            &Json::str("steven.spielberg"),
            "film.actor",
            "entity",
            &Json::str("film.the.post"),
            None,
        )
        .unwrap();
}

#[test]
fn secondary_index_start() {
    let (_cluster, client) = film_cluster();
    client
        .update_vertex(TENANT, GRAPH, "entity", r#"{"id": "tom.hanks", "rank": 7}"#)
        .unwrap();
    client
        .update_vertex(TENANT, GRAPH, "entity", r#"{"id": "meg.ryan", "rank": 7}"#)
        .unwrap();
    let out = client
        .query(
            TENANT,
            GRAPH,
            r#"{ "_type": "entity", "rank": 7, "_select": ["id"] }"#,
        )
        .unwrap();
    assert_eq!(out.rows.len(), 2);
}

#[test]
fn secondary_index_start_pushes_limit_into_the_scan() {
    // Many vertices share one indexed value; a single filtered step with
    // `_limit` must stop the index scan at the limit instead of
    // materializing the whole posting list.
    let cluster = A1Cluster::start(A1Config::small(3)).unwrap();
    let client = cluster.client();
    client.create_tenant(TENANT).unwrap();
    client.create_graph(TENANT, GRAPH).unwrap();
    client
        .create_vertex_type(TENANT, GRAPH, ENTITY_SCHEMA, "id", &["rank"])
        .unwrap();
    for i in 0..30 {
        client
            .create_vertex(
                TENANT,
                GRAPH,
                "entity",
                &format!(r#"{{"id": "e{i:03}", "rank": 9}}"#),
            )
            .unwrap();
    }
    let limited = client
        .query(
            TENANT,
            GRAPH,
            r#"{ "_type": "entity", "rank": 9, "_limit": 5, "_select": ["id"] }"#,
        )
        .unwrap();
    assert_eq!(limited.rows.len(), 5);
    assert!(
        limited.metrics.vertices_read <= 5,
        "LIMIT 5 index start read {} vertices; the scan should stop at the limit",
        limited.metrics.vertices_read
    );
    // Counts are not limited, so their scan must stay exhaustive.
    let counted = client
        .query(
            TENANT,
            GRAPH,
            r#"{ "_type": "entity", "rank": 9, "_limit": 5, "_select": ["_count(*)"] }"#,
        )
        .unwrap();
    assert_eq!(counted.count, Some(30));
}

#[test]
fn query_shipping_locality() {
    // §6: operator shipping turns most reads into local reads (≥95% at
    // paper scale). Build a hub with a wide fan-out so per-machine batches
    // exceed the ship threshold, then compare shipped vs unshipped execution.
    let build = |ship_threshold: usize| {
        let cluster = A1Cluster::start(A1Config {
            exec: a1_core::query::exec::ExecConfig {
                ship_policy: a1_core::query::ShipPolicy::Fixed(ship_threshold),
                ..Default::default()
            },
            ..A1Config::small(4)
        })
        .unwrap();
        let client = cluster.client();
        client.create_tenant(TENANT).unwrap();
        client.create_graph(TENANT, GRAPH).unwrap();
        client
            .create_vertex_type(TENANT, GRAPH, ENTITY_SCHEMA, "id", &[])
            .unwrap();
        client
            .create_edge_type(TENANT, GRAPH, &edge_schema("has"))
            .unwrap();
        client
            .create_vertex(TENANT, GRAPH, "entity", r#"{"id": "hub"}"#)
            .unwrap();
        for i in 0..64 {
            client
                .create_vertex(
                    TENANT,
                    GRAPH,
                    "entity",
                    &format!(r#"{{"id": "leaf{i:02}"}}"#),
                )
                .unwrap();
            client
                .create_edge(
                    TENANT,
                    GRAPH,
                    "entity",
                    &Json::str("hub"),
                    "has",
                    "entity",
                    &Json::str(&format!("leaf{i:02}")),
                    None,
                )
                .unwrap();
        }
        (cluster, client)
    };
    let q = r#"{ "id": "hub", "_out_edge": { "_type": "has",
                 "_vertex": { "_select": ["_count(*)"] }}}"#;

    let (_c1, shipped_client) = build(2);
    let shipped = shipped_client.query(TENANT, GRAPH, q).unwrap();
    assert_eq!(shipped.count, Some(64));
    assert!(shipped.metrics.rpcs > 0, "batches were shipped");

    let (_c2, unshipped_client) = build(usize::MAX);
    let unshipped = unshipped_client.query(TENANT, GRAPH, q).unwrap();
    assert_eq!(unshipped.count, Some(64));
    assert_eq!(unshipped.metrics.rpcs, 0);

    // Shipping must improve locality substantially.
    assert!(
        shipped.metrics.local_read_fraction() >= 0.85,
        "shipped locality {} too low",
        shipped.metrics.local_read_fraction()
    );
    assert!(
        shipped.metrics.local_read_fraction() > unshipped.metrics.local_read_fraction() + 0.3,
        "shipping should beat coordinator-only execution: {} vs {}",
        shipped.metrics.local_read_fraction(),
        unshipped.metrics.local_read_fraction()
    );
}

#[test]
fn continuation_token_paging() {
    let cluster = A1Cluster::start(A1Config {
        exec: a1_core::query::exec::ExecConfig {
            page_size: 10,
            ..Default::default()
        },
        ..A1Config::small(3)
    })
    .unwrap();
    let client = cluster.client();
    client.create_tenant(TENANT).unwrap();
    client.create_graph(TENANT, GRAPH).unwrap();
    client
        .create_vertex_type(TENANT, GRAPH, ENTITY_SCHEMA, "id", &[])
        .unwrap();
    client
        .create_edge_type(TENANT, GRAPH, &edge_schema("has"))
        .unwrap();
    client
        .create_vertex(TENANT, GRAPH, "entity", r#"{"id": "hub"}"#)
        .unwrap();
    for i in 0..25 {
        client
            .create_vertex(
                TENANT,
                GRAPH,
                "entity",
                &format!(r#"{{"id": "leaf{i:02}"}}"#),
            )
            .unwrap();
        client
            .create_edge(
                TENANT,
                GRAPH,
                "entity",
                &Json::str("hub"),
                "has",
                "entity",
                &Json::str(&format!("leaf{i:02}")),
                None,
            )
            .unwrap();
    }
    let out = client
        .query(
            TENANT,
            GRAPH,
            r#"{ "id": "hub", "_out_edge": { "_type": "has",
                 "_vertex": { "_select": ["id"] }}}"#,
        )
        .unwrap();
    assert_eq!(out.rows.len(), 10);
    let tok1 = out.continuation.clone().expect("paged");
    let page2 = client.query_next(&tok1).unwrap();
    assert_eq!(page2.rows.len(), 10);
    let tok2 = page2.continuation.clone().expect("one more page");
    let page3 = client.query_next(&tok2).unwrap();
    assert_eq!(page3.rows.len(), 5);
    assert!(page3.continuation.is_none());
    // Tokens are single-use.
    assert!(client.query_next(&tok1).is_err());
    // All 25 distinct ids across pages.
    let mut ids: Vec<String> = out
        .rows
        .iter()
        .chain(page2.rows.iter())
        .chain(page3.rows.iter())
        .filter_map(|r| r.get("id").and_then(Json::as_str).map(String::from))
        .collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), 25);
}

#[test]
fn async_delete_graph_workflow() {
    let (cluster, client) = film_cluster();
    client.delete_graph(TENANT, GRAPH).unwrap();
    // The graph flips to Deleting immediately; storage is reclaimed async.
    let meta = client.graph_meta(TENANT, GRAPH).unwrap().unwrap();
    assert_eq!(meta.state, a1_core::LifecycleState::Deleting);
    // Mutations are rejected while deleting.
    assert!(client
        .create_vertex(TENANT, GRAPH, "entity", r#"{"id": "late"}"#)
        .is_err());

    // Drive the task workers to completion (§3.3).
    let mut rounds = 0;
    while cluster.run_pending_tasks(64).unwrap() > 0 {
        rounds += 1;
        assert!(rounds < 100, "delete workflow did not converge");
    }
    assert!(client.graph_meta(TENANT, GRAPH).unwrap().is_none());
    assert!(client.list_types(TENANT, GRAPH).unwrap().is_empty());
}

#[test]
fn working_set_fast_fail() {
    let cluster = A1Cluster::start(A1Config {
        exec: a1_core::query::exec::ExecConfig {
            max_working_set: 5,
            ..Default::default()
        },
        ..A1Config::small(2)
    })
    .unwrap();
    let client = cluster.client();
    client.create_tenant(TENANT).unwrap();
    client.create_graph(TENANT, GRAPH).unwrap();
    client
        .create_vertex_type(TENANT, GRAPH, ENTITY_SCHEMA, "id", &[])
        .unwrap();
    client
        .create_edge_type(TENANT, GRAPH, &edge_schema("has"))
        .unwrap();
    client
        .create_vertex(TENANT, GRAPH, "entity", r#"{"id": "hub"}"#)
        .unwrap();
    for i in 0..10 {
        client
            .create_vertex(TENANT, GRAPH, "entity", &format!(r#"{{"id": "leaf{i}"}}"#))
            .unwrap();
        client
            .create_edge(
                TENANT,
                GRAPH,
                "entity",
                &Json::str("hub"),
                "has",
                "entity",
                &Json::str(&format!("leaf{i}")),
                None,
            )
            .unwrap();
    }
    let r = client.query(
        TENANT,
        GRAPH,
        r#"{ "id": "hub", "_out_edge": { "_type": "has",
             "_vertex": { "_select": ["_count(*)"] }}}"#,
    );
    assert!(r.is_err(), "working set of 10 exceeds the limit of 5");
}

/// A LIMIT query must terminate early: once the final hop has produced
/// enough rows, the coordinator stops dispatching work ops instead of
/// reading the entire frontier and truncating afterwards.
#[test]
fn limit_terminates_early() {
    let cluster = A1Cluster::start(A1Config::small(5)).unwrap();
    let client = cluster.client();
    client.create_tenant(TENANT).unwrap();
    client.create_graph(TENANT, GRAPH).unwrap();
    client
        .create_vertex_type(TENANT, GRAPH, ENTITY_SCHEMA, "id", &[])
        .unwrap();
    client
        .create_edge_type(TENANT, GRAPH, &edge_schema("has"))
        .unwrap();
    client
        .create_vertex(TENANT, GRAPH, "entity", r#"{"id": "hub"}"#)
        .unwrap();
    for i in 0..400 {
        client
            .create_vertex(
                TENANT,
                GRAPH,
                "entity",
                &format!(r#"{{"id": "leaf{i:04}"}}"#),
            )
            .unwrap();
        client
            .create_edge(
                TENANT,
                GRAPH,
                "entity",
                &Json::str("hub"),
                "has",
                "entity",
                &Json::str(&format!("leaf{i:04}")),
                None,
            )
            .unwrap();
    }
    let q = |limit: &str| {
        format!(
            r#"{{ "id": "hub", "_out_edge": {{ "_type": "has",
                 "_vertex": {{ "_select": ["id"]{limit} }}}}}}"#
        )
    };
    let full = client.query(TENANT, GRAPH, &q("")).unwrap();
    assert_eq!(full.rows.len(), 400);

    let limited = client.query(TENANT, GRAPH, &q(r#", "_limit": 1"#)).unwrap();
    assert_eq!(limited.rows.len(), 1);
    // The limited run reads the hub plus at most one wave of single-vertex
    // batches (one per machine) — far fewer than the 401 of the full scan.
    assert!(
        limited.metrics.vertices_read <= 12,
        "LIMIT 1 read {} vertices; early termination should read ~1 per machine",
        limited.metrics.vertices_read
    );
    // Both modes agree on the first row (deterministic merge order).
    assert_eq!(limited.rows[0], full.rows[0]);
}
