//! The A1 data model: tenants → graphs → types → vertices/edges (paper §3,
//! Table 1). Metadata is serialized as JSON into catalog values.

use crate::convert::{json_to_schema, schema_to_json};
use crate::error::{A1Error, A1Result};
use a1_bond::Schema;
use a1_farm::Ptr;
use a1_json::Json;

/// Numeric type id, unique within a graph; stored in vertex headers and
/// half-edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// Lifecycle of graphs and types: deletion is asynchronous (§3.3), so
/// objects linger in `Deleting` until the workflow finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleState {
    Active,
    Deleting,
}

impl LifecycleState {
    fn as_str(self) -> &'static str {
        match self {
            LifecycleState::Active => "active",
            LifecycleState::Deleting => "deleting",
        }
    }

    fn parse(s: &str) -> A1Result<LifecycleState> {
        match s {
            "active" => Ok(LifecycleState::Active),
            "deleting" => Ok(LifecycleState::Deleting),
            other => Err(A1Error::Internal(format!("bad state '{other}'"))),
        }
    }
}

/// A vertex type: schema + primary key + secondary indexes (§3).
#[derive(Debug, Clone)]
pub struct VertexTypeDef {
    pub id: TypeId,
    pub name: String,
    pub schema: Schema,
    /// Field id of the primary key (unique, non-null; §3).
    pub primary_key: u16,
    /// Field ids with secondary indexes.
    pub secondary: Vec<u16>,
    /// Header pointer of the primary-index B-tree.
    pub primary_index: Ptr,
    /// (field id, index B-tree header) pairs.
    pub secondary_indexes: Vec<(u16, Ptr)>,
    pub state: LifecycleState,
}

/// An edge type: schema only — no primary key, no indexes (§3).
#[derive(Debug, Clone)]
pub struct EdgeTypeDef {
    pub id: TypeId,
    pub name: String,
    pub schema: Schema,
    pub state: LifecycleState,
}

/// Graph-level metadata.
#[derive(Debug, Clone)]
pub struct GraphMeta {
    pub id: u32,
    pub tenant: String,
    pub name: String,
    pub state: LifecycleState,
    /// Header pointer of the graph's global edge B-tree (large edge lists,
    /// §3.2).
    pub edge_tree: Ptr,
}

fn ptr_to_json(p: Ptr) -> Json {
    Json::obj(vec![
        ("a", Json::Num(p.addr.raw() as f64)),
        ("s", Json::Num(p.size as f64)),
    ])
}

fn json_to_ptr(j: &Json) -> A1Result<Ptr> {
    let a = j
        .get("a")
        .and_then(Json::as_f64)
        .ok_or_else(|| A1Error::Internal("bad ptr".into()))?;
    let s = j
        .get("s")
        .and_then(Json::as_f64)
        .ok_or_else(|| A1Error::Internal("bad ptr".into()))?;
    Ok(Ptr::new(a1_farm::Addr::from_raw(a as u64), s as u32))
}

impl VertexTypeDef {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str("vertex")),
            ("id", Json::Num(self.id.0 as f64)),
            ("name", Json::str(&self.name)),
            ("schema", schema_to_json(&self.schema)),
            ("pk", Json::Num(self.primary_key as f64)),
            (
                "secondary",
                Json::Arr(
                    self.secondary
                        .iter()
                        .map(|s| Json::Num(*s as f64))
                        .collect(),
                ),
            ),
            ("primary_index", ptr_to_json(self.primary_index)),
            (
                "secondary_indexes",
                Json::Arr(
                    self.secondary_indexes
                        .iter()
                        .map(|(f, p)| {
                            Json::Obj(vec![
                                ("f".to_string(), Json::Num(*f as f64)),
                                ("p".to_string(), ptr_to_json(*p)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("state", Json::str(self.state.as_str())),
        ])
    }

    pub fn from_json(j: &Json) -> A1Result<VertexTypeDef> {
        let get = |k: &str| {
            j.get(k)
                .ok_or_else(|| A1Error::Internal(format!("missing '{k}'")))
        };
        Ok(VertexTypeDef {
            id: TypeId(get("id")?.as_f64().unwrap_or(0.0) as u32),
            name: get("name")?.as_str().unwrap_or("").to_string(),
            schema: json_to_schema(get("schema")?)?,
            primary_key: get("pk")?.as_f64().unwrap_or(0.0) as u16,
            secondary: get("secondary")?
                .as_arr()
                .unwrap_or(&[])
                .iter()
                .filter_map(|v| v.as_f64().map(|n| n as u16))
                .collect(),
            primary_index: json_to_ptr(get("primary_index")?)?,
            secondary_indexes: get("secondary_indexes")?
                .as_arr()
                .unwrap_or(&[])
                .iter()
                .map(|e| {
                    let f = e.get("f").and_then(Json::as_f64).unwrap_or(0.0) as u16;
                    let p = json_to_ptr(
                        e.get("p")
                            .ok_or_else(|| A1Error::Internal("missing p".into()))?,
                    )?;
                    Ok((f, p))
                })
                .collect::<A1Result<Vec<_>>>()?,
            state: LifecycleState::parse(get("state")?.as_str().unwrap_or(""))?,
        })
    }
}

impl EdgeTypeDef {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str("edge")),
            ("id", Json::Num(self.id.0 as f64)),
            ("name", Json::str(&self.name)),
            ("schema", schema_to_json(&self.schema)),
            ("state", Json::str(self.state.as_str())),
        ])
    }

    pub fn from_json(j: &Json) -> A1Result<EdgeTypeDef> {
        let get = |k: &str| {
            j.get(k)
                .ok_or_else(|| A1Error::Internal(format!("missing '{k}'")))
        };
        Ok(EdgeTypeDef {
            id: TypeId(get("id")?.as_f64().unwrap_or(0.0) as u32),
            name: get("name")?.as_str().unwrap_or("").to_string(),
            schema: json_to_schema(get("schema")?)?,
            state: LifecycleState::parse(get("state")?.as_str().unwrap_or(""))?,
        })
    }
}

/// Is this catalog blob a vertex or an edge type?
pub fn type_kind(j: &Json) -> Option<&str> {
    j.get("kind").and_then(Json::as_str)
}

impl GraphMeta {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Num(self.id as f64)),
            ("tenant", Json::str(&self.tenant)),
            ("name", Json::str(&self.name)),
            ("state", Json::str(self.state.as_str())),
            ("edge_tree", ptr_to_json(self.edge_tree)),
        ])
    }

    pub fn from_json(j: &Json) -> A1Result<GraphMeta> {
        let get = |k: &str| {
            j.get(k)
                .ok_or_else(|| A1Error::Internal(format!("missing '{k}'")))
        };
        Ok(GraphMeta {
            id: get("id")?.as_f64().unwrap_or(0.0) as u32,
            tenant: get("tenant")?.as_str().unwrap_or("").to_string(),
            name: get("name")?.as_str().unwrap_or("").to_string(),
            state: LifecycleState::parse(get("state")?.as_str().unwrap_or(""))?,
            edge_tree: json_to_ptr(get("edge_tree")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a1_bond::{BondType, FieldDef};
    use a1_farm::{Addr, RegionId};

    fn sample_schema() -> Schema {
        Schema::build(
            "Actor",
            vec![
                FieldDef::required(0, "name", BondType::String),
                FieldDef::optional(1, "origin", BondType::String),
                FieldDef::optional(2, "birth_date", BondType::Date),
            ],
        )
        .unwrap()
    }

    #[test]
    fn vertex_type_json_roundtrip() {
        let def = VertexTypeDef {
            id: TypeId(7),
            name: "Actor".into(),
            schema: sample_schema(),
            primary_key: 0,
            secondary: vec![1],
            primary_index: Ptr::new(Addr::new(RegionId(1), 64), 26),
            secondary_indexes: vec![(1, Ptr::new(Addr::new(RegionId(1), 128), 26))],
            state: LifecycleState::Active,
        };
        let j = def.to_json();
        let back = VertexTypeDef::from_json(&j).unwrap();
        assert_eq!(back.id, def.id);
        assert_eq!(back.name, def.name);
        assert_eq!(back.schema, def.schema);
        assert_eq!(back.primary_key, 0);
        assert_eq!(back.secondary, vec![1]);
        assert_eq!(back.primary_index, def.primary_index);
        assert_eq!(back.secondary_indexes, def.secondary_indexes);
        assert_eq!(back.state, LifecycleState::Active);
        assert_eq!(type_kind(&j), Some("vertex"));
    }

    #[test]
    fn edge_type_json_roundtrip() {
        let def = EdgeTypeDef {
            id: TypeId(3),
            name: "acted".into(),
            schema: Schema::empty("acted"),
            state: LifecycleState::Deleting,
        };
        let back = EdgeTypeDef::from_json(&def.to_json()).unwrap();
        assert_eq!(back.id, def.id);
        assert_eq!(back.state, LifecycleState::Deleting);
        assert_eq!(type_kind(&def.to_json()), Some("edge"));
    }

    #[test]
    fn graph_meta_json_roundtrip() {
        let g = GraphMeta {
            id: 2,
            tenant: "bing".into(),
            name: "kg".into(),
            state: LifecycleState::Active,
            edge_tree: Ptr::new(Addr::new(RegionId(0), 640), 26),
        };
        let back = GraphMeta::from_json(&g.to_json()).unwrap();
        assert_eq!(back.id, 2);
        assert_eq!(back.tenant, "bing");
        assert_eq!(back.edge_tree, g.edge_tree);
    }

    #[test]
    fn state_parse_rejects_garbage() {
        assert!(LifecycleState::parse("zombie").is_err());
    }
}
