//! The A1 cluster facade: backends (FaRM coprocessors), frontends, and the
//! client API (paper §2.2, Fig. 4).
//!
//! Clients talk to frontends (stateless routing/throttling); frontends
//! forward to backend machines, where all query execution and data
//! processing happens. Here the frontend tier is folded into [`A1Client`]:
//! it picks a backend (round-robin, like the SLB + random routing of §3.4),
//! charges the client↔cluster hop, and sends the request into the backend's
//! worker pool over the fabric RPC path — so backend queueing is real.

use crate::batch::{BatchApplier, Mutation};
use crate::cache::{CacheConfig, CacheStats, VertexCache};
use crate::catalog::{Catalog, GraphProxies, ProxyCache, VertexProxy};
use crate::convert::{json_to_value, record_from_json, record_to_json};
use crate::edges::Dir;
use crate::error::{A1Error, A1Result};
use crate::model::{EdgeTypeDef, GraphMeta, LifecycleState, TypeId, VertexTypeDef};
use crate::query::exec::{self, ExecConfig, QueryMetrics, QueryOutcome, WorkOp, WorkResult};
use crate::query::plan::parse_query;
use crate::replog::{entry as log_entry, Replog};
use crate::store::{conflict_backoff, run_a1, GraphStore};
use crate::tasks::{TaskQueue, TaskSpec};
use crate::vertex::vertex_ptr;
use crate::wire::{self, Request, WireFormat};
use a1_farm::{Addr, BTree, BTreeConfig, FarmCluster, FarmConfig, Hint, JobClass, MachineId, Txn};
use a1_json::Json;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Cluster-level configuration.
#[derive(Debug, Clone)]
pub struct A1Config {
    pub farm: FarmConfig,
    pub exec: ExecConfig,
    /// Catalog proxy cache TTL (§3.1).
    pub proxy_ttl: Duration,
    /// Inline edge-list spill threshold (§3.2, ~1000).
    pub inline_edge_threshold: usize,
    /// How long coordinators keep paged query results (§3.4, 60 s).
    pub continuation_ttl: Duration,
    /// Write a replication log for disaster recovery (§4).
    pub dr_enabled: bool,
    /// Encoding for every inter-machine message (work-op ships, query/page
    /// RPCs, replication-log entry bodies). Binary is the default; set
    /// [`WireFormat::Json`] to force the legacy text wire for debugging.
    /// Decoders always auto-detect, so mixed-format clusters and logs work.
    pub wire_format: WireFormat,
    /// Front-door admission control and worker-pool sharing knobs.
    pub admission: AdmissionConfig,
    /// Per-machine cross-query hot-vertex read cache knobs (see
    /// [`crate::cache`]).
    pub cache: CacheConfig,
}

/// Per-machine front-door knobs: how many queries a backend lets in at once,
/// per-client fairness caps, and how each machine's worker pool is shared
/// between the job classes that compete for it (query fan-out, morsels,
/// ingest batch application).
///
/// The default is wide open — no admission limits — matching the pre-front-
/// door behavior. Serving deployments (and the load-test bench) set limits.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Max queries/pages in flight per backend machine; `0` = unlimited.
    /// Over-limit requests are rejected with [`A1Error::Overloaded`].
    pub max_inflight_queries: usize,
    /// Max queries/pages in flight per client id per backend; `0` =
    /// unlimited. Anonymous requests (empty client id) share one bucket.
    pub max_inflight_per_client: usize,
    /// Max continuation-table entries a single client may hold per backend;
    /// `0` = unlimited. Over quota, the client's *oldest* continuation is
    /// evicted (that query must restart) — other clients are untouched.
    pub max_continuations_per_client: usize,
    /// Working-set cap applied to identified clients (empty client id is
    /// exempt); `0` = inherit [`ExecConfig::max_working_set`]. The effective
    /// cap is the smaller of the two.
    pub client_max_working_set: usize,
    /// Back-off hint stamped into `Overloaded` rejections.
    pub retry_after: Duration,
    /// In-flight quota for [`a1_farm::JobClass::Ingest`] jobs on each
    /// machine's pool. `None` = auto: `threads_per_machine - 1` (min 1), so
    /// ingest can never occupy every worker. `Some(0)` = unlimited.
    pub ingest_quota: Option<usize>,
    /// In-flight quota for [`a1_farm::JobClass::Morsel`] jobs; `0` =
    /// unlimited. Morsel batches always complete even at quota zero
    /// headroom (the submitting coordinator runs them inline), so this
    /// bounds *pool occupancy*, not progress.
    pub morsel_quota: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight_queries: 0,
            max_inflight_per_client: 0,
            max_continuations_per_client: 0,
            client_max_working_set: 0,
            retry_after: Duration::from_millis(10),
            ingest_quota: None,
            morsel_quota: 0,
        }
    }
}

impl Default for A1Config {
    fn default() -> Self {
        A1Config {
            farm: FarmConfig::default(),
            exec: ExecConfig::default(),
            proxy_ttl: Duration::from_secs(10),
            inline_edge_threshold: 1024,
            continuation_ttl: Duration::from_secs(60),
            dr_enabled: false,
            wire_format: WireFormat::Binary,
            admission: AdmissionConfig::default(),
            cache: CacheConfig::default(),
        }
    }
}

impl A1Config {
    /// A small test/example cluster with `n` backend machines.
    pub fn small(n: u32) -> A1Config {
        A1Config {
            farm: FarmConfig::small(n),
            ..A1Config::default()
        }
    }

    /// Same cluster with a specific per-hop ship fan-out
    /// ([`ExecConfig::fanout_parallelism`]): `0` = auto (a window as wide
    /// as the hop's target machine count), `1` = the legacy serial
    /// coordinator.
    pub fn with_fanout(mut self, fanout: usize) -> A1Config {
        self.exec.fanout_parallelism = fanout;
        self
    }

    /// Same cluster with a specific [`WireFormat`] for inter-machine
    /// messages (`Json` = the legacy debug wire).
    pub fn with_wire_format(mut self, fmt: WireFormat) -> A1Config {
        self.wire_format = fmt;
        self
    }

    /// Same cluster with a specific per-machine morsel parallelism
    /// ([`ExecConfig::intra_parallelism`]): `0` = auto (one morsel per
    /// simulated core), `1` = the legacy serial per-machine loop.
    pub fn with_intra_parallelism(mut self, intra: usize) -> A1Config {
        self.exec.intra_parallelism = intra;
        self
    }

    /// Same cluster with specific front-door [`AdmissionConfig`] knobs.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> A1Config {
        self.admission = admission;
        self
    }

    /// Same cluster with specific hot-vertex read-cache knobs
    /// ([`CacheConfig`]); `enabled: false` is the A/B baseline.
    pub fn with_cache(mut self, cache: CacheConfig) -> A1Config {
        self.cache = cache;
        self
    }
}

/// A paged query's cached remainder, tagged with the client that owns it
/// (for the front door's per-client continuation quota). Timestamps come
/// from the cluster clock so continuation TTLs run on virtual time under
/// the simulation harness.
struct Continuation {
    at_ns: u64,
    rows: Vec<Json>,
    client: String,
}

/// Per-backend admission counters: total and per-client in-flight requests.
struct AdmissionState {
    inflight: AtomicUsize,
    /// Per-client in-flight counts; entries are removed when they hit zero,
    /// so the map only holds currently-active clients.
    per_client: Mutex<HashMap<String, usize>>,
}

/// A held front-door admission slot. The request it admitted is in flight
/// until this is dropped; dropping releases the machine's (and client's)
/// slot. Obtainable directly via [`A1Cluster::hold_admission_slot`] to
/// drive the front door deterministically in tests.
pub struct AdmissionPermit {
    backend: Arc<Backend>,
    /// Set only when a per-client limit is active (the undo must mirror
    /// exactly what was counted).
    client: Option<String>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.backend
            .admission
            .inflight
            .fetch_sub(1, Ordering::AcqRel);
        if let Some(client) = self.client.take() {
            let mut per_client = self.backend.admission.per_client.lock();
            if let Some(n) = per_client.get_mut(&client) {
                *n -= 1;
                if *n == 0 {
                    per_client.remove(&client);
                }
            }
        }
    }
}

/// Per-backend-machine coprocessor state.
pub struct Backend {
    pub machine: MachineId,
    proxies: ProxyCache,
    continuations: Mutex<HashMap<u64, Continuation>>,
    next_cont: AtomicU64,
    admission: AdmissionState,
    /// This machine's cross-query hot-vertex read cache (always allocated;
    /// the read path only consults it when [`CacheConfig::enabled`]).
    cache: VertexCache,
}

impl Backend {
    fn new(machine: MachineId, proxy_ttl: Duration, cache_cfg: &CacheConfig) -> Arc<Backend> {
        Arc::new(Backend {
            machine,
            proxies: ProxyCache::new(proxy_ttl),
            continuations: Mutex::new(HashMap::new()),
            next_cont: AtomicU64::new(1),
            admission: AdmissionState {
                inflight: AtomicUsize::new(0),
                per_client: Mutex::new(HashMap::new()),
            },
            cache: VertexCache::new(cache_cfg),
        })
    }
}

/// The shared cluster state.
pub struct A1Inner {
    pub cfg: A1Config,
    pub farm: Arc<FarmCluster>,
    pub catalog: Catalog,
    pub store: GraphStore,
    backends: Vec<Arc<Backend>>,
    pub replog: Option<Replog>,
    pub taskq: TaskQueue,
    rr: AtomicUsize,
}

/// A running A1 cluster.
#[derive(Clone)]
pub struct A1Cluster {
    inner: Arc<A1Inner>,
}

impl A1Cluster {
    /// Boot the cluster: FaRM, catalog, task queue, optional replication
    /// log, and the per-machine RPC dispatch.
    pub fn start(cfg: A1Config) -> A1Result<A1Cluster> {
        let farm = FarmCluster::start(cfg.farm.clone());
        let catalog = Catalog::bootstrap(&farm)?;
        let taskq = TaskQueue::create(&farm)?;
        let replog = if cfg.dr_enabled {
            Some(Replog::create_with(&farm, cfg.wire_format)?)
        } else {
            None
        };
        let backends: Vec<Arc<Backend>> = (0..cfg.farm.fabric.machines)
            .map(|i| Backend::new(MachineId(i), cfg.proxy_ttl, &cfg.cache))
            .collect();
        let store = GraphStore::with_inline_threshold(cfg.inline_edge_threshold);
        let inner = Arc::new(A1Inner {
            cfg,
            farm,
            catalog,
            store,
            backends,
            replog,
            taskq,
            rr: AtomicUsize::new(0),
        });
        // Install the coprocessor RPC dispatch on every backend machine.
        for backend in &inner.backends {
            let weak: Weak<A1Inner> = Arc::downgrade(&inner);
            let machine = backend.machine;
            inner.farm.fabric().set_rpc_handler(
                machine,
                Arc::new(move |_from, payload: Bytes| {
                    let Some(inner) = weak.upgrade() else {
                        return Bytes::from(wire::encode_error(
                            &A1Error::Internal("shutdown".into()),
                            wire::payload_format(&payload),
                        ));
                    };
                    Bytes::from(inner.dispatch_rpc(machine, &payload))
                }),
            );
        }
        // Share each machine's worker pool between job classes: cap ingest
        // batch application so applier work can never occupy every worker
        // (queries would starve behind an ingest burst), and optionally cap
        // morsels. Query-class jobs are never capped — they are what the
        // front door already admitted.
        for backend in &inner.backends {
            if let Ok(m) = inner.farm.fabric().machine(backend.machine) {
                let ingest_quota = match inner.cfg.admission.ingest_quota {
                    None => inner
                        .cfg
                        .farm
                        .fabric
                        .threads_per_machine
                        .saturating_sub(1)
                        .max(1),
                    Some(n) => n,
                };
                m.pool().set_class_quota(JobClass::Ingest, ingest_quota);
                m.pool()
                    .set_class_quota(JobClass::Morsel, inner.cfg.admission.morsel_quota);
            }
        }
        Ok(A1Cluster { inner })
    }

    pub fn inner(&self) -> &Arc<A1Inner> {
        &self.inner
    }

    pub fn farm(&self) -> &Arc<FarmCluster> {
        &self.inner.farm
    }

    /// A client handle (the paper's SLB + frontend tier).
    pub fn client(&self) -> A1Client {
        A1Client {
            inner: self.inner.clone(),
            client_id: String::new(),
        }
    }

    /// Execute up to `max` pending async tasks (deterministic alternative to
    /// background workers; §3.3).
    pub fn run_pending_tasks(&self, max: usize) -> A1Result<usize> {
        self.inner.run_pending_tasks(max)
    }

    /// Live continuation-table entries cached on `machine` (ops/test hook:
    /// the load-shed sweep and per-client quota are asserted through this).
    pub fn continuation_count(&self, machine: MachineId) -> usize {
        self.inner.backend(machine).continuations.lock().len()
    }

    /// Aggregate hot-vertex cache counters across all backend machines.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for b in &self.inner.backends {
            let s = b.cache.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.entries += s.entries;
            total.bytes += s.bytes;
        }
        total
    }

    /// Drop every machine's cached vertices (bench A/B resets; counters are
    /// kept).
    pub fn clear_caches(&self) {
        for b in &self.inner.backends {
            b.cache.clear();
        }
    }

    /// Occupy one front-door admission slot on `machine` as `client`
    /// without running a query, or fail with [`A1Error::Overloaded`] like
    /// any other request would. The slot frees when the returned permit
    /// drops. Test hook: drives the front door to its limit
    /// deterministically, without depending on query timing.
    pub fn hold_admission_slot(
        &self,
        machine: MachineId,
        client: &str,
    ) -> A1Result<AdmissionPermit> {
        self.inner.admit(machine, client)
    }
}

impl A1Inner {
    fn backend(&self, m: MachineId) -> &Arc<Backend> {
        &self.backends[m.0 as usize]
    }

    /// Round-robin backend choice (the frontends route requests "to a random
    /// backend machine", §3.4). The SLB health-checks backends: dead
    /// machines are skipped.
    pub(crate) fn pick_backend(&self) -> &Arc<Backend> {
        let fabric = self.farm.fabric();
        for _ in 0..self.backends.len() {
            let i = self.rr.fetch_add(1, Ordering::Relaxed) % self.backends.len();
            if fabric.is_alive(self.backends[i].machine) {
                return &self.backends[i];
            }
        }
        &self.backends[0] // no healthy backend; let the call surface the error
    }

    fn proxies(&self, backend: &Backend, tenant: &str, graph: &str) -> A1Result<Arc<GraphProxies>> {
        backend
            .proxies
            .graph(&self.farm, &self.catalog, backend.machine, tenant, graph)
    }

    /// Resolve a graph's catalog proxies through the given machine's proxy
    /// cache (one catalog read per TTL, §3.1). Used by the batch/ingest
    /// write path, which manages its own transactions.
    pub fn proxies_at(
        &self,
        machine: MachineId,
        tenant: &str,
        graph: &str,
    ) -> A1Result<Arc<GraphProxies>> {
        self.proxies(self.backend(machine), tenant, graph)
    }

    // ---------------------------------------------------------- RPC server

    /// Decode and execute one RPC, replying in the format the request
    /// arrived in (binary frame tag dispatch; legacy JSON auto-detected).
    ///
    /// Query and page requests pass the front door first: over the machine's
    /// (or the client's) in-flight limit they are rejected with a structured
    /// [`A1Error::Overloaded`] carrying a retry-after hint, encoded in
    /// whichever wire format the request arrived in. Work ops are internal —
    /// their query was already admitted on its coordinator — and bypass
    /// admission, as coordinator back-pressure already bounds them.
    fn dispatch_rpc(&self, machine: MachineId, payload: &[u8]) -> Vec<u8> {
        let fmt = wire::payload_format(payload);
        match wire::decode_request(payload) {
            Ok(Request::Work(op)) => wire::encode_work_result(&self.handle_work(machine, &op), fmt),
            Ok(Request::Query {
                tenant,
                graph,
                q,
                client,
            }) => {
                let outcome = self.admit(machine, &client).and_then(|_permit| {
                    self.coordinate_query_for(machine, &tenant, &graph, &q, &client)
                });
                wire::encode_outcome(&outcome, fmt)
            }
            Ok(Request::Page { cid, client }) => {
                let outcome = match self.admit(machine, &client) {
                    Ok(_permit) => self.handle_page(machine, cid),
                    Err(e) => {
                        // A rejected page still kills its continuation: the
                        // cached rows are exactly the memory this rejection
                        // is shedding, and waiting out the TTL would leak
                        // them for the worst minute possible. The client
                        // restarts the query once load drains.
                        self.backend(machine).continuations.lock().remove(&cid);
                        Err(e)
                    }
                };
                wire::encode_outcome(&outcome, fmt)
            }
            Err(e) => wire::encode_error(&e, fmt),
        }
    }

    /// Front-door admission: claim an in-flight slot on `machine` for
    /// `client`, or reject with [`A1Error::Overloaded`].
    fn admit(&self, machine: MachineId, client: &str) -> A1Result<AdmissionPermit> {
        let adm = &self.cfg.admission;
        let backend = self.backend(machine);
        let overloaded = || A1Error::Overloaded {
            retry_after_ms: (adm.retry_after.as_millis() as u64).max(1),
        };
        let total = backend.admission.inflight.fetch_add(1, Ordering::AcqRel) + 1;
        if adm.max_inflight_queries != 0 && total > adm.max_inflight_queries {
            backend.admission.inflight.fetch_sub(1, Ordering::AcqRel);
            return Err(overloaded());
        }
        let mut permit = AdmissionPermit {
            backend: backend.clone(),
            client: None,
        };
        if adm.max_inflight_per_client != 0 {
            let mut per_client = backend.admission.per_client.lock();
            if per_client.get(client).copied().unwrap_or(0) >= adm.max_inflight_per_client {
                drop(per_client);
                return Err(overloaded()); // permit drop releases the total slot
            }
            *per_client.entry(client.to_string()).or_insert(0) += 1;
            permit.client = Some(client.to_string());
        }
        Ok(permit)
    }

    fn handle_work(&self, machine: MachineId, op: &WorkOp) -> A1Result<WorkResult> {
        let backend = self.backend(machine);
        let proxies = self.proxies(backend, &op.tenant, &op.graph)?;
        // This machine's own pool: the shipped batch splits into morsels
        // executing next to the data (intra-machine parallelism, the level
        // below the coordinator's cross-machine fan-out).
        let pool = self.farm.fabric().machine(machine).ok().map(|m| m.pool());
        // The executing machine's own cache — shipped ops consult the cache
        // next to the data they read. Per-client bypass arrives stamped on
        // the op itself.
        let cache = self.cfg.cache.enabled.then(|| &backend.cache);
        exec::run_work_op(
            &self.farm,
            &self.store,
            &proxies,
            machine,
            op,
            cache,
            pool,
            &self.cfg.exec,
        )
    }

    /// Evict `addrs` from every machine's hot-vertex cache — the post-commit
    /// invalidation choke point for the batch applier, interactive
    /// transactions, and background delete tasks. (Correctness never depends
    /// on this: a missed eviction is caught by version revalidation at the
    /// next lookup. This keeps dead entries from occupying capacity and
    /// paying fruitless probes.)
    pub fn invalidate_cached_vertices(&self, addrs: &[Addr]) {
        if addrs.is_empty() || !self.cfg.cache.enabled {
            return;
        }
        for b in &self.backends {
            b.cache.invalidate_many(addrs);
        }
    }

    /// Coordinator-side query execution (§3.4, Fig. 9) for an anonymous
    /// caller — the closed-loop entry point; bypasses the front door.
    pub fn coordinate_query(
        &self,
        machine: MachineId,
        tenant: &str,
        graph: &str,
        text: &str,
    ) -> A1Result<QueryOutcome> {
        self.coordinate_query_for(machine, tenant, graph, text, "")
    }

    /// Coordinator-side query execution on behalf of `client`: identified
    /// clients get the per-client working-set cap, own the continuation
    /// entries their paged results create, and honor
    /// [`CacheConfig::bypass_clients`](crate::CacheConfig::bypass_clients).
    /// Public so benches/tests can pin the coordinator machine *and* carry
    /// a client identity (the front-door `A1Client::query` picks a backend
    /// round-robin, which is the right behavior for serving but makes
    /// per-backend cache measurements non-deterministic).
    pub fn coordinate_query_for(
        &self,
        machine: MachineId,
        tenant: &str,
        graph: &str,
        text: &str,
        client: &str,
    ) -> A1Result<QueryOutcome> {
        let backend = self.backend(machine);
        let proxies = self.proxies(backend, tenant, graph)?;
        let query = parse_query(text)?;

        // One read-only transaction pins the snapshot for the whole query;
        // its guard keeps old versions alive until we finish (§2.2).
        let mut tx = self.farm.begin_read_only(machine);
        let snapshot_ts = tx.read_ts();
        let (compiled, frontier) = exec::compile(&self.store, &mut tx, &proxies, &query)?;

        let fabric = self.farm.fabric().clone();
        let fmt = self.cfg.wire_format;
        let ship = |host: MachineId, op: &WorkOp| -> A1Result<WorkResult> {
            let payload = Bytes::from(wire::encode_work_op(op, fmt));
            let req_bytes = payload.len() as u64;
            let reply = fabric
                .rpc(machine, host, payload)
                .map_err(|e| A1Error::Internal(format!("ship rpc: {e}")))?;
            let mut result = wire::decode_work_result(&reply)?;
            // Bytes-on-wire accounting: the worker cannot know its payload
            // sizes, so the coordinator stamps them on the merged metrics.
            result.metrics.rpc_req_bytes = req_bytes;
            result.metrics.rpc_reply_bytes = reply.len() as u64;
            Ok(result)
        };

        // Identified clients may carry a tighter working-set budget than the
        // global fast-fail cap (per-client quota, front-door satellite of
        // the paper's multi-tenancy story).
        let mut exec_cfg = self.cfg.exec.clone();
        let client_ws = self.cfg.admission.client_max_working_set;
        if client_ws != 0 && !client.is_empty() {
            exec_cfg.max_working_set = exec_cfg.max_working_set.min(client_ws);
        }
        // Per-client cache bypass is stamped onto every work op so shipped
        // ops bypass at remote machines too; inline ops use the coordinator
        // machine's own cache.
        let cache_bypass =
            !client.is_empty() && self.cfg.cache.bypass_clients.iter().any(|c| c == client);
        let coord = exec::Coordinator {
            farm: &self.farm,
            store: &self.store,
            proxies: &proxies,
            machine,
            cfg: &exec_cfg,
            cache: (self.cfg.cache.enabled && !cache_bypass).then(|| &backend.cache),
            cache_bypass,
        };
        let mut outcome = exec::coordinate(
            &coord,
            tenant,
            graph,
            &compiled,
            frontier,
            snapshot_ts,
            &ship,
        )?;
        drop(tx);

        // Page oversized results through a continuation token (§3.4).
        if outcome.rows.len() > self.cfg.exec.page_size {
            let rest = outcome.rows.split_off(self.cfg.exec.page_size);
            outcome.continuation = Some(self.stash_continuation(machine, rest, client));
        }
        Ok(outcome)
    }

    fn stash_continuation(&self, machine: MachineId, rest: Vec<Json>, client: &str) -> String {
        let backend = self.backend(machine);
        let id = backend.next_cont.fetch_add(1, Ordering::Relaxed);
        let mut conts = backend.continuations.lock();
        // Opportunistic expiry sweep.
        let now_ns = self.farm.fabric().clock().now_ns();
        let ttl_ns = self.cfg.continuation_ttl.as_nanos() as u64;
        conts.retain(|_, c| now_ns.saturating_sub(c.at_ns) < ttl_ns);
        // Per-client continuation quota: evict the same client's oldest
        // entries (that query restarts) rather than reject the new one —
        // the newest result is the one the client is actively paging.
        let quota = self.cfg.admission.max_continuations_per_client;
        if quota != 0 {
            while conts.values().filter(|c| c.client == client).count() >= quota {
                // Tie-break equal timestamps (common under a coarse virtual
                // clock) by id so eviction order is deterministic.
                let oldest = conts
                    .iter()
                    .filter(|(_, c)| c.client == client)
                    .min_by_key(|(id, c)| (c.at_ns, **id))
                    .map(|(id, _)| *id)
                    .expect("count >= quota >= 1 entries exist");
                conts.remove(&oldest);
            }
        }
        conts.insert(
            id,
            Continuation {
                at_ns: now_ns,
                rows: rest,
                client: client.to_string(),
            },
        );
        // The token encodes the coordinator's identity so frontends can
        // route the next request to the right machine (§3.4).
        format!("c:{}:{}", machine.0, id)
    }

    fn handle_page(&self, machine: MachineId, cid: u64) -> A1Result<QueryOutcome> {
        let backend = self.backend(machine);
        let mut conts = backend.continuations.lock();
        // Sweep expired continuations here too — a backend that serves pages
        // but never stashes new ones must not retain dead pages forever
        // (stash-side sweeping alone leaks in that pattern).
        let now_ns = self.farm.fabric().clock().now_ns();
        let ttl_ns = self.cfg.continuation_ttl.as_nanos() as u64;
        conts.retain(|_, c| now_ns.saturating_sub(c.at_ns) < ttl_ns);
        let Continuation {
            at_ns,
            mut rows,
            client,
        } = conts.remove(&cid).ok_or(A1Error::ContinuationExpired)?;
        let mut outcome = QueryOutcome {
            rows: Vec::new(),
            count: None,
            metrics: QueryMetrics::default(),
            continuation: None,
            per_hop: Vec::new(),
        };
        if rows.len() > self.cfg.exec.page_size {
            let rest = rows.split_off(self.cfg.exec.page_size);
            let id = backend.next_cont.fetch_add(1, Ordering::Relaxed);
            conts.insert(
                id,
                Continuation {
                    at_ns,
                    rows: rest,
                    client,
                },
            );
            outcome.continuation = Some(format!("c:{}:{}", machine.0, id));
        }
        outcome.rows = rows;
        Ok(outcome)
    }

    // --------------------------------------------------------------- tasks

    pub fn run_pending_tasks(&self, max: usize) -> A1Result<usize> {
        let mut done = 0;
        for i in 0..max {
            let origin = MachineId((i % self.backends.len()) as u32);
            let Some(task) = self.taskq.claim(&self.farm, origin)? else {
                break;
            };
            self.execute_task(origin, &task.spec)?;
            self.taskq.complete(&self.farm, origin, &task.key)?;
            done += 1;
        }
        Ok(done)
    }

    fn enqueue_task(&self, tx: &mut Txn, priority: u8, spec: &TaskSpec) -> A1Result<()> {
        let seq = self.catalog.next_id(tx)?;
        self.taskq.enqueue(tx, priority, seq, spec)
    }

    fn execute_task(&self, origin: MachineId, spec: &TaskSpec) -> A1Result<()> {
        match spec {
            TaskSpec::DeleteGraph { tenant, graph } => {
                self.task_delete_graph(origin, tenant, graph)
            }
            TaskSpec::DeleteType { tenant, graph, ty } => {
                self.task_delete_type(origin, tenant, graph, ty)
            }
        }
    }

    /// DeleteGraph workflow (§3.3): spawn DeleteType tasks for every type,
    /// then (when none remain) tear down the graph itself.
    fn task_delete_graph(&self, origin: MachineId, tenant: &str, graph: &str) -> A1Result<()> {
        let catalog = self.catalog.clone();
        let mut tx = self.farm.begin_read_only(origin);
        let types = catalog.list_types(&mut tx, tenant, graph)?;
        let meta = catalog.get_graph(&mut tx, tenant, graph)?;
        drop(tx);
        let Some(meta) = meta else { return Ok(()) }; // already gone

        if types.is_empty() {
            // Final stage: destroy the edge tree + the graph entry.
            let edge_tree_ptr = meta.edge_tree;
            let tenant_s = tenant.to_string();
            let graph_s = graph.to_string();
            run_a1(&self.farm, origin, move |tx| {
                let tree = BTree::open(tx, edge_tree_ptr)?;
                tree.destroy(tx)?;
                catalog.remove(tx, &crate::catalog::graph_key(&tenant_s, &graph_s))?;
                Ok(())
            })?;
            for b in &self.backends {
                b.proxies.invalidate(tenant, graph);
            }
            return Ok(());
        }

        // Spawn per-type deletion and reschedule ourselves to finish later.
        let tenant_s = tenant.to_string();
        let graph_s = graph.to_string();
        let type_names: Vec<String> = types.iter().map(|(n, _, _)| n.clone()).collect();
        let this = self;
        run_a1(&self.farm, origin, move |tx| {
            for name in &type_names {
                this.enqueue_task(
                    tx,
                    2,
                    &TaskSpec::DeleteType {
                        tenant: tenant_s.clone(),
                        graph: graph_s.clone(),
                        ty: name.clone(),
                    },
                )?;
            }
            this.enqueue_task(
                tx,
                3,
                &TaskSpec::DeleteGraph {
                    tenant: tenant_s.clone(),
                    graph: graph_s.clone(),
                },
            )?;
            Ok(())
        })
    }

    /// DeleteType workflow: vertex types delete their vertices in batches
    /// (re-enqueueing between batches) and finally their index trees.
    fn task_delete_type(
        &self,
        origin: MachineId,
        tenant: &str,
        graph: &str,
        ty: &str,
    ) -> A1Result<()> {
        const BATCH: usize = 32;
        let backend = self.backend(origin);
        backend.proxies.invalidate(tenant, graph);
        let proxies = match self.proxies(backend, tenant, graph) {
            Ok(p) => p,
            Err(A1Error::NoSuchGraph(_)) => return Ok(()),
            Err(e) => return Err(e),
        };
        let Some(vp) = proxies.vertex_type(ty) else {
            // Edge type (or already gone): drop the catalog entry.
            if proxies.edge_type(ty).is_some() {
                let catalog = self.catalog.clone();
                let key = crate::catalog::type_key(tenant, graph, ty);
                run_a1(&self.farm, origin, move |tx| {
                    catalog.remove(tx, &key)?;
                    Ok(())
                })?;
            }
            return Ok(());
        };

        // One batch of vertices, each deleted in its own transaction.
        let mut tx = self.farm.begin_read_only(origin);
        let batch = vp.primary.scan(&mut tx, &[], &[], BATCH)?;
        drop(tx);
        if batch.is_empty() {
            // Destroy index trees + the type entry.
            let vp = vp.clone();
            let catalog = self.catalog.clone();
            let key = crate::catalog::type_key(tenant, graph, ty);
            run_a1(&self.farm, origin, move |tx| {
                vp.primary.destroy(tx)?;
                for (_, idx) in &vp.secondaries {
                    idx.destroy(tx)?;
                }
                catalog.remove(tx, &key)?;
                Ok(())
            })?;
            for b in &self.backends {
                b.proxies.invalidate(tenant, graph);
            }
            return Ok(());
        }
        for (_, val) in batch {
            let Some(ptr) = a1_farm::Ptr::decode(&val) else {
                continue;
            };
            let store = &self.store;
            let g = proxies.graph.clone();
            let vp = vp.clone();
            run_a1(&self.farm, origin, move |tx| {
                match store.delete_vertex(tx, &g, &vp, ptr.addr) {
                    Ok(()) | Err(A1Error::NoSuchVertex(_)) => Ok(()),
                    Err(e) => Err(e),
                }
            })?;
            self.invalidate_cached_vertices(&[ptr.addr]);
        }
        // More to do: reschedule.
        let spec = TaskSpec::DeleteType {
            tenant: tenant.to_string(),
            graph: graph.to_string(),
            ty: ty.to_string(),
        };
        run_a1(&self.farm, origin, move |tx| {
            self.enqueue_task(tx, 2, &spec)
        })
    }
}

// ------------------------------------------------------------------ client

/// The client API: control plane, data plane, transactions and queries
/// (paper §3). Cheap to clone.
#[derive(Clone)]
pub struct A1Client {
    inner: Arc<A1Inner>,
    /// Identity stamped onto query/page requests for the front door's
    /// per-client quotas. Empty = anonymous (the shared bucket).
    client_id: String,
}

impl A1Client {
    /// Same handle identifying as `id` to the front door: per-client
    /// in-flight, continuation, and working-set quotas apply to `id`
    /// instead of the shared anonymous bucket.
    pub fn with_client_id(mut self, id: &str) -> A1Client {
        self.client_id = id.to_string();
        self
    }

    // ------------------------------------------------------- control plane

    /// Create a tenant (the isolation container, §3).
    pub fn create_tenant(&self, tenant: &str) -> A1Result<()> {
        let catalog = self.inner.catalog.clone();
        let t = tenant.to_string();
        run_a1(
            &self.inner.farm,
            self.inner.pick_backend().machine,
            move |tx| catalog.put_tenant(tx, &t),
        )
    }

    /// Create a graph under a tenant.
    pub fn create_graph(&self, tenant: &str, graph: &str) -> A1Result<()> {
        let inner = self.inner.clone();
        let backend = inner.pick_backend().machine;
        let catalog = inner.catalog.clone();
        let (tenant_s, graph_s) = (tenant.to_string(), graph.to_string());
        run_a1(&inner.farm, backend, move |tx| {
            if !catalog.tenant_exists(tx, &tenant_s)? {
                return Err(A1Error::NoSuchTenant(tenant_s.clone()));
            }
            if catalog.get_graph(tx, &tenant_s, &graph_s)?.is_some() {
                return Err(A1Error::AlreadyExists(format!("graph {graph_s}")));
            }
            let id = catalog.next_id(tx)? as u32;
            // One global edge B-tree per graph for large edge lists (§3.2).
            let edge_tree = BTree::create(
                tx,
                BTreeConfig {
                    max_keys: 32,
                    max_key_len: 32,
                    max_val_len: 16,
                },
                Hint::Local,
            )?;
            let meta = GraphMeta {
                id,
                tenant: tenant_s.clone(),
                name: graph_s.clone(),
                state: LifecycleState::Active,
                edge_tree: edge_tree.header,
            };
            catalog.put_graph(tx, &meta)?;
            Ok(())
        })
    }

    /// Create a vertex type. `schema` uses the textual form (see
    /// `convert::json_to_schema`); `pk` names the primary-key field (must be
    /// required); `secondary` lists additionally indexed fields.
    pub fn create_vertex_type(
        &self,
        tenant: &str,
        graph: &str,
        schema: &str,
        pk: &str,
        secondary: &[&str],
    ) -> A1Result<()> {
        let schema_json = Json::parse(schema).map_err(|e| A1Error::Schema(e.to_string()))?;
        let schema = crate::convert::json_to_schema(&schema_json)?;
        let pk_field = schema
            .field_by_name(pk)
            .ok_or_else(|| A1Error::Schema(format!("primary key '{pk}' not in schema")))?;
        if !pk_field.required {
            return Err(A1Error::Schema(
                "primary key must be a required field".into(),
            ));
        }
        let pk_id = pk_field.id;
        let sec_ids: Vec<u16> = secondary
            .iter()
            .map(|name| {
                schema
                    .field_by_name(name)
                    .map(|f| f.id)
                    .ok_or_else(|| A1Error::Schema(format!("secondary '{name}' not in schema")))
            })
            .collect::<A1Result<_>>()?;

        let inner = self.inner.clone();
        let backend = inner.pick_backend().machine;
        let catalog = inner.catalog.clone();
        let (tenant_s, graph_s) = (tenant.to_string(), graph.to_string());
        let name = schema.name().to_string();
        run_a1(&inner.farm, backend, move |tx| {
            let meta = catalog
                .get_graph(tx, &tenant_s, &graph_s)?
                .ok_or_else(|| A1Error::NoSuchGraph(graph_s.clone()))?;
            if meta.state != LifecycleState::Active {
                return Err(A1Error::InvalidState("graph is being deleted".into()));
            }
            let key = crate::catalog::type_key(&tenant_s, &graph_s, &name);
            if catalog.get(tx, &key)?.is_some() {
                return Err(A1Error::AlreadyExists(format!("type {name}")));
            }
            let id = TypeId(catalog.next_id(tx)? as u32);
            // Every vertex type gets a sorted primary index (§3).
            let index_cfg = BTreeConfig {
                max_keys: 32,
                max_key_len: 128,
                max_val_len: 16,
            };
            let primary = BTree::create(tx, index_cfg, Hint::Local)?;
            let secondary_indexes = sec_ids
                .iter()
                .map(|f| {
                    let cfg = BTreeConfig {
                        max_keys: 32,
                        max_key_len: 144,
                        max_val_len: 16,
                    };
                    Ok((*f, BTree::create(tx, cfg, Hint::Local)?.header))
                })
                .collect::<A1Result<Vec<_>>>()?;
            let def = VertexTypeDef {
                id,
                name: name.clone(),
                schema: schema.clone(),
                primary_key: pk_id,
                secondary: sec_ids.clone(),
                primary_index: primary.header,
                secondary_indexes,
                state: LifecycleState::Active,
            };
            catalog.put_vertex_type(tx, &tenant_s, &graph_s, &def)?;
            Ok(())
        })?;
        self.invalidate(tenant, graph);
        Ok(())
    }

    /// Create an edge type (schema optional — edges are often data-free,
    /// §6).
    pub fn create_edge_type(&self, tenant: &str, graph: &str, schema: &str) -> A1Result<()> {
        let schema_json = Json::parse(schema).map_err(|e| A1Error::Schema(e.to_string()))?;
        let schema = crate::convert::json_to_schema(&schema_json)?;
        let inner = self.inner.clone();
        let backend = inner.pick_backend().machine;
        let catalog = inner.catalog.clone();
        let (tenant_s, graph_s) = (tenant.to_string(), graph.to_string());
        let name = schema.name().to_string();
        run_a1(&inner.farm, backend, move |tx| {
            let meta = catalog
                .get_graph(tx, &tenant_s, &graph_s)?
                .ok_or_else(|| A1Error::NoSuchGraph(graph_s.clone()))?;
            if meta.state != LifecycleState::Active {
                return Err(A1Error::InvalidState("graph is being deleted".into()));
            }
            let key = crate::catalog::type_key(&tenant_s, &graph_s, &name);
            if catalog.get(tx, &key)?.is_some() {
                return Err(A1Error::AlreadyExists(format!("type {name}")));
            }
            let id = TypeId(catalog.next_id(tx)? as u32);
            let def = EdgeTypeDef {
                id,
                name: name.clone(),
                schema: schema.clone(),
                state: LifecycleState::Active,
            };
            catalog.put_edge_type(tx, &tenant_s, &graph_s, &def)?;
            Ok(())
        })?;
        self.invalidate(tenant, graph);
        Ok(())
    }

    /// Asynchronously delete a graph (§3.3): flips the state to `Deleting`
    /// and enqueues the workflow; storage is reclaimed by task workers.
    pub fn delete_graph(&self, tenant: &str, graph: &str) -> A1Result<()> {
        let inner = self.inner.clone();
        let backend = inner.pick_backend().machine;
        let catalog = inner.catalog.clone();
        let (tenant_s, graph_s) = (tenant.to_string(), graph.to_string());
        let inner2 = inner.clone();
        run_a1(&inner.farm, backend, move |tx| {
            let mut meta = catalog
                .get_graph(tx, &tenant_s, &graph_s)?
                .ok_or_else(|| A1Error::NoSuchGraph(graph_s.clone()))?;
            meta.state = LifecycleState::Deleting;
            catalog.put_graph(tx, &meta)?;
            inner2.enqueue_task(
                tx,
                3,
                &TaskSpec::DeleteGraph {
                    tenant: tenant_s.clone(),
                    graph: graph_s.clone(),
                },
            )?;
            Ok(())
        })?;
        self.invalidate(tenant, graph);
        Ok(())
    }

    /// Graph metadata (state inspection).
    pub fn graph_meta(&self, tenant: &str, graph: &str) -> A1Result<Option<GraphMeta>> {
        let mut tx = self
            .inner
            .farm
            .begin_read_only(self.inner.pick_backend().machine);
        self.inner.catalog.get_graph(&mut tx, tenant, graph)
    }

    /// Names + kinds of a graph's types.
    pub fn list_types(&self, tenant: &str, graph: &str) -> A1Result<Vec<(String, String)>> {
        let mut tx = self
            .inner
            .farm
            .begin_read_only(self.inner.pick_backend().machine);
        Ok(self
            .inner
            .catalog
            .list_types(&mut tx, tenant, graph)?
            .into_iter()
            .map(|(n, k, _)| (n, k))
            .collect())
    }

    fn invalidate(&self, tenant: &str, graph: &str) {
        for b in &self.inner.backends {
            b.proxies.invalidate(tenant, graph);
        }
    }

    // ---------------------------------------------------------- data plane

    /// Create a vertex from a JSON attribute object. Runs as an implicit
    /// transaction (§3).
    pub fn create_vertex(&self, tenant: &str, graph: &str, ty: &str, attrs: &str) -> A1Result<()> {
        let attrs = Json::parse(attrs).map_err(|e| A1Error::Schema(e.to_string()))?;
        let mut txn = self.transaction();
        txn.create_vertex(tenant, graph, ty, &attrs)?;
        txn.commit_with_retry()
    }

    /// Fetch a vertex by primary key; returns its attributes as JSON.
    pub fn get_vertex(
        &self,
        tenant: &str,
        graph: &str,
        ty: &str,
        id: &Json,
    ) -> A1Result<Option<Json>> {
        let inner = &self.inner;
        let backend = inner.pick_backend();
        let proxies = inner.proxies(backend, tenant, graph)?;
        let vp = proxies
            .vertex_type(ty)
            .ok_or_else(|| A1Error::NoSuchType(ty.to_string()))?;
        let pk = pk_value(vp, id)?;
        let mut tx = inner.farm.begin_read_only(backend.machine);
        match inner.store.vertex_by_pk(&mut tx, vp, &pk)? {
            Some(ptr) => Ok(Some(inner.store.vertex_to_json(&mut tx, vp, ptr.addr)?)),
            None => Ok(None),
        }
    }

    /// Replace a vertex's attributes (primary key immutable).
    pub fn update_vertex(&self, tenant: &str, graph: &str, ty: &str, attrs: &str) -> A1Result<()> {
        let attrs = Json::parse(attrs).map_err(|e| A1Error::Schema(e.to_string()))?;
        let mut txn = self.transaction();
        txn.update_vertex(tenant, graph, ty, &attrs)?;
        txn.commit_with_retry()
    }

    /// Delete a vertex and all its edges.
    pub fn delete_vertex(&self, tenant: &str, graph: &str, ty: &str, id: &Json) -> A1Result<()> {
        let mut txn = self.transaction();
        txn.delete_vertex(tenant, graph, ty, id)?;
        txn.commit_with_retry()
    }

    /// Create an edge ⟨src → dst⟩ of the given type with optional data.
    #[allow(clippy::too_many_arguments)]
    pub fn create_edge(
        &self,
        tenant: &str,
        graph: &str,
        src_type: &str,
        src_id: &Json,
        edge_type: &str,
        dst_type: &str,
        dst_id: &Json,
        data: Option<&str>,
    ) -> A1Result<()> {
        let data = match data {
            Some(text) => Some(Json::parse(text).map_err(|e| A1Error::Schema(e.to_string()))?),
            None => None,
        };
        let mut txn = self.transaction();
        txn.create_edge(
            tenant,
            graph,
            src_type,
            src_id,
            edge_type,
            dst_type,
            dst_id,
            data.as_ref(),
        )?;
        txn.commit_with_retry()
    }

    /// Delete one edge.
    #[allow(clippy::too_many_arguments)]
    pub fn delete_edge(
        &self,
        tenant: &str,
        graph: &str,
        src_type: &str,
        src_id: &Json,
        edge_type: &str,
        dst_type: &str,
        dst_id: &Json,
    ) -> A1Result<bool> {
        let mut txn = self.transaction();
        let existed =
            txn.delete_edge(tenant, graph, src_type, src_id, edge_type, dst_type, dst_id)?;
        txn.commit_with_retry()?;
        Ok(existed)
    }

    /// Apply a batch of ingest [`Mutation`]s as **one** FaRM transaction
    /// (group commit), routed through a round-robin backend. Catalog/schema
    /// resolution happens once per type for the whole batch, every applied
    /// mutation lands in the replication log (when `dr_enabled`), and the
    /// batch is replayed whole on optimistic conflict with bounded jittered
    /// backoff. Streaming callers should prefer `a1-ingest`, which adds
    /// partition parallelism, batching and at-least-once dedup on top.
    pub fn apply_batch(&self, muts: &[Mutation]) -> A1Result<()> {
        let machine = self.inner.pick_backend().machine;
        self.apply_batch_at(machine, muts)
    }

    /// [`A1Client::apply_batch`] pinned to a specific coordinator machine
    /// (ingest appliers pin batches to the partition's machine so new
    /// vertices allocate locally, §2.2).
    pub fn apply_batch_at(&self, machine: MachineId, muts: &[Mutation]) -> A1Result<()> {
        // The closure may run several times under the retry loop; the last
        // (successful) attempt's touched set wins, and invalidation happens
        // only after the commit is durable.
        let touched = std::sync::Mutex::new(Vec::new());
        run_a1(&self.inner.farm, machine, |tx| {
            let mut applier = BatchApplier::new(&self.inner, machine);
            for m in muts {
                applier.apply(tx, m)?;
            }
            *touched.lock().unwrap() = applier.take_touched();
            Ok(())
        })?;
        self.inner
            .invalidate_cached_vertices(&touched.into_inner().unwrap());
        Ok(())
    }

    /// Begin an explicit transaction grouping data-plane operations (§3).
    pub fn transaction(&self) -> A1Txn {
        let backend = self.inner.pick_backend().clone();
        let tx = self.inner.farm.begin(backend.machine);
        A1Txn {
            inner: self.inner.clone(),
            backend,
            tx: Some(tx),
            ops: Vec::new(),
            touched: Vec::new(),
        }
    }

    // -------------------------------------------------------------- queries

    /// Run an A1QL query (§3.4). Routed through a frontend to a random
    /// backend, which coordinates distributed execution.
    pub fn query(&self, tenant: &str, graph: &str, a1ql: &str) -> A1Result<QueryOutcome> {
        let backend = self.inner.pick_backend();
        let req = wire::encode_query_request(
            tenant,
            graph,
            a1ql,
            &self.client_id,
            self.inner.cfg.wire_format,
        );
        self.rpc_outcome(backend.machine, req)
    }

    /// Fetch the next page of a paged result (§3.4): the token routes to the
    /// coordinator that cached it.
    pub fn query_next(&self, token: &str) -> A1Result<QueryOutcome> {
        let parts: Vec<&str> = token.split(':').collect();
        if parts.len() != 3 || parts[0] != "c" {
            return Err(A1Error::ContinuationExpired);
        }
        let machine = MachineId(parts[1].parse().map_err(|_| A1Error::ContinuationExpired)?);
        let cid: u64 = parts[2].parse().map_err(|_| A1Error::ContinuationExpired)?;
        let req = wire::encode_page_request(cid, &self.client_id, self.inner.cfg.wire_format);
        self.rpc_outcome(machine, req)
    }

    fn rpc_outcome(&self, machine: MachineId, req: Vec<u8>) -> A1Result<QueryOutcome> {
        let payload = Bytes::from(req);
        // Client → frontend → backend enters through the fabric RPC path so
        // the request queues on the backend's worker pool like production.
        let reply = self
            .inner
            .farm
            .fabric()
            .rpc(machine, machine, payload)
            .map_err(|e| A1Error::Internal(format!("frontend rpc: {e}")))?;
        wire::decode_outcome(&reply)
    }
}

pub(crate) fn pk_value(vp: &VertexProxy, id: &Json) -> A1Result<a1_bond::Value> {
    let field = vp
        .def
        .schema
        .field(vp.def.primary_key)
        .ok_or_else(|| A1Error::Internal("pk field missing".into()))?;
    json_to_value(id, &field.ty)
}

// -------------------------------------------------------------- transaction

/// Replayable description of one data-plane operation (so optimistic
/// conflicts can be retried whole-transaction, Fig. 3).
#[derive(Clone)]
enum TxOp {
    CreateVertex {
        tenant: String,
        graph: String,
        ty: String,
        attrs: Json,
    },
    UpdateVertex {
        tenant: String,
        graph: String,
        ty: String,
        attrs: Json,
    },
    DeleteVertex {
        tenant: String,
        graph: String,
        ty: String,
        id: Json,
    },
    CreateEdge {
        tenant: String,
        graph: String,
        src_type: String,
        src_id: Json,
        edge_type: String,
        dst_type: String,
        dst_id: Json,
        data: Option<Json>,
    },
    DeleteEdge {
        tenant: String,
        graph: String,
        src_type: String,
        src_id: Json,
        edge_type: String,
        dst_type: String,
        dst_id: Json,
    },
}

/// An explicit client transaction grouping data-plane operations (§3).
pub struct A1Txn {
    inner: Arc<A1Inner>,
    backend: Arc<Backend>,
    tx: Option<Txn>,
    ops: Vec<TxOp>,
    /// Vertex addresses mutated by buffered ops — drained into the read
    /// cache's invalidation path after a successful commit, and rebuilt from
    /// scratch on every conflict replay (addresses can change across
    /// snapshots, e.g. a delete+recreate).
    touched: Vec<Addr>,
}

impl A1Txn {
    fn tx(&mut self) -> &mut Txn {
        self.tx.as_mut().expect("transaction already finished")
    }

    pub fn create_vertex(
        &mut self,
        tenant: &str,
        graph: &str,
        ty: &str,
        attrs: &Json,
    ) -> A1Result<()> {
        let op = TxOp::CreateVertex {
            tenant: tenant.into(),
            graph: graph.into(),
            ty: ty.into(),
            attrs: attrs.clone(),
        };
        self.apply(&op)?;
        self.ops.push(op);
        Ok(())
    }

    pub fn update_vertex(
        &mut self,
        tenant: &str,
        graph: &str,
        ty: &str,
        attrs: &Json,
    ) -> A1Result<()> {
        let op = TxOp::UpdateVertex {
            tenant: tenant.into(),
            graph: graph.into(),
            ty: ty.into(),
            attrs: attrs.clone(),
        };
        self.apply(&op)?;
        self.ops.push(op);
        Ok(())
    }

    pub fn delete_vertex(
        &mut self,
        tenant: &str,
        graph: &str,
        ty: &str,
        id: &Json,
    ) -> A1Result<()> {
        let op = TxOp::DeleteVertex {
            tenant: tenant.into(),
            graph: graph.into(),
            ty: ty.into(),
            id: id.clone(),
        };
        self.apply(&op)?;
        self.ops.push(op);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    pub fn create_edge(
        &mut self,
        tenant: &str,
        graph: &str,
        src_type: &str,
        src_id: &Json,
        edge_type: &str,
        dst_type: &str,
        dst_id: &Json,
        data: Option<&Json>,
    ) -> A1Result<()> {
        let op = TxOp::CreateEdge {
            tenant: tenant.into(),
            graph: graph.into(),
            src_type: src_type.into(),
            src_id: src_id.clone(),
            edge_type: edge_type.into(),
            dst_type: dst_type.into(),
            dst_id: dst_id.clone(),
            data: data.cloned(),
        };
        self.apply(&op)?;
        self.ops.push(op);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    pub fn delete_edge(
        &mut self,
        tenant: &str,
        graph: &str,
        src_type: &str,
        src_id: &Json,
        edge_type: &str,
        dst_type: &str,
        dst_id: &Json,
    ) -> A1Result<bool> {
        let op = TxOp::DeleteEdge {
            tenant: tenant.into(),
            graph: graph.into(),
            src_type: src_type.into(),
            src_id: src_id.clone(),
            edge_type: edge_type.into(),
            dst_type: dst_type.into(),
            dst_id: dst_id.clone(),
        };
        let existed = self.apply(&op)?;
        self.ops.push(op);
        Ok(existed)
    }

    /// Read a vertex inside the transaction (read-your-writes).
    pub fn get_vertex(
        &mut self,
        tenant: &str,
        graph: &str,
        ty: &str,
        id: &Json,
    ) -> A1Result<Option<Json>> {
        let inner = self.inner.clone();
        let backend = self.backend.clone();
        let proxies = inner.proxies(&backend, tenant, graph)?;
        let vp = proxies
            .vertex_type(ty)
            .ok_or_else(|| A1Error::NoSuchType(ty.to_string()))?
            .clone();
        let pk = pk_value(&vp, id)?;
        let store = inner.store.edge_cfg;
        let _ = store;
        let tx = self.tx();
        match inner.store.vertex_by_pk(tx, &vp, &pk)? {
            Some(ptr) => Ok(Some(inner.store.vertex_to_json(tx, &vp, ptr.addr)?)),
            None => Ok(None),
        }
    }

    fn apply(&mut self, op: &TxOp) -> A1Result<bool> {
        let inner = self.inner.clone();
        let backend = self.backend.clone();
        match op {
            TxOp::CreateVertex {
                tenant,
                graph,
                ty,
                attrs,
            } => {
                let proxies = inner.proxies(&backend, tenant, graph)?;
                check_active(&proxies)?;
                let vp = proxies
                    .vertex_type(ty)
                    .ok_or_else(|| A1Error::NoSuchType(ty.clone()))?
                    .clone();
                let rec = record_from_json(&vp.def.schema, attrs)?;
                let tx = self.tx();
                inner.store.create_vertex(tx, &vp, rec.clone())?;
                if let Some(log) = &inner.replog {
                    let pk = record_to_json(&vp.def.schema, &rec)
                        .get(&pk_name(&vp))
                        .cloned()
                        .unwrap_or(Json::Null);
                    log.append(tx, &log_entry::vertex_upsert(tenant, graph, ty, &pk, attrs))?;
                }
                Ok(true)
            }
            TxOp::UpdateVertex {
                tenant,
                graph,
                ty,
                attrs,
            } => {
                let proxies = inner.proxies(&backend, tenant, graph)?;
                check_active(&proxies)?;
                let vp = proxies
                    .vertex_type(ty)
                    .ok_or_else(|| A1Error::NoSuchType(ty.clone()))?
                    .clone();
                let rec = record_from_json(&vp.def.schema, attrs)?;
                let pk = rec
                    .get(vp.def.primary_key)
                    .cloned()
                    .ok_or_else(|| A1Error::Schema("primary key missing".into()))?;
                let tx = self.tx();
                let ptr = inner
                    .store
                    .vertex_by_pk(tx, &vp, &pk)?
                    .ok_or_else(|| A1Error::NoSuchVertex(format!("{ty}:{pk:?}")))?;
                inner.store.update_vertex(tx, &vp, ptr.addr, rec)?;
                if let Some(log) = &inner.replog {
                    let pkj = crate::convert::value_to_json(&pk);
                    log.append(
                        tx,
                        &log_entry::vertex_upsert(tenant, graph, ty, &pkj, attrs),
                    )?;
                }
                self.touched.push(ptr.addr);
                Ok(true)
            }
            TxOp::DeleteVertex {
                tenant,
                graph,
                ty,
                id,
            } => {
                let proxies = inner.proxies(&backend, tenant, graph)?;
                let vp = proxies
                    .vertex_type(ty)
                    .ok_or_else(|| A1Error::NoSuchType(ty.clone()))?
                    .clone();
                let pk = pk_value(&vp, id)?;
                let tx = self.tx();
                let ptr = inner
                    .store
                    .vertex_by_pk(tx, &vp, &pk)?
                    .ok_or_else(|| A1Error::NoSuchVertex(format!("{ty}:{id}")))?;
                // DR: log deletes for the vertex and all its edges (§4).
                if let Some(log) = &inner.replog {
                    let edge_logs =
                        collect_edge_deletes(&inner, tx, &proxies, tenant, graph, ptr.addr)?;
                    for e in edge_logs {
                        log.append(tx, &e)?;
                    }
                    log.append(tx, &log_entry::vertex_delete(tenant, graph, ty, id))?;
                }
                inner
                    .store
                    .delete_vertex(tx, &proxies.graph, &vp, ptr.addr)?;
                self.touched.push(ptr.addr);
                Ok(true)
            }
            TxOp::CreateEdge {
                tenant,
                graph,
                src_type,
                src_id,
                edge_type,
                dst_type,
                dst_id,
                data,
            } => {
                let proxies = inner.proxies(&backend, tenant, graph)?;
                check_active(&proxies)?;
                let (src, dst, et) = resolve_edge(
                    &inner,
                    self.tx.as_mut().unwrap(),
                    &proxies,
                    src_type,
                    src_id,
                    edge_type,
                    dst_type,
                    dst_id,
                )?;
                let ep = proxies.edge_type_by_id(et).expect("resolved above").clone();
                let rec = match data {
                    Some(d) => Some(record_from_json(&ep.def.schema, d)?),
                    None => None,
                };
                let tx = self.tx();
                inner
                    .store
                    .create_edge(tx, &proxies.graph, et, src, dst, rec)?;
                if let Some(log) = &inner.replog {
                    log.append(
                        tx,
                        &log_entry::edge_upsert(
                            tenant,
                            graph,
                            src_type,
                            src_id,
                            edge_type,
                            dst_type,
                            dst_id,
                            data.as_ref().unwrap_or(&Json::Null),
                        ),
                    )?;
                }
                self.touched.push(src);
                self.touched.push(dst);
                Ok(true)
            }
            TxOp::DeleteEdge {
                tenant,
                graph,
                src_type,
                src_id,
                edge_type,
                dst_type,
                dst_id,
            } => {
                let proxies = inner.proxies(&backend, tenant, graph)?;
                let (src, dst, et) = resolve_edge(
                    &inner,
                    self.tx.as_mut().unwrap(),
                    &proxies,
                    src_type,
                    src_id,
                    edge_type,
                    dst_type,
                    dst_id,
                )?;
                let tx = self.tx();
                let existed = inner.store.delete_edge(tx, &proxies.graph, et, src, dst)?;
                if existed {
                    if let Some(log) = &inner.replog {
                        log.append(
                            tx,
                            &log_entry::edge_delete(
                                tenant, graph, src_type, src_id, edge_type, dst_type, dst_id,
                            ),
                        )?;
                    }
                    self.touched.push(src);
                    self.touched.push(dst);
                }
                Ok(existed)
            }
        }
    }

    /// Commit. On optimistic conflict the error is retryable; use
    /// [`A1Txn::commit_with_retry`] for the canonical loop.
    pub fn commit(mut self) -> A1Result<()> {
        let tx = self.tx.take().expect("transaction already finished");
        tx.commit()?;
        self.inner.invalidate_cached_vertices(&self.touched);
        Ok(())
    }

    /// Commit with the Fig. 3 retry loop: on conflict, replay every buffered
    /// operation in a fresh transaction. Retries back off with bounded
    /// jittered sleeps so concurrent writers hammering a hot key (e.g.
    /// parallel ingest appliers adding edges at one hub vertex)
    /// desynchronize instead of livelocking.
    pub fn commit_with_retry(mut self) -> A1Result<()> {
        let max = self.inner.farm.config().max_txn_retries;
        let mut tx = self.tx.take().expect("transaction already finished");
        for attempt in 0..=max {
            match tx.commit() {
                Ok(_) => {
                    self.inner.invalidate_cached_vertices(&self.touched);
                    return Ok(());
                }
                Err(e) if e.is_retryable() && attempt < max => {
                    conflict_backoff(&self.inner.farm, attempt, 300);
                    // Replay the ops against a fresh snapshot; the touched
                    // set is rebuilt by the replay (addresses may differ).
                    self.tx = Some(self.inner.farm.begin(self.backend.machine));
                    self.touched.clear();
                    let ops = self.ops.clone();
                    let mut failed = false;
                    for op in &ops {
                        match self.apply(op) {
                            Ok(_) => {}
                            Err(err) if err.is_retryable() => {
                                failed = true;
                                break;
                            }
                            Err(err) => return Err(err),
                        }
                    }
                    let fresh = self.tx.take().expect("set above");
                    if failed {
                        fresh.abort();
                        self.tx = Some(self.inner.farm.begin(self.backend.machine));
                        tx = self.tx.take().unwrap();
                        // loop will retry commit of an empty txn → replay again
                        continue;
                    }
                    tx = fresh;
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(A1Error::Storage(a1_farm::FarmError::Conflict))
    }

    pub fn abort(mut self) {
        if let Some(tx) = self.tx.take() {
            tx.abort();
        }
    }
}

fn pk_name(vp: &VertexProxy) -> String {
    vp.def
        .schema
        .field(vp.def.primary_key)
        .map(|f| f.name.clone())
        .unwrap_or_default()
}

pub(crate) fn check_active(proxies: &GraphProxies) -> A1Result<()> {
    if proxies.graph.meta.state != LifecycleState::Active {
        return Err(A1Error::InvalidState("graph is being deleted".into()));
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn resolve_edge(
    inner: &A1Inner,
    tx: &mut Txn,
    proxies: &GraphProxies,
    src_type: &str,
    src_id: &Json,
    edge_type: &str,
    dst_type: &str,
    dst_id: &Json,
) -> A1Result<(Addr, Addr, TypeId)> {
    let sp = proxies
        .vertex_type(src_type)
        .ok_or_else(|| A1Error::NoSuchType(src_type.to_string()))?;
    let dp = proxies
        .vertex_type(dst_type)
        .ok_or_else(|| A1Error::NoSuchType(dst_type.to_string()))?;
    let et = proxies
        .edge_type(edge_type)
        .ok_or_else(|| A1Error::NoSuchType(edge_type.to_string()))?
        .def
        .id;
    let src = inner
        .store
        .vertex_by_pk(tx, sp, &pk_value(sp, src_id)?)?
        .ok_or_else(|| A1Error::NoSuchVertex(format!("{src_type}:{src_id}")))?;
    let dst = inner
        .store
        .vertex_by_pk(tx, dp, &pk_value(dp, dst_id)?)?
        .ok_or_else(|| A1Error::NoSuchVertex(format!("{dst_type}:{dst_id}")))?;
    Ok((src.addr, dst.addr, et))
}

/// For DR: enumerate all edges of a vertex and produce delete log entries
/// keyed by primary keys (recovery cannot use addresses).
pub(crate) fn collect_edge_deletes(
    inner: &A1Inner,
    tx: &mut Txn,
    proxies: &GraphProxies,
    tenant: &str,
    graph: &str,
    addr: Addr,
) -> A1Result<Vec<Json>> {
    let (_, hdr) = crate::edges::read_header(tx, addr)?;
    let self_pk = vertex_pk_json(inner, tx, proxies, addr)?;
    let mut out = Vec::new();
    for dir in [Dir::Out, Dir::In] {
        let hes = crate::edges::enumerate(
            tx,
            &proxies.graph.edge_tree,
            addr,
            &hdr,
            dir,
            None,
            usize::MAX,
        )?;
        for he in hes {
            let other_pk = vertex_pk_json(inner, tx, proxies, he.other)?;
            let Some((self_ty, self_pk)) = &self_pk else {
                continue;
            };
            let Some((other_ty, other_pk)) = &other_pk else {
                continue;
            };
            let Some(et) = proxies.edge_type_by_id(he.edge_type) else {
                continue;
            };
            let entry = match dir {
                Dir::Out => log_entry::edge_delete(
                    tenant,
                    graph,
                    self_ty,
                    self_pk,
                    &et.def.name,
                    other_ty,
                    other_pk,
                ),
                Dir::In => log_entry::edge_delete(
                    tenant,
                    graph,
                    other_ty,
                    other_pk,
                    &et.def.name,
                    self_ty,
                    self_pk,
                ),
            };
            out.push(entry);
        }
    }
    Ok(out)
}

fn vertex_pk_json(
    inner: &A1Inner,
    tx: &mut Txn,
    proxies: &GraphProxies,
    addr: Addr,
) -> A1Result<Option<(String, Json)>> {
    let ptr = vertex_ptr(addr);
    let Ok(buf) = tx.read(ptr) else {
        return Ok(None);
    };
    let hdr = crate::vertex::VertexHeader::decode(buf.data())?;
    let Some(vp) = proxies.vertex_type_by_id(hdr.type_id) else {
        return Ok(None);
    };
    let rec = inner.store.read_vertex_data(tx, &hdr)?.unwrap_or_default();
    let pk = rec
        .get(vp.def.primary_key)
        .map(crate::convert::value_to_json)
        .unwrap_or(Json::Null);
    Ok(Some((vp.def.name.clone(), pk)))
}
