//! A1-level errors.

use a1_farm::FarmError;

pub type A1Result<T> = Result<T, A1Error>;

/// Errors surfaced by the A1 API. Storage-level conflicts are retried
/// internally; what escapes here is semantic.
#[derive(Debug, Clone, PartialEq)]
pub enum A1Error {
    /// Underlying storage error (including unresolved conflicts).
    Storage(FarmError),
    /// Schema validation failed.
    Schema(String),
    NoSuchTenant(String),
    NoSuchGraph(String),
    NoSuchType(String),
    NoSuchVertex(String),
    AlreadyExists(String),
    /// ⟨src, type, dst⟩ already has an edge (§3: "given two vertexes, there
    /// can only be a single edge of a given type").
    EdgeExists(String),
    /// A1QL parse or semantic error.
    Query(String),
    /// The query's working set outgrew the coordinator's budget — fast-fail
    /// (§3.4).
    WorkingSetExceeded {
        limit: usize,
    },
    /// Continuation token expired or unknown (client must restart, §3.4).
    ContinuationExpired,
    /// The machine's front door rejected the request: too many queries in
    /// flight. The client should back off for at least `retry_after_ms`.
    Overloaded {
        retry_after_ms: u64,
    },
    /// Operation not valid in the object's current lifecycle state.
    InvalidState(String),
    Internal(String),
}

impl std::fmt::Display for A1Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            A1Error::Storage(e) => write!(f, "storage: {e}"),
            A1Error::Schema(m) => write!(f, "schema violation: {m}"),
            A1Error::NoSuchTenant(t) => write!(f, "no such tenant '{t}'"),
            A1Error::NoSuchGraph(g) => write!(f, "no such graph '{g}'"),
            A1Error::NoSuchType(t) => write!(f, "no such type '{t}'"),
            A1Error::NoSuchVertex(v) => write!(f, "no such vertex '{v}'"),
            A1Error::AlreadyExists(x) => write!(f, "already exists: {x}"),
            A1Error::EdgeExists(e) => write!(f, "edge already exists: {e}"),
            A1Error::Query(m) => write!(f, "query error: {m}"),
            A1Error::WorkingSetExceeded { limit } => {
                write!(f, "query working set exceeded {limit} vertices (fast-fail)")
            }
            A1Error::ContinuationExpired => write!(f, "continuation token expired"),
            A1Error::Overloaded { retry_after_ms } => {
                write!(f, "overloaded: retry after {retry_after_ms} ms")
            }
            A1Error::InvalidState(m) => write!(f, "invalid state: {m}"),
            A1Error::Internal(m) => write!(f, "internal: {m}"),
        }
    }
}

impl std::error::Error for A1Error {}

impl From<FarmError> for A1Error {
    fn from(e: FarmError) -> A1Error {
        A1Error::Storage(e)
    }
}

impl From<a1_bond::SchemaError> for A1Error {
    fn from(e: a1_bond::SchemaError) -> A1Error {
        A1Error::Schema(e.to_string())
    }
}

impl A1Error {
    /// Whether the containing transaction should be retried.
    pub fn is_retryable(&self) -> bool {
        matches!(self, A1Error::Storage(e) if e.is_retryable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_retry() {
        let e: A1Error = FarmError::Conflict.into();
        assert!(e.is_retryable());
        let e: A1Error = FarmError::OutOfMemory.into();
        assert!(!e.is_retryable());
        assert!(!A1Error::Query("x".into()).is_retryable());
        assert!(A1Error::WorkingSetExceeded { limit: 10 }
            .to_string()
            .contains("fast-fail"));
        let e = A1Error::Overloaded { retry_after_ms: 10 };
        assert!(!e.is_retryable()); // retry is the *client's* job, after backoff
        assert!(e.to_string().contains("retry after 10 ms"));
    }
}
