//! Distributed query execution (paper §3.4, Fig. 9).
//!
//! The coordinator resolves the start vertex from the primary index, then
//! per hop: maps frontier pointers to their primary hosts (a local metadata
//! operation), ships batched operators to those machines over RPC, and
//! aggregates/dedups the returned pointers for the next hop. Workers join
//! the coordinator's snapshot timestamp so the whole distributed read is one
//! consistent snapshot. Oversized working sets fast-fail; oversized results
//! page out through continuation tokens.
//!
//! Execution is parallel at two nested levels: a hop's work ops dispatch
//! concurrently across their target machines ([`ExecConfig::fanout_parallelism`],
//! the Fig. 9 fan-out), and inside each machine the batch splits into
//! morsels on that machine's own worker pool
//! ([`ExecConfig::intra_parallelism`]) — the level that saves a hub-skewed
//! frontier, where one machine owns most of the hop and fan-out collapses
//! to a single ship. Both levels merge deterministically, so every
//! configuration returns byte-identical results.

use crate::cache::{CachedVertex, VertexCache};
use crate::catalog::GraphProxies;
use crate::convert::json_to_value;
use crate::edges::{self, Dir};
use crate::error::{A1Error, A1Result};
use crate::model::TypeId;
use crate::query::plan::{AttrPredicate, CmpOp, PlanDir, Query, Select, VertexStep};
use crate::store::GraphStore;
use a1_bond::{Schema, Value};
use a1_farm::{Addr, FarmCluster, JobClass, MachineId, ScopedJob, Txn};
use a1_json::Json;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// When does a per-machine batch justify shipping an RPC work op instead of
/// being read remotely from the coordinator (§3.4)?
///
/// The choice only moves *where* the snapshot reads happen — both paths
/// evaluate identical operators at the same snapshot timestamp, so every
/// policy returns byte-identical answers; only latency and verb counts
/// differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipPolicy {
    /// Ship batches of at least `n` vertices (the legacy static threshold;
    /// `Fixed(usize::MAX)` disables shipping entirely).
    Fixed(usize),
    /// Compare a modeled fetch cost (doorbell-batched one-sided reads from
    /// the coordinator) against a modeled ship cost (RPC round trip +
    /// machine-local reads at the owner) per batch, using only
    /// deterministic inputs: the fabric's [`LatencyModel`] constants, the
    /// batch size, the step's shape (edge enumerations are pointer-chasing
    /// and cannot be doorbell-batched), and a static record-width estimate
    /// derived from the catalog's vertex schemas. No runtime counters feed
    /// the decision, so a simulation replay makes the identical choice.
    ///
    /// [`LatencyModel`]: a1_farm::LatencyModel
    Cost,
}

/// Fixed remote-side dispatch overhead a shipped work op pays beyond the
/// wire RPC cost (deserialization, pool queueing). Seeded from the bench
/// cost model's calibration (`a1-bench`'s `costmodel.rs`: ~1.5 µs/vertex
/// CPU, 15 µs one-way RPC on the paper's hardware); per-vertex operator CPU
/// is spent wherever evaluation runs and cancels out of the comparison.
const SHIP_DISPATCH_NS: u64 = 3_000;

/// Wire-size guesses for the ship cost model: per-address request bytes,
/// per-row reply bytes, request framing, and the header-object bytes a
/// fetch transfers per vertex (FaRM object header + vertex header).
const SHIP_REQ_BYTES_PER_ADDR: usize = 16;
const SHIP_REPLY_BYTES_PER_ROW: usize = 32;
const SHIP_REQ_BASE_BYTES: usize = 40;
const FETCH_HDR_BYTES: usize = 96;

impl ShipPolicy {
    /// Decide for a batch of `n` vertices against `step` on a remote host
    /// (`same_rack` relative to the coordinator). `est_record_bytes` is the
    /// catalog-derived record-width estimate.
    fn should_ship(
        &self,
        n: usize,
        lat: &a1_farm::LatencyModel,
        same_rack: bool,
        step: &CompiledStep,
        emit_rows: bool,
        est_record_bytes: usize,
    ) -> bool {
        match *self {
            ShipPolicy::Fixed(t) => n >= t,
            ShipPolicy::Cost => {
                let need_rec = !step.preds.is_empty() || emit_rows;
                // Edge enumerations (matches + traverse) descend B-tree/list
                // blocks — pointer chasing the fetch path pays as ~2 scalar
                // round trips per vertex per enumeration, while the ship
                // path serves them from machine-local memory.
                let enum_ops = step.matches.len() + step.traverse.is_some() as usize;
                let fetch = lat.one_sided_batch_ns(false, same_rack, n, n * FETCH_HDR_BYTES)
                    + if need_rec {
                        lat.one_sided_batch_ns(false, same_rack, n, n * est_record_bytes)
                    } else {
                        0
                    }
                    + (n * enum_ops) as u64 * 2 * lat.one_sided_ns(false, same_rack, 256);
                let local_per_vertex =
                    (1 + need_rec as usize + 2 * enum_ops) as u64 * lat.local_read_ns;
                let ship = lat.rpc_ns(same_rack, SHIP_REQ_BASE_BYTES + SHIP_REQ_BYTES_PER_ADDR * n)
                    + lat.rpc_ns(same_rack, SHIP_REPLY_BYTES_PER_ROW * n)
                    + SHIP_DISPATCH_NS
                    + n as u64 * local_per_vertex;
                ship < fetch
            }
        }
    }
}

/// Static record-width estimate from the catalog's vertex schemas (mean
/// field count, ~16 B per encoded field plus framing) — a pure function of
/// the catalog so the [`ShipPolicy::Cost`] decision is replay-deterministic.
fn est_record_bytes(proxies: &GraphProxies) -> usize {
    let fields: usize = proxies
        .vertex_types
        .iter()
        .map(|vp| vp.def.schema.fields().len())
        .sum();
    let types = proxies.vertex_types.len();
    if types == 0 {
        return 64;
    }
    32 + 16 * (fields / types)
}

/// Execution knobs (paper defaults in parentheses).
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// When to ship a per-machine batch as an RPC work op instead of
    /// fetching it with one-sided reads from the coordinator (§3.4).
    pub ship_policy: ShipPolicy,
    /// Coalesce a morsel's header reads, cache-revalidation probes, and
    /// record reads into doorbell-batched one-sided posts (one per target
    /// machine per round) instead of one verb per object. Answers are
    /// byte-identical either way; `false` keeps the scalar read-per-object
    /// loop for A/B comparison.
    pub batched_fetch: bool,
    /// Fast-fail bound on the frontier size (§3.4).
    pub max_working_set: usize,
    /// Rows per page before continuation tokens kick in (§3.4).
    pub page_size: usize,
    /// How many of a hop's work ops may be in flight concurrently. The paper
    /// ships a hop's operators to all owning machines at once (Fig. 9), so
    /// `0` means *auto*: as many slots as the hop has target machines (on a
    /// LIMIT-sliced final hop a wave may spend several of those slots on
    /// slices of the same machine's batch). `1` is the legacy serial
    /// coordinator, kept for A/B comparison; any other value caps the
    /// fan-out window.
    pub fanout_parallelism: usize,
    /// How many morsels a machine splits one work op's vertex batch into for
    /// execution on its own worker pool — the *intra*-machine level below
    /// the cross-machine fan-out above. `0` means *auto*: one morsel per
    /// simulated core (the machine's base worker-thread count). `1` is the
    /// legacy serial per-machine loop, kept for A/B comparison; any other
    /// value caps the number of concurrently executing morsels.
    pub intra_parallelism: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            ship_policy: ShipPolicy::Fixed(4),
            batched_fetch: true,
            max_working_set: 1_000_000,
            page_size: 1_000,
            fanout_parallelism: 0,
            intra_parallelism: 0,
        }
    }
}

/// Per-query counters — these regenerate the paper's §6 locality statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryMetrics {
    pub snapshot_ts: u64,
    pub hops: u32,
    pub vertices_read: u64,
    pub edges_visited: u64,
    /// FaRM objects read at a machine that is their primary host.
    pub local_reads: u64,
    /// FaRM objects read across the (simulated) wire.
    pub remote_reads: u64,
    pub rpcs: u64,
    /// Bytes of RPC request payload this query put on the wire (work-op
    /// ships; excludes the client↔coordinator hop).
    pub rpc_req_bytes: u64,
    /// Bytes of RPC reply payload shipped back to the coordinator.
    pub rpc_reply_bytes: u64,
    /// Frontier reads served from the machine-local hot-vertex cache after
    /// version revalidation (a header-sized probe instead of a payload
    /// transfer).
    pub cache_hits: u64,
    /// Frontier reads that consulted the cache and fell through to FaRM.
    pub cache_misses: u64,
    /// One-sided fetch posts (doorbell rings) this query's work ops issued:
    /// a scalar read or probe counts 1, a doorbell-coalesced batch counts 1
    /// per target machine regardless of how many objects it carried. The
    /// verb-reduction ratio of batching is `fetch_verbs(scalar)` /
    /// `fetch_verbs(batched)` for the same query.
    pub fetch_verbs: u64,
}

impl QueryMetrics {
    pub fn objects_read(&self) -> u64 {
        self.local_reads + self.remote_reads
    }

    /// Hit rate of the hot-vertex cache for this query; `0.0` when the
    /// cache was never consulted.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// The §6 statistic: ≥95% with query shipping.
    pub fn local_read_fraction(&self) -> f64 {
        let total = self.objects_read();
        if total == 0 {
            return 1.0;
        }
        self.local_reads as f64 / total as f64
    }

    fn absorb(&mut self, other: &QueryMetrics) {
        self.vertices_read += other.vertices_read;
        self.edges_visited += other.edges_visited;
        self.local_reads += other.local_reads;
        self.remote_reads += other.remote_reads;
        self.rpcs += other.rpcs;
        self.rpc_req_bytes += other.rpc_req_bytes;
        self.rpc_reply_bytes += other.rpc_reply_bytes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.fetch_verbs += other.fetch_verbs;
    }
}

/// Per-hop statistics (coordination phases, Fig. 9) — consumed by the
/// trace-driven throughput simulator in `a1-bench`. Not serialized over the
/// client wire; available when calling the coordinator directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HopStats {
    /// Frontier size entering this hop.
    pub frontier: u64,
    /// Distinct machines the frontier mapped to.
    pub machines: u64,
    pub rpcs: u64,
    pub vertices_read: u64,
    pub edges_visited: u64,
    pub local_reads: u64,
    pub remote_reads: u64,
    /// Vertices (or rows) returned to the coordinator.
    pub returned: u64,
    /// Wall-clock nanoseconds from partitioning the frontier to merging the
    /// last reply (the hop's critical path, including queueing).
    pub wall_ns: u64,
    /// Peak number of shipped work ops simultaneously in flight — 1 under
    /// the serial coordinator, up to `machines` under parallel fan-out.
    pub max_concurrent_ships: u64,
    /// Total morsels this hop's work ops were split into across all target
    /// machines (equals the work-op count under the serial per-machine
    /// loop).
    pub morsels: u64,
    /// Peak number of morsels simultaneously executing inside any single
    /// work op — 1 under the serial per-machine loop, up to
    /// [`ExecConfig::intra_parallelism`] under morsel execution.
    pub max_concurrent_morsels: u64,
    /// RPC request bytes this hop's ships put on the wire.
    pub rpc_req_bytes: u64,
    /// RPC reply bytes shipped back to the coordinator this hop.
    pub rpc_reply_bytes: u64,
    /// Hot-vertex cache hits across this hop's work ops.
    pub cache_hits: u64,
    /// Hot-vertex cache misses across this hop's work ops.
    pub cache_misses: u64,
    /// One-sided fetch posts this hop's work ops issued (see
    /// [`QueryMetrics::fetch_verbs`]).
    pub fetch_verbs: u64,
}

/// A query's outcome: rows (or a count) plus metrics and an optional
/// continuation token.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub rows: Vec<Json>,
    pub count: Option<u64>,
    pub metrics: QueryMetrics,
    pub continuation: Option<String>,
    /// Per-hop breakdown (empty when the outcome crossed the client wire).
    pub per_hop: Vec<HopStats>,
}

// ------------------------------------------------------------------ compile

/// A compiled (name-resolved) step.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledStep {
    pub type_filter: Option<TypeId>,
    pub id_filter: Option<Addr>,
    pub preds: Vec<AttrPredicate>,
    pub matches: Vec<CompiledMatch>,
    pub traverse: Option<CompiledTraverse>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct CompiledMatch {
    pub dir: Dir,
    pub edge_type: TypeId,
    pub target: Option<Addr>,
    pub target_type: Option<TypeId>,
    pub preds: Vec<AttrPredicate>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTraverse {
    pub dir: Dir,
    pub edge_type: TypeId,
    pub edge_preds: Vec<AttrPredicate>,
}

/// A fully compiled query.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    pub steps: Vec<CompiledStep>,
    pub select: Select,
    pub limit: Option<usize>,
}

fn dir_of(d: PlanDir) -> Dir {
    match d {
        PlanDir::Out => Dir::Out,
        PlanDir::In => Dir::In,
    }
}

/// Resolve a primary key string against the graph's vertex types (optionally
/// constrained to one type), returning the vertex address.
fn resolve_id(
    store: &GraphStore,
    tx: &mut Txn,
    proxies: &GraphProxies,
    id: &str,
    ty: Option<&str>,
) -> A1Result<Option<Addr>> {
    for vp in &proxies.vertex_types {
        if let Some(t) = ty {
            if vp.def.name != t {
                continue;
            }
        }
        let pk_field = vp
            .def
            .schema
            .field(vp.def.primary_key)
            .ok_or_else(|| A1Error::Internal("pk field missing from schema".into()))?;
        let Ok(pk_value) = json_to_value(&Json::Str(id.to_string()), &pk_field.ty) else {
            continue;
        };
        if let Some(ptr) = store.vertex_by_pk(tx, vp, &pk_value)? {
            return Ok(Some(ptr.addr));
        }
    }
    Ok(None)
}

/// Compile a parsed query: resolve type names to ids and literal `id`
/// filters/match targets to vertex addresses.
pub fn compile(
    store: &GraphStore,
    tx: &mut Txn,
    proxies: &GraphProxies,
    q: &Query,
) -> A1Result<(CompiledQuery, Vec<Addr>)> {
    let mut steps = Vec::new();
    let mut cur: &VertexStep = &q.root;

    // Start resolution (paper: "we use the id field to look up the director
    // from the primary index").
    let frontier: Vec<Addr> = if let Some(id) = &cur.id {
        match resolve_id(store, tx, proxies, id, cur.vertex_type.as_deref())? {
            Some(addr) => vec![addr],
            None => Vec::new(),
        }
    } else if let (Some(tname), [pred]) = (&cur.vertex_type, &cur.predicates[..]) {
        // Secondary-index start: `{"_type": t, "attr": value}`.
        let vp = proxies
            .vertex_type(tname)
            .ok_or_else(|| A1Error::NoSuchType(tname.clone()))?;
        let field = vp
            .def
            .schema
            .field_by_name(&pred.attr)
            .ok_or_else(|| A1Error::Query(format!("unknown attribute '{}'", pred.attr)))?;
        if pred.op != CmpOp::Eq || pred.map_key.is_some() {
            return Err(A1Error::Query(
                "index start requires an equality predicate".into(),
            ));
        }
        let value = json_to_value(&pred.value, &field.ty)?;
        // LIMIT pushdown: a single filtered step whose only predicate the
        // index lookup consumes emits exactly one row per index hit, so the
        // scan itself can stop at `_limit` instead of materializing the
        // whole posting list. Counts and traversals still need every hit.
        let fetch = match q.final_limit() {
            Some(limit)
                if cur.traverse.is_none()
                    && cur.matches.is_empty()
                    && q.final_select() != Select::Count =>
            {
                limit
            }
            _ => usize::MAX,
        };
        store
            .vertices_by_secondary(tx, vp, field.id, &value, fetch)?
            .into_iter()
            .map(|p| p.addr)
            .collect()
    } else {
        return Err(A1Error::Query(
            "query needs an 'id' or an indexed predicate".into(),
        ));
    };

    loop {
        let type_filter = match &cur.vertex_type {
            Some(name) => Some(
                proxies
                    .vertex_type(name)
                    .ok_or_else(|| A1Error::NoSuchType(name.clone()))?
                    .def
                    .id,
            ),
            None => None,
        };
        // Nested `id` filters resolve to address identity checks.
        let id_filter = match (&cur.id, steps.is_empty()) {
            (Some(id), false) => resolve_id(store, tx, proxies, id, cur.vertex_type.as_deref())?,
            _ => None,
        };
        let matches = cur
            .matches
            .iter()
            .map(|m| {
                let edge_type = proxies
                    .edge_type(&m.edge_type)
                    .ok_or_else(|| A1Error::NoSuchType(m.edge_type.clone()))?
                    .def
                    .id;
                let target = match &m.target_id {
                    Some(id) => resolve_id(store, tx, proxies, id, m.target_type.as_deref())?,
                    None => None,
                };
                let target_type = match &m.target_type {
                    Some(name) => Some(
                        proxies
                            .vertex_type(name)
                            .ok_or_else(|| A1Error::NoSuchType(name.clone()))?
                            .def
                            .id,
                    ),
                    None => None,
                };
                // A match with an unresolvable literal id can never succeed.
                if m.target_id.is_some() && target.is_none() {
                    return Ok(CompiledMatch {
                        dir: dir_of(m.dir),
                        edge_type,
                        target: Some(Addr::NULL),
                        target_type,
                        preds: m.target_predicates.clone(),
                    });
                }
                Ok(CompiledMatch {
                    dir: dir_of(m.dir),
                    edge_type,
                    target,
                    target_type,
                    preds: m.target_predicates.clone(),
                })
            })
            .collect::<A1Result<Vec<_>>>()?;
        let traverse = match &cur.traverse {
            Some(t) => Some(CompiledTraverse {
                dir: dir_of(t.dir),
                edge_type: proxies
                    .edge_type(&t.edge_type)
                    .ok_or_else(|| A1Error::NoSuchType(t.edge_type.clone()))?
                    .def
                    .id,
                edge_preds: t.edge_predicates.clone(),
            }),
            None => None,
        };
        steps.push(CompiledStep {
            type_filter,
            id_filter,
            preds: cur.predicates.clone(),
            matches,
            traverse,
        });
        match &cur.traverse {
            Some(t) => cur = &t.step,
            None => break,
        }
    }
    // Index-start predicates were consumed by the index lookup.
    if q.root.id.is_none() {
        steps[0].preds.clear();
    }

    Ok((
        CompiledQuery {
            steps,
            select: q.final_select(),
            limit: q.final_limit(),
        },
        frontier,
    ))
}

// ----------------------------------------------------------------- evaluate

/// Evaluate one predicate against a record (schema-directed coercion of the
/// literal). List attributes match if *any* element matches (knowledge-graph
/// `name` lists).
pub fn eval_predicate(schema: &Schema, rec: &a1_bond::Record, pred: &AttrPredicate) -> bool {
    let Some(field) = schema.field_by_name(&pred.attr) else {
        return false;
    };
    let Some(actual) = rec.get(field.id) else {
        return false;
    };
    let actual = match (&pred.map_key, actual) {
        (Some(k), v) => match v.map_get(k) {
            Some(inner) => inner,
            None => return false,
        },
        (None, v) => v,
    };
    eval_cmp(actual, pred.op, &pred.value)
}

fn eval_cmp(actual: &Value, op: CmpOp, literal: &Json) -> bool {
    // List containment: any element satisfying the comparison.
    if let Value::List(items) = actual {
        return items.iter().any(|item| eval_cmp(item, op, literal));
    }
    let Some(lit) = coerce_like(actual, literal) else {
        return false;
    };
    let Some(ord) = actual.compare(&lit) else {
        return false;
    };
    match op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => !ord.is_eq(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
    }
}

/// Coerce a JSON literal to the same Bond type as `like`.
fn coerce_like(like: &Value, j: &Json) -> Option<Value> {
    let ty = match like {
        Value::Bool(_) => a1_bond::BondType::Bool,
        Value::Int32(_) => a1_bond::BondType::Int32,
        Value::Int64(_) => a1_bond::BondType::Int64,
        Value::UInt64(_) => a1_bond::BondType::UInt64,
        Value::Double(_) => a1_bond::BondType::Double,
        Value::String(_) => a1_bond::BondType::String,
        Value::Date(_) => a1_bond::BondType::Date,
        Value::Blob(_) => a1_bond::BondType::Blob,
        Value::List(_) | Value::Map(_) => return None,
    };
    json_to_value(j, &ty).ok()
}

// ------------------------------------------------------------------- worker

/// The operator bundle shipped to a worker for one (machine, hop) batch.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkOp {
    pub tenant: String,
    pub graph: String,
    pub snapshot_ts: u64,
    pub vertices: Vec<Addr>,
    pub step: CompiledStep,
    /// Emit surviving addresses (traversal result) or full rows (final hop).
    pub emit_rows: bool,
    pub select: Select,
    /// Skip the hot-vertex cache for this op (per-client bypass). Stamped by
    /// the coordinator so shipped ops bypass at the remote machine too.
    pub cache_bypass: bool,
}

/// What a worker sends back.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkResult {
    pub next: Vec<Addr>,
    pub rows: Vec<(Addr, Json)>,
    pub metrics: QueryMetrics,
    /// How many morsels the batch was split into (1 = serial loop).
    pub morsels: u64,
    /// Peak number of those morsels executing simultaneously.
    pub max_concurrent_morsels: u64,
}

/// Per-work-op memo of neighbor reads for match-pattern evaluation. A hub
/// target vertex (the common case in the paper's knowledge-graph workloads)
/// is referenced by many frontier vertices in the same batch; without the
/// memo its header + record are re-read — with remote latency when the hub
/// lives elsewhere — once per *source* vertex instead of once per batch.
/// Shared across the batch's morsels; values are snapshot reads at the
/// work op's `snapshot_ts`, so concurrent fills observe identical bytes.
/// Two stages, mirroring the uncached evaluation order: headers fill on
/// first touch (`None` = the vertex was *definitively* gone — deleted under
/// us), records fill only for neighbors that pass the pattern's type filter
/// (a type-mismatched hub never pays a payload read). Records are `Arc`'d
/// so a memo hit is a pointer clone, not a deep copy of a hub's payload
/// under the shared lock. Transient read errors are never cached — one
/// conflicted read must not poison every later evaluation of that neighbor
/// in the batch.
#[derive(Default)]
struct NeighborMemo {
    headers: parking_lot::Mutex<HashMap<Addr, Option<crate::vertex::VertexHeader>>>,
    records: parking_lot::Mutex<HashMap<Addr, Arc<a1_bond::Record>>>,
}

/// Smallest vertex batch worth its own morsel: below this, the per-morsel
/// transaction + dispatch overhead outweighs any read overlap.
const MIN_MORSEL: usize = 4;

/// Execute a worker operator batch: predicate evaluation and edge
/// enumeration at (ideally) the vertices' home machine (§3.4).
///
/// The batch is split into up to `intra_parallelism` morsels (0 = auto: one
/// per simulated core) dispatched concurrently onto `pool` — the target
/// machine's own worker pool. Each morsel runs in its own read-only
/// transaction pinned at the shared `op.snapshot_ts` (snapshot reads are
/// safe to run concurrently) and results merge in input order, so the
/// outcome is byte-identical to the serial loop. Falls back to the serial
/// loop when the batch is small, `pool` is absent, or the pool is already
/// saturated (a fast path — progress under saturation is guaranteed
/// structurally by `run_all`'s help-first join, which drains queued jobs
/// onto the waiting caller).
#[allow(clippy::too_many_arguments)]
pub fn run_work_op(
    farm: &Arc<FarmCluster>,
    store: &GraphStore,
    proxies: &GraphProxies,
    machine: MachineId,
    op: &WorkOp,
    cache: Option<&VertexCache>,
    pool: Option<&a1_farm::WorkerPool>,
    cfg: &ExecConfig,
) -> A1Result<WorkResult> {
    let cache = cache.filter(|_| !op.cache_bypass);
    let batched = cfg.batched_fetch;
    let memo = NeighborMemo::default();
    let workers = match cfg.intra_parallelism {
        0 => farm.config().fabric.threads_per_machine.max(1),
        n => n,
    };
    let morsels = workers.min(op.vertices.len().div_ceil(MIN_MORSEL)).max(1);
    let pool = pool.filter(|p| morsels > 1 && !p.is_saturated());
    let Some(pool) = pool else {
        let mut result = run_morsel(
            farm,
            store,
            proxies,
            machine,
            op,
            &op.vertices,
            &memo,
            cache,
            batched,
        )?;
        result.morsels = 1;
        result.max_concurrent_morsels = 1;
        return Ok(result);
    };

    let chunk = op.vertices.len().div_ceil(morsels);
    let parts: Vec<&[Addr]> = op.vertices.chunks(chunk).collect();
    let in_flight = AtomicU64::new(0);
    let peak = AtomicU64::new(0);
    let jobs: Vec<ScopedJob<'_, A1Result<WorkResult>>> = parts
        .iter()
        .map(|part| {
            let part: &[Addr] = part;
            let (memo, in_flight, peak) = (&memo, &in_flight, &peak);
            Box::new(move || {
                let cur = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(cur, Ordering::SeqCst);
                let r = run_morsel(
                    farm, store, proxies, machine, op, part, memo, cache, batched,
                );
                in_flight.fetch_sub(1, Ordering::SeqCst);
                r
            }) as ScopedJob<'_, A1Result<WorkResult>>
        })
        .collect();
    let n_morsels = jobs.len() as u64;
    let results = pool.run_all_class(JobClass::Morsel, jobs);

    // Merge in input order: morsels are contiguous slices of `op.vertices`,
    // so concatenating their outputs reproduces the serial loop's order
    // exactly. Errors surface in input order too (deterministic).
    let mut merged = WorkResult {
        morsels: n_morsels,
        max_concurrent_morsels: peak.load(Ordering::SeqCst),
        ..WorkResult::default()
    };
    for result in results {
        let result = result?;
        merged.next.extend(result.next);
        merged.rows.extend(result.rows);
        merged.metrics.absorb(&result.metrics);
    }
    Ok(merged)
}

/// Revalidate a cache entry against the live FaRM version word: serve it
/// only if a HEADER-only probe of the vertex's header object returns
/// *exactly* the version the entry was filled at. One probe covers the
/// whole entry because every vertex mutation — record update (in place or
/// reallocated), edge insert/remove, delete — rewrites the header object
/// and therefore moves its version ([`GraphStore::update_vertex`] rewrites
/// it even for fitting in-place data updates to keep this invariant). An
/// unchanged header version means the cached header *and* record are the
/// current committed state; since the entry's versions are ≤ the reader's
/// snapshot (`lookup` filtered), they are exactly what a snapshot read
/// would return. Any probe failure is a miss: a freed or
/// migrated-and-reused block probes as `NotFound` or a different version
/// and therefore can never fabricate a read.
///
/// [`GraphStore::update_vertex`]: crate::store::GraphStore::update_vertex
fn revalidate_hit(
    tx: &mut Txn,
    addr: Addr,
    entry: &CachedVertex,
    need_record: bool,
) -> Option<(crate::vertex::VertexHeader, Option<Arc<a1_bond::Record>>)> {
    let h = tx.probe_version(addr).ok()?;
    if h.version != entry.hdr_version {
        return None;
    }
    if !need_record || entry.hdr.data.is_null() {
        return Some((entry.hdr, None));
    }
    // Header-only entry but the record is needed: treat as a miss so the
    // normal read path refills the entry with its record.
    let rec = entry.record.clone()?;
    Some((entry.hdr, Some(rec)))
}

/// [`revalidate_hit`] against a doorbell-batched prefetch slot instead of a
/// fresh scalar probe. Both response shapes carry the header object's FaRM
/// version word — a [`FetchResp::Hdr`] directly, a [`FetchResp::Obj`] via
/// `ObjBuf::version` (the prefetch phase requests a full header read when it
/// already knows the entry cannot serve, e.g. a header-only entry when the
/// record is needed) — so the validity rule is identical to the scalar
/// probe's. Any error slot is a miss, like a failed scalar probe.
fn revalidate_prefetched(
    resp: &a1_farm::FarmResult<a1_farm::FetchResp>,
    entry: &CachedVertex,
    need_record: bool,
) -> Option<(crate::vertex::VertexHeader, Option<Arc<a1_bond::Record>>)> {
    let version = match resp {
        Ok(a1_farm::FetchResp::Hdr(h)) => h.version,
        Ok(a1_farm::FetchResp::Obj(b)) => b.version,
        Err(_) => return None,
    };
    if version != entry.hdr_version {
        return None;
    }
    if !need_record || entry.hdr.data.is_null() {
        return Some((entry.hdr, None));
    }
    let rec = entry.record.clone()?;
    Some((entry.hdr, Some(rec)))
}

/// One morsel of a work op: the per-vertex loop over a contiguous slice of
/// the batch, in its own read-only transaction joined to the op's snapshot.
///
/// With `batched` set, the morsel front-loads its fetches into
/// doorbell-coalesced posts (one per target machine per round) instead of
/// one verb per object: round one carries every vertex's header read or
/// cache-revalidation probe, round two the surviving vertices' record
/// reads. The per-vertex loop then consumes the prefetched slots, falling
/// back to the scalar read for any address the prefetch could not serve
/// (probe invalidated by churn, concurrent cache fill), so answers are
/// byte-identical to the scalar loop. Edge enumeration and match-pattern
/// neighbor reads stay scalar: they are pointer-chasing (B-tree descent,
/// per-edge data blocks) whose addresses are unknown until the header is in
/// hand, and under query shipping they are machine-local anyway.
#[allow(clippy::too_many_arguments)]
fn run_morsel(
    farm: &Arc<FarmCluster>,
    store: &GraphStore,
    proxies: &GraphProxies,
    machine: MachineId,
    op: &WorkOp,
    vertices: &[Addr],
    memo: &NeighborMemo,
    cache: Option<&VertexCache>,
    batched: bool,
) -> A1Result<WorkResult> {
    use a1_farm::{FetchReq, FetchResp};

    let mut tx = farm.begin_read_only_at(machine, op.snapshot_ts);
    let mut result = WorkResult::default();
    let mut evictions = 0u64;
    let count_read = |metrics: &mut QueryMetrics, addr: Addr| {
        if farm.primary_of(addr) == Some(machine) {
            metrics.local_reads += 1;
        } else {
            metrics.remote_reads += 1;
        }
    };
    let need_rec = !op.step.preds.is_empty() || op.emit_rows;
    let batched = batched && vertices.len() > 1;

    // Prefetch round one: one batched post per target machine covering every
    // vertex's header — a full read on a cache miss, a header-sized
    // revalidation probe on a hit (or a full read when the entry cannot
    // serve this shape of read, saving the probe-then-read double verb the
    // scalar path pays).
    let mut pre: HashMap<Addr, a1_farm::FarmResult<FetchResp>> = HashMap::new();
    if batched {
        let mut reqs = Vec::with_capacity(vertices.len());
        let mut order = Vec::with_capacity(vertices.len());
        for &addr in vertices {
            if matches!(op.step.id_filter, Some(idf) if addr != idf) {
                continue;
            }
            if order.contains(&addr) {
                continue; // rare dup in a hand-built op: first slot serves it
            }
            match cache.and_then(|c| c.lookup(addr, op.snapshot_ts)) {
                Some(e) if !(need_rec && e.record.is_none() && !e.hdr.data.is_null()) => {
                    reqs.push(FetchReq::Probe(addr));
                }
                _ => reqs.push(FetchReq::Read(crate::vertex::vertex_ptr(addr))),
            }
            order.push(addr);
        }
        for (addr, res) in order.into_iter().zip(tx.fetch_many(&reqs)) {
            pre.insert(addr, res);
        }
    }

    // Prefetch round two: data records for vertices whose prefetched header
    // survives this op's type filter and needs a payload. Conditions mirror
    // the consuming loop exactly; a wrong guess (concurrent cache churn)
    // only costs a fallback scalar read, never a wrong answer.
    let mut pre_rec: HashMap<Addr, a1_farm::FarmResult<a1_farm::ObjBuf>> = HashMap::new();
    if batched && need_rec {
        let mut rec_ptrs: Vec<a1_farm::Ptr> = Vec::new();
        for &addr in vertices {
            let Some(res) = pre.get(&addr) else { continue };
            let (hdr, have_rec) = match res {
                Ok(FetchResp::Obj(buf)) => match crate::vertex::VertexHeader::decode(buf.data()) {
                    Ok(h) => (h, false),
                    Err(_) => continue,
                },
                Ok(FetchResp::Hdr(h)) => match cache.and_then(|c| c.lookup(addr, op.snapshot_ts)) {
                    Some(e) if e.hdr_version == h.version => (e.hdr, e.record.is_some()),
                    _ => continue,
                },
                Err(_) => continue,
            };
            if have_rec || hdr.data.is_null() {
                continue;
            }
            if matches!(op.step.type_filter, Some(tf) if hdr.type_id != tf) {
                continue;
            }
            if proxies.vertex_type_by_id(hdr.type_id).is_none() {
                continue;
            }
            rec_ptrs.push(hdr.data);
        }
        if !rec_ptrs.is_empty() {
            for (p, res) in rec_ptrs.iter().zip(tx.read_many(&rec_ptrs)) {
                pre_rec.insert(p.addr, res);
            }
        }
    }

    'vertices: for &addr in vertices {
        if let Some(idf) = op.step.id_filter {
            if addr != idf {
                continue;
            }
        }

        // Cross-query cache first: a revalidated hit replaces the header (and
        // payload) transfer with header-sized version probes.
        let mut served: Option<(crate::vertex::VertexHeader, Option<Arc<a1_bond::Record>>)> = None;
        if let Some(c) = cache {
            if let Some(entry) = c.lookup(addr, op.snapshot_ts) {
                served = match pre.get(&addr) {
                    Some(resp) => revalidate_prefetched(resp, &entry, need_rec),
                    None => revalidate_hit(&mut tx, addr, &entry, need_rec),
                };
                if served.is_none() {
                    // The entry no longer matches live memory (or can't
                    // serve this shape of read): drop it so it stops costing
                    // probes.
                    c.invalidate(addr);
                }
            }
        }

        // `hdr_version` is non-zero only on the miss path (cache fills must
        // know the version word the header was read at).
        let mut hdr_version = 0u64;
        let (hdr, served_rec) = match served {
            Some((h, r)) => {
                result.metrics.cache_hits += 1;
                result.metrics.vertices_read += 1;
                // The payload came from machine-local cache memory; only
                // header-sized probes touched the fabric.
                result.metrics.local_reads += 1;
                if let Some(c) = cache {
                    c.note_hit();
                }
                (h, r)
            }
            None => {
                if let Some(c) = cache {
                    result.metrics.cache_misses += 1;
                    c.note_miss();
                }
                // Consume the prefetched header; error mapping mirrors
                // `edges::read_header`. A `Hdr` slot (the prefetch probed a
                // cache entry that has since been invalidated) cannot serve
                // a full header, so it falls back to the scalar read — same
                // as the scalar path's probe-then-read sequence.
                let (version, hdr) = match pre.remove(&addr) {
                    Some(Ok(FetchResp::Obj(buf))) => {
                        let hdr = crate::vertex::VertexHeader::decode(buf.data())?;
                        (buf.version, hdr)
                    }
                    Some(Err(a1_farm::FarmError::NotFound(_))) => continue, // deleted under us
                    Some(Err(e)) => return Err(e.into()),
                    Some(Ok(FetchResp::Hdr(_))) | None => {
                        match edges::read_header(&mut tx, addr) {
                            Ok((buf, hdr)) => (buf.version, hdr),
                            Err(A1Error::NoSuchVertex(_)) => continue, // deleted under us
                            Err(e) => return Err(e),
                        }
                    }
                };
                hdr_version = version;
                result.metrics.vertices_read += 1;
                count_read(&mut result.metrics, addr);
                (hdr, None)
            }
        };
        // Fill the header before any filter can `continue` past it — a hot
        // vertex that fails this op's type filter is still hot for others.
        if let Some(c) = cache {
            if hdr_version != 0 {
                evictions += c.insert(
                    addr,
                    CachedVertex {
                        hdr,
                        hdr_version,
                        data_version: 0,
                        record: None,
                    },
                );
            }
        }
        if let Some(tf) = op.step.type_filter {
            if hdr.type_id != tf {
                continue;
            }
        }
        let vp = proxies.vertex_type_by_id(hdr.type_id);

        // Vertex attribute predicates.
        let mut rec: Option<Arc<a1_bond::Record>> = served_rec;
        if need_rec {
            let Some(vp) = vp else { continue };
            if rec.is_none() && !hdr.data.is_null() {
                // Prefetched record slot first (round two); scalar read for
                // anything the prefetch could not anticipate. Decoding and
                // error propagation mirror `read_vertex_data_versioned`.
                let fetched = match pre_rec.remove(&hdr.data.addr) {
                    Some(Ok(buf)) => {
                        let r = a1_bond::decode_record(buf.data())
                            .map_err(|e| A1Error::Internal(e.to_string()))?;
                        Some((buf.version, r))
                    }
                    Some(Err(e)) => return Err(e.into()),
                    None => store.read_vertex_data_versioned(&mut tx, &hdr)?,
                };
                if let Some((data_version, r)) = fetched {
                    count_read(&mut result.metrics, hdr.data.addr);
                    let r = Arc::new(r);
                    rec = Some(r.clone());
                    // Upgrade the entry with the record. Filling from a
                    // read the old-version store served is safe but inert:
                    // live memory has moved past the entry's version words,
                    // so it can never revalidate and simply ages out.
                    if let Some(c) = cache {
                        if hdr_version != 0 {
                            evictions += c.insert(
                                addr,
                                CachedVertex {
                                    hdr,
                                    hdr_version,
                                    data_version,
                                    record: Some(r),
                                },
                            );
                        }
                    }
                }
            }
            let empty = a1_bond::Record::new();
            let r = rec.as_deref().unwrap_or(&empty);
            for pred in &op.step.preds {
                if !eval_predicate(&vp.def.schema, r, pred) {
                    continue 'vertices;
                }
            }
        }

        // Match patterns (star queries, Q3): every pattern must have at
        // least one satisfying edge.
        for m in &op.step.matches {
            let hes = edges::enumerate(
                &mut tx,
                &proxies.graph.edge_tree,
                addr,
                &hdr,
                m.dir,
                Some(m.edge_type),
                usize::MAX,
            )?;
            result.metrics.edges_visited += hes.len() as u64;
            count_read(&mut result.metrics, addr);
            let mut ok = false;
            for he in &hes {
                if let Some(target) = m.target {
                    if he.other == target {
                        ok = true;
                        break;
                    }
                    continue;
                }
                // Predicate-based target: read the neighbor — through the
                // per-batch memo, so a hub target shared by many frontier
                // vertices costs one header+record read per batch. The lock
                // is dropped across the (possibly remote) read so morsels
                // filling different entries still overlap; a rare racing
                // double-fill reads identical snapshot bytes.
                let cached = memo.headers.lock().get(&he.other).copied();
                let ohdr = match cached {
                    Some(h) => h,
                    None => {
                        let h = match edges::read_header(&mut tx, he.other) {
                            Ok((_, ohdr)) => {
                                count_read(&mut result.metrics, he.other);
                                Some(ohdr)
                            }
                            // Deleted under us: definitively absent at this
                            // snapshot, safe to memoize for the batch.
                            Err(A1Error::NoSuchVertex(_)) => None,
                            // Transient failure (e.g. a lock-wait conflict):
                            // skip this evaluation — as the pre-memo code
                            // did — but do NOT cache it, or one flaky read
                            // would fail the pattern for every later source
                            // vertex sharing this neighbor.
                            Err(_) => continue,
                        };
                        memo.headers.lock().insert(he.other, h);
                        h
                    }
                };
                let Some(ohdr) = ohdr else { continue };
                if let Some(tt) = m.target_type {
                    if ohdr.type_id != tt {
                        continue;
                    }
                }
                let Some(ovp) = proxies.vertex_type_by_id(ohdr.type_id) else {
                    continue;
                };
                // The record, read only past the type filter (like the
                // uncached path) — its errors still abort the op.
                let cached = memo.records.lock().get(&he.other).cloned();
                let orec = match cached {
                    Some(r) => r,
                    None => {
                        let r =
                            Arc::new(store.read_vertex_data(&mut tx, &ohdr)?.unwrap_or_default());
                        memo.records.lock().insert(he.other, r.clone());
                        r
                    }
                };
                if m.preds
                    .iter()
                    .all(|p| eval_predicate(&ovp.def.schema, orec.as_ref(), p))
                {
                    ok = true;
                    break;
                }
            }
            if !ok {
                continue 'vertices;
            }
        }

        // Traversal: enumerate half-edges to the next hop.
        if let Some(t) = &op.step.traverse {
            let hes = edges::enumerate(
                &mut tx,
                &proxies.graph.edge_tree,
                addr,
                &hdr,
                t.dir,
                Some(t.edge_type),
                usize::MAX,
            )?;
            result.metrics.edges_visited += hes.len() as u64;
            count_read(&mut result.metrics, addr);
            for he in hes {
                if !t.edge_preds.is_empty() {
                    let Some(ep) = proxies.edge_type_by_id(t.edge_type) else {
                        continue;
                    };
                    let erec = if he.data.is_null() {
                        a1_bond::Record::new()
                    } else {
                        count_read(&mut result.metrics, he.data.addr);
                        let buf = tx.read(he.data)?;
                        a1_bond::decode_record(buf.data())
                            .map_err(|e| A1Error::Internal(e.to_string()))?
                    };
                    if !t
                        .edge_preds
                        .iter()
                        .all(|p| eval_predicate(&ep.def.schema, &erec, p))
                    {
                        continue;
                    }
                }
                result.next.push(he.other);
            }
        }

        // Row emission at the final hop.
        if op.emit_rows {
            let Some(vp) = vp else { continue };
            let row = render_row(&vp.def.schema, &vp.def.name, rec.as_deref(), &op.select);
            result.rows.push((addr, row));
        } else if op.step.traverse.is_none() {
            // Terminal filter step (e.g. a count): emit the survivors.
            result.next.push(addr);
        }
    }
    result.metrics.fetch_verbs = tx.fetch_verbs();
    if cache.is_some() {
        let fm = farm.fabric().metrics();
        fm.add(&fm.cache_hits, result.metrics.cache_hits);
        fm.add(&fm.cache_misses, result.metrics.cache_misses);
        fm.add(&fm.cache_evictions, evictions);
    }
    Ok(result)
}

fn render_row(
    schema: &Schema,
    type_name: &str,
    rec: Option<&a1_bond::Record>,
    select: &Select,
) -> Json {
    match select {
        Select::All | Select::Count => {
            let full = match rec {
                Some(r) => crate::convert::record_to_json(schema, r),
                None => Json::Obj(Vec::new()),
            };
            let mut obj = vec![("_type".to_string(), Json::str(type_name))];
            if let Json::Obj(fields) = full {
                obj.extend(fields);
            }
            Json::Obj(obj)
        }
        Select::Fields(fields) => {
            // Project only the selected attributes: converting the full
            // record to JSON and cloning per field would pay for every
            // attribute (hub payloads are the big ones) on every row.
            let mut obj = Vec::with_capacity(fields.len());
            for f in fields {
                let v = rec
                    .and_then(|r| schema.field_by_name(&f.attr).and_then(|fd| r.get(fd.id)))
                    .map(crate::convert::value_to_json)
                    .unwrap_or(Json::Null);
                let v = match f.index {
                    Some(i) => v.at(i).cloned().unwrap_or(Json::Null),
                    None => v,
                };
                let name = match f.index {
                    Some(i) => format!("{}[{}]", f.attr, i),
                    None => f.attr.clone(),
                };
                obj.push((name, v));
            }
            Json::Obj(obj)
        }
    }
}

// -------------------------------------------------------------- coordinator

/// Ship callback: send a [`WorkOp`] to a remote machine, returning its
/// [`WorkResult`]. Provided by the server layer (fabric RPC + JSON wire).
/// `Sync` because the parallel coordinator invokes it from several worker
/// threads at once.
pub type ShipFn<'a> = dyn Fn(MachineId, &WorkOp) -> A1Result<WorkResult> + Sync + 'a;

/// The coordinator's environment: everything about *where* a query runs, as
/// opposed to *what* runs (which stays in [`coordinate`]'s own parameters).
pub struct Coordinator<'a> {
    pub farm: &'a Arc<FarmCluster>,
    pub store: &'a GraphStore,
    pub proxies: &'a GraphProxies,
    pub machine: MachineId,
    pub cfg: &'a ExecConfig,
    /// The coordinator machine's hot-vertex cache, used by inline (unshipped)
    /// work ops; shipped ops use the target machine's own cache.
    pub cache: Option<&'a VertexCache>,
    /// Per-client cache bypass: stamped onto every [`WorkOp`] so shipped ops
    /// bypass at remote machines too.
    pub cache_bypass: bool,
}

/// Coordinate a compiled query (paper Fig. 9). Each hop's batches — remote
/// ships *and* inline local runs — are dispatched onto the coordinator
/// machine's worker pool concurrently (up to [`ExecConfig::fanout_parallelism`]
/// in flight) and their replies merged in `MachineId` order, so results are
/// identical to the serial coordinator's.
pub fn coordinate(
    coord: &Coordinator<'_>,
    tenant: &str,
    graph: &str,
    compiled: &CompiledQuery,
    initial_frontier: Vec<Addr>,
    snapshot_ts: u64,
    ship: &ShipFn,
) -> A1Result<QueryOutcome> {
    let Coordinator {
        farm,
        store,
        proxies,
        machine,
        cfg,
        cache,
        cache_bypass,
    } = *coord;
    let mut metrics = QueryMetrics {
        snapshot_ts,
        hops: compiled.steps.len().saturating_sub(1) as u32,
        ..QueryMetrics::default()
    };
    let mut frontier = dedup_addrs(initial_frontier);
    let mut rows: Vec<(Addr, Json)> = Vec::new();
    let mut per_hop: Vec<HopStats> = Vec::new();
    let pool = farm
        .fabric()
        .machine(machine)
        .map_err(|e| A1Error::Internal(format!("coordinator machine: {e}")))?
        .pool();

    for (i, step) in compiled.steps.iter().enumerate() {
        let is_last = i == compiled.steps.len() - 1;
        let emit_rows = is_last && compiled.select != Select::Count;
        if frontier.is_empty() {
            break;
        }
        if frontier.len() > cfg.max_working_set {
            return Err(A1Error::WorkingSetExceeded {
                limit: cfg.max_working_set,
            });
        }
        let hop_start = Instant::now();

        // Partition (Fig. 9): group pointers by primary host — a purely
        // local metadata operation. Batches are ordered by MachineId so both
        // dispatch and merge are deterministic regardless of fan-out.
        let mut by_machine: HashMap<MachineId, Vec<Addr>> = HashMap::new();
        for addr in frontier.drain(..) {
            let host = farm
                .primary_of(addr)
                .ok_or_else(|| A1Error::Internal("unplaced address".into()))?;
            by_machine.entry(host).or_default().push(addr);
        }
        let mut batches: Vec<(MachineId, Vec<Addr>)> = by_machine.into_iter().collect();
        batches.sort_unstable_by_key(|(host, _)| *host);

        let mut hop = HopStats {
            frontier: batches.iter().map(|(_, v)| v.len() as u64).sum(),
            machines: batches.len() as u64,
            ..HopStats::default()
        };

        // On the final row-emitting hop of a LIMIT query, slice batches to
        // the limit so the coordinator can stop dispatching as soon as
        // enough rows are in hand instead of reading the whole frontier.
        // Slicing is lazy — a cursor over the per-machine batches — so the
        // (possibly huge) tail that early termination skips is never
        // materialized.
        let row_limit = if emit_rows { compiled.limit } else { None };
        let chunk_size = row_limit.map(|l| l.max(1));
        // The ship-vs-fetch decision (§3.4): a pure function of the batch
        // size, the step's shape, the latency model, and static catalog
        // stats — see [`ShipPolicy`]. Evaluated against the whole batch and
        // re-checked against each (possibly LIMIT-sliced) part, like the
        // legacy fixed threshold.
        let latency = farm.config().fabric.latency.clone();
        let est_rec = est_record_bytes(proxies);
        let decide_ship = |host: MachineId, n: usize| -> bool {
            let same_rack = farm.fabric().rack_of(machine) == farm.fabric().rack_of(host);
            cfg.ship_policy
                .should_ship(n, &latency, same_rack, step, emit_rows, est_rec)
        };
        let mut batch_idx = 0usize;
        let mut batch_off = 0usize;
        let mut next_part = || -> Option<(MachineId, Vec<Addr>, bool)> {
            while batch_idx < batches.len() {
                let (host, vertices) = &mut batches[batch_idx];
                let host = *host;
                let len = vertices.len();
                if batch_off >= len {
                    batch_idx += 1;
                    batch_off = 0;
                    continue;
                }
                let end = chunk_size.map_or(len, |c| (batch_off + c).min(len));
                let ship_batch = host != machine && decide_ship(host, len);
                // A whole-batch chunk (the common, no-LIMIT case) moves the
                // Vec instead of copying it.
                let part = if batch_off == 0 && end == len {
                    std::mem::take(vertices)
                } else {
                    vertices[batch_off..end].to_vec()
                };
                let is_ship = ship_batch && decide_ship(host, part.len());
                batch_off = end;
                return Some((host, part, is_ship));
            }
            None
        };

        // Ship & merge: dispatch up to `parallelism` work ops at a time and
        // aggregate replies in dispatch order. Auto means one slot per
        // target machine — limit-sliced batches drain wave by wave so early
        // termination can cut the tail.
        let parallelism = match cfg.fanout_parallelism {
            0 => (hop.machines as usize).max(1),
            n => n.max(1),
        };
        let in_flight = AtomicU64::new(0);
        let peak_ships = AtomicU64::new(0);
        let run_one = |host: MachineId, op: &WorkOp, is_ship: bool| -> A1Result<WorkResult> {
            if is_ship {
                let cur = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                peak_ships.fetch_max(cur, Ordering::SeqCst);
                let result = ship(host, op);
                in_flight.fetch_sub(1, Ordering::SeqCst);
                result
            } else {
                // Few vertices (or the coordinator's own batch): cheaper to
                // read remotely than to RPC (§3.4). Still morsel-parallel on
                // the coordinator's pool — under hub skew the coordinator
                // machine can own most of the frontier itself.
                run_work_op(farm, store, proxies, machine, op, cache, Some(pool), cfg)
            }
        };

        let mut next = Vec::new();
        loop {
            if let Some(l) = row_limit {
                if rows.len() >= l {
                    break; // early termination: enough rows in hand
                }
            }
            let mut wave: Vec<(MachineId, WorkOp, bool)> = Vec::new();
            while wave.len() < parallelism {
                let Some((host, vertices, is_ship)) = next_part() else {
                    break;
                };
                let op = WorkOp {
                    tenant: tenant.to_string(),
                    graph: graph.to_string(),
                    snapshot_ts,
                    vertices,
                    step: step.clone(),
                    emit_rows,
                    select: compiled.select.clone(),
                    cache_bypass,
                };
                wave.push((host, op, is_ship));
            }
            if wave.is_empty() {
                break;
            }
            let results: Vec<A1Result<WorkResult>> = if wave.len() == 1 {
                wave.iter()
                    .map(|(host, op, is_ship)| run_one(*host, op, *is_ship))
                    .collect()
            } else {
                // Fan-out waves run in the Query lane: this work was already
                // admitted at the front door and must stay ahead of ingest.
                pool.run_all_class(
                    JobClass::Query,
                    wave.iter()
                        .map(|(host, op, is_ship)| {
                            let run_one = &run_one;
                            Box::new(move || run_one(*host, op, *is_ship))
                                as ScopedJob<'_, A1Result<WorkResult>>
                        })
                        .collect(),
                )
            };
            for ((_, _, is_ship), result) in wave.iter().zip(results) {
                let result = result?;
                if *is_ship {
                    metrics.rpcs += 1;
                    hop.rpcs += 1;
                }
                metrics.absorb(&result.metrics);
                hop.vertices_read += result.metrics.vertices_read;
                hop.edges_visited += result.metrics.edges_visited;
                hop.local_reads += result.metrics.local_reads;
                hop.remote_reads += result.metrics.remote_reads;
                hop.rpc_req_bytes += result.metrics.rpc_req_bytes;
                hop.rpc_reply_bytes += result.metrics.rpc_reply_bytes;
                hop.cache_hits += result.metrics.cache_hits;
                hop.cache_misses += result.metrics.cache_misses;
                hop.fetch_verbs += result.metrics.fetch_verbs;
                hop.morsels += result.morsels;
                hop.max_concurrent_morsels = hop
                    .max_concurrent_morsels
                    .max(result.max_concurrent_morsels);
                hop.returned += (result.next.len() + result.rows.len()) as u64;
                next.extend(result.next);
                rows.extend(result.rows);
            }
        }
        hop.max_concurrent_ships = peak_ships.load(Ordering::SeqCst);
        hop.wall_ns = hop_start.elapsed().as_nanos() as u64;
        per_hop.push(hop);
        frontier = dedup_addrs(next);
    }

    // Aggregate replies: dedup rows by vertex, apply limit/select.
    let mut outcome = QueryOutcome {
        rows: Vec::new(),
        count: None,
        metrics,
        continuation: None,
        per_hop,
    };
    match compiled.select {
        Select::Count => {
            outcome.count = Some(frontier.len() as u64);
        }
        _ => {
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::with_capacity(rows.len());
            for (addr, row) in rows {
                if seen.insert(addr) {
                    out.push(row);
                }
            }
            if let Some(limit) = compiled.limit {
                out.truncate(limit);
            }
            outcome.rows = out;
        }
    }
    Ok(outcome)
}

fn dedup_addrs(mut addrs: Vec<Addr>) -> Vec<Addr> {
    addrs.sort_unstable();
    addrs.dedup();
    addrs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_fraction() {
        let m = QueryMetrics {
            local_reads: 95,
            remote_reads: 5,
            ..QueryMetrics::default()
        };
        assert!((m.local_read_fraction() - 0.95).abs() < 1e-9);
        assert_eq!(QueryMetrics::default().local_read_fraction(), 1.0);
    }

    #[test]
    fn eval_predicates() {
        use a1_bond::{BondType, FieldDef, Record, Schema};
        let schema = Schema::build(
            "e",
            vec![
                FieldDef::optional(0, "name", BondType::List(Box::new(BondType::String))),
                FieldDef::optional(1, "rank", BondType::Int64),
                FieldDef::optional(
                    2,
                    "m",
                    BondType::Map(Box::new(BondType::String), Box::new(BondType::String)),
                ),
            ],
        )
        .unwrap();
        let rec = Record::new()
            .with(0, Value::List(vec![Value::String("Batman".into())]))
            .with(1, Value::Int64(5))
            .with(
                2,
                Value::Map(vec![(Value::String("k".into()), Value::String("v".into()))]),
            );
        let p = |attr: &str, map_key: Option<&str>, op, value| AttrPredicate {
            attr: attr.into(),
            map_key: map_key.map(String::from),
            op,
            value,
        };
        // List containment.
        assert!(eval_predicate(
            &schema,
            &rec,
            &p("name", None, CmpOp::Eq, Json::str("Batman"))
        ));
        assert!(!eval_predicate(
            &schema,
            &rec,
            &p("name", None, CmpOp::Eq, Json::str("Robin"))
        ));
        // Numeric comparisons.
        assert!(eval_predicate(
            &schema,
            &rec,
            &p("rank", None, CmpOp::Ge, Json::Num(5.0))
        ));
        assert!(eval_predicate(
            &schema,
            &rec,
            &p("rank", None, CmpOp::Lt, Json::Num(6.0))
        ));
        assert!(!eval_predicate(
            &schema,
            &rec,
            &p("rank", None, CmpOp::Ne, Json::Num(5.0))
        ));
        // Map lookup.
        assert!(eval_predicate(
            &schema,
            &rec,
            &p("m", Some("k"), CmpOp::Eq, Json::str("v"))
        ));
        assert!(!eval_predicate(
            &schema,
            &rec,
            &p("m", Some("zz"), CmpOp::Eq, Json::str("v"))
        ));
        // Missing attribute → false.
        assert!(!eval_predicate(
            &schema,
            &rec,
            &p("nope", None, CmpOp::Eq, Json::Num(1.0))
        ));
        // Type-incompatible literal → false.
        assert!(!eval_predicate(
            &schema,
            &rec,
            &p("rank", None, CmpOp::Eq, Json::str("x"))
        ));
    }
}
