//! The A1 query engine (paper §3.4).
//!
//! * [`plan`] — A1QL: JSON documents where each nesting level is a traversal
//!   step (Fig. 8, Table 2). Parsed into a logical plan without any
//!   optimizer — "most of the queries submitted to A1 are straightforward
//!   and executed without any optimization".
//! * [`exec`] — physical execution (Fig. 9): the backend that receives the
//!   query coordinates it; per hop, frontier vertices are grouped by their
//!   primary host and operator batches are *shipped* to those machines by
//!   RPC (predicate evaluation + edge enumeration run where the data is),
//!   falling back to one-sided reads for tiny groups. All reads across the
//!   cluster use one snapshot timestamp chosen by the coordinator.

pub mod exec;
pub mod plan;

pub use exec::{ExecConfig, QueryMetrics, QueryOutcome, ShipPolicy};
pub use plan::{parse_query, AttrPredicate, CmpOp, Query, Select};
