//! A1QL parsing: JSON documents → logical plans (paper §3.4, Fig. 8).
//!
//! Grammar (by key, inside a vertex step object):
//!
//! * `"id"` — start vertex primary key (top level), or an identity filter in
//!   nested steps / match targets.
//! * `"_type"` — vertex type constraint.
//! * `"_out_edge"` / `"_in_edge"` — traversal: `{"_type": edge-type,
//!   <edge attr predicates...>, "_vertex": {next step}}`.
//! * `"_match"` — array of edge patterns that must all exist (star patterns,
//!   Q3).
//! * `"_select"` — `["*"]`, `["_count(*)"]`, or projections like
//!   `["name[0]"]`.
//! * `"_limit"` — cap on returned rows.
//! * any other key — attribute predicate: scalar for equality,
//!   `{"_gt": v}` etc. for comparisons, `attr[key]` for map lookups
//!   (Q2's `str_str_map[character]`).

use crate::error::{A1Error, A1Result};
use a1_json::Json;

/// Traversal direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanDir {
    Out,
    In,
}

/// Comparison operators for attribute predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Gt,
    Ge,
    Lt,
    Le,
}

impl CmpOp {
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
        }
    }

    pub fn parse(s: &str) -> Option<CmpOp> {
        Some(match s {
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            _ => return None,
        })
    }
}

/// One attribute predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrPredicate {
    pub attr: String,
    /// `attr[key]` map-lookup predicates.
    pub map_key: Option<String>,
    pub op: CmpOp,
    pub value: Json,
}

/// Projection specification.
#[derive(Debug, Clone, PartialEq)]
pub enum Select {
    /// `["*"]` — all attributes.
    All,
    /// `["_count(*)"]` — count distinct result vertices.
    Count,
    /// Projections; `name[0]` selects a list element.
    Fields(Vec<FieldSel>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct FieldSel {
    pub attr: String,
    pub index: Option<usize>,
}

/// A vertex step: filters at this hop plus an optional traversal onward.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VertexStep {
    pub id: Option<String>,
    pub vertex_type: Option<String>,
    pub predicates: Vec<AttrPredicate>,
    pub matches: Vec<MatchPattern>,
    pub traverse: Option<Box<EdgeTraversal>>,
    pub select: Option<Select>,
    pub limit: Option<usize>,
}

/// An edge traversal to the next hop.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeTraversal {
    pub dir: PlanDir,
    pub edge_type: String,
    pub edge_predicates: Vec<AttrPredicate>,
    pub step: VertexStep,
}

/// A `_match` pattern: an edge of the given type must exist whose target
/// satisfies the nested filters (Q3's star pattern).
#[derive(Debug, Clone, PartialEq)]
pub struct MatchPattern {
    pub dir: PlanDir,
    pub edge_type: String,
    pub target_id: Option<String>,
    pub target_type: Option<String>,
    pub target_predicates: Vec<AttrPredicate>,
}

/// A parsed A1QL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub root: VertexStep,
}

impl Query {
    /// Number of traversal hops.
    pub fn hops(&self) -> usize {
        let mut n = 0;
        let mut step = &self.root;
        while let Some(t) = &step.traverse {
            n += 1;
            step = &t.step;
        }
        n
    }

    /// The final step's select (defaults to `All`).
    pub fn final_select(&self) -> Select {
        let mut step = &self.root;
        while let Some(t) = &step.traverse {
            step = &t.step;
        }
        step.select.clone().unwrap_or(Select::All)
    }

    pub fn final_limit(&self) -> Option<usize> {
        let mut step = &self.root;
        while let Some(t) = &step.traverse {
            step = &t.step;
        }
        step.limit
    }
}

/// Parse an A1QL text document.
pub fn parse_query(text: &str) -> A1Result<Query> {
    let j = Json::parse(text).map_err(|e| A1Error::Query(e.to_string()))?;
    let root = parse_step(&j)?;
    if root.id.is_none() && root.vertex_type.is_none() {
        return Err(A1Error::Query(
            "query needs a start: an 'id' or a '_type' with an indexed predicate".into(),
        ));
    }
    Ok(Query { root })
}

fn parse_step(j: &Json) -> A1Result<VertexStep> {
    let obj = j
        .as_obj()
        .ok_or_else(|| A1Error::Query("vertex step must be a JSON object".into()))?;
    let mut step = VertexStep::default();
    for (key, value) in obj {
        match key.as_str() {
            "id" => {
                step.id = Some(
                    value
                        .as_str()
                        .ok_or_else(|| A1Error::Query("'id' must be a string".into()))?
                        .to_string(),
                );
            }
            "_type" => {
                step.vertex_type = Some(
                    value
                        .as_str()
                        .ok_or_else(|| A1Error::Query("'_type' must be a string".into()))?
                        .to_string(),
                );
            }
            "_out_edge" => {
                set_traverse(&mut step, PlanDir::Out, value)?;
            }
            "_in_edge" => {
                set_traverse(&mut step, PlanDir::In, value)?;
            }
            "_match" => {
                let arr = value
                    .as_arr()
                    .ok_or_else(|| A1Error::Query("'_match' must be an array".into()))?;
                for pattern in arr {
                    step.matches.push(parse_match(pattern)?);
                }
            }
            "_select" => {
                step.select = Some(parse_select(value)?);
            }
            "_limit" => {
                let n = value.as_i64().filter(|n| *n >= 0).ok_or_else(|| {
                    A1Error::Query("'_limit' must be a non-negative integer".into())
                })?;
                step.limit = Some(n as usize);
            }
            other if other.starts_with('_') => {
                return Err(A1Error::Query(format!("unknown directive '{other}'")));
            }
            attr => {
                step.predicates.push(parse_predicate(attr, value)?);
            }
        }
    }
    Ok(step)
}

fn set_traverse(step: &mut VertexStep, dir: PlanDir, value: &Json) -> A1Result<()> {
    if step.traverse.is_some() {
        return Err(A1Error::Query(
            "a step may have at most one _out_edge/_in_edge traversal".into(),
        ));
    }
    step.traverse = Some(Box::new(parse_edge(dir, value)?));
    Ok(())
}

fn parse_edge(dir: PlanDir, j: &Json) -> A1Result<EdgeTraversal> {
    let obj = j
        .as_obj()
        .ok_or_else(|| A1Error::Query("edge traversal must be a JSON object".into()))?;
    let mut edge_type = None;
    let mut edge_predicates = Vec::new();
    let mut vertex = None;
    for (key, value) in obj {
        match key.as_str() {
            "_type" => {
                edge_type = Some(
                    value
                        .as_str()
                        .ok_or_else(|| A1Error::Query("edge '_type' must be a string".into()))?
                        .to_string(),
                );
            }
            "_vertex" => {
                vertex = Some(parse_step(value)?);
            }
            other if other.starts_with('_') => {
                return Err(A1Error::Query(format!("unknown edge directive '{other}'")));
            }
            attr => {
                edge_predicates.push(parse_predicate(attr, value)?);
            }
        }
    }
    Ok(EdgeTraversal {
        dir,
        edge_type: edge_type
            .ok_or_else(|| A1Error::Query("edge traversal needs a '_type'".into()))?,
        edge_predicates,
        step: vertex.ok_or_else(|| A1Error::Query("edge traversal needs a '_vertex'".into()))?,
    })
}

fn parse_match(j: &Json) -> A1Result<MatchPattern> {
    let (dir, edge) = if let Some(e) = j.get("_out_edge") {
        (PlanDir::Out, e)
    } else if let Some(e) = j.get("_in_edge") {
        (PlanDir::In, e)
    } else {
        return Err(A1Error::Query(
            "match pattern needs _out_edge or _in_edge".into(),
        ));
    };
    let parsed = parse_edge(dir, edge)?;
    if parsed.step.traverse.is_some() || !parsed.step.matches.is_empty() {
        return Err(A1Error::Query(
            "match targets cannot traverse further".into(),
        ));
    }
    Ok(MatchPattern {
        dir,
        edge_type: parsed.edge_type,
        target_id: parsed.step.id,
        target_type: parsed.step.vertex_type,
        target_predicates: parsed.step.predicates,
    })
}

fn parse_select(j: &Json) -> A1Result<Select> {
    let arr = j
        .as_arr()
        .ok_or_else(|| A1Error::Query("'_select' must be an array".into()))?;
    let items: Vec<&str> = arr
        .iter()
        .map(|v| {
            v.as_str()
                .ok_or_else(|| A1Error::Query("'_select' items must be strings".into()))
        })
        .collect::<A1Result<_>>()?;
    if items.contains(&"*") {
        return Ok(Select::All);
    }
    if items.contains(&"_count(*)") {
        return Ok(Select::Count);
    }
    let fields = items
        .iter()
        .map(|s| parse_field_sel(s))
        .collect::<A1Result<Vec<_>>>()?;
    Ok(Select::Fields(fields))
}

fn parse_field_sel(s: &str) -> A1Result<FieldSel> {
    match split_indexed(s) {
        Some((attr, idx)) => {
            let index = idx
                .parse::<usize>()
                .map_err(|_| A1Error::Query(format!("bad projection '{s}'")))?;
            Ok(FieldSel {
                attr: attr.to_string(),
                index: Some(index),
            })
        }
        None => Ok(FieldSel {
            attr: s.to_string(),
            index: None,
        }),
    }
}

fn parse_predicate(key: &str, value: &Json) -> A1Result<AttrPredicate> {
    let (attr, map_key) = match split_indexed(key) {
        Some((attr, k)) => (attr.to_string(), Some(k.to_string())),
        None => (key.to_string(), None),
    };
    // `{"_gt": v}` style comparison objects; bare scalars mean equality.
    if let Some(obj) = value.as_obj() {
        if obj.len() == 1 && obj[0].0.starts_with('_') {
            let op = CmpOp::parse(obj[0].0.trim_start_matches('_'))
                .ok_or_else(|| A1Error::Query(format!("unknown comparison '{}'", obj[0].0)))?;
            return Ok(AttrPredicate {
                attr,
                map_key,
                op,
                value: obj[0].1.clone(),
            });
        }
    }
    Ok(AttrPredicate {
        attr,
        map_key,
        op: CmpOp::Eq,
        value: value.clone(),
    })
}

/// Split `"name[x]"` into `("name", "x")`.
fn split_indexed(s: &str) -> Option<(&str, &str)> {
    let open = s.find('[')?;
    let close = s.strip_suffix(']')?;
    Some((&s[..open], &close[open + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Fig. 8 / Table 2 Q1.
    #[test]
    fn parse_q1_spielberg() {
        let q = parse_query(
            r#"{ "id" : "steven.spielberg",
                "_out_edge" : { "_type" : "director.film",
                "_vertex" : {
                "_out_edge" : { "_type" : "film.actor",
                "_vertex" : {
                "_select" : ["_count(*)"] }}}}}"#,
        )
        .unwrap();
        assert_eq!(q.root.id.as_deref(), Some("steven.spielberg"));
        assert_eq!(q.hops(), 2);
        assert_eq!(q.final_select(), Select::Count);
        let t1 = q.root.traverse.as_ref().unwrap();
        assert_eq!(t1.edge_type, "director.film");
        assert_eq!(t1.dir, PlanDir::Out);
        let t2 = t1.step.traverse.as_ref().unwrap();
        assert_eq!(t2.edge_type, "film.actor");
    }

    /// Paper Table 2 Q2: three hops with a map predicate on the middle hop.
    #[test]
    fn parse_q2_batman() {
        let q = parse_query(
            r#"{ "id" : "character.batman",
                "_out_edge" : { "_type" : "character.film",
                "_vertex" : {
                "_out_edge" : { "_type" : "film.performance",
                "_vertex" : {
                "str_str_map[character]" : "Batman",
                "_out_edge" : { "_type" : "performance.actor",
                "_vertex" : {
                "_select" : ["_count(*)"] }}}}}}}"#,
        )
        .unwrap();
        assert_eq!(q.hops(), 3);
        let perf = &q
            .root
            .traverse
            .as_ref()
            .unwrap()
            .step
            .traverse
            .as_ref()
            .unwrap()
            .step;
        assert_eq!(perf.predicates.len(), 1);
        let p = &perf.predicates[0];
        assert_eq!(p.attr, "str_str_map");
        assert_eq!(p.map_key.as_deref(), Some("character"));
        assert_eq!(p.op, CmpOp::Eq);
        assert_eq!(p.value.as_str(), Some("Batman"));
    }

    /// Paper Table 2 Q3: star pattern via `_match`.
    #[test]
    fn parse_q3_star_match() {
        let q = parse_query(
            r#"{ "id" : "steven.spielberg",
                "_out_edge" : { "_type" : "director.film",
                "_vertex" : { "_type" : "entity",
                "_select" : ["name[0]"],
                "_match" : [{
                "_out_edge" : { "_type" : "film.actor",
                "_vertex" : { "id" : "tom.hanks" }}},
                { "_out_edge" : { "_type" : "film.genre",
                "_vertex" : { "id" : "action" }}}] }}}"#,
        )
        .unwrap();
        assert_eq!(q.hops(), 1);
        let film = &q.root.traverse.as_ref().unwrap().step;
        assert_eq!(film.vertex_type.as_deref(), Some("entity"));
        assert_eq!(film.matches.len(), 2);
        assert_eq!(film.matches[0].edge_type, "film.actor");
        assert_eq!(film.matches[0].target_id.as_deref(), Some("tom.hanks"));
        assert_eq!(film.matches[1].target_id.as_deref(), Some("action"));
        assert_eq!(
            q.final_select(),
            Select::Fields(vec![FieldSel {
                attr: "name".into(),
                index: Some(0)
            }])
        );
    }

    #[test]
    fn parse_in_edge_and_comparisons() {
        let q = parse_query(
            r#"{ "_type": "Film", "release_date": {"_ge": 10957},
                 "_in_edge": { "_type": "acted", "character": "Batman",
                 "_vertex": { "_select": ["*"], "_limit": 5 }}}"#,
        )
        .unwrap();
        assert_eq!(q.root.predicates[0].op, CmpOp::Ge);
        let t = q.root.traverse.as_ref().unwrap();
        assert_eq!(t.dir, PlanDir::In);
        assert_eq!(t.edge_predicates.len(), 1);
        assert_eq!(q.final_limit(), Some(5));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_query("not json").is_err());
        assert!(parse_query(r#"{"_select": ["*"]}"#).is_err(), "no start");
        assert!(parse_query(r#"{"id": 3}"#).is_err(), "id must be a string");
        assert!(parse_query(r#"{"id":"x","_bogus": 1}"#).is_err());
        assert!(
            parse_query(r#"{"id":"x","_out_edge":{"_vertex":{}}}"#).is_err(),
            "edge needs type"
        );
        assert!(
            parse_query(r#"{"id":"x","_out_edge":{"_type":"t"}}"#).is_err(),
            "edge needs vertex"
        );
        assert!(
            parse_query(
                r#"{"id":"x","_out_edge":{"_type":"a","_vertex":{}},
                     "_in_edge":{"_type":"b","_vertex":{}}}"#
            )
            .is_err(),
            "one traversal per step"
        );
        assert!(parse_query(r#"{"id":"x","a":{"_zz": 3}}"#).is_err());
        assert!(parse_query(r#"{"id":"x","_limit": -3}"#).is_err());
    }

    #[test]
    fn match_cannot_traverse() {
        let r = parse_query(
            r#"{"id":"x","_match":[{"_out_edge":{"_type":"t","_vertex":{
                "_out_edge":{"_type":"u","_vertex":{}}}}}]}"#,
        );
        assert!(r.is_err());
    }
}
